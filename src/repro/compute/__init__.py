"""Compute phase: PageRank/SSSP (static + incremental), cost model, OCA."""

from .bfs import IncrementalBFS, StaticBFS
from .components import IncrementalConnectedComponents, StaticConnectedComponents
from .cost_model import compute_round_time
from .oca import OCAConfig, OCAController, OCAObservation
from .pagerank import IncrementalPageRank, StaticPageRank
from .result import ComputeCounters, ComputeResult
from .sssp import IncrementalSSSP, StaticSSSP
from .triangles import IncrementalTriangleCounter, StaticTriangleCount

__all__ = [
    "IncrementalBFS",
    "StaticBFS",
    "IncrementalConnectedComponents",
    "StaticConnectedComponents",
    "compute_round_time",
    "OCAConfig",
    "OCAController",
    "OCAObservation",
    "IncrementalPageRank",
    "StaticPageRank",
    "ComputeCounters",
    "ComputeResult",
    "IncrementalSSSP",
    "StaticSSSP",
    "IncrementalTriangleCounter",
    "StaticTriangleCount",
]
