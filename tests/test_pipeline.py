"""StreamingPipeline end-to-end behaviour on small profiles."""

import pytest

from repro.compute.oca import OCAConfig
from repro.errors import ConfigurationError
from repro.exec_model.machine import SIMULATED_MACHINE
from repro.hau.simulator import HAUSimulator
from repro.pipeline.metrics import BatchMetrics, RunMetrics
from repro.pipeline.modes import MODES, resolve_mode
from repro.pipeline.runner import StreamingPipeline
from repro.update.engine import UpdatePolicy


def test_resolve_mode():
    assert resolve_mode("baseline") is UpdatePolicy.BASELINE
    assert resolve_mode("dynamic") is UpdatePolicy.ABR_USC_HAU
    with pytest.raises(ConfigurationError):
        resolve_mode("warp_speed")
    assert set(MODES) >= {"baseline", "always_ro", "abr", "abr_usc", "sw_only", "hw_only"}


def test_rejects_unknown_algorithm(flat_profile):
    with pytest.raises(ConfigurationError):
        StreamingPipeline(flat_profile, 100, algorithm="triangle-count")


def test_run_produces_metrics(flat_profile):
    metrics = StreamingPipeline(flat_profile, 200, "pr", UpdatePolicy.BASELINE).run(4)
    assert metrics.num_batches == 4
    assert metrics.total_update_time > 0
    assert metrics.total_compute_time > 0
    assert 0 < metrics.update_share < 1
    assert metrics.dataset == flat_profile.name
    assert [b.batch_id for b in metrics.batches] == [0, 1, 2, 3]


def test_update_only_mode(flat_profile):
    metrics = StreamingPipeline(flat_profile, 200, "none", UpdatePolicy.BASELINE).run(3)
    assert metrics.total_compute_time == 0.0
    assert metrics.update_share == 1.0


def test_all_algorithms_run(flat_profile):
    for algorithm in ("pr", "sssp", "pr_static", "sssp_static"):
        metrics = StreamingPipeline(flat_profile, 100, algorithm, UpdatePolicy.ABR).run(3)
        assert metrics.total_compute_time > 0, algorithm
        assert metrics.algorithm == algorithm


def test_oca_defers_and_final_batch_always_computes(skewed_profile):
    pipeline = StreamingPipeline(
        skewed_profile, 1_000, "pr", UpdatePolicy.BASELINE,
        use_oca=True, oca_config=OCAConfig(overlap_threshold=0.01, n=2),
    )
    metrics = pipeline.run(5)
    deferred = [b.deferred for b in metrics.batches]
    assert any(deferred)
    assert not metrics.batches[-1].deferred  # stream end forces a round
    # Every deferred batch is covered by the following aggregated round.
    for i, b in enumerate(metrics.batches[:-1]):
        if b.deferred:
            assert metrics.batches[i + 1].aggregated_batches == 2
            assert b.compute_time == 0.0


def test_oca_off_never_defers(skewed_profile):
    metrics = StreamingPipeline(skewed_profile, 500, "pr", UpdatePolicy.BASELINE).run(4)
    assert not any(b.deferred for b in metrics.batches)
    assert all(b.aggregated_batches == 1 for b in metrics.batches)


def test_dynamic_mode_runs_with_hau(flat_profile):
    pipeline = StreamingPipeline(
        flat_profile, 500, "none", UpdatePolicy.ABR_USC_HAU,
        machine=SIMULATED_MACHINE, hau=HAUSimulator(),
    )
    metrics = pipeline.run(4)
    strategies = metrics.strategies_used()
    assert "hau" in strategies  # flat profile is reorder-adverse


def test_metrics_totals_consistent(flat_profile):
    metrics = StreamingPipeline(flat_profile, 100, "pr", UpdatePolicy.ABR).run(3)
    assert metrics.total_time == pytest.approx(
        sum(b.total_time for b in metrics.batches)
    )


def test_run_metrics_helpers():
    run = RunMetrics("d", 10, "pr", "baseline")
    run.add(BatchMetrics(0, 10.0, 30.0, "baseline"))
    run.add(BatchMetrics(1, 5.0, 15.0, "reorder"))
    assert run.total_time == 60.0
    assert run.update_share == pytest.approx(0.25)
    assert run.strategies_used() == {"baseline": 1, "reorder": 1}


def test_empty_run_metrics_share_zero():
    run = RunMetrics("d", 10, "pr", "baseline")
    assert run.update_share == 0.0
    assert run.num_batches == 0


def test_seed_offset_resumes_stream(flat_profile):
    a = StreamingPipeline(flat_profile, 100, "none", UpdatePolicy.BASELINE)
    a.run(2, seed_offset=2)
    # The pipeline consumed batches 2 and 3 of the stream, not 0 and 1.
    expected = flat_profile.generator(seed=7).generate_batch(2, 100)
    assert expected.src.tolist()[:5] == [
        int(v) for v in a.generator.generate_batch(2, 100).src[:5]
    ]
    edges_from_offset = set()
    gen = flat_profile.generator(seed=7)
    for bid in (2, 3):
        batch = gen.generate_batch(bid, 100)
        edges_from_offset.update(zip(batch.src.tolist(), batch.dst.tolist()))
    for u, v in list(edges_from_offset)[:20]:
        assert a.graph.has_edge(u, v)
