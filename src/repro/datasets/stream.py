"""Stream and batch containers.

A streaming graph workload is a sequence of :class:`Batch` objects, each a
block of ``<source, destination, weight>`` tuples (plus an optional deletion
flag).  :class:`EdgeStream` adapts any batch iterator with bookkeeping
(batch ids, edge accounting) and enforces the configured batch size.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Batch", "EdgeStream", "batches_from_arrays"]


@dataclass(frozen=True)
class Batch:
    """One input batch of edge updates.

    Attributes:
        batch_id: 0-based position in the stream.
        src: int64 array of source vertex ids.
        dst: int64 array of destination vertex ids.
        weight: float64 array of edge weights (all 1.0 for unweighted input).
        is_delete: optional bool array; True marks an edge deletion.  ``None``
            means the batch is insert-only (the common streaming case).
    """

    batch_id: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    is_delete: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not (len(self.src) == len(self.dst) == len(self.weight)):
            raise ConfigurationError(
                "src, dst and weight must have equal length, got "
                f"{len(self.src)}/{len(self.dst)}/{len(self.weight)}"
            )
        if self.is_delete is not None and len(self.is_delete) != len(self.src):
            raise ConfigurationError("is_delete length must match edge count")
        if self.batch_id < 0:
            raise ConfigurationError(f"batch_id must be >= 0, got {self.batch_id}")

    def __len__(self) -> int:
        return len(self.src)

    @property
    def size(self) -> int:
        """Number of edge updates in the batch."""
        return len(self.src)

    @property
    def insertions(self) -> "Batch":
        """The insert-only view of this batch (same batch id)."""
        if self.is_delete is None:
            return self
        keep = ~self.is_delete
        return Batch(
            batch_id=self.batch_id,
            src=self.src[keep],
            dst=self.dst[keep],
            weight=self.weight[keep],
        )

    @property
    def deletions(self) -> "Batch":
        """The delete-only view of this batch (same batch id)."""
        if self.is_delete is None:
            empty = np.empty(0, dtype=np.int64)
            return Batch(self.batch_id, empty, empty.copy(), np.empty(0))
        keep = self.is_delete
        return Batch(
            batch_id=self.batch_id,
            src=self.src[keep],
            dst=self.dst[keep],
            weight=self.weight[keep],
        )

    def unique_vertices(self) -> np.ndarray:
        """Sorted unique vertex ids touched by the batch (either endpoint)."""
        return np.unique(np.concatenate([self.src, self.dst]))

    def in_degrees(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-vertex in-degree inside the batch.

        Returns:
            ``(vertices, counts)`` where ``counts[i]`` is the number of batch
            edges whose destination is ``vertices[i]``.
        """
        return np.unique(self.dst, return_counts=True)

    def out_degrees(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-vertex out-degree inside the batch (see :meth:`in_degrees`)."""
        return np.unique(self.src, return_counts=True)

    def max_degree(self) -> int:
        """Maximum of the batch's in- and out-degrees (Fig. 3 right axis)."""
        if self.size == 0:
            return 0
        __, in_counts = self.in_degrees()
        __, out_counts = self.out_degrees()
        return int(max(in_counts.max(), out_counts.max()))


class EdgeStream:
    """A finite stream of equally sized batches.

    Args:
        batches: iterable producing :class:`Batch` objects in order.
        batch_size: nominal batch size (the final batch may be shorter).
        name: label used in reports.
    """

    def __init__(self, batches: Iterable[Batch], batch_size: int, name: str = "stream"):
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self._batches = iter(batches)
        self.batch_size = batch_size
        self.name = name
        self.batches_emitted = 0
        self.edges_emitted = 0

    def __iter__(self) -> Iterator[Batch]:
        for batch in self._batches:
            if batch.size > self.batch_size:
                raise ConfigurationError(
                    f"batch {batch.batch_id} has {batch.size} edges, exceeding "
                    f"the configured batch size {self.batch_size}"
                )
            self.batches_emitted += 1
            self.edges_emitted += batch.size
            yield batch


def batches_from_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    batch_size: int,
    weight: np.ndarray | None = None,
) -> list[Batch]:
    """Split flat edge arrays into consecutive batches.

    Args:
        src: source vertex ids for the whole stream, in arrival order.
        dst: destination vertex ids.
        batch_size: edges per batch (last batch may be shorter).
        weight: optional weights; defaults to all-ones.

    Returns:
        List of :class:`Batch` objects covering the stream.
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if len(src) != len(dst):
        raise ConfigurationError("src and dst must have equal length")
    if weight is None:
        weight = np.ones(len(src), dtype=np.float64)
    elif len(weight) != len(src):
        raise ConfigurationError("weight length must match edge count")
    batches = []
    for bid, start in enumerate(range(0, len(src), batch_size)):
        stop = start + batch_size
        batches.append(
            Batch(
                batch_id=bid,
                src=np.asarray(src[start:stop], dtype=np.int64),
                dst=np.asarray(dst[start:stop], dtype=np.int64),
                weight=np.asarray(weight[start:stop], dtype=np.float64),
            )
        )
    return batches
