"""Quickstart: stream a dataset through the input-aware pipeline.

Runs the wiki dataset (reorder-friendly at 10K+) through the full
input-aware software stack — ABR deciding reordering per batch, USC
coalescing duplicate-check searches, OCA aggregating compute rounds —
and compares against the input-oblivious baseline.

Run:  python examples/quickstart.py
"""

import dataclasses
import os

from repro import RunConfig, get_dataset

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
BATCH_SIZE = 10_000
NUM_BATCHES = 5 if QUICK else 12


def main() -> None:
    profile = get_dataset("wiki")
    print(f"dataset: {profile.full_name} ({profile.kind}), "
          f"batch size {BATCH_SIZE}, {NUM_BATCHES} batches\n")

    cell = RunConfig(
        "wiki", BATCH_SIZE, algorithm="pr", mode="baseline",
        num_batches=NUM_BATCHES,
    )
    baseline = cell.run()

    input_aware = dataclasses.replace(
        cell, mode="abr_usc", use_oca=True
    ).run()

    print(f"{'':24s}{'baseline':>14s}{'input-aware':>14s}")
    for label, attr in [
        ("update time (tu)", "total_update_time"),
        ("compute time (tu)", "total_compute_time"),
        ("total time (tu)", "total_time"),
    ]:
        b = getattr(baseline, attr)
        a = getattr(input_aware, attr)
        print(f"{label:24s}{b:14.0f}{a:14.0f}   ({b / a:.2f}x)")

    print("\nper-batch strategies chosen by ABR:",
          input_aware.strategies_used())
    cads = [b.cad for b in input_aware.batches if b.cad is not None]
    print("CAD values measured on ABR-active batches:",
          [f"{c:.0f}" for c in cads])


if __name__ == "__main__":
    main()
