"""Section 6.2.3 "Impact of other data structures": DAH vs adjacency list.

Paper (wiki-100K): degree-aware hashing beats the plain adjacency-list
baseline (1.95x vs 1x), batch reordering on the adjacency list is on par
(1.8x), and reordering + search coalescing beats DAH (2.1x) — the argument
for keeping one structure plus ABR instead of switching structures.
"""

from _harness import emit, num_batches
from repro.analysis.report import render_table
from repro.datasets.profiles import get_dataset
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.degree_aware_hash import DegreeAwareHashGraph
from repro.update.engine import UpdateEngine, UpdatePolicy
from repro.update.result import STRATEGY_RO, STRATEGY_RO_USC


def run_dah(name="wiki", batch_size=100_000):
    profile = get_dataset(name)
    nb = num_batches(profile, batch_size)

    def totals(graph):
        engine = UpdateEngine(graph, UpdatePolicy.BASELINE)
        base = ro = usc = 0.0
        for batch in profile.generator().batches(batch_size, nb):
            result = engine.ingest(batch)
            base += result.time
            ro += result.alternatives[STRATEGY_RO]
            usc += result.alternatives[STRATEGY_RO_USC]
        return base, ro, usc

    as_base, as_ro, as_usc = totals(AdjacencyListGraph(profile.num_vertices))
    dah_base, __, ___ = totals(DegreeAwareHashGraph(profile.num_vertices))
    return {
        "dah_over_as": as_base / dah_base,
        "as_ro_over_as": as_base / as_ro,
        "as_usc_over_as": as_base / as_usc,
    }


def test_misc_dah_comparison(benchmark):
    result = benchmark.pedantic(run_dah, rounds=1, iterations=1)
    emit(
        "misc_dah_comparison",
        render_table(
            ["configuration", "paper", "measured speedup over AS baseline"],
            [
                ["DAH baseline", "1.95x", result["dah_over_as"]],
                ["AS + batch reordering", "1.80x", result["as_ro_over_as"]],
                ["AS + reordering + USC", "2.10x", result["as_usc_over_as"]],
            ],
            title="Section 6.2.3: data-structure comparison on wiki-100K",
        ),
    )
    # DAH beats the AS baseline on the reorder-friendly input...
    assert result["dah_over_as"] > 1.3
    # ...AS with reordering is comparable, and USC wins overall.
    assert result["as_usc_over_as"] > result["dah_over_as"]
    assert result["as_usc_over_as"] > result["as_ro_over_as"]
