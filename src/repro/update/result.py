"""Result types for the update phase."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exec_model.parallel import PhaseTiming

__all__ = ["UpdateResult", "STRATEGY_BASELINE", "STRATEGY_RO", "STRATEGY_RO_USC", "STRATEGY_HAU"]

#: Strategy labels used across engines and reports.
STRATEGY_BASELINE = "baseline"
STRATEGY_RO = "reorder"
STRATEGY_RO_USC = "reorder+usc"
STRATEGY_HAU = "hau"


@dataclass(frozen=True)
class UpdateResult:
    """Modeled outcome of updating one batch.

    Attributes:
        batch_id: the batch's position in the stream.
        strategy: which update strategy actually executed
            (one of the ``STRATEGY_*`` labels).
        time: modeled elapsed time of the update phase, in time units,
            including any ABR instrumentation overhead on active batches.
        timing: full makespan decomposition of the executed strategy.
        instrumentation_time: portion of ``time`` spent on ABR/OCA
            instrumentation (0 on inert batches).
        abr_active: True if this was an ABR-active (instrumented) batch.
        cad: the CAD_lambda value measured on this batch (None when not
            measured).
        alternatives: modeled times of the strategies *not* executed, keyed
            by strategy label — used by characterization and perfect-ABR
            comparisons without re-applying the batch.
    """

    batch_id: int
    strategy: str
    time: float
    timing: PhaseTiming
    instrumentation_time: float = 0.0
    abr_active: bool = False
    cad: float | None = None
    alternatives: dict[str, float] = field(default_factory=dict)

    @property
    def reordered(self) -> bool:
        """True if the batch was updated via reordering (with or without USC)."""
        return self.strategy in (STRATEGY_RO, STRATEGY_RO_USC)
