# Convenience targets for the repro library.

.PHONY: install test test-fast test-faults lint bench bench-full bench-smoke bench-shard bench-partition report-smoke timeline-smoke serve-smoke tune-smoke fidelity examples clean

install:
	pip install -e '.[test]'

test:
	pytest tests/

# Static checks (ruff, configured in pyproject.toml); a no-op with a notice
# when ruff isn't installed (`pip install -e '.[dev]'` provides it).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif python -c "import ruff" 2>/dev/null; then \
		python -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (pip install -e '.[dev]')"; \
	fi

# Lint + parallel test run via pytest-xdist; falls back to serial when the
# plugin isn't installed.
test-fast: lint report-smoke timeline-smoke serve-smoke tune-smoke bench-shard test-faults
	@python -c "import xdist" 2>/dev/null \
		&& pytest tests/ -n auto \
		|| { echo "pytest-xdist not installed; running serially"; pytest tests/; }

# The full fault-injection suite, including the slow_faults cases the
# tier-1 run excludes (-m "" overrides the addopts marker filter).
test-faults:
	pytest tests/test_faults.py tests/test_checkpoint.py -m "" -q

# End-to-end observability smoke: record an instrumented trace, then make
# sure the analyzer can read it back (the `repro report` acceptance loop).
report-smoke:
	@tmp=$$(mktemp -d) && \
	python -m repro run fb --batch-size 500 --num-batches 3 \
		--algorithm none --mode abr_usc --trace $$tmp/run.jsonl >/dev/null && \
	python -m repro report $$tmp/run.jsonl >/dev/null && \
	rm -rf $$tmp && echo "report-smoke: OK"

# Cross-process timeline smoke: a 2-shard tcp run must yield a Chrome
# trace with coordinator + both worker tracks, a live heartbeat that
# `repro top` can render, and a trace whose embedded timeline re-exports.
timeline-smoke:
	@tmp=$$(mktemp -d) && \
	python -m repro run fb --batch-size 500 --num-batches 4 \
		--algorithm none --shards 2 --shard-transport tcp \
		--trace $$tmp/run.jsonl --timeline $$tmp/timeline.json \
		--heartbeat $$tmp/hb.json >/dev/null && \
	python -m repro top $$tmp/hb.json --once >/dev/null && \
	python -m repro report $$tmp/run.jsonl \
		--timeline $$tmp/timeline2.json >/dev/null && \
	python -c "import json, sys; \
doc = json.load(open(sys.argv[1])); \
tracks = {(e['pid'], e['tid']) for e in doc['traceEvents'] if e['ph'] == 'X'}; \
assert len(tracks) == 3, tracks; \
assert json.load(open(sys.argv[2]))['traceEvents']" \
		$$tmp/timeline.json $$tmp/timeline2.json && \
	rm -rf $$tmp && echo "timeline-smoke: OK"

# Live-ingest service smoke: boot `repro serve` as a subprocess, drive it
# with 2 concurrent loadgen clients plus a query client, SIGINT it, and
# assert a graceful drain (admission closed, partial batch flushed,
# checkpoint written, exit 0).  Then the serving benchmark with the
# regression gate armed against the committed BENCH_serve.json.
# PYTHONPATH=src keeps the outer driver import-clean on checkouts where
# the package isn't pip-installed; the driver re-injects it for the
# server subprocess.
serve-smoke:
	PYTHONPATH=src python -m repro.serve.smoke
	REPRO_BENCH_ENFORCE=1 pytest benchmarks/test_perf_serve.py \
		--benchmark-only

# Auto-tuning smoke: a 4-trial `repro tune` random search is killed right
# after trial 2 hits the journal, then rerun — the resumed search must
# finish with exactly 4 journaled trials (nothing re-evaluated, nothing
# skipped) and a best_config.json that round-trips through RunConfig and
# scores at least the baseline trial.
tune-smoke:
	PYTHONPATH=src python -m repro.tune.smoke

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only

# Substrate + adjacency-format micro-benchmarks with the regression gate
# armed: fails if the measured speedups drop >20% below the committed
# BENCH_substrate.json / BENCH_adjacency.json.  Pins the hybrid format so
# the gated numbers are the performance-optimal configuration.
bench-smoke: bench-partition
	REPRO_BENCH_ENFORCE=1 REPRO_ADJ_FORMAT=hybrid pytest \
		benchmarks/test_perf_substrate.py benchmarks/test_perf_adjacency.py \
		--benchmark-only

# Partition-policy smoke gate: greedy must cut fewer edges than mod on the
# hub-heavy profile (deterministic, asserted unconditionally) and the cut /
# ingest numbers must stay within tolerance of the committed
# BENCH_partition.json.
bench-partition:
	REPRO_BENCH_ENFORCE=1 pytest benchmarks/test_perf_partition.py \
		--benchmark-only

# Sharded-ingest smoke gate: bounds the 1-shard coordination tax against
# the committed BENCH_shard.json and, when cpu_count >= num_shards,
# enforces shard speedup > 1 (see benchmarks/test_perf_shard.py's honesty
# notes — on fewer cores the scaling floor is vacuous and skipped).
bench-shard:
	REPRO_BENCH_ENFORCE=1 REPRO_ADJ_FORMAT=hybrid pytest \
		benchmarks/test_perf_shard.py --benchmark-only

fidelity:
	python -m repro fidelity

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f || exit 1; done

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
