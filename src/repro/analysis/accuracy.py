"""ABR decision accuracy over the (lambda, TH) grid — Fig. 18.

Accuracy is measured exactly as the paper frames it: for every example batch,
compare the CAD-rule decision (``CAD_lambda >= TH``) against the per-batch
ground truth (did reordering actually beat the baseline for that batch?), and
report the fraction of correct decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.profiles import DATASETS
from ..errors import AnalysisError
from .characterization import CellCharacterization

__all__ = [
    "FIG18_GRID",
    "FIG18_EXCLUDED_DATASETS",
    "AccuracyPoint",
    "decision_accuracy",
    "accuracy_grid",
]

#: The (lambda, TH) combinations Fig. 18(a) sweeps (bottom/top axis values).
FIG18_GRID: tuple[tuple[int, float], ...] = (
    (2, 10.0),
    (4, 20.0),
    (8, 35.0),
    (16, 65.0),
    (32, 90.0),
    (64, 140.0),
    (128, 240.0),
    (256, 465.0),
    (512, 770.0),
)

#: Fig. 18(a) leaves out yt, friendster and uk (ABR is trivially right on
#: them at every batch size, so they would only inflate accuracy).
FIG18_EXCLUDED_DATASETS: frozenset[str] = frozenset({"yt", "friendster", "uk"})


@dataclass(frozen=True)
class AccuracyPoint:
    """Decision accuracy of one (lambda, TH) combination."""

    lam: int
    threshold: float
    accuracy: float
    examples: int


def decision_accuracy(
    cells: list[CellCharacterization], lam: int, threshold: float
) -> AccuracyPoint:
    """Accuracy of the CAD rule against per-batch ground truth.

    Note:
        ``cells`` must have been characterized with ``cad_lambda == lam`` so
        their recorded CAD values use the right cutoff.
    """
    correct = 0
    total = 0
    for cell in cells:
        for beneficial, cad in zip(cell.per_batch_ro_beneficial, cell.per_batch_cads):
            decision = cad >= threshold
            correct += decision == beneficial
            total += 1
    if total == 0:
        raise AnalysisError("no example batches supplied")
    return AccuracyPoint(
        lam=lam, threshold=threshold, accuracy=correct / total, examples=total
    )


def accuracy_grid(
    characterize,  # callable: (dataset_name, batch_size, lam) -> CellCharacterization
    batch_sizes: tuple[int, ...],
    grid: tuple[tuple[int, float], ...] = FIG18_GRID,
    datasets: list[str] | None = None,
) -> list[AccuracyPoint]:
    """Sweep the (lambda, TH) grid (Fig. 18(a)).

    Args:
        characterize: producer of per-cell characterizations at a given
            lambda (injected so benches can control batch counts/caching).
        batch_sizes: batch sizes to include as examples.
        grid: the (lambda, TH) combinations to score.
        datasets: dataset names to include; defaults to all minus the
            Fig. 18 exclusions.
    """
    names = datasets or [d for d in DATASETS if d not in FIG18_EXCLUDED_DATASETS]
    points = []
    for lam, threshold in grid:
        cells = [
            characterize(name, batch_size, lam)
            for name in names
            for batch_size in batch_sizes
        ]
        points.append(decision_accuracy(cells, lam, threshold))
    return points
