"""Auto-tuning: search spaces, optimizers, objectives, and the driver."""

import dataclasses
import json
import math
import random

import pytest

from repro.errors import TuneError
from repro.pipeline.config import RunConfig
from repro.tune import (
    BUILTIN_SPACES,
    Dimension,
    SearchSpace,
    TuneDriver,
    get_objective,
    load_space,
    make_optimizer,
)

BASE = RunConfig(dataset="fb", batch_size=500, num_batches=2)

DEMO = BUILTIN_SPACES["demo"]


# -- search space ------------------------------------------------------------


def test_space_json_round_trip():
    for space in BUILTIN_SPACES.values():
        assert SearchSpace.from_json(space.to_json()) == space


def test_dimension_bounds_validation():
    with pytest.raises(TuneError, match="low < high"):
        Dimension("x", "batch_size", "integer", low=10, high=10)
    with pytest.raises(TuneError, match="kind"):
        Dimension("x", "batch_size", "boolean", low=1, high=2)
    with pytest.raises(TuneError, match="low > 0"):
        Dimension("x", "pr_tolerance", "continuous", low=0.0, high=1.0, log=True)
    with pytest.raises(TuneError, match="choices"):
        Dimension("x", "adjacency", "categorical")
    with pytest.raises(TuneError, match="pow2"):
        Dimension("x", "pr_tolerance", "continuous", low=1, high=2,
                  transform="pow2")


def test_space_rejects_bad_field_paths():
    with pytest.raises(TuneError, match="not a RunConfig field"):
        SearchSpace("s", (Dimension("x", "warp", "integer", low=1, high=2),))
    with pytest.raises(TuneError, match="not a field of ABRConfig"):
        SearchSpace("s", (Dimension("x", "abr.warp", "integer", low=1, high=2),))
    with pytest.raises(TuneError, match="not a nested config"):
        SearchSpace("s", (Dimension("x", "dataset.name", "integer",
                                    low=1, high=2),))


def test_apply_sets_top_level_and_nested_fields():
    config = DEMO.apply(BASE, {
        "abr_threshold": 300.0, "abr_n": 5,
        "batch_size": 1000, "adjacency": "hybrid",
    })
    assert config.batch_size == 1000
    assert config.adjacency == "hybrid"
    # Nested ABRConfig is instantiated from defaults (BASE carries None)
    # with only the assigned fields moved.
    assert config.abr.threshold == 300.0
    assert config.abr.n == 5
    assert config.abr.lam == 256  # untouched default


def test_apply_partial_assignment_keeps_base_values():
    config = DEMO.apply(BASE, {"abr_n": 7})
    assert config.batch_size == BASE.batch_size
    assert config.adjacency == BASE.adjacency
    assert config.abr.n == 7


def test_apply_rejects_unknown_and_out_of_bounds():
    with pytest.raises(TuneError, match="unknown dimensions"):
        DEMO.apply(BASE, {"warp_factor": 1})
    with pytest.raises(TuneError, match="outside"):
        DEMO.apply(BASE, {"batch_size": 10})
    with pytest.raises(TuneError, match="not one of"):
        DEMO.apply(BASE, {"adjacency": "btree"})


def test_pow2_transform_maps_bits_to_cost():
    full = BUILTIN_SPACES["full"]
    config = full.apply(BASE, {"usc_hash_bits": 3})
    assert config.costs.usc_hash_insert == 8.0


def test_sample_stays_in_bounds():
    rng = random.Random(0)
    for _ in range(50):
        assignment = BUILTIN_SPACES["full"].sample(rng)
        # apply() re-validates every value against its dimension's domain.
        BUILTIN_SPACES["full"].apply(BASE, assignment)


def test_grid_assignments_cover_budget():
    grid = DEMO.grid_assignments(10)
    assert len(grid) >= 10
    assert len({json.dumps(a, sort_keys=True) for a in grid}) == len(grid)


def test_load_space_builtin_file_and_unknown(tmp_path):
    assert load_space("demo") is DEMO
    path = tmp_path / "space.json"
    path.write_text(DEMO.to_json())
    assert load_space(str(path)) == DEMO
    with pytest.raises(TuneError, match="unknown search space"):
        load_space("nope")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(TuneError, match="not valid JSON"):
        load_space(str(bad))


# -- optimizers --------------------------------------------------------------


def test_unknown_optimizer_rejected():
    with pytest.raises(TuneError, match="unknown optimizer"):
        make_optimizer("annealing", DEMO)


def test_random_search_deterministic_per_trial():
    a = make_optimizer("random", DEMO, seed=5)
    b = make_optimizer("random", DEMO, seed=5)
    b.tell(1, a.ask(1), 1.0)  # history must not change proposals
    for trial_id in (1, 2, 3):
        assert a.ask(trial_id) == b.ask(trial_id)
    assert make_optimizer("random", DEMO, seed=6).ask(1) != a.ask(1)


def test_grid_search_exhausts():
    opt = make_optimizer("grid", DEMO, trials=5)
    seen = [opt.ask(i) for i in range(1, 5)]
    assert all(a is not None for a in seen)
    assert len({json.dumps(a, sort_keys=True) for a in seen}) == 4
    total = len(opt._assignments)
    assert opt.ask(total + 1) is None  # walked off the grid


def test_tpe_proposes_in_bounds_after_history():
    opt = make_optimizer("tpe", DEMO, seed=1)
    rng = random.Random(2)
    for trial_id in range(1, 9):
        assignment = DEMO.sample(rng)
        score = -abs(assignment["abr_n"] - 10)  # peak at abr_n == 10
        opt.tell(trial_id, assignment, score)
    opt.tell(0, {}, 0.5)  # the baseline's empty assignment must not crash it
    proposal = opt.ask(9)
    DEMO.apply(BASE, proposal)  # validates every value
    again = make_optimizer("tpe", DEMO, seed=1)
    for trial_id, assignment, score in opt.history:
        again.tell(trial_id, assignment, score)
    assert again.ask(9) == proposal  # deterministic given (seed, history)


# -- objectives --------------------------------------------------------------


def test_unknown_objective_rejected():
    with pytest.raises(TuneError, match="unknown objective"):
        get_objective("latency_p99")


def test_objectives_score_a_real_run():
    from repro.pipeline.executor import run_matrix

    config = dataclasses.replace(BASE, telemetry="basic")
    [result] = run_matrix([config])
    throughput = get_objective("ingest_throughput").score(result, config)
    assert throughput > 0
    per_edge = get_objective("update_time").score(result, config)
    assert per_edge < 0  # negated cost
    speedup = get_objective("ro_speedup").score(result, config)
    assert speedup > 0
    edges = result.telemetry.counter("update.edges")
    assert throughput == pytest.approx(edges / result.total_time)
    # The engine records every software strategy's counterfactual makespan.
    assert result.telemetry.counter("update.alt.baseline") > 0
    assert result.telemetry.counter("update.alt.reorder") > 0


def test_ro_speedup_requires_telemetry():
    from repro.pipeline.executor import run_matrix

    [result] = run_matrix([BASE])  # telemetry off -> no snapshot
    with pytest.raises(TuneError, match="instrumented"):
        get_objective("ro_speedup").score(result, BASE)


# -- driver ------------------------------------------------------------------


def _driver(tmp_path, **overrides):
    kwargs = dict(
        out_dir=tmp_path / "search",
        trials=4,
        seed=3,
        jobs=1,
    )
    kwargs.update(overrides)
    return TuneDriver(DEMO, BASE, **kwargs)


def test_driver_baseline_guarantee_and_outputs(tmp_path):
    result = _driver(tmp_path).run()
    assert len(result.trials) == 4
    assert [t.trial_id for t in result.trials] == [0, 1, 2, 3]
    baseline = result.trials[0]
    assert baseline.assignment == {}
    assert result.best.score >= baseline.score  # incumbent always present
    # best_config.json round-trips into the winning RunConfig.
    payload = json.loads((tmp_path / "search" / "best_config.json").read_text())
    assert RunConfig.from_dict(payload["config"]) == result.best_config
    trajectory = (tmp_path / "search" / "trajectory.csv").read_text()
    assert trajectory.count("\n") == 5  # header + one row per trial
    assert result.telemetry.counter("tune.trials") == 4


def test_driver_deterministic_across_job_counts(tmp_path):
    serial = _driver(tmp_path / "a").run()
    parallel = _driver(tmp_path / "b", jobs=2).run()
    assert [t.score for t in serial.trials] == [t.score for t in parallel.trials]
    assert [t.assignment for t in serial.trials] == [
        t.assignment for t in parallel.trials
    ]


def test_driver_resumes_from_journal(tmp_path):
    first = _driver(tmp_path, trials=2).run()
    resumed = _driver(tmp_path, trials=4).run()
    assert resumed.resumed == 2
    assert resumed.trials[:2] == first.trials
    fresh = _driver(tmp_path / "fresh", trials=4).run()
    # A resumed search lands exactly where the uninterrupted one does.
    assert [t.score for t in resumed.trials] == [t.score for t in fresh.trials]


def test_driver_rejects_mismatched_journal(tmp_path):
    _driver(tmp_path, trials=2).run()
    with pytest.raises(TuneError, match="different search"):
        _driver(tmp_path, seed=4).run()


def test_driver_rejects_corrupt_journal_body(tmp_path):
    driver = _driver(tmp_path, trials=2)
    driver.run()
    lines = driver.journal_path.read_text().splitlines()
    lines[1] = '{"type": "trial", "trial_id":'  # torn *non-tail* line
    driver.journal_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TuneError, match="corrupt tune journal"):
        _driver(tmp_path, trials=2).run()


def test_driver_tolerates_torn_journal_tail(tmp_path):
    driver = _driver(tmp_path, trials=2)
    driver.run()
    with open(driver.journal_path, "a") as handle:
        handle.write('{"type": "trial", "trial_id": 99, "sco')
    result = _driver(tmp_path).run()  # torn tail ignored, search continues
    assert len(result.trials) == 4


def test_driver_records_failed_trials(tmp_path, monkeypatch):
    import repro.tune.driver as driver_mod
    from repro.pipeline.executor import CellResult

    real = driver_mod.run_matrix

    def fail_trial_two(configs, **kwargs):
        results = real(configs, **kwargs)
        return [
            CellResult.failed(r.spec, "RuntimeError: injected trial crash")
            if config.abr is not None and config.abr.n == 13
            else r
            for config, r in zip(configs, results)
        ]

    monkeypatch.setattr(driver_mod, "run_matrix", fail_trial_two)
    result = _driver(tmp_path).run()
    failed = [t for t in result.trials if not t.ok]
    assert len(failed) == 1
    assert "injected trial crash" in failed[0].error
    assert failed[0].score is None
    assert result.best.ok  # search completed around the crash
    assert result.telemetry.counter("tune.trials.failed") == 1


def test_driver_edge_budget_and_instrumentation(tmp_path):
    driver = _driver(tmp_path)
    config = driver._trial_config({"batch_size": 1000})
    assert config.num_batches == 1  # 500 * 2 edges repacked into 1000s
    assert config.telemetry == "basic"  # bumped for objective counters
    same = driver._trial_config({"abr_n": 4})
    assert same.num_batches == BASE.num_batches


def test_driver_requires_bounded_workload(tmp_path):
    unbounded = dataclasses.replace(BASE, num_batches=None)
    with pytest.raises(TuneError, match="bounded workload"):
        TuneDriver(DEMO, unbounded, out_dir=tmp_path)


def test_driver_trial_checkpoints_are_namespaced(tmp_path):
    result = _driver(tmp_path, checkpoint_every=1).run()
    root = tmp_path / "search" / "checkpoints"
    trial_dirs = sorted(p.name for p in root.iterdir())
    assert trial_dirs == [f"trial-{i:06d}" for i in range(4)]
    assert all(any(d.glob("ckpt-*.ckpt")) for d in root.iterdir())
    # Checkpointing must not perturb the modeled results.
    plain = _driver(tmp_path / "plain").run()
    assert [t.score for t in result.trials] == [t.score for t in plain.trials]


def test_trajectory_chart_renders_failures_and_best():
    from repro.analysis.visualize import trajectory_chart

    chart = trajectory_chart([1.0, None, 3.0, 2.0], title="t")
    lines = chart.splitlines()
    assert lines[0] == "t"
    assert lines[1].endswith("*")  # first score is the first best
    assert "x (failed)" in lines[2]
    assert lines[3].endswith("*")  # new best
    assert not lines[4].endswith("*")


def test_trajectory_chart_rejects_empty():
    from repro.analysis.visualize import trajectory_chart
    from repro.errors import AnalysisError

    with pytest.raises(AnalysisError):
        trajectory_chart([])
    with pytest.raises(AnalysisError):
        trajectory_chart([None, None])
