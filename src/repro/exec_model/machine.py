"""Machine descriptions for the software execution model.

Two machines matter in the paper:

* the **host** — a dual-socket Skylake server (112 hardware threads) on which
  ABR, USC and OCA are measured; and
* the **simulated CMP** of Table 1 — a 16-core tiled chip (4x4 mesh NoC) on
  which HAU is evaluated with Sniper.  Table 3 normalizes ABR+USC+HAU against
  ABR+USC *running on the simulated machine*, so the software cost model must
  be evaluated with that machine's worker count when comparing against HAU.

Only the worker count and clock enter the software model; the cache/NoC
details of the simulated machine live in :mod:`repro.hau.config`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["MachineConfig", "HOST_MACHINE", "SIMULATED_MACHINE"]


@dataclass(frozen=True)
class MachineConfig:
    """A machine on which modeled software phases execute.

    Attributes:
        name: human-readable identifier used in reports.
        num_workers: worker threads available to update/compute phases (the
            master thread that feeds batches is not counted, matching the
            SAGA-Bench setup where core 0 hosts the master).
        clock_ghz: nominal clock, used only to convert HAU cycles into the
            same time units as the software model (1 tu = 1 cycle at
            ``clock_ghz``).
    """

    name: str
    num_workers: int
    clock_ghz: float = 2.5

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.clock_ghz <= 0:
            raise ConfigurationError(
                f"clock_ghz must be positive, got {self.clock_ghz}"
            )


#: The evaluation host of Section 6.1 (dual-socket Xeon 8180).  We model one
#: NUMA-local worker pool; the absolute count only scales all software times
#: uniformly, so ratios are insensitive to it.
HOST_MACHINE = MachineConfig(name="xeon-8180-host", num_workers=28)

#: The Table 1 simulated architecture: 16 cores, core 0 hosts the master
#: thread, cores 1-15 host update workers (Fig. 19 reports cores 1-15).
SIMULATED_MACHINE = MachineConfig(name="table1-cmp", num_workers=15)
