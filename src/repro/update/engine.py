"""Update engine: per-batch strategy dispatch (Fig. 2's decision diagram).

The engine applies each batch to the graph exactly once (real mutation), then
charges modeled time according to the configured policy:

* input-oblivious policies always run one strategy (baseline, RO, RO+USC,
  or HAU);
* ABR policies consult the :class:`~repro.update.abr.ABRController` —
  reorder-friendly batches run the software fast path (RO, or RO+USC),
  reorder-adverse batches fall back to the baseline (ABR/ABR_USC) or are
  offloaded to the HAU accelerator (ABR_USC_HAU, the paper's full
  input-aware SW/HW dynamic execution);
* PERFECT policies model the zero-overhead oracle of Fig. 13's
  "perfect ABR" bars.

Each :class:`~repro.update.result.UpdateResult` also carries the modeled
times of the non-executed software strategies, so characterization studies
never need to re-apply a batch.
"""

from __future__ import annotations

import enum

from ..costs import DEFAULT_COSTS, CostParameters
from ..datasets.stream import Batch
from ..errors import ConfigurationError
from ..exec_model.machine import HOST_MACHINE, MachineConfig
from ..graph.base import BatchUpdateStats, DynamicGraph
from .abr import ABRConfig, ABRController, ABRDecision
from .baseline import baseline_update_timing
from .reorder import reorder_update_timing
from .result import (
    STRATEGY_BASELINE,
    STRATEGY_HAU,
    STRATEGY_RO,
    STRATEGY_RO_USC,
    UpdateResult,
)
from .usc import usc_update_timing

__all__ = ["UpdatePolicy", "UpdateEngine"]


class UpdatePolicy(enum.Enum):
    """How the engine chooses an update strategy per batch."""

    #: Input-oblivious: always locked edge-centric updates.
    BASELINE = "baseline"
    #: Input-oblivious: always reorder (the naive always-RO of Fig. 3).
    ALWAYS_RO = "always_ro"
    #: Input-oblivious SW-only: always reorder with search coalescing
    #: (Fig. 15 left's enforced RO+USC).
    ALWAYS_RO_USC = "always_ro_usc"
    #: Input-oblivious HW-only: every batch on the accelerator
    #: (Fig. 15 right's enforced HAU).
    ALWAYS_HAU = "always_hau"
    #: Input-aware software: ABR decides reorder vs baseline.
    ABR = "abr"
    #: Input-aware software: ABR decides (reorder + USC) vs baseline.
    ABR_USC = "abr_usc"
    #: Oracle ABR with zero instrumentation overhead (Fig. 13 "perfect ABR").
    PERFECT_ABR = "perfect_abr"
    #: Oracle choosing between baseline and RO+USC with zero overhead.
    PERFECT_ABR_USC = "perfect_abr_usc"
    #: The paper's full proposal: friendly batches -> RO+USC in software,
    #: adverse batches -> HAU in hardware (Fig. 2).
    ABR_USC_HAU = "abr_usc_hau"


_ABR_POLICIES = frozenset(
    {UpdatePolicy.ABR, UpdatePolicy.ABR_USC, UpdatePolicy.ABR_USC_HAU}
)
_HAU_POLICIES = frozenset({UpdatePolicy.ALWAYS_HAU, UpdatePolicy.ABR_USC_HAU})


class UpdateEngine:
    """Ingests batches into a graph and accounts modeled update time.

    Args:
        graph: the dynamic graph structure being maintained.
        policy: per-batch strategy selection policy.
        machine: machine the software phases run on (use the simulated CMP
            when comparing against HAU, per Table 3's normalization).
        costs: software cost model parameters.
        abr_config: ABR parameters (used by ABR policies).
        hau: accelerator simulator exposing
            ``simulate_batch(stats) -> result`` with ``time`` and ``timing``
            attributes; required for HAU policies.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        policy: UpdatePolicy = UpdatePolicy.ABR_USC,
        machine: MachineConfig = HOST_MACHINE,
        costs: CostParameters = DEFAULT_COSTS,
        abr_config: ABRConfig | None = None,
        hau=None,
        abr_controller: ABRController | None = None,
    ):
        if policy in _HAU_POLICIES and hau is None:
            raise ConfigurationError(
                f"policy {policy.value} requires a HAU simulator instance"
            )
        self.graph = graph
        self.policy = policy
        self.machine = machine
        self.costs = costs
        self.abr_config = abr_config or ABRConfig()
        self.hau = hau
        #: The decision controller; inject a FeedbackABRController for the
        #: online-threshold-tuning extension.
        self.abr = abr_controller or ABRController(
            self.abr_config, costs, machine.num_workers
        )
        self.results: list[UpdateResult] = []

    # -- internals ----------------------------------------------------------
    def _software_times(self, stats: BatchUpdateStats) -> dict:
        """Modeled timings of the three software strategies."""
        return {
            STRATEGY_BASELINE: baseline_update_timing(
                stats, self.graph, self.costs, self.machine
            ),
            STRATEGY_RO: reorder_update_timing(
                stats, self.graph, self.costs, self.machine
            ),
            STRATEGY_RO_USC: usc_update_timing(
                stats, self.graph, self.costs, self.machine
            ),
        }

    def _choose(self, stats: BatchUpdateStats, timings: dict) -> tuple[str, ABRDecision | None]:
        """Pick the executed strategy label per the configured policy."""
        policy = self.policy
        if policy is UpdatePolicy.BASELINE:
            return STRATEGY_BASELINE, None
        if policy is UpdatePolicy.ALWAYS_RO:
            return STRATEGY_RO, None
        if policy is UpdatePolicy.ALWAYS_RO_USC:
            return STRATEGY_RO_USC, None
        if policy is UpdatePolicy.ALWAYS_HAU:
            return STRATEGY_HAU, None
        if policy is UpdatePolicy.PERFECT_ABR:
            baseline = timings[STRATEGY_BASELINE].makespan
            reorder = timings[STRATEGY_RO].makespan
            return (STRATEGY_RO if reorder < baseline else STRATEGY_BASELINE), None
        if policy is UpdatePolicy.PERFECT_ABR_USC:
            baseline = timings[STRATEGY_BASELINE].makespan
            usc = timings[STRATEGY_RO_USC].makespan
            return (STRATEGY_RO_USC if usc < baseline else STRATEGY_BASELINE), None
        decision = self.abr.step(stats)
        if decision.reorder:
            strategy = (
                STRATEGY_RO if policy is UpdatePolicy.ABR else STRATEGY_RO_USC
            )
        elif policy is UpdatePolicy.ABR_USC_HAU:
            strategy = STRATEGY_HAU
        else:
            strategy = STRATEGY_BASELINE
        return strategy, decision

    # -- public API -----------------------------------------------------------
    def ingest(self, batch: Batch) -> UpdateResult:
        """Apply one batch and return its modeled update result."""
        stats = self.graph.apply_batch(batch)
        timings = self._software_times(stats)
        strategy, decision = self._choose(stats, timings)
        if decision is not None:
            # Feedback hook (no-op on the static controller): report the
            # modeled times so a tuning controller can adjust its threshold.
            self.abr.observe_times(
                stats,
                timings[STRATEGY_BASELINE].makespan,
                timings[STRATEGY_RO].makespan,
            )
        if strategy == STRATEGY_HAU:
            hau_result = self.hau.simulate_batch(stats)
            timing = hau_result.timing
        else:
            timing = timings[strategy]
        instrumentation = decision.instrumentation if decision else 0.0
        # Structure maintenance (e.g. edge-log archiving) is paid by the
        # batch no matter which update strategy executed.
        maintenance = self.graph.consume_phase_overhead()
        alternatives = {
            label: t.makespan + maintenance
            for label, t in timings.items()
            if label != strategy
        }
        result = UpdateResult(
            batch_id=stats.batch_id,
            strategy=strategy,
            time=timing.makespan + instrumentation + maintenance,
            timing=timing,
            instrumentation_time=instrumentation,
            abr_active=bool(decision and decision.active),
            cad=decision.cad.value if decision and decision.cad else None,
            alternatives=alternatives,
        )
        self.results.append(result)
        return result

    @property
    def total_time(self) -> float:
        """Total modeled update time across all ingested batches."""
        return sum(r.time for r in self.results)
