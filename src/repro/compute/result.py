"""Result types for the compute phase."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComputeCounters", "ComputeResult"]


@dataclass(frozen=True)
class ComputeCounters:
    """Observed work of one computation round.

    Attributes:
        iterations: algorithm iterations (frontier rounds / power iterations).
        touched_vertices: vertex-processing events (a vertex touched in two
            iterations counts twice — it is processed twice).
        touched_edges: edge traversals (gathers + scatters).
    """

    iterations: int
    touched_vertices: int
    touched_edges: int

    def __add__(self, other: "ComputeCounters") -> "ComputeCounters":
        return ComputeCounters(
            iterations=self.iterations + other.iterations,
            touched_vertices=self.touched_vertices + other.touched_vertices,
            touched_edges=self.touched_edges + other.touched_edges,
        )


@dataclass(frozen=True)
class ComputeResult:
    """Modeled outcome of one scheduled computation round.

    Attributes:
        batch_id: id of the batch that triggered the round (for aggregated
            rounds, the *latest* batch covered).
        algorithm: algorithm label (e.g. ``"pr_incremental"``).
        counters: observed work.
        time: modeled elapsed time of the round, in time units.
        aggregated_batches: number of input batches this round covers (1 in
            the baseline workflow, 2 when OCA aggregates).
    """

    batch_id: int
    algorithm: str
    counters: ComputeCounters
    time: float
    aggregated_batches: int = 1
