"""Update engine: per-batch strategy dispatch (Fig. 2's decision diagram).

The engine applies each batch to the graph exactly once (real mutation), then
charges modeled time according to the configured policy.  Policy semantics
live in the selector registry (:mod:`repro.update.strategies`):

* input-oblivious selectors always run one strategy (baseline, RO, RO+USC,
  or HAU);
* ABR selectors consult the :class:`~repro.update.abr.ABRController` —
  reorder-friendly batches run the software fast path (RO, or RO+USC),
  reorder-adverse batches fall back to the baseline (ABR/ABR_USC) or are
  offloaded to the HAU accelerator (ABR_USC_HAU, the paper's full
  input-aware SW/HW dynamic execution);
* PERFECT selectors model the zero-overhead oracle of Fig. 13's
  "perfect ABR" bars;
* anything registered via
  :func:`~repro.update.strategies.register_strategy` — pass its name (or
  the selector itself) as the engine's ``policy``.

Each :class:`~repro.update.result.UpdateResult` also carries the modeled
times of the non-executed software strategies, so characterization studies
never need to re-apply a batch.
"""

from __future__ import annotations

import enum

from ..costs import DEFAULT_COSTS, CostParameters
from ..datasets.stream import Batch
from ..errors import ConfigurationError
from ..exec_model.machine import HOST_MACHINE, MachineConfig
from ..graph.base import BatchUpdateStats, DynamicGraph
from ..telemetry.core import as_telemetry
from .abr import ABRConfig, ABRController
from .baseline import baseline_update_timing
from .reorder import reorder_cluster_counts, reorder_update_timing, sort_time
from .result import (
    STRATEGY_BASELINE,
    STRATEGY_HAU,
    STRATEGY_RO,
    STRATEGY_RO_USC,
    UpdateResult,
)
from .strategies import StrategySelector, resolve_strategy
from .usc import usc_probe_counts, usc_update_timing

__all__ = ["UpdatePolicy", "UpdateEngine"]


class UpdatePolicy(enum.Enum):
    """How the engine chooses an update strategy per batch."""

    #: Input-oblivious: always locked edge-centric updates.
    BASELINE = "baseline"
    #: Input-oblivious: always reorder (the naive always-RO of Fig. 3).
    ALWAYS_RO = "always_ro"
    #: Input-oblivious SW-only: always reorder with search coalescing
    #: (Fig. 15 left's enforced RO+USC).
    ALWAYS_RO_USC = "always_ro_usc"
    #: Input-oblivious HW-only: every batch on the accelerator
    #: (Fig. 15 right's enforced HAU).
    ALWAYS_HAU = "always_hau"
    #: Input-aware software: ABR decides reorder vs baseline.
    ABR = "abr"
    #: Input-aware software: ABR decides (reorder + USC) vs baseline.
    ABR_USC = "abr_usc"
    #: Oracle ABR with zero instrumentation overhead (Fig. 13 "perfect ABR").
    PERFECT_ABR = "perfect_abr"
    #: Oracle choosing between baseline and RO+USC with zero overhead.
    PERFECT_ABR_USC = "perfect_abr_usc"
    #: The paper's full proposal: friendly batches -> RO+USC in software,
    #: adverse batches -> HAU in hardware (Fig. 2).
    ABR_USC_HAU = "abr_usc_hau"


class UpdateEngine:
    """Ingests batches into a graph and accounts modeled update time.

    Args:
        graph: the dynamic graph structure being maintained.
        policy: per-batch strategy selection policy — an
            :class:`UpdatePolicy` member, a registered selector name, or a
            :class:`~repro.update.strategies.StrategySelector` instance.
        machine: machine the software phases run on (use the simulated CMP
            when comparing against HAU, per Table 3's normalization).
        costs: software cost model parameters.
        abr_config: ABR parameters (used by ABR policies).
        hau: accelerator simulator exposing
            ``simulate_batch(stats) -> result`` with ``time`` and ``timing``
            attributes; required for HAU policies.
        telemetry: optional :class:`~repro.telemetry.core.Telemetry`
            backend; per-batch strategy/ABR decisions land in its ledger
            and USC/RO counters in its counter set.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        policy: UpdatePolicy | str | StrategySelector = UpdatePolicy.ABR_USC,
        machine: MachineConfig = HOST_MACHINE,
        costs: CostParameters = DEFAULT_COSTS,
        abr_config: ABRConfig | None = None,
        hau=None,
        abr_controller: ABRController | None = None,
        telemetry=None,
    ):
        self.selector = resolve_strategy(policy)
        if self.selector.requires_hau and hau is None:
            raise ConfigurationError(
                f"policy {self.selector.name} requires a HAU simulator instance"
            )
        self.graph = graph
        try:
            #: The matching enum member for built-in policies (kept for
            #: back-compat); custom registered selectors have no member, so
            #: prefer :attr:`policy_name` in new code.
            self.policy = UpdatePolicy(self.selector.name)
        except ValueError:
            self.policy = None
        self.machine = machine
        self.costs = costs
        self.abr_config = abr_config or ABRConfig()
        self.hau = hau
        #: The decision controller; inject a FeedbackABRController for the
        #: online-threshold-tuning extension.
        self.abr = abr_controller or ABRController(
            self.abr_config, costs, machine.num_workers
        )
        #: Telemetry backend (the shared null backend when uninstrumented).
        self.telemetry = as_telemetry(telemetry)
        if (
            hau is not None
            and self.telemetry.enabled
            and getattr(hau, "telemetry", None) is None
        ):
            # Let the accelerator's counters land in the same run telemetry.
            hau.telemetry = self.telemetry
        self.results: list[UpdateResult] = []

    # -- internals ----------------------------------------------------------
    def _software_times(self, stats: BatchUpdateStats) -> dict:
        """Modeled timings of the three software strategies."""
        return {
            STRATEGY_BASELINE: baseline_update_timing(
                stats, self.graph, self.costs, self.machine
            ),
            STRATEGY_RO: reorder_update_timing(
                stats, self.graph, self.costs, self.machine
            ),
            STRATEGY_RO_USC: usc_update_timing(
                stats, self.graph, self.costs, self.machine
            ),
        }

    def _record_telemetry(self, stats, strategy, decision, timings) -> None:
        """Counters and ledger entries for one ingested batch.

        Purely observational: reads the already-computed stats/decision and
        never perturbs modeled results (golden parity holds with telemetry
        enabled).
        """
        tel = self.telemetry
        if not tel.enabled:
            return
        tel.count("update.batches")
        tel.count("update.edges", stats.batch_size)
        tel.count(f"update.strategy.{strategy}")
        # Cumulative modeled makespan of every *software* strategy on every
        # batch, chosen or not.  ``update.alt.baseline`` is what the run
        # would have cost under always-baseline, which lets consumers (e.g.
        # the tune objectives) compute an RO/policy speedup from a single
        # run's snapshot instead of re-running the counterfactual.
        for label, timing in timings.items():
            tel.count(f"update.alt.{label}", timing.makespan)
        cad_value = decision.cad.value if decision and decision.cad else None
        if strategy in (STRATEGY_RO, STRATEGY_RO_USC):
            clusters = reorder_cluster_counts(stats)
            tel.count("ro.batches")
            tel.count("ro.clusters", clusters["clusters"])
            tel.count(
                "ro.sort_modeled_tu",
                sort_time(stats.batch_size, self.costs, self.machine),
            )
            tel.observe("ro.max_cluster", clusters["max_cluster"])
        if strategy == STRATEGY_RO_USC:
            probes = usc_probe_counts(stats)
            tel.count("usc.hash_inserts", probes["inserts"])
            tel.count("usc.hash_probes", probes["probes"])
            tel.count("usc.hash_hits", probes["hits"])
        if decision is not None and decision.active:
            tel.count("abr.active_batches")
            # The ledger records the *fresh* decision (it governs the next n
            # batches); the active batch itself ran under the previous mode.
            tel.decision(
                "abr",
                choice="reorder" if self.abr.reordering else "fallback",
                batch_id=stats.batch_id,
                cad=cad_value,
                threshold=self.abr.threshold,
                applied_this_batch=decision.reorder,
            )
        tel.decision(
            "strategy",
            choice=strategy,
            batch_id=stats.batch_id,
            policy=self.policy_name,
            abr_active=bool(decision and decision.active),
            cad=cad_value,
        )

    # -- public API -----------------------------------------------------------
    @property
    def policy_name(self) -> str:
        """The active policy's registry name (works for custom selectors)."""
        return self.selector.name

    def ingest(self, batch: Batch) -> UpdateResult:
        """Apply one batch and return its modeled update result."""
        tel = self.telemetry
        with tel.span("update.apply_batch"):
            stats = self.graph.apply_batch(batch)
        with tel.span("update.model"):
            timings = self._software_times(stats)
        strategy, decision = self.selector.select(self, stats, timings)
        if decision is not None:
            # Feedback hook (no-op on the static controller): report the
            # modeled times so a tuning controller can adjust its threshold.
            self.abr.observe_times(
                stats,
                timings[STRATEGY_BASELINE].makespan,
                timings[STRATEGY_RO].makespan,
            )
        if strategy == STRATEGY_HAU:
            with tel.span("update.hau_simulate"):
                hau_result = self.hau.simulate_batch(stats)
            timing = hau_result.timing
        else:
            timing = timings[strategy]
        self._record_telemetry(stats, strategy, decision, timings)
        instrumentation = decision.instrumentation if decision else 0.0
        # Structure maintenance (e.g. edge-log archiving) is paid by the
        # batch no matter which update strategy executed.
        maintenance = self.graph.consume_phase_overhead()
        alternatives = {
            label: t.makespan + maintenance
            for label, t in timings.items()
            if label != strategy
        }
        result = UpdateResult(
            batch_id=stats.batch_id,
            strategy=strategy,
            time=timing.makespan + instrumentation + maintenance,
            timing=timing,
            instrumentation_time=instrumentation,
            abr_active=bool(decision and decision.active),
            cad=decision.cad.value if decision and decision.cad else None,
            alternatives=alternatives,
        )
        self.results.append(result)
        return result

    @property
    def total_time(self) -> float:
        """Total modeled update time across all ingested batches."""
        return sum(r.time for r in self.results)
