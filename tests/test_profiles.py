"""Dataset registry (Table 2) invariants."""

import pytest

from repro.datasets.profiles import (
    BATCH_SIZES,
    DATASETS,
    TABLE3_BATCH_SIZES,
    TABLE3_DATASETS,
    dataset_names,
    friendly_cells,
    get_dataset,
)
from repro.errors import UnknownDatasetError

PAPER_FRIENDLY = {"topcats", "talk", "berkstan", "yt", "superuser", "wiki"}
PAPER_ADVERSE = {"lj", "patents", "fb", "flickr", "amazon", "stack", "friendster", "uk"}


def test_registry_has_fourteen_datasets():
    assert len(DATASETS) == 14
    assert set(dataset_names()) == PAPER_FRIENDLY | PAPER_ADVERSE


def test_batch_sizes_match_paper():
    assert BATCH_SIZES == (100, 1_000, 10_000, 100_000, 500_000)


def test_table3_subset_matches_paper():
    assert set(TABLE3_DATASETS) == {
        "lj", "patents", "topcats", "berkstan", "fb", "flickr", "amazon", "superuser"
    }
    assert TABLE3_BATCH_SIZES == (100, 1_000, 10_000, 100_000)


def test_get_dataset_unknown_raises():
    with pytest.raises(UnknownDatasetError):
        get_dataset("nonexistent")


def test_friendly_classification_matches_paper_text():
    # Section 4.1: degradation at all batch sizes for the adverse eight.
    for name in PAPER_ADVERSE:
        assert not DATASETS[name].friendly_sizes, name
    # Friendly at 100K/500K for all six; also at 10K for talk, yt, wiki.
    for name in PAPER_FRIENDLY:
        assert {100_000, 500_000} <= DATASETS[name].friendly_sizes, name
    for name in ("talk", "yt", "wiki"):
        assert 10_000 in DATASETS[name].friendly_sizes
    for name in ("topcats", "berkstan", "superuser"):
        assert 10_000 not in DATASETS[name].friendly_sizes


def test_paper_sizes_recorded():
    assert DATASETS["uk"].paper_edges == 5_507_679_822
    assert DATASETS["fb"].paper_vertices == 46_952


def test_kinds_match_table2():
    shuffled = {"talk", "berkstan", "patents", "topcats", "lj", "friendster", "uk"}
    for name, profile in DATASETS.items():
        assert profile.kind == ("shuffled" if name in shuffled else "timestamped")


def test_shuffled_datasets_are_stationary():
    for name, profile in DATASETS.items():
        if profile.kind == "shuffled":
            assert profile.warmup_edges == 0
            assert profile.drift_period == 0


def test_streams_support_500k_batches():
    for profile in DATASETS.values():
        assert profile.stream_edges >= 1_000_000
        assert profile.num_batches(500_000) >= 2


def test_num_batches_cap():
    lj = get_dataset("lj")
    assert lj.num_batches(100_000) == 20
    assert lj.num_batches(100_000, cap=8) == 8
    assert lj.num_batches(10 ** 9) == 1  # never zero


def test_friendly_cells_listing():
    cells = friendly_cells()
    assert ("wiki", 10_000) in cells
    assert ("lj", 100_000) not in cells
    assert all(size in BATCH_SIZES for __, size in cells)


def test_generator_wires_profile_parameters():
    wiki = get_dataset("wiki")
    gen = wiki.generator(seed=3)
    assert gen.hub_in_pool == wiki.hub_in_pool
    assert gen.hub_ramp == wiki.hub_ramp
    assert gen.num_vertices == wiki.num_vertices


def test_generator_seed_changes_stream():
    wiki = get_dataset("wiki")
    a = wiki.generator(seed=1).generate_batch(0, 1000)
    b = wiki.generator(seed=2).generate_batch(0, 1000)
    assert not (a.src == b.src).all()


def test_is_friendly_helper():
    assert get_dataset("wiki").is_friendly(10_000)
    assert not get_dataset("wiki").is_friendly(1_000)
