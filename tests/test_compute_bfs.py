"""BFS: static frontier sweep and incremental level maintenance."""

import networkx as nx
import numpy as np
import pytest

from conftest import make_batch
from repro.compute.bfs import IncrementalBFS, StaticBFS
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.snapshot import take_snapshot


def test_source_validation():
    with pytest.raises(ConfigurationError):
        StaticBFS(-1)
    with pytest.raises(ConfigurationError):
        StaticBFS(99).run(take_snapshot(AdjacencyListGraph(4)))


def test_static_levels_on_chain():
    graph = AdjacencyListGraph(5)
    graph.apply_batch(make_batch([0, 1, 2], [1, 2, 3]))
    levels, counters = StaticBFS(0).run(take_snapshot(graph))
    assert levels.tolist() == [0, 1, 2, 3, -1]
    assert counters.iterations == 4
    assert counters.touched_edges == 3


def test_static_matches_networkx(small_generator):
    graph = AdjacencyListGraph(500)
    for batch in small_generator.batches(800, 2):
        graph.apply_batch(batch)
    source = int(small_generator.generate_batch(0, 10).src[0])
    levels, __ = StaticBFS(source).run(take_snapshot(graph))
    g = nx.DiGraph()
    for u in graph.vertices_with_edges():
        for v in graph.out_neighbors(u):
            g.add_edge(u, v)
    expected = nx.single_source_shortest_path_length(g, source)
    for v in range(500):
        assert levels[v] == expected.get(v, -1)


def test_incremental_matches_static(small_generator):
    graph = AdjacencyListGraph(500)
    source = int(small_generator.generate_batch(0, 10).src[0])
    bfs = IncrementalBFS(graph, source)
    for batch in small_generator.batches(400, 4):
        graph.apply_batch(batch)
        bfs.on_batch(batch)
        static, __ = StaticBFS(source).run(take_snapshot(graph))
        assert bfs.levels() == static.tolist()


def test_incremental_ignores_edge_weights():
    graph = AdjacencyListGraph(4)
    bfs = IncrementalBFS(graph, 0)
    batch = make_batch([0, 1], [1, 2], [9.0, 9.0])
    graph.apply_batch(batch)
    bfs.on_batch(batch)
    assert bfs.levels() == [0, 1, 2, -1]


def test_incremental_deletion_repair():
    graph = AdjacencyListGraph(4)
    bfs = IncrementalBFS(graph, 0)
    b0 = make_batch([0, 1, 0], [1, 2, 2], [1.0, 1.0, 1.0])
    graph.apply_batch(b0)
    bfs.on_batch(b0)
    assert bfs.levels()[2] == 1  # direct edge 0->2
    b1 = make_batch([0], [2], [1.0], batch_id=1, is_delete=[True])
    graph.apply_batch(b1)
    bfs.on_batch(b1)
    assert bfs.levels()[2] == 2  # now via 0->1->2


def test_aggregated_batches_match_sequential(small_generator):
    source = int(small_generator.generate_batch(0, 10).src[0])
    graph_a = AdjacencyListGraph(500)
    graph_b = AdjacencyListGraph(500)
    seq = IncrementalBFS(graph_a, source)
    agg = IncrementalBFS(graph_b, source)
    batches = [small_generator.generate_batch(i, 300) for i in range(2)]
    for batch in batches:
        graph_a.apply_batch(batch)
        seq.on_batch(batch)
        graph_b.apply_batch(batch)
    agg.on_batches(batches)
    assert agg.levels() == seq.levels()
