"""§2/§6.2.3: input-aware techniques apply across data structures.

The paper's claim: "Our proposed input-dependent optimizations are
applicable to most standard data structures and computation models."  This
benchmark runs ABR on three structures — the evaluated adjacency list, the
degree-aware hash, and a GraphOne-style edge log — and verifies that on
every one of them ABR keeps the friendly dataset's reordering win while
recovering the adverse dataset from the always-RO penalty.
"""

from _harness import emit, num_batches
from repro.analysis.report import render_table
from repro.datasets.profiles import get_dataset
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.degree_aware_hash import DegreeAwareHashGraph
from repro.graph.edge_log import EdgeLogGraph
from repro.update.engine import UpdateEngine, UpdatePolicy

STRUCTURES = {
    "adjacency-list": AdjacencyListGraph,
    "degree-aware-hash": DegreeAwareHashGraph,
    "edge-log": EdgeLogGraph,
}
CELLS = (("wiki", 10_000, "friendly"), ("fb", 10_000, "adverse"))


def _run(structure_cls, name, batch_size, policy):
    profile = get_dataset(name)
    nb = num_batches(profile, batch_size)
    graph = structure_cls(profile.num_vertices)
    engine = UpdateEngine(graph, policy)
    return sum(
        engine.ingest(b).time for b in profile.generator().batches(batch_size, nb)
    )


def run_structures():
    rows = []
    for structure_name, structure_cls in STRUCTURES.items():
        for dataset, batch_size, category in CELLS:
            baseline = _run(structure_cls, dataset, batch_size, UpdatePolicy.BASELINE)
            always_ro = _run(structure_cls, dataset, batch_size, UpdatePolicy.ALWAYS_RO)
            abr = _run(structure_cls, dataset, batch_size, UpdatePolicy.ABR)
            rows.append(
                [
                    structure_name,
                    f"{dataset}-{batch_size}",
                    category,
                    baseline / always_ro,
                    baseline / abr,
                ]
            )
    return rows


def test_misc_structures_abr(benchmark):
    rows = benchmark.pedantic(run_structures, rounds=1, iterations=1)
    emit(
        "misc_structures_abr",
        render_table(
            ["structure", "cell", "category", "always-RO speedup", "ABR speedup"],
            rows,
            title="ABR across data structures (update speedup over each "
            "structure's own baseline)",
        ),
    )
    for structure, cell, category, ro, abr in rows:
        if category == "friendly":
            # DAH's O(1) probes leave reordering less to win, so its gain is
            # structurally smaller than the scan-based structures'.
            floor = 1.1 if structure == "degree-aware-hash" else 1.2
            assert ro > floor, (structure, cell)
            assert abr > 0.9 * ro, (structure, cell)  # ABR keeps the win
        else:
            assert ro < 1.0, (structure, cell)
            assert abr > ro, (structure, cell)        # ABR recovers
