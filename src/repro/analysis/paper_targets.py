"""Machine-readable paper-reported values and reproduction bands.

Each target names one scalar the paper reports, the value, and the band our
scaled reproduction is expected to land in (see EXPERIMENTS.md for the
rationale behind each band).  Benchmarks record their measured summaries as
JSON (``results/<name>.json``); :func:`fidelity_report` joins the two into
the paper-vs-measured table, and ``repro fidelity`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from .experiments import ExperimentStore

__all__ = ["PaperTarget", "PAPER_TARGETS", "fidelity_report"]


@dataclass(frozen=True)
class PaperTarget:
    """One paper-reported scalar and its acceptance band.

    Attributes:
        experiment: results/<experiment>.json record holding the measurement.
        key: dotted path of the measured scalar inside the record.
        description: what the number is.
        paper_value: the value the paper reports.
        low / high: acceptance band for our scaled reproduction.
    """

    experiment: str
    key: str
    description: str
    paper_value: float
    low: float
    high: float

    def within(self, measured: float) -> bool:
        return self.low <= measured <= self.high


#: The headline scalars of every evaluation artifact.
PAPER_TARGETS: tuple[PaperTarget, ...] = (
    PaperTarget("fig01_headline", "wiki_ro",
                "Fig.1(a) wiki RO update speedup @100K", 2.70, 2.0, 4.5),
    PaperTarget("fig01_headline", "uk_ro",
                "Fig.1(b) uk RO update speedup @100K", 0.69, 0.4, 1.0),
    PaperTarget("fig01_headline", "uk_abr",
                "Fig.1(c) uk input-aware SW @100K", 0.92, 0.7, 1.05),
    PaperTarget("fig01_headline", "uk_hw",
                "Fig.1(d) uk input-aware SW+HW @100K", 1.60, 1.0, 2.5),
    PaperTarget("fig06_update_time_share", "baseline_share",
                "Fig.6 geomean baseline update share", 0.19, 0.05, 0.60),
    PaperTarget("fig06_update_time_share", "ro_minus_baseline",
                "Fig.6 RO share minus baseline share (>0)", 0.14, 0.0, 0.5),
    PaperTarget("fig13_abr_usc", "adverse_abr",
                "Fig.13 adverse-update ABR geomean", 0.87, 0.8, 1.0),
    PaperTarget("fig13_abr_usc", "adverse_perfect",
                "Fig.13 adverse-update perfect-ABR geomean", 1.02, 0.9, 1.05),
    PaperTarget("fig13_abr_usc", "friendly_abr",
                "Fig.13 friendly-update ABR geomean", 1.85, 1.5, 5.0),
    PaperTarget("fig13_abr_usc", "friendly_abr_usc",
                "Fig.13 friendly-update ABR+USC geomean", 4.55, 3.0, 40.0),
    PaperTarget("table3_hau", "geomean",
                "Table 3 HAU update-speedup geomean (applied cells)", 2.6, 1.8, 4.5),
    PaperTarget("fig14_oca", "average",
                "Fig.14 OCA compute-speedup average", 1.24, 1.05, 1.6),
    PaperTarget("fig16_overheads", "reordered",
                "Fig.16(a) reordered active-batch factor", 0.90, 0.80, 1.0),
    PaperTarget("fig16_overheads", "nonreordered",
                "Fig.16(a) non-reordered active-batch factor", 0.54, 0.35, 0.80),
    PaperTarget("fig18_abr_parameters", "paper_point_accuracy",
                "Fig.18(a) accuracy at (lambda=256, TH=465)", 0.97, 0.90, 1.0),
    PaperTarget("fig19_hau_work_distribution", "tasks_max_over_min",
                "Fig.19 per-core task imbalance (max/min)", 1.03, 1.0, 1.15),
    PaperTarget("fig20_hau_noc", "local_fraction",
                "Fig.20 local-tile cacheline fraction", 0.985, 0.96, 1.0),
    PaperTarget("fig20_hau_noc", "max_latency_increase",
                "Fig.20 max packet-latency increase (%)", 10.0, 0.0, 10.0),
)


def fidelity_report(store: ExperimentStore) -> list[dict]:
    """Join recorded measurements with the paper targets.

    Returns one row per target: description, paper value, measured value
    (None if the experiment has not been recorded), and status
    (``"ok"`` / ``"out-of-band"`` / ``"missing"``).
    """
    rows = []
    for target in PAPER_TARGETS:
        measured = None
        status = "missing"
        try:
            record = store.load(target.experiment)
            value = record
            for part in target.key.split("."):
                value = value[part]
            measured = float(value)
            status = "ok" if target.within(measured) else "out-of-band"
        except (AnalysisError, KeyError, TypeError, ValueError):
            pass
        rows.append(
            {
                "description": target.description,
                "paper": target.paper_value,
                "measured": measured,
                "band": (target.low, target.high),
                "status": status,
            }
        )
    return rows
