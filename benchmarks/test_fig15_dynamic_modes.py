"""Fig. 15: input-aware SW/HW dynamic execution vs SW-only and HW-only.

Paper left: enforcing RO+USC on reorder-adverse cells performs almost as
poorly as plain RO, while ABR+USC recovers and ABR+USC+HAU wins.  Paper
right: enforcing HAU on reorder-friendly cells degrades performance below
the software RO+USC mode.
"""

from _harness import emit, geomean, num_batches
from repro.analysis.report import render_kv, render_table
from repro.datasets.profiles import get_dataset
from repro.exec_model.machine import SIMULATED_MACHINE
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.simulator import HAUSimulator
from repro.update.engine import UpdateEngine, UpdatePolicy

ADVERSE_CELLS = [("lj", 10_000), ("patents", 10_000), ("fb", 10_000), ("flickr", 10_000)]
#: The reorder-friendly cells Table 3 leaves in software mode, measured on a
#: mature graph (8 batches) like the paper's mid-stream snapshots.
FRIENDLY_CELLS = [("topcats", 100_000), ("berkstan", 100_000),
                  ("superuser", 100_000), ("wiki", 100_000)]
FRIENDLY_NB = 8


def _update_total(name, batch_size, policy, hau=None, nb=None):
    profile = get_dataset(name)
    nb = nb if nb is not None else num_batches(profile, batch_size)
    graph = AdjacencyListGraph(profile.num_vertices)
    engine = UpdateEngine(graph, policy, machine=SIMULATED_MACHINE, hau=hau)
    return sum(
        engine.ingest(b).time for b in profile.generator().batches(batch_size, nb)
    )


def run_fig15():
    left = []
    for name, size in ADVERSE_CELLS:
        baseline = _update_total(name, size, UpdatePolicy.BASELINE)
        left.append(
            {
                "cell": f"{name}-{size}",
                "ro": baseline / _update_total(name, size, UpdatePolicy.ALWAYS_RO),
                "ro_usc": baseline
                / _update_total(name, size, UpdatePolicy.ALWAYS_RO_USC),
                "abr_usc": baseline / _update_total(name, size, UpdatePolicy.ABR_USC),
                "dynamic": baseline
                / _update_total(
                    name, size, UpdatePolicy.ABR_USC_HAU, hau=HAUSimulator()
                ),
            }
        )
    right = []
    for name, size in FRIENDLY_CELLS:
        sw = _update_total(name, size, UpdatePolicy.ABR_USC, nb=FRIENDLY_NB)
        hw = _update_total(
            name, size, UpdatePolicy.ALWAYS_HAU, hau=HAUSimulator(), nb=FRIENDLY_NB
        )
        right.append({"cell": f"{name}-{size}", "enforced_hau_vs_sw": sw / hw})
    return left, right


def test_fig15_dynamic_modes(benchmark):
    left, right = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    left_rows = [
        [e["cell"], e["ro"], e["ro_usc"], e["abr_usc"], e["dynamic"]] for e in left
    ]
    right_rows = [[e["cell"], e["enforced_hau_vs_sw"]] for e in right]
    emit(
        "fig15_dynamic_modes",
        render_table(
            ["adverse cell", "RO", "RO+USC (enforced SW)", "ABR+USC",
             "ABR+USC+HAU (dynamic)"],
            left_rows,
            title="Fig. 15 left: update speedup over baseline on reorder-adverse cells",
        )
        + "\n\n"
        + render_table(
            ["friendly cell", "enforced HAU speedup vs ABR+USC"],
            right_rows,
            title="Fig. 15 right: enforcing HAU on reorder-friendly cells",
        ),
    )
    for e in left:
        # Enforced SW optimizations perform almost as poorly as plain RO...
        assert e["ro_usc"] < 1.0
        assert abs(e["ro_usc"] - e["ro"]) < 0.35
        # ...while ABR recovers and dynamic SW/HW wins outright.
        assert e["abr_usc"] > e["ro_usc"]
        assert e["dynamic"] > e["abr_usc"]
        assert e["dynamic"] > 1.0
    for e in right:
        # Enforced HAU degrades friendly cells (< 1x vs the SW mode).
        assert e["enforced_hau_vs_sw"] < 1.0
