"""Reference (pre-vectorization) adjacency-list implementation.

This is the original per-vertex-loop batch ingest kept verbatim as the
semantics oracle: :class:`AdjacencyListGraph`'s vectorized
``_apply_direction`` must produce bit-identical
:class:`~repro.graph.base.DirectionStats` and adjacency state
(``tests/test_perf_parity.py``), and ``benchmarks/test_perf_substrate.py``
times this class as the wall-clock baseline the vectorized ingest is
measured against.
"""

from __future__ import annotations

import numpy as np

from .base import DirectionStats
from .adjacency_list import AdjacencyListGraph

__all__ = ["ReferenceAdjacencyListGraph"]


class ReferenceAdjacencyListGraph(AdjacencyListGraph):
    """Adjacency-list graph with the original per-vertex ingest loop.

    Functionally interchangeable with :class:`AdjacencyListGraph`; only the
    (slower) ingest implementation differs.
    """

    def _apply_direction(
        self,
        adjacency: dict[int, dict[int, float]],
        degrees: np.ndarray,
        journal: list,
        stale: set[int],
        keys: np.ndarray,
        values: np.ndarray,
        weights: np.ndarray,
    ) -> DirectionStats:
        """The seed implementation: one Python loop over unique vertices."""
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        values_list = values[order].tolist()
        weights_list = weights[order].tolist()
        verts, starts, counts = np.unique(
            keys_sorted, return_index=True, return_counts=True
        )
        length_before = np.empty(len(verts), dtype=np.int64)
        new_edges = np.empty(len(verts), dtype=np.int64)
        starts_list = starts.tolist()
        counts_list = counts.tolist()
        for i, v in enumerate(verts.tolist()):
            a = starts_list[i]
            c = counts_list[i]
            entry = adjacency.get(v)
            if entry is None:
                entry = {}
                adjacency[v] = entry
                self._touched.add(v)
                self._touched_sorted = None
            before = len(entry)
            entry.update(zip(values_list[a : a + c], weights_list[a : a + c]))
            length_before[i] = before
            new_edges[i] = len(entry) - before
        degrees[verts] += new_edges
        if self._track:
            # The reference loop does not journal appends; marking every
            # merged vertex stale keeps delta snapshots correct (they fall
            # back to re-reading those vertices, or to a full rebuild).
            stale.update(verts.tolist())
        return DirectionStats(
            vertices=verts,
            batch_degree=counts,
            length_before=length_before,
            new_edges=new_edges,
        )

