"""Cost parameter validation and derived values."""

import dataclasses

import pytest

from repro.costs import ComputeCostParameters, CostParameters
from repro.errors import ConfigurationError


def test_default_costs_are_valid():
    costs = CostParameters()
    assert costs.scan_warm == pytest.approx(costs.scan_cold * costs.scan_warm_factor)
    assert costs.scan_warm < costs.scan_cold


def test_negative_cost_rejected():
    with pytest.raises(ConfigurationError):
        CostParameters(lock_base=-1.0)


def test_zero_cost_rejected():
    with pytest.raises(ConfigurationError):
        CostParameters(dispatch=0.0)


def test_parallel_efficiency_bounds():
    with pytest.raises(ConfigurationError):
        CostParameters(parallel_efficiency=1.5)
    # Exactly 1.0 is legal (perfect scaling).
    assert CostParameters(parallel_efficiency=1.0).parallel_efficiency == 1.0


def test_warm_factor_bounds():
    with pytest.raises(ConfigurationError):
        CostParameters(scan_warm_factor=1.2)


def test_costs_frozen():
    costs = CostParameters()
    with pytest.raises(dataclasses.FrozenInstanceError):
        costs.lock_base = 5.0


def test_compute_costs_validation():
    with pytest.raises(ConfigurationError):
        ComputeCostParameters(per_edge=-2.0)
    with pytest.raises(ConfigurationError):
        ComputeCostParameters(parallel_efficiency=0.0)


def test_costs_can_be_overridden():
    costs = CostParameters(lock_base=99.0)
    assert costs.lock_base == 99.0
    # Other fields keep their defaults.
    assert costs.dispatch == CostParameters().dispatch
