"""Calibration tests: the model must reproduce the paper's categories.

These run real (scaled) dataset streams through the cost model and assert the
qualitative results of Section 4.1/6.2: which (dataset, batch size) cells are
reorder-friendly, that CAD with the paper's (lambda=256, TH=465) separates
them, and that the headline speedup bands hold.  They are the library's
ground-truth contract — see EXPERIMENTS.md.
"""

import pytest

from repro.analysis.characterization import characterize_cell, geomean
from repro.datasets.profiles import DATASETS, get_dataset
from repro.update.abr import ABRConfig

# Small batch counts keep this file fast while still spanning the regimes.
CAPS = {100: 10, 1_000: 10, 10_000: 8, 100_000: 5}

ADVERSE = ["lj", "patents", "fb", "flickr", "amazon", "stack", "friendster", "uk"]
FRIENDLY_AT_100K = ["topcats", "talk", "berkstan", "yt", "superuser", "wiki"]
FRIENDLY_AT_10K = ["talk", "yt", "wiki"]


def _cell(name, batch_size, lam=256):
    profile = get_dataset(name)
    num = profile.num_batches(batch_size, cap=CAPS[batch_size])
    return characterize_cell(profile, batch_size, num, cad_lambda=lam)


@pytest.mark.parametrize("name", ADVERSE)
def test_adverse_datasets_degrade_under_ro_at_100k(name):
    cell = _cell(name, 100_000)
    assert cell.ro_speedup < 1.0, f"{name} should be reorder-adverse at 100K"


@pytest.mark.parametrize("name", ADVERSE)
def test_adverse_datasets_degrade_under_ro_at_1k(name):
    assert _cell(name, 1_000).ro_speedup < 1.0


@pytest.mark.parametrize("name", FRIENDLY_AT_100K)
def test_friendly_datasets_gain_under_ro_at_100k(name):
    cell = _cell(name, 100_000)
    assert cell.ro_speedup > 1.3, f"{name} should be reorder-friendly at 100K"
    # USC multiplies the reordered win (Fig. 13).
    assert cell.usc_speedup > cell.ro_speedup


@pytest.mark.parametrize("name", FRIENDLY_AT_10K)
def test_talk_yt_wiki_friendly_at_10k(name):
    assert _cell(name, 10_000).ro_speedup > 1.3


@pytest.mark.parametrize("name", FRIENDLY_AT_100K)
def test_all_datasets_adverse_at_tiny_batches(name):
    # Section 4.1: "small batches suffer from performance degradation".
    assert _cell(name, 100).ro_speedup < 1.0


def test_cad_rule_separates_categories_at_paper_parameters():
    """CAD >= 465 at lambda=256 iff the cell is reorder-friendly (100K)."""
    config = ABRConfig()  # n=10, lambda=256, TH=465
    for name in FRIENDLY_AT_100K:
        cell = _cell(name, 100_000, lam=config.lam)
        assert max(cell.per_batch_cads) >= config.threshold, name
    for name in ADVERSE:
        cell = _cell(name, 100_000, lam=config.lam)
        assert max(cell.per_batch_cads) < config.threshold, name


def test_cad_decision_accuracy_high_at_paper_parameters():
    """Fig. 18: the paper's (256, 465) achieves ~97% decision accuracy."""
    correct = 0
    total = 0
    for name in DATASETS:
        for batch_size in (1_000, 10_000, 100_000):
            cell = _cell(name, batch_size)
            for truth, cad in zip(cell.per_batch_ro_beneficial, cell.per_batch_cads):
                correct += (cad >= 465.0) == truth
                total += 1
    assert correct / total > 0.9


def test_friendly_ro_speedups_in_paper_band():
    """Fig. 3: friendly cells reach up to ~3x; none exceeds ~4x."""
    speedups = [_cell(name, 100_000).ro_speedup for name in FRIENDLY_AT_100K]
    assert max(speedups) < 4.5
    assert geomean(speedups) > 1.8  # paper geomean for friendly update: 1.92x


def test_adverse_ro_speedups_in_paper_band():
    """Fig. 3/13: adverse cells land near the paper's 0.37-0.8x range."""
    speedups = [
        _cell(name, size).ro_speedup
        for name in ADVERSE
        for size in (1_000, 100_000)
    ]
    assert all(0.3 < s < 1.0 for s in speedups)


def test_usc_headline_band():
    """Fig. 13: ABR+USC max ~23x (wiki-100K); ours must stay in the tens."""
    wiki = _cell("wiki", 100_000)
    assert 8.0 < wiki.usc_speedup < 80.0


def test_max_degree_correlates_with_friendliness():
    """Fig. 3's right axis: friendly cells show far higher max batch degree."""
    friendly_degrees = [_cell(n, 100_000).max_degree for n in FRIENDLY_AT_100K]
    adverse_degrees = [_cell(n, 100_000).max_degree for n in ADVERSE]
    assert min(friendly_degrees) > 5 * max(adverse_degrees)
