"""SSSP: static Dijkstra and incremental insert/delete maintenance."""

import math

import networkx as nx
import numpy as np
import pytest

from conftest import make_batch
from repro.compute.sssp import IncrementalSSSP, StaticSSSP
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.snapshot import take_snapshot

INF = math.inf


def _nx_distances(graph, source):
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for u in graph.vertices_with_edges():
        for v, w in graph.out_neighbors(u).items():
            g.add_edge(u, v, weight=w)
    lengths = nx.single_source_dijkstra_path_length(g, source)
    return [lengths.get(v, INF) for v in range(graph.num_vertices)]


def test_source_validation():
    with pytest.raises(ConfigurationError):
        StaticSSSP(-1)
    with pytest.raises(ConfigurationError):
        IncrementalSSSP(AdjacencyListGraph(4), source=9)


def test_static_matches_networkx(small_generator):
    graph = AdjacencyListGraph(500)
    for batch in small_generator.batches(1_000, 2):
        graph.apply_batch(batch)
    source = int(small_generator.generate_batch(0, 10).src[0])
    dist, counters = StaticSSSP(source).run(take_snapshot(graph))
    assert dist == pytest.approx(_nx_distances(graph, source))
    assert counters.touched_vertices > 0


def test_static_disconnected_vertices_infinite():
    graph = AdjacencyListGraph(5)
    graph.apply_batch(make_batch([0], [1], [2.0]))
    dist, __ = StaticSSSP(0).run(take_snapshot(graph))
    assert dist[0] == 0.0 and dist[1] == 2.0
    assert dist[2] == INF


def test_incremental_insertions_match_static(small_generator):
    graph = AdjacencyListGraph(500)
    source = int(small_generator.generate_batch(0, 10).src[0])
    incremental = IncrementalSSSP(graph, source)
    for batch in small_generator.batches(500, 4):
        graph.apply_batch(batch)
        incremental.on_batch(batch)
        static, __ = StaticSSSP(source).run(take_snapshot(graph))
        assert incremental.dist == pytest.approx(static)


def test_incremental_shortcut_edge_lowers_distance():
    graph = AdjacencyListGraph(4)
    sssp = IncrementalSSSP(graph, source=0)
    b0 = make_batch([0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0])
    graph.apply_batch(b0)
    sssp.on_batch(b0)
    assert sssp.dist[3] == pytest.approx(3.0)
    b1 = make_batch([0], [3], [1.5], batch_id=1)
    graph.apply_batch(b1)
    sssp.on_batch(b1)
    assert sssp.dist[3] == pytest.approx(1.5)


def test_incremental_deletion_repair_exact():
    graph = AdjacencyListGraph(5)
    sssp = IncrementalSSSP(graph, source=0)
    # 0->1 (1), 1->2 (1), 0->2 (5): shortest to 2 via 1 is 2.0.
    b0 = make_batch([0, 1, 0], [1, 2, 2], [1.0, 1.0, 5.0])
    graph.apply_batch(b0)
    sssp.on_batch(b0)
    assert sssp.dist[2] == pytest.approx(2.0)
    # Delete 1->2: distance must rise to 5 via the direct edge.
    b1 = make_batch([1], [2], [1.0], batch_id=1, is_delete=[True])
    graph.apply_batch(b1)
    sssp.on_batch(b1)
    assert sssp.dist[2] == pytest.approx(5.0)


def test_incremental_deletion_disconnects():
    graph = AdjacencyListGraph(3)
    sssp = IncrementalSSSP(graph, source=0)
    b0 = make_batch([0, 1], [1, 2], [1.0, 1.0])
    graph.apply_batch(b0)
    sssp.on_batch(b0)
    b1 = make_batch([0], [1], [1.0], batch_id=1, is_delete=[True])
    graph.apply_batch(b1)
    sssp.on_batch(b1)
    assert sssp.dist[1] == INF
    assert sssp.dist[2] == INF
    assert sssp.dist[0] == 0.0


def test_incremental_deletion_closure_repairs_downstream_chain():
    graph = AdjacencyListGraph(6)
    sssp = IncrementalSSSP(graph, source=0)
    # Chain 0->1->2->3->4 plus alternate 0->5->3 costing more.
    b0 = make_batch([0, 1, 2, 3, 0, 5], [1, 2, 3, 4, 5, 3], [1, 1, 1, 1, 4, 4])
    graph.apply_batch(b0)
    sssp.on_batch(b0)
    assert sssp.dist[4] == pytest.approx(4.0)
    # Deleting 1->2 reroutes 3 and 4 through 0->5->3.
    b1 = make_batch([1], [2], [1.0], batch_id=1, is_delete=[True])
    graph.apply_batch(b1)
    sssp.on_batch(b1)
    assert sssp.dist[3] == pytest.approx(8.0)
    assert sssp.dist[4] == pytest.approx(9.0)
    assert sssp.dist[2] == INF


def test_incremental_mixed_batches_with_deletions_match_static():
    """Randomized insert+delete stream cross-checked against recompute."""
    rng = np.random.default_rng(5)
    graph = AdjacencyListGraph(60)
    sssp = IncrementalSSSP(graph, source=0)
    for batch_id in range(6):
        size = 40
        src = rng.integers(0, 60, size)
        dst = (src + rng.integers(1, 59, size)) % 60
        weight = ((src * 2654435761) ^ (dst * 40503)) % 16 + 1
        is_delete = rng.random(size) < 0.25 if batch_id else None
        batch = make_batch(
            src.tolist(), dst.tolist(), weight.astype(float).tolist(),
            batch_id=batch_id, is_delete=is_delete,
        )
        graph.apply_batch(batch)
        sssp.on_batch(batch)
        static, __ = StaticSSSP(0).run(take_snapshot(graph))
        assert sssp.dist == pytest.approx(static)


def test_aggregated_on_batches_matches_sequential(small_generator):
    graph_a = AdjacencyListGraph(500)
    graph_b = AdjacencyListGraph(500)
    source = int(small_generator.generate_batch(0, 10).src[0])
    seq = IncrementalSSSP(graph_a, source)
    agg = IncrementalSSSP(graph_b, source)
    batches = [small_generator.generate_batch(i, 400) for i in range(2)]
    for batch in batches:
        graph_a.apply_batch(batch)
        seq.on_batch(batch)
        graph_b.apply_batch(batch)
    agg.on_batches(batches)
    assert agg.dist == pytest.approx(seq.dist)
