"""Extension experiment: OCA's latency/throughput trade-off, quantified.

Section 5 argues OCA should only trade granularity at larger batch sizes;
this experiment measures the trade explicitly: compute-time savings vs the
p95/max *reaction latency* of deferred batches, across batch sizes.
"""

from _harness import emit, run_pipeline
from repro.analysis.report import render_table
from repro.pipeline.latency import latency_stats

CELLS = (("yt", 10_000, 8), ("yt", 100_000, 6), ("wiki", 100_000, 6))


def _run(dataset, batch_size, nb, use_oca):
    return run_pipeline(
        dataset, batch_size, nb,
        algorithm="pr", mode="abr_usc", use_oca=use_oca, pr_tolerance=1e-5,
    )


def run_tradeoff():
    rows = []
    for name, batch_size, nb in CELLS:
        plain = _run(name, batch_size, nb, use_oca=False)
        oca = _run(name, batch_size, nb, use_oca=True)
        plain_stats = latency_stats(plain)
        oca_stats = latency_stats(oca)
        rows.append(
            [
                f"{name}-{batch_size}",
                plain.total_compute_time / oca.total_compute_time,
                oca_stats.deferred_batches,
                oca_stats.p95 / plain_stats.p95,
                oca_stats.maximum / plain_stats.maximum,
            ]
        )
    return rows


def test_ext_latency_tradeoff(benchmark):
    rows = benchmark.pedantic(run_tradeoff, rounds=1, iterations=1)
    emit(
        "ext_latency_tradeoff",
        render_table(
            ["cell", "compute speedup", "deferred", "p95 latency ratio",
             "max latency ratio"],
            rows,
            title="Extension: OCA throughput gain vs reaction-latency cost",
        ),
    )
    by_cell = {r[0]: r for r in rows}
    # Where OCA deactivates (yt-10K: overlap below threshold) latency is
    # untouched.
    assert by_cell["yt-10000"][2] == 0
    assert by_cell["yt-10000"][4] == 1.0
    # Where it activates, throughput improves and worst-case latency rises —
    # the trade Section 5 restricts to larger batch sizes.
    for cell in ("yt-100000", "wiki-100000"):
        assert by_cell[cell][1] > 1.05
        assert by_cell[cell][4] > 1.0
