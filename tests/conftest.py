"""Shared fixtures: small, fast dataset profiles and graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import SideProfile, StreamGenerator
from repro.datasets.profiles import DatasetProfile
from repro.datasets.stream import Batch
from repro.graph.adjacency_list import AdjacencyListGraph


def make_batch(src, dst, weight=None, batch_id=0, is_delete=None):
    """Build a batch from plain lists."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if weight is None:
        weight = np.ones(len(src), dtype=np.float64)
    else:
        weight = np.asarray(weight, dtype=np.float64)
    if is_delete is not None:
        is_delete = np.asarray(is_delete, dtype=bool)
    return Batch(batch_id=batch_id, src=src, dst=dst, weight=weight, is_delete=is_delete)


@pytest.fixture
def tiny_graph():
    """A 32-vertex empty adjacency-list graph."""
    return AdjacencyListGraph(32)


@pytest.fixture
def skewed_profile():
    """A small reorder-friendly profile (one dominant hub)."""
    return DatasetProfile(
        name="mini-skew",
        full_name="Mini Skewed",
        kind="shuffled",
        paper_vertices=1000,
        paper_edges=10000,
        num_vertices=2_000,
        stream_edges=50_000,
        src_profile=SideProfile(hub_mass=0.1, hub_count=50, hub_alpha=0.3, tail_size=1_900),
        dst_profile=SideProfile(hub_mass=0.4, hub_count=20, hub_alpha=1.5, tail_size=1_900),
        friendly_sizes=frozenset({5_000}),
    )


@pytest.fixture
def flat_profile():
    """A small reorder-adverse profile (near-uniform degrees)."""
    return DatasetProfile(
        name="mini-flat",
        full_name="Mini Flat",
        kind="shuffled",
        paper_vertices=1000,
        paper_edges=10000,
        num_vertices=4_000,
        stream_edges=50_000,
        src_profile=SideProfile(hub_mass=0.0, hub_count=0, hub_alpha=0.0, tail_size=4_000),
        dst_profile=SideProfile(hub_mass=0.0, hub_count=0, hub_alpha=0.0, tail_size=4_000),
    )


@pytest.fixture
def small_generator():
    """A deterministic generator over 500 vertices."""
    return StreamGenerator(
        src_profile=SideProfile(hub_mass=0.2, hub_count=10, hub_alpha=1.0, tail_size=490),
        dst_profile=SideProfile(hub_mass=0.3, hub_count=10, hub_alpha=1.2, tail_size=490),
        num_vertices=500,
        seed=13,
    )
