"""Fig. 1: the headline wiki/uk example at batch size 100K.

Paper: input-oblivious RO speeds wiki up 2.7x but degrades uk to 0.69x;
input-aware software recovers uk to 0.92x and adding HAU lifts it to 1.6x.
"""

from _harness import CellRun, emit, num_batches, record
from repro.analysis.report import render_table
from repro.datasets.profiles import get_dataset
from repro.exec_model.machine import SIMULATED_MACHINE
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.simulator import HAUSimulator
from repro.update.engine import UpdateEngine, UpdatePolicy


def run_fig01():
    wiki = CellRun(get_dataset("wiki"), 100_000)
    uk = CellRun(get_dataset("uk"), 100_000)
    # (d): uk with input-aware SW + HW, on the simulated machine (both sides).
    uk_profile = get_dataset("uk")
    nb = num_batches(uk_profile, 100_000)
    graph_sw = AdjacencyListGraph(uk_profile.num_vertices)
    sw = UpdateEngine(graph_sw, UpdatePolicy.BASELINE, machine=SIMULATED_MACHINE)
    sw_total = sum(
        sw.ingest(b).time for b in uk_profile.generator().batches(100_000, nb)
    )
    graph_hw = AdjacencyListGraph(uk_profile.num_vertices)
    hw = UpdateEngine(
        graph_hw, UpdatePolicy.ABR_USC_HAU, machine=SIMULATED_MACHINE,
        hau=HAUSimulator(),
    )
    hw_total = sum(
        hw.ingest(b).time for b in uk_profile.generator().batches(100_000, nb)
    )
    return {
        "wiki_ro": wiki.baseline_update / wiki.ro_update,
        "uk_ro": uk.baseline_update / uk.ro_update,
        "uk_abr": uk.baseline_update / uk.abr_update(),
        "uk_hw": sw_total / hw_total,
    }


def test_fig01_headline(benchmark):
    result = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    record("fig01_headline", result)
    emit(
        "fig01_headline",
        render_table(
            ["bar", "paper", "measured"],
            [
                ["(a) wiki input-oblivious RO", "2.70x", result["wiki_ro"]],
                ["(b) uk input-oblivious RO", "0.69x", result["uk_ro"]],
                ["(c) uk input-aware SW (ABR)", "0.92x", result["uk_abr"]],
                ["(d) uk input-aware SW+HW", "1.60x", result["uk_hw"]],
            ],
            title="Fig. 1: update speedups at batch size 100K",
        ),
    )
    assert result["wiki_ro"] > 2.0              # big win on wiki
    assert result["uk_ro"] < 1.0                # degradation on uk
    assert result["uk_abr"] > result["uk_ro"]   # ABR recovers
    assert result["uk_hw"] > 1.0                # HW lifts past baseline
