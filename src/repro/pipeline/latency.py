"""Reaction-latency statistics over pipeline runs.

The paper's Section 5 frames granularity as a latency trade-off
("extremely latency-sensitive applications ... utilize a fine-grained
computation granularity ... for faster reaction to graph modifications").
These helpers quantify that: a batch's *reaction latency* is the time from
its arrival until its modifications are reflected in analytics results —
update time plus compute time, plus, for OCA-deferred batches, the entire
following batch's update and (aggregated) compute round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .metrics import RunMetrics

__all__ = ["LatencyStats", "reaction_latencies", "latency_stats"]


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution summary of one run (time units).

    Attributes:
        p50 / p95 / maximum / mean: reaction-latency statistics.
        deferred_batches: batches whose analytics were postponed by OCA.
    """

    p50: float
    p95: float
    maximum: float
    mean: float
    deferred_batches: int


def reaction_latencies(metrics: RunMetrics) -> list[float]:
    """Per-batch reaction latency (see module docstring).

    A deferred batch's modifications only become visible after the *next*
    batch's aggregated round, so its latency also includes that batch's
    update and compute times.
    """
    latencies: list[float] = []
    batches = metrics.batches
    for index, batch in enumerate(batches):
        latency = batch.update_time + batch.compute_time
        if batch.deferred:
            cursor = index + 1
            while cursor < len(batches):
                follower = batches[cursor]
                latency += follower.update_time + follower.compute_time
                if not follower.deferred:
                    break
                cursor += 1
        latencies.append(latency)
    return latencies


def latency_stats(metrics: RunMetrics) -> LatencyStats:
    """Summarize a run's reaction-latency distribution."""
    latencies = reaction_latencies(metrics)
    if not latencies:
        raise AnalysisError("run has no batches")
    array = np.asarray(latencies)
    return LatencyStats(
        p50=float(np.percentile(array, 50)),
        p95=float(np.percentile(array, 95)),
        maximum=float(array.max()),
        mean=float(array.mean()),
        deferred_batches=sum(b.deferred for b in metrics.batches),
    )
