"""Hardware-accelerated update (HAU) simulator — Section 4.4."""

from .cache import AccessProfile, TileCache
from .config import DEFAULT_HAU_CONFIG, HAUConfig
from .controller import ClusterCost, process_cluster, scan_lines_for_cluster
from .fifo import FIFOModel
from .mshr import MSHRModel
from .noc import LinkLoads, MeshNoC
from .simulator import HAUBatchResult, HAUSimulator
from .tasks import VertexTaskCluster, clusters_from_stats, consumer_core, producer_core

__all__ = [
    "AccessProfile",
    "TileCache",
    "DEFAULT_HAU_CONFIG",
    "HAUConfig",
    "ClusterCost",
    "process_cluster",
    "scan_lines_for_cluster",
    "FIFOModel",
    "MSHRModel",
    "LinkLoads",
    "MeshNoC",
    "HAUBatchResult",
    "HAUSimulator",
    "VertexTaskCluster",
    "clusters_from_stats",
    "consumer_core",
    "producer_core",
]
