"""Fig. 4: input batch degree distributions of lj vs wiki at 100K.

Paper: lj's representative batch is low-degree (top ten degrees 7-30, max
30); wiki's is high-degree (top ten 401-1881, max 1881).  Our scaled wiki
profile is calibrated hotter (max ~5-8K) because CAD at lambda=256 must stay
above TH=465 down to 10K batches (EXPERIMENTS.md notes the deviation); the
*separation* between the two distributions is the reproduced property.
"""

import numpy as np

from _harness import emit
from repro.analysis.report import render_series, render_table
from repro.datasets.profiles import get_dataset
from repro.graph.stats import degree_histogram, top_degrees


def run_fig04():
    out = {}
    for name in ("lj", "wiki"):
        batch = get_dataset(name).generator().generate_batch(3, 100_000)
        degrees, counts = degree_histogram(batch, side="in")
        out[name] = {
            "histogram": (degrees, counts),
            "top10": top_degrees(batch, 10, side="in"),
        }
    return out


def test_fig04_degree_distribution(benchmark):
    result = benchmark.pedantic(run_fig04, rounds=1, iterations=1)
    blocks = []
    for name in ("lj", "wiki"):
        degrees, counts = result[name]["histogram"]
        # Log-log bins like the figure: powers of two.
        bins = {}
        for d, c in zip(degrees.tolist(), counts.tolist()):
            key = 1 << int(np.log2(d))
            bins[key] = bins.get(key, 0) + c
        blocks.append(
            render_series(
                f"{name}-100K N(k) by power-of-two degree bin",
                list(bins), [float(v) for v in bins.values()], y_format="{:.0f}",
            )
        )
        blocks.append(
            f"{name}-100K top ten degrees: {result[name]['top10'].tolist()}"
        )
    emit("fig04_degree_distribution", "\n".join(blocks))
    lj_top = result["lj"]["top10"]
    wiki_top = result["wiki"]["top10"]
    assert lj_top[0] <= 60                      # low-degree batch (paper: 30)
    assert wiki_top[0] >= 1_000                 # high-degree batch
    assert wiki_top[-1] > lj_top[0]             # distributions fully separate
