"""``repro serve``: admission control, micro-batching, the live server,
offline-replay parity, queries, and graceful drain.

The units (token bucket, admission gates, batcher cuts) run with injected
clocks; the end-to-end tests run a real :class:`ServeServer` on its own
event-loop thread and speak the wire protocol through
:class:`ServeClient`.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.datasets.stream import Batch
from repro.errors import ConfigurationError
from repro.pipeline.config import RunConfig
from repro.serve import (
    AdmissionController,
    MicroBatcher,
    ServeClient,
    ServeSettings,
    TokenBucket,
    start_server_thread,
)


# -- token bucket --------------------------------------------------------------

def test_token_bucket_rate_burst_and_refill():
    bucket = TokenBucket(rate=100.0, burst=50.0)
    assert bucket.delay(50, now=0.0) == 0.0
    bucket.take(50, now=0.0)
    assert bucket.delay(10, now=0.0) == pytest.approx(0.1)
    assert bucket.delay(10, now=0.2) == 0.0  # refilled 20 tokens
    unlimited = TokenBucket(rate=0.0, burst=0.0)
    assert unlimited.delay(10**9, now=0.0) == 0.0
    with pytest.raises(ConfigurationError):
        TokenBucket(rate=5.0, burst=0.0)


# -- admission gates (injected clock) -----------------------------------------

def test_admission_backpressure_waits_then_releases():
    ctl = AdmissionController(max_pending=100, fair_share=1.0,
                              clock=lambda: 0.0)
    assert ctl.admit("a", 80).admitted
    blocked = ctl.admit("a", 30)
    assert not blocked.admitted and not blocked.reject
    assert blocked.reason == "backpressure" and blocked.delay > 0.0
    ctl.release({"a": 50})
    assert ctl.admit("a", 30).admitted
    assert ctl.pending_total == 60


def test_admission_fairness_only_bites_under_contention():
    ctl = AdmissionController(max_pending=100, fair_share=0.5,
                              clock=lambda: 0.0)
    # A lone tenant may exceed its fair share: nobody is starved.
    assert ctl.admit("a", 70).admitted
    assert ctl.admit("b", 20).admitted
    blocked = ctl.admit("b", 40)  # would put b at 60 > the 50-edge cap
    assert not blocked.admitted and blocked.reason == "fairness"
    ctl.release({"a": 70})
    assert ctl.admit("b", 25).admitted  # back under the cap


def test_admission_rate_limit_waits_then_rejects_past_max_delay():
    ctl = AdmissionController(max_pending=10_000, rate=100.0, burst=100.0,
                              max_delay=1.0, clock=lambda: 0.0)
    assert ctl.admit("a", 100).admitted  # drains the bucket
    soon = ctl.admit("a", 50)
    assert not soon.admitted and not soon.reject
    assert soon.reason == "rate_limited"
    assert soon.delay == pytest.approx(0.5)
    far = ctl.admit("a", 500)
    assert far.reject and far.reason == "rate_limited" and far.delay > 1.0


def test_admission_oversize_drain_and_stats():
    ctl = AdmissionController(max_pending=10, clock=lambda: 0.0)
    with pytest.raises(ConfigurationError):
        ctl.admit("a", 0)
    big = ctl.admit("a", 11)
    assert big.reject and big.reason == "too_large"
    ctl.start_drain()
    refused = ctl.admit("a", 1)
    assert refused.reject and refused.reason == "draining"
    stats = ctl.stats()
    assert stats["draining"]
    assert stats["tenants"]["a"]["rejected"] == 1


# -- micro-batcher -------------------------------------------------------------

def test_batcher_target_cut_sequences_and_tenant_counts():
    mb = MicroBatcher(target_edges=10, min_edges=4, flush_interval=1.0,
                      adaptive=False, clock=lambda: 0.0)
    assert mb.append("a", [1, 2, 3], [4, 5, 6]) == 3
    assert mb.cut_due() is None
    mb.append("b", list(range(7)), list(range(7)))
    assert mb.cut_due() == "target"
    batch = mb.cut("target")
    assert batch.size == 10 and batch.seq_end == 10
    assert batch.tenant_counts == {"a": 3, "b": 7}
    assert batch.is_delete is None and batch.cut_reason == "target"
    assert [seq for seq, _ in batch.markers] == [3, 10]
    assert mb.size == 0 and mb.cut_reasons == {"target": 1}


def test_batcher_flush_cut_is_time_based():
    clock = {"t": 0.0}
    mb = MicroBatcher(target_edges=100, min_edges=4, flush_interval=0.5,
                      clock=lambda: clock["t"])
    mb.append("a", [1], [2])
    assert mb.cut_due() is None
    clock["t"] = 0.6
    assert mb.cut_due() == "flush"


def test_batcher_cad_early_cut_on_hub_concentration():
    """A buffer whose edges pile onto one hub is already RO-friendly
    (CAD >= TH), so the batcher cuts before reaching the size target."""
    mb = MicroBatcher(target_edges=100_000, min_edges=64,
                      flush_interval=100.0, clock=lambda: 0.0)
    n = 4096
    mb.append("a", list(range(n)), [0] * n)  # every edge hits vertex 0
    assert mb.cad >= mb.threshold
    assert mb.cut_due() == "cad"
    flat = MicroBatcher(target_edges=100_000, min_edges=64,
                        flush_interval=100.0, clock=lambda: 0.0)
    flat.append("a", list(range(n)), list(range(1, n + 1)))
    assert flat.cad < flat.threshold
    assert flat.cut_due() is None


def test_batcher_preserves_weights_and_deletes():
    mb = MicroBatcher(target_edges=10, min_edges=1, adaptive=False,
                      clock=lambda: 0.0)
    mb.append("a", [1, 2], [3, 4], weight=[2.0, 3.0],
              is_delete=[False, True])
    batch = mb.cut("drain")
    assert batch.weight.tolist() == [2.0, 3.0]
    assert batch.is_delete.tolist() == [False, True]
    with pytest.raises(ConfigurationError):
        mb.cut("drain")  # buffer is empty again


# -- settings ------------------------------------------------------------------

def test_serve_settings_env_defaults_and_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_BATCH", "123")
    monkeypatch.setenv("REPRO_SERVE_RATE", "50")
    monkeypatch.setenv("REPRO_SERVE_FLUSH_MS", "100")
    monkeypatch.setenv("REPRO_SERVE_MAX_PENDING", "garbage")  # ignored
    settings = ServeSettings.from_env(rate=None, queue_depth=4)
    assert settings.batch_target == 123
    assert settings.rate == 50.0
    assert settings.flush_interval == pytest.approx(0.1)
    assert settings.max_pending == ServeSettings.max_pending
    assert settings.queue_depth == 4  # explicit override wins


# -- live server helpers -------------------------------------------------------

def _config(**overrides) -> RunConfig:
    base = dict(dataset="fb", batch_size=1_000, algorithm="pr",
                mode="abr_usc", telemetry="basic")
    base.update(overrides)
    return RunConfig(**base)


async def _until_visible(client: ServeClient, min_batches: int = 1) -> dict:
    for _ in range(500):
        stats = await client.stats()
        if stats["lag_edges"] == 0 and stats["batches"] >= min_batches:
            return stats
        await client.flush()
        await asyncio.sleep(0.01)
    raise AssertionError(f"edges never became visible: {stats}")


# -- the tentpole invariant: live multi-client ingest == offline replay -------

def test_multi_client_ingest_matches_offline_replay():
    """N asyncio clients interleaving edges must leave the pipeline in a
    state bit-identical to the same edges replayed as one offline stream
    in arrival order with the same batch boundaries."""
    config = _config()
    settings = ServeSettings(batch_target=700, batch_min=64,
                             flush_interval=0.05, capture=True)
    handle = start_server_thread(config, settings)
    try:
        async def drive():
            clients = [
                await ServeClient.connect(handle.host, handle.port,
                                          tenant=f"c{i}")
                for i in range(3)
            ]
            nv = clients[0].hello_info["num_vertices"]
            rng = np.random.default_rng(11)
            for _ in range(6):
                for i, client in enumerate(clients):
                    n = 100 + 37 * i
                    src = rng.integers(0, nv, size=n)
                    dst = rng.integers(0, nv, size=n)
                    reply = await client.send_edges(
                        [[int(s), int(d)] for s, d in zip(src, dst)]
                    )
                    assert reply["ok"], reply
            await _until_visible(clients[0])
            for client in clients:
                await client.close()

        asyncio.run(drive())
    finally:
        handle.stop()

    server = handle.server
    captured = server.captured
    sizes = server.state.batch_sizes
    total = sum(sizes)
    assert total == len(captured["src"]) == 3 * (100 + 137 + 174) * 2
    assert server.state.visible_seq == total

    offline = config.build_pipeline()
    start = 0
    for index, size in enumerate(sizes):
        stop = start + size
        deletes = captured["is_delete"][start:stop]
        offline.step(batch=Batch(
            batch_id=index,
            src=np.asarray(captured["src"][start:stop], dtype=np.int64),
            dst=np.asarray(captured["dst"][start:stop], dtype=np.int64),
            weight=np.asarray(captured["weight"][start:stop],
                              dtype=np.float64),
            is_delete=np.asarray(deletes) if any(deletes) else None,
        ))
        start = stop

    assert offline.metrics == server.pipeline.metrics
    np.testing.assert_array_equal(
        offline.compute.engine.as_array(),
        server.pipeline.compute.engine.as_array(),
    )
    assert offline.graph.num_edges == server.pipeline.graph.num_edges


# -- protocol: queries, watermark, errors -------------------------------------

def test_queries_watermark_and_protocol_errors():
    handle = start_server_thread(
        _config(), ServeSettings(batch_target=1_000, flush_interval=0.02)
    )
    try:
        async def drive():
            client = await ServeClient.connect(handle.host, handle.port)
            assert client.hello_info["dataset"] == "fb"
            reply = await client.send_edges([[0, 1], [1, 2], [2, 0]])
            assert reply["ok"] and reply["seq"] == 3
            stats = await _until_visible(client)
            assert stats["visible_seq"] == 3

            topk = await client.query("pagerank_topk", k=2)
            assert topk["ok"] and len(topk["ranks"]) == 2
            assert topk["watermark"]["visible_seq"] == 3
            ranks = dict((v, r) for v, r in topk["ranks"])
            assert all(r > 0.0 for r in ranks.values())

            degree = await client.query("degree", vertex=1)
            assert degree["ok"]
            assert degree["out_degree"] == 1 and degree["in_degree"] == 1

            wrong = await client.query("triangles")
            assert not wrong["ok"] and wrong["error"] == "bad_query"
            assert not (await client.query("nope"))["ok"]
            bad_vertex = await client.query("degree", vertex=-5)
            assert not bad_vertex["ok"]

            assert (await client.request({"op": "wat"}))["error"] == (
                "unknown_op"
            )
            empty = await client.request({"op": "edges", "edges": []})
            assert empty["error"] == "bad_edges"
            mangled = await client.request(
                {"op": "edges", "edges": [[0, "x"]]}
            )
            assert mangled["error"] == "bad_edges"
            oob = await client.send_edges([[0, 10**9]])
            assert oob["error"] == "vertex_out_of_range"
            client._writer.write(b"this is not json\n")
            await client._writer.drain()
            line = await client._reader.readline()
            assert b"bad_json" in line
            await client.close()

        asyncio.run(drive())
    finally:
        handle.stop()


def test_triangle_count_query_from_live_snapshot():
    handle = start_server_thread(
        _config(algorithm="triangles"),
        ServeSettings(batch_target=1_000, flush_interval=0.02),
    )
    try:
        async def drive():
            client = await ServeClient.connect(handle.host, handle.port)
            reply = await client.send_edges([[0, 1], [1, 2], [2, 0]])
            assert reply["ok"]
            await _until_visible(client)
            count = await client.query("triangles")
            assert count["ok"] and count["count"] >= 1
            wrong = await client.query("pagerank_topk")
            assert not wrong["ok"] and wrong["error"] == "bad_query"
            await client.close()

        asyncio.run(drive())
    finally:
        handle.stop()


def test_rate_limited_submission_is_rejected_with_retry_hint():
    handle = start_server_thread(
        _config(),
        ServeSettings(rate=10.0, burst=10.0, max_delay=0.0),
    )
    try:
        async def drive():
            client = await ServeClient.connect(handle.host, handle.port)
            # 20 edges against a 10-token bucket needs a 1s wait, which
            # exceeds max_delay=0: explicit rejection, not silent queuing.
            reply = await client.send_edges(
                [[0, v + 1] for v in range(20)]
            )
            assert not reply["ok"]
            assert reply["error"] == "rate_limited"
            assert reply["retry_after"] > 0.0
            await client.close()

        asyncio.run(drive())
    finally:
        handle.stop()


# -- graceful drain ------------------------------------------------------------

def test_drain_flushes_partial_buffer_and_stops_cleanly():
    """stop() must make every admitted edge visible (a final 'drain' cut
    flushes the partial buffer), then stop the driver thread."""
    handle = start_server_thread(
        _config(),
        # Nothing would ever cut on its own: huge target, long flush.
        ServeSettings(batch_target=1_000_000, batch_min=1_000_000,
                      flush_interval=1_000.0),
    )

    async def drive():
        client = await ServeClient.connect(handle.host, handle.port)
        reply = await client.send_edges([[v, v + 1] for v in range(10)])
        assert reply["ok"]
        stats = await client.stats()
        assert stats["buffer_edges"] == 10 and stats["batches"] == 0
        await client.close()

    asyncio.run(drive())
    handle.stop()
    server = handle.server
    assert server.state.visible_seq == 10
    assert server.state.batches_done == 1
    assert server.batcher.cut_reasons.get("drain") == 1
    assert server.admission.draining
    assert not server._driver.is_alive()
    assert server._driver.error is None
    handle.stop()  # idempotent


# -- heartbeat integration -----------------------------------------------------

def test_serve_heartbeat_carries_service_section(tmp_path):
    from repro.telemetry.heartbeat import HeartbeatMonitor, read_heartbeat

    monitor = HeartbeatMonitor(tmp_path / "hb.json", label="serve fb")
    handle = start_server_thread(
        _config(), ServeSettings(batch_target=50, flush_interval=0.02),
        monitor=monitor,
    )
    try:
        async def drive():
            client = await ServeClient.connect(handle.host, handle.port)
            reply = await client.send_edges([[v, v + 1] for v in range(60)])
            assert reply["ok"]
            await _until_visible(client)
            await client.close()

        asyncio.run(drive())
    finally:
        handle.stop()
    beat = read_heartbeat(tmp_path / "hb.json")
    assert beat is not None and "mono" in beat
    serve = beat["serve"]
    assert serve["visible_seq"] >= 50
    assert serve["ingest_to_visible_p99"] >= 0.0
    from repro.telemetry.heartbeat import render_heartbeat

    frame = render_heartbeat(beat, now=beat["ts"])
    assert "serve:" in frame and "queries=" in frame


# -- CLI surface ---------------------------------------------------------------

def test_cli_parser_accepts_serve_and_loadgen():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["serve", "fb", "--serve-batch", "500", "--rate", "10",
         "--checkpoint", "/tmp/ckpt", "--every", "7", "--fixed-batching"]
    )
    assert args.command == "serve"
    assert args.serve_batch == 500 and args.rate == 10.0
    assert args.every == 7 and args.fixed_batching
    args = parser.parse_args(
        ["loadgen", "--port", "1234", "--query", "triangles", "--json"]
    )
    assert args.command == "loadgen"
    assert args.port == 1234 and args.query == "triangles" and args.json


def test_run_config_from_serve_args_is_open_ended():
    import argparse

    args = argparse.Namespace(
        dataset="fb", batch_size=500, algorithm="pr", mode="abr_usc",
        telemetry=None, shards=None, adjacency=None, shard_transport=None,
        shard_policy=None,
    )
    config = RunConfig.from_serve_args(args)
    assert config.num_batches is None
    assert config.telemetry == "basic"
    assert config.dataset == "fb" and config.batch_size == 500
