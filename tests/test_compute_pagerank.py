"""PageRank: static power iteration and incremental frontier propagation."""

import numpy as np
import pytest

from conftest import make_batch
from repro.compute.pagerank import IncrementalPageRank, StaticPageRank
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.snapshot import take_snapshot


def _chain_graph(n=6):
    """0 -> 1 -> 2 -> ... -> n-1."""
    graph = AdjacencyListGraph(n)
    graph.apply_batch(make_batch(list(range(n - 1)), list(range(1, n))))
    return graph


def test_damping_validation():
    with pytest.raises(ConfigurationError):
        StaticPageRank(damping=1.0)
    with pytest.raises(ConfigurationError):
        IncrementalPageRank(AdjacencyListGraph(4), damping=0.0)


def test_static_two_vertex_analytic():
    """0 -> 1: pr(0) = base; pr(1) = base + d * pr(0)."""
    graph = AdjacencyListGraph(2)
    graph.apply_batch(make_batch([0], [1]))
    values, counters = StaticPageRank(damping=0.85, tolerance=1e-12).run(
        take_snapshot(graph)
    )
    base = 0.15 / 2
    assert values[0] == pytest.approx(base)
    assert values[1] == pytest.approx(base + 0.85 * base)
    assert counters.iterations >= 2
    assert counters.touched_edges > 0


def test_static_ranks_sink_of_chain_highest():
    graph = _chain_graph()
    values, __ = StaticPageRank(tolerance=1e-12).run(take_snapshot(graph))
    assert np.argmax(values) == 5
    assert (np.diff(values) > 0).all()


def test_incremental_matches_static_after_batches(small_generator):
    graph = AdjacencyListGraph(500)
    incremental = IncrementalPageRank(graph, tolerance=1e-12)
    for batch in small_generator.batches(500, 4):
        graph.apply_batch(batch)
        incremental.on_batch(batch.unique_vertices())
    static_values, __ = StaticPageRank(tolerance=1e-13, max_iterations=300).run(
        take_snapshot(graph)
    )
    np.testing.assert_allclose(incremental.as_array(), static_values, atol=1e-6)


def test_incremental_aggregated_round_matches_per_batch(small_generator):
    """OCA-aggregated recomputation reaches the same fixed point."""
    graph_a = AdjacencyListGraph(500)
    inc_a = IncrementalPageRank(graph_a, tolerance=1e-12)
    graph_b = AdjacencyListGraph(500)
    inc_b = IncrementalPageRank(graph_b, tolerance=1e-12)
    batches = [small_generator.generate_batch(i, 400) for i in range(2)]
    for batch in batches:
        graph_a.apply_batch(batch)
        inc_a.on_batch(batch.unique_vertices())
    for batch in batches:
        graph_b.apply_batch(batch)
    union = np.union1d(batches[0].unique_vertices(), batches[1].unique_vertices())
    inc_b.on_batch(union)
    np.testing.assert_allclose(inc_a.as_array(), inc_b.as_array(), atol=1e-6)


def test_aggregated_round_touches_less_than_two_rounds(small_generator):
    """The work saving OCA banks on: one union round < two rounds."""
    batches = [small_generator.generate_batch(i, 2_000) for i in range(2)]
    graph_a = AdjacencyListGraph(500)
    inc_a = IncrementalPageRank(graph_a)
    touched_separate = 0
    for batch in batches:
        graph_a.apply_batch(batch)
        touched_separate += inc_a.on_batch(batch.unique_vertices()).touched_edges
    graph_b = AdjacencyListGraph(500)
    inc_b = IncrementalPageRank(graph_b)
    for batch in batches:
        graph_b.apply_batch(batch)
    union = np.union1d(batches[0].unique_vertices(), batches[1].unique_vertices())
    touched_union = inc_b.on_batch(union).touched_edges
    assert touched_union < touched_separate


def test_incremental_counters_empty_frontier():
    graph = AdjacencyListGraph(10)
    incremental = IncrementalPageRank(graph)
    counters = incremental.on_batch([])
    assert counters.iterations == 0
    assert counters.touched_vertices == 0


def test_static_counts_iterations_and_work():
    graph = _chain_graph()
    __, counters = StaticPageRank(tolerance=1e-10).run(take_snapshot(graph))
    assert counters.touched_vertices == counters.iterations * graph.num_vertices
    assert counters.touched_edges == counters.iterations * graph.num_edges
