"""HybridAdjacencyGraph parity and behavior tests.

The hybrid format's contract is *bit-identical observability*: stats,
adjacency content, iteration order, deltas and pickled state must be
indistinguishable from :class:`~repro.graph.adjacency_list.AdjacencyListGraph`
no matter how vertices move between the array and hub degree classes.  The
property test drives random mixed insert/delete/reweight streams across the
promotion threshold in both directions, tracked and untracked, against two
oracles: ``graph/reference.py`` (content, untracked order) and the dict
graph (exact stats + exact inner/outer iteration order).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_batch
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.formats import (
    ADJACENCY_FORMATS,
    make_adjacency_graph,
    resolve_adjacency_format,
)
from repro.graph.hybrid import HybridAdjacencyGraph
from repro.graph.reference import ReferenceAdjacencyListGraph
from repro.graph.snapshot import DeltaSnapshotter, take_snapshot
from repro.telemetry.core import Telemetry

# A universe wide enough that destination ids exercise every residue of
# the 64-bit dedup signature (values with v % 64 == 63 included).
N_VERTICES = 96
THRESHOLD = 3  # tiny, so streams cross promotion/demotion constantly


def _weight(u: int, v: int, salt: int) -> float:
    return float((u * 31 + v * 7 + salt * 13) % 9 + 1)


# One operation: (is_delete, src, dst, salt).  Self-loops are legal here —
# the graph layer does not filter them.
ops = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, N_VERTICES - 1),
        st.integers(0, N_VERTICES - 1),
        st.integers(0, 3),
    ),
    min_size=1,
    max_size=80,
)
streams = st.lists(ops, min_size=1, max_size=5)


def _batch_from_ops(batch_ops, batch_id):
    src = [o[1] for o in batch_ops]
    dst = [o[2] for o in batch_ops]
    weight = [_weight(o[1], o[2], o[3]) for o in batch_ops]
    deletes = [o[0] for o in batch_ops]
    return make_batch(src, dst, weight, batch_id=batch_id, is_delete=deletes)


def _content(graph):
    out_view, in_view = graph.adjacency_views()
    out = {v: dict(out_view[v].items()) for v in out_view}
    inn = {v: dict(in_view[v].items()) for v in in_view}
    return out, inn


def _orders(graph):
    out_view, in_view = graph.adjacency_views()
    return (
        list(iter(out_view)),
        list(iter(in_view)),
        {v: list(out_view[v].keys()) for v in out_view},
        {v: list(in_view[v].keys()) for v in in_view},
    )


def _assert_stats_equal(ours, oracle):
    for direction in ("out", "inn"):
        a = getattr(ours, direction)
        b = getattr(oracle, direction)
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.batch_degree, b.batch_degree)
        assert np.array_equal(a.length_before, b.length_before)
        assert np.array_equal(a.new_edges, b.new_edges)
    assert ours.deleted_edges == oracle.deleted_edges


@pytest.mark.parametrize("tracked", [False, True], ids=["untracked", "tracked"])
@given(stream=streams)
@settings(max_examples=60, deadline=None)
def test_hybrid_matches_oracles(stream, tracked):
    hybrid = HybridAdjacencyGraph(N_VERTICES, promote_threshold=THRESHOLD)
    dict_graph = AdjacencyListGraph(N_VERTICES)
    reference = ReferenceAdjacencyListGraph(N_VERTICES)
    if tracked:
        hybrid.track_deltas(True)
        dict_graph.track_deltas(True)
        reference.track_deltas(True)
    for batch_id, batch_ops in enumerate(stream):
        batch = _batch_from_ops(batch_ops, batch_id)
        stats_h = hybrid.apply_batch(batch)
        stats_d = dict_graph.apply_batch(batch)
        stats_r = reference.apply_batch(batch)
        _assert_stats_equal(stats_h, stats_d)
        _assert_stats_equal(stats_h, stats_r)
        assert hybrid.num_edges == dict_graph.num_edges == reference.num_edges
        if tracked:
            delta_h = hybrid.consume_delta()
            delta_d = dict_graph.consume_delta()
            for direction in (0, 1):
                assert np.array_equal(
                    delta_h[direction].owners, delta_d[direction].owners
                )
                assert np.array_equal(
                    delta_h[direction].targets, delta_d[direction].targets
                )
                assert np.array_equal(
                    delta_h[direction].weights, delta_d[direction].weights
                )
                assert delta_h[direction].stale == delta_d[direction].stale
    # Content parity vs both oracles (dict equality ignores order).
    out_h, in_h = _content(hybrid)
    out_d, in_d = _content(dict_graph)
    assert out_h == out_d
    assert in_h == in_d
    out_r = {
        v: dict(entry)
        for v, entry in reference.adjacency_views()[0].items()
    }
    assert out_h == out_r
    # Exact iteration-order parity vs the dict graph (PR/CSR float
    # accumulation order depends on it).
    assert _orders(hybrid) == _orders(dict_graph)
    assert (
        sorted(dict_graph.vertices_with_edges())
        == hybrid.vertices_with_edges()
    )
    assert dict_graph.touched_count() == hybrid.touched_count()


def _mixed_batches():
    rng = np.random.default_rng(5)
    batches = []
    existing: list[tuple[int, int]] = []
    for batch_id in range(6):
        src = rng.integers(0, N_VERTICES, size=70)
        dst = rng.integers(0, N_VERTICES, size=70)
        deletes = rng.random(70) < 0.3
        if existing:
            pick = rng.integers(0, len(existing), size=int(deletes.sum()))
            pairs = np.asarray(existing)[pick]
            src[deletes] = pairs[:, 0]
            dst[deletes] = pairs[:, 1]
        weight = rng.random(70)
        batches.append(
            make_batch(src, dst, weight, batch_id=batch_id, is_delete=deletes)
        )
        existing += list(zip(src[~deletes].tolist(), dst[~deletes].tolist()))
    return batches


def test_promotion_and_demotion_preserve_content():
    graph = HybridAdjacencyGraph(N_VERTICES, promote_threshold=4)
    hub = 7
    targets = list(range(10, 22))
    graph.apply_batch(
        make_batch([hub] * len(targets), targets, [1.0] * len(targets))
    )
    assert graph._outd.hub_mask[hub]  # promoted past the threshold
    assert graph.out_degree(hub) == len(targets)
    assert list(graph.out_neighbors(hub)) == targets
    # Delete below threshold // 2 (hysteresis) -> demotion back to arrays.
    drop = targets[: len(targets) - 1]
    graph.apply_batch(
        make_batch(
            [hub] * len(drop), drop, [1.0] * len(drop),
            batch_id=1, is_delete=[True] * len(drop),
        )
    )
    assert not graph._outd.hub_mask[hub]
    assert list(graph.out_neighbors(hub)) == targets[-1:]
    assert graph.edge_weight(hub, targets[-1]) == 1.0
    assert graph.has_edge(hub, targets[-1])
    assert not graph.has_edge(hub, drop[0])


def test_pickle_round_trip_and_continue():
    graph = HybridAdjacencyGraph(N_VERTICES, promote_threshold=THRESHOLD)
    graph.track_deltas(True)
    batches = _mixed_batches()
    for batch in batches[:4]:
        graph.apply_batch(batch)
    clone = pickle.loads(pickle.dumps(graph))
    assert _content(clone) == _content(graph)
    assert _orders(clone) == _orders(graph)
    for batch in batches[4:]:
        stats_a = graph.apply_batch(batch)
        stats_b = clone.apply_batch(batch)
        _assert_stats_equal(stats_a, stats_b)
    assert _content(clone) == _content(graph)
    assert clone.num_edges == graph.num_edges


def test_delta_snapshot_parity_with_dict_graph():
    hybrid = HybridAdjacencyGraph(N_VERTICES, promote_threshold=THRESHOLD)
    dict_graph = AdjacencyListGraph(N_VERTICES)
    snap_h = DeltaSnapshotter(hybrid)
    snap_d = DeltaSnapshotter(dict_graph)
    for batch in _mixed_batches():
        hybrid.apply_batch(batch)
        dict_graph.apply_batch(batch)
        csr_h = snap_h.snapshot()
        csr_d = snap_d.snapshot()
        full = take_snapshot(hybrid)
        for attr in (
            "out_offsets", "out_targets", "out_weights",
            "in_offsets", "in_sources", "in_weights",
        ):
            assert np.array_equal(getattr(csr_h, attr), getattr(csr_d, attr))
            assert np.array_equal(getattr(csr_h, attr), getattr(full, attr))


def test_external_mutation_reloads_and_poisons_journal():
    graph = HybridAdjacencyGraph(N_VERTICES, promote_threshold=THRESHOLD)
    graph.track_deltas(True)
    graph.apply_batch(make_batch([1, 1, 2], [2, 3, 3], [1.0, 2.0, 3.0]))
    graph.consume_delta()
    out_view, in_view = graph.adjacency_views()
    # Mutate through the views the way union-find rebuilds do, then notify.
    out_view.setdefault(5, {})[9] = 4.0
    in_view.setdefault(9, {})[5] = 4.0
    del out_view[1][2]
    del in_view[2][1]
    graph.notify_external_mutation()
    assert graph.consume_delta() is None  # journal poisoned once
    assert graph.out_neighbors(5) == {9: 4.0}
    assert graph.in_neighbors(9) == {5: 4.0}
    assert graph.out_neighbors(1) == {3: 2.0}
    assert graph.num_edges == 3
    # Tracking resumes cleanly after the poison consume.
    graph.apply_batch(make_batch([4], [6], [1.5], batch_id=1))
    delta = graph.consume_delta()
    assert delta is not None
    assert delta[0].owners.tolist() == [4]


def test_sum_search_cost_matches_dict_graph():
    hybrid = HybridAdjacencyGraph(N_VERTICES)
    dict_graph = AdjacencyListGraph(N_VERTICES)
    batch = make_batch([1, 1, 2, 3], [2, 3, 3, 1], [1.0, 2.0, 3.0, 4.0])
    stats_h = hybrid.apply_batch(batch).out
    stats_d = dict_graph.apply_batch(batch).out
    cost_h = hybrid.sum_search_cost(
        stats_h.batch_degree, stats_h.length_before, stats_h.new_edges, 2.5
    )
    cost_d = dict_graph.sum_search_cost(
        stats_d.batch_degree, stats_d.length_before, stats_d.new_edges, 2.5
    )
    assert np.array_equal(cost_h, cost_d)


def test_telemetry_counts_promotions_and_demotions():
    tel = Telemetry("full")
    graph = HybridAdjacencyGraph(
        N_VERTICES, promote_threshold=4, telemetry=tel
    )
    targets = list(range(20, 30))
    graph.apply_batch(
        make_batch([3] * len(targets), targets, [1.0] * len(targets))
    )
    graph.apply_batch(
        make_batch(
            [3] * 9, targets[:9], [1.0] * 9,
            batch_id=1, is_delete=[True] * 9,
        )
    )
    snapshot = tel.snapshot()
    assert snapshot.counters["adjacency.promotions"] >= 1
    assert snapshot.counters["adjacency.demotions"] >= 1
    choices = {(d.kind, d.choice) for d in snapshot.decisions}
    assert ("adjacency", "promote") in choices
    assert ("adjacency", "demote") in choices


def test_promote_threshold_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_ADJ_PROMOTE", "2")
    graph = HybridAdjacencyGraph(N_VERTICES)
    assert graph.promote_threshold == 2
    monkeypatch.delenv("REPRO_ADJ_PROMOTE")
    assert HybridAdjacencyGraph(N_VERTICES).promote_threshold > 2


def test_format_registry_and_env_resolution(monkeypatch):
    assert set(ADJACENCY_FORMATS) == {"dict", "hybrid"}
    assert resolve_adjacency_format("hybrid") == "hybrid"
    assert resolve_adjacency_format(None) == "dict"
    monkeypatch.setenv("REPRO_ADJ_FORMAT", "hybrid")
    assert resolve_adjacency_format(None) == "hybrid"
    assert resolve_adjacency_format("dict") == "dict"  # explicit wins
    monkeypatch.setenv("REPRO_ADJ_FORMAT", "bogus")
    with pytest.raises(ConfigurationError, match="adjacency format"):
        resolve_adjacency_format(None)
    with pytest.raises(ConfigurationError, match="adjacency format"):
        resolve_adjacency_format("nope")
    monkeypatch.delenv("REPRO_ADJ_FORMAT")
    assert isinstance(
        make_adjacency_graph("hybrid", 10), HybridAdjacencyGraph
    )
    assert isinstance(make_adjacency_graph("dict", 10), AdjacencyListGraph)


def test_run_config_rejects_unknown_adjacency():
    from repro.pipeline.config import RunConfig

    with pytest.raises(ConfigurationError, match="adjacency"):
        RunConfig(dataset="fb", batch_size=100, adjacency="bogus")
    config = RunConfig(dataset="fb", batch_size=100, adjacency="hybrid")
    assert RunConfig.from_json(config.to_json()) == config
