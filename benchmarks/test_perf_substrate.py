"""Wall-clock substrate micro-benchmark: ingest, snapshot, matrix row.

Unlike the figure benchmarks (which reproduce the paper's *modeled* times),
this one measures real seconds spent in the substrate itself:

* **ingest** — vectorized ``AdjacencyListGraph.apply_batch`` vs the seed
  per-vertex loop (``graph.reference.ReferenceAdjacencyListGraph``), on the
  highest-vertex-churn stream (``friendster``, ~87% unique sources per
  100K batch) where ingest dominates wall-clock;
* **snapshot** — ``DeltaSnapshotter`` patching vs a full ``take_snapshot``
  rebuild after every batch (``lj``, 8 batches @ 100K, the
  incremental-compute regime);
* **matrix row** — one dataset's pipeline cells end to end through the
  workload executor.

The summary lands in ``results/BENCH_substrate.json`` so successive PRs
leave a wall-clock trajectory; ``make bench-smoke`` compares it against the
committed baseline ``benchmarks/BENCH_substrate.json`` and fails on >20%
regression.  Thresholds: the structural speedup floors (delta snapshots and
vectorized ingest beat the reference paths) are always asserted; the full
acceptance floors (3x / 1.5x) are asserted when ``REPRO_BENCH_ENFORCE=1``,
so a loaded CI box doesn't flake the default run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _harness import RESULTS_DIR, emit
from repro.analysis.report import render_table
from repro.datasets.profiles import get_dataset
from repro.datasets.stream_cache import cached_batches
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.formats import resolve_adjacency_format
from repro.graph.hybrid import HybridAdjacencyGraph
from repro.graph.reference import ReferenceAdjacencyListGraph
from repro.graph.snapshot import DeltaSnapshotter, take_snapshot
from repro.pipeline.executor import CellSpec, run_matrix

INGEST_DATASET = "friendster"
SNAPSHOT_DATASET = "lj"
BATCH_SIZE = 100_000
NUM_BATCHES = 8
ROUNDS = 5  # best-of to shave scheduler noise

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_substrate.json"


def _batches(dataset: str):
    return list(
        cached_batches(get_dataset(dataset), BATCH_SIZE, NUM_BATCHES, seed=7)
    )


def _time_ingest_once(graph_cls, batches) -> float:
    graph = graph_cls(get_dataset(INGEST_DATASET).num_vertices)
    start = time.perf_counter()
    for batch in batches:
        graph.apply_batch(batch)
    return time.perf_counter() - start


def _time_ingest_trio(batches) -> tuple[float, float, float]:
    """Best-of-ROUNDS for all three ingest paths (reference loop, dict
    graph, hybrid graph), rounds interleaved A/B/C so machine-load drift
    during the run biases none of the ratios."""
    best_ref = best_vec = best_hyb = float("inf")
    for __ in range(ROUNDS):
        best_ref = min(best_ref, _time_ingest_once(ReferenceAdjacencyListGraph, batches))
        best_vec = min(best_vec, _time_ingest_once(AdjacencyListGraph, batches))
        best_hyb = min(best_hyb, _time_ingest_once(HybridAdjacencyGraph, batches))
    return best_ref, best_vec, best_hyb


def _time_snapshots(batches, delta: bool) -> float:
    best = float("inf")
    for __ in range(ROUNDS):
        graph = AdjacencyListGraph(get_dataset(SNAPSHOT_DATASET).num_vertices)
        snapper = DeltaSnapshotter(graph) if delta else None
        elapsed = 0.0
        for batch in batches:
            graph.apply_batch(batch)
            start = time.perf_counter()
            snapper.snapshot() if delta else take_snapshot(graph)
            elapsed += time.perf_counter() - start
        best = min(best, elapsed)
    return best


def _time_matrix_row() -> float:
    specs = [
        CellSpec(dataset="fb", batch_size=1_000, algorithm=alg, num_batches=2)
        for alg in ("pr", "sssp", "pr_static", "sssp_static")
    ]
    best = float("inf")
    for __ in range(ROUNDS):
        start = time.perf_counter()
        results = run_matrix(specs, jobs=1)
        elapsed = time.perf_counter() - start
        assert len(results) == len(specs)
        best = min(best, elapsed)
    return best


def run_substrate() -> dict:
    ingest_ref, ingest_vec, ingest_hyb = _time_ingest_trio(
        _batches(INGEST_DATASET)
    )
    # ``ingest_speedup`` tracks the format a run would actually use (the
    # ``REPRO_ADJ_FORMAT``-resolved default); the per-format speedups are
    # recorded alongside so the trajectory of each substrate is explicit.
    fmt = resolve_adjacency_format(None)
    ingest_fmt = ingest_hyb if fmt == "hybrid" else ingest_vec
    snapshot_batches = _batches(SNAPSHOT_DATASET)
    snap_full = _time_snapshots(snapshot_batches, delta=False)
    snap_delta = _time_snapshots(snapshot_batches, delta=True)
    return {
        "ingest_dataset": INGEST_DATASET,
        "snapshot_dataset": SNAPSHOT_DATASET,
        "batch_size": BATCH_SIZE,
        "num_batches": NUM_BATCHES,
        "adjacency": fmt,
        "ingest_reference_s": ingest_ref,
        "ingest_vectorized_s": ingest_vec,
        "ingest_hybrid_s": ingest_hyb,
        "ingest_speedup": ingest_ref / ingest_fmt,
        "ingest_speedup_dict": ingest_ref / ingest_vec,
        "ingest_speedup_hybrid": ingest_ref / ingest_hyb,
        "snapshot_full_s": snap_full,
        "snapshot_delta_s": snap_delta,
        "snapshot_speedup": snap_full / snap_delta,
        "matrix_row_s": _time_matrix_row(),
    }


def test_perf_substrate(benchmark):
    result = benchmark.pedantic(run_substrate, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_substrate.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    emit(
        "perf_substrate",
        render_table(
            ["path", "reference (s)", "optimized (s)", "speedup"],
            [
                [
                    f"ingest dict {INGEST_DATASET}@{BATCH_SIZE} x{NUM_BATCHES}",
                    result["ingest_reference_s"],
                    result["ingest_vectorized_s"],
                    result["ingest_speedup_dict"],
                ],
                [
                    f"ingest hybrid {INGEST_DATASET}@{BATCH_SIZE} x{NUM_BATCHES}",
                    result["ingest_reference_s"],
                    result["ingest_hybrid_s"],
                    result["ingest_speedup_hybrid"],
                ],
                [
                    f"snapshot {SNAPSHOT_DATASET} per batch",
                    result["snapshot_full_s"],
                    result["snapshot_delta_s"],
                    result["snapshot_speedup"],
                ],
                ["matrix row (4 cells)", "-", result["matrix_row_s"], "-"],
            ],
            title="Substrate wall-clock micro-benchmark",
        ),
    )
    # The optimized paths must beat the reference paths on any machine.
    assert result["ingest_speedup_dict"] > 1.0
    assert result["ingest_speedup_hybrid"] > 1.0
    assert result["snapshot_speedup"] > 1.0
    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        assert result["ingest_speedup_dict"] >= 1.5
        assert result["ingest_speedup_hybrid"] >= 5.0, (
            f"hybrid ingest speedup {result['ingest_speedup_hybrid']:.2f}x "
            "is below the 5x acceptance floor"
        )
        assert result["snapshot_speedup"] >= 3.0
        if BASELINE_PATH.exists():
            baseline = json.loads(BASELINE_PATH.read_text())
            # Speedups are measured A/B under identical load, so they are
            # stable where absolute seconds on a shared box are not: refuse
            # a >20% drop.  Absolute times only get a gross 2x backstop.
            for key in ("ingest_speedup_dict", "ingest_speedup_hybrid",
                        "snapshot_speedup"):
                if key in baseline:
                    assert result[key] >= baseline[key] * 0.8, (
                        f"{key} regressed >20% vs committed baseline: "
                        f"{result[key]:.2f}x vs {baseline[key]:.2f}x"
                    )
            for key in ("ingest_vectorized_s", "ingest_hybrid_s",
                        "snapshot_delta_s", "matrix_row_s"):
                if key in baseline:
                    assert result[key] <= baseline[key] * 2.0, (
                        f"{key} regressed >2x vs committed baseline: "
                        f"{result[key]:.3f}s vs {baseline[key]:.3f}s"
                    )


def _time_engine_ingest(batches, telemetry) -> float:
    """One instrumented (or not) UpdateEngine pass over the batches."""
    from repro.update.engine import UpdateEngine, UpdatePolicy

    graph = AdjacencyListGraph(get_dataset(SNAPSHOT_DATASET).num_vertices)
    engine = UpdateEngine(graph, UpdatePolicy.ABR_USC, telemetry=telemetry)
    start = time.perf_counter()
    for batch in batches:
        engine.ingest(batch)
    return time.perf_counter() - start


def run_telemetry_overhead() -> dict:
    from repro.telemetry.core import Telemetry

    batches = _batches(SNAPSHOT_DATASET)
    best_off = best_full = float("inf")
    timeline_events = 0
    # Interleave the off/full rounds so load drift biases neither side.
    for __ in range(ROUNDS):
        best_off = min(best_off, _time_engine_ingest(batches, None))
        tel = Telemetry("full")
        best_full = min(best_full, _time_engine_ingest(batches, tel))
        timeline_events = tel.timeline.recorded
    return {
        "dataset": SNAPSHOT_DATASET,
        "batch_size": BATCH_SIZE,
        "num_batches": NUM_BATCHES,
        "ingest_off_s": best_off,
        "ingest_full_s": best_full,
        "overhead_fraction": best_full / best_off - 1.0,
        "timeline_events": timeline_events,
    }


def test_perf_telemetry_overhead(benchmark):
    """Full instrumentation must stay cheap on the ingest hot path.

    The <5% acceptance bound is asserted under ``REPRO_BENCH_ENFORCE=1``
    (best-of-rounds still jitters a few percent on a loaded box); the
    always-on bound only catches gross regressions — an accidental clock
    read or allocation per edge rather than per batch.
    """
    result = benchmark.pedantic(run_telemetry_overhead, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_telemetry.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    emit(
        "perf_telemetry_overhead",
        render_table(
            ["path", "telemetry off (s)", "telemetry full (s)", "overhead (%)"],
            [[
                f"engine ingest {SNAPSHOT_DATASET}@{BATCH_SIZE} x{NUM_BATCHES}",
                result["ingest_off_s"],
                result["ingest_full_s"],
                100.0 * result["overhead_fraction"],
            ]],
            title="Telemetry overhead micro-benchmark",
        ),
    )
    # The flight recorder rides on every full-level backend, so the <5%
    # budget below covers it only if it actually recorded events here.
    assert result["timeline_events"] > 0, (
        "full-level telemetry did not feed the timeline recorder — the "
        "overhead bound no longer covers it"
    )
    assert result["overhead_fraction"] < 0.5
    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        assert result["overhead_fraction"] < 0.05, (
            f"full telemetry (flight recorder included) costs "
            f"{100 * result['overhead_fraction']:.1f}% wall-clock on the "
            f"ingest micro-benchmark (budget: 5%)"
        )
