"""Partitioning-policy registry: owner-map invariants and placement quality.

Every policy must produce a *total partition* — each vertex owned by exactly
one shard, all shards nonempty whenever ``num_vertices >= num_shards`` — and
be deterministic (checkpoint resume compares placements byte-for-byte).
Placement choice may move communication cost, never correctness.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.pipeline.partition import (
    PARTITION_POLICIES,
    PartitionPolicy,
    build_owner_map,
    cut_edge_fraction,
    owner_map_checksum,
    register_policy,
    resolve_partition_policy,
    shard_owner,
    validate_owner_map,
)

POLICIES = sorted(PARTITION_POLICIES)


def _edges(num_vertices: int, count: int, seed: int = 5):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, num_vertices, count),
        rng.integers(0, num_vertices, count),
    )


# -- total-partition invariant (hypothesis) -----------------------------------


@settings(max_examples=40, deadline=None)
@given(
    num_vertices=st.integers(min_value=0, max_value=300),
    num_shards=st.integers(min_value=1, max_value=8),
    policy=st.sampled_from(POLICIES),
    n_edges=st.integers(min_value=0, max_value=200),
    edge_seed=st.integers(min_value=0, max_value=5),
)
def test_owner_map_is_total_partition(
    num_vertices, num_shards, policy, n_edges, edge_seed
):
    edges = (
        _edges(num_vertices, n_edges, edge_seed)
        if num_vertices and resolve_partition_policy(policy).uses_edges
        else None
    )
    owners = build_owner_map(policy, num_vertices, num_shards, edges=edges)
    # Total: every vertex owned by exactly one shard, in range.
    assert owners.shape == (num_vertices,)
    assert np.issubdtype(owners.dtype, np.integer)
    if num_vertices:
        assert int(owners.min()) >= 0
        assert int(owners.max()) < num_shards
    # All shards nonempty whenever the universe is big enough.
    if num_vertices >= num_shards:
        assert len(np.unique(owners)) == num_shards, (policy, num_shards)
    # Deterministic: same inputs, same map.
    again = build_owner_map(policy, num_vertices, num_shards, edges=edges)
    assert np.array_equal(owners, again)


@pytest.mark.parametrize("policy", POLICIES)
def test_owner_map_valid_without_edge_sample(policy):
    """Every policy, including edge-aware ones, must work with edges=None."""
    owners = build_owner_map(policy, 64, 4, edges=None)
    assert len(np.unique(owners)) == 4


# -- individual policies ------------------------------------------------------


def test_mod_policy_matches_paper_mapping():
    owners = build_owner_map("mod", 23, 4)
    assert np.array_equal(owners, np.arange(23) % 4)
    vertices = np.arange(17, dtype=np.int64)
    assert np.array_equal(shard_owner(vertices, 4), vertices % 4)


def test_hash_policy_decorrelates_but_balances():
    owners = build_owner_map("hash", 10_000, 4)
    assert not np.array_equal(owners, np.arange(10_000) % 4)
    loads = np.bincount(owners, minlength=4)
    assert loads.max() / loads.mean() < 1.1


def test_greedy_respects_balance_slack():
    num_vertices, num_shards = 1_000, 4
    # Hub-heavy sample: every edge touches one of 3 hubs.
    rng = np.random.default_rng(11)
    hubs = rng.integers(0, 3, 5_000)
    others = rng.integers(3, num_vertices, 5_000)
    owners = build_owner_map(
        "greedy", num_vertices, num_shards, edges=(hubs, others)
    )
    loads = np.bincount(owners, minlength=num_shards)
    policy = PARTITION_POLICIES["greedy"]
    cap = int(np.ceil(num_vertices * (1.0 + policy.slack) / num_shards))
    assert loads.max() <= cap
    assert loads.min() >= 1


def test_greedy_cuts_fewer_edges_than_mod_on_hub_heavy():
    num_vertices = 2_000
    rng = np.random.default_rng(3)
    hubs = rng.integers(0, 20, 20_000)
    others = rng.integers(0, num_vertices, 20_000)
    edges = (hubs, others)
    mod_map = build_owner_map("mod", num_vertices, 4)
    greedy_map = build_owner_map("greedy", num_vertices, 4, edges=edges)
    assert cut_edge_fraction(greedy_map, *edges) < cut_edge_fraction(
        mod_map, *edges
    )


def test_cut_edge_fraction_bounds():
    owners = np.array([0, 0, 1, 1])
    src = np.array([0, 0, 2])
    dst = np.array([1, 2, 3])
    assert cut_edge_fraction(owners, src, dst) == pytest.approx(1 / 3)
    assert cut_edge_fraction(owners, np.array([], int), np.array([], int)) == 0.0


# -- validation / registry ----------------------------------------------------


def test_validate_owner_map_rejects_bad_maps():
    with pytest.raises(ConfigurationError):
        validate_owner_map(np.zeros(5, dtype=np.int64), 6, 2)  # wrong shape
    with pytest.raises(ConfigurationError):
        validate_owner_map(np.zeros(5, dtype=float), 5, 2)  # not integer
    with pytest.raises(ConfigurationError):
        validate_owner_map(np.full(5, 2, dtype=np.int64), 5, 2)  # out of range
    with pytest.raises(ConfigurationError):
        validate_owner_map(np.full(5, -1, dtype=np.int64), 5, 2)


def test_build_owner_map_rejects_zero_shards():
    with pytest.raises(ConfigurationError):
        build_owner_map("mod", 10, 0)


def test_owner_map_checksum_is_placement_identity():
    a = build_owner_map("mod", 100, 4)
    b = build_owner_map("hash", 100, 4)
    assert owner_map_checksum(a) == owner_map_checksum(a.astype(np.int32))
    assert owner_map_checksum(a) != owner_map_checksum(b)


def test_resolve_partition_policy():
    assert resolve_partition_policy(None).name == "mod"
    assert resolve_partition_policy("greedy").name == "greedy"
    instance = PARTITION_POLICIES["hash"]
    assert resolve_partition_policy(instance) is instance
    with pytest.raises(ConfigurationError):
        resolve_partition_policy("alphabetical")


def test_register_policy_extensibility():
    @register_policy
    class _AllZero(PartitionPolicy):
        name = "_test_all_zero"

        def owner_map(self, num_vertices, num_shards, edges=None):
            return np.zeros(num_vertices, dtype=np.int64)

    try:
        owners = build_owner_map("_test_all_zero", 4, 1)
        assert np.array_equal(owners, np.zeros(4))
        with pytest.raises(ConfigurationError):
            register_policy(type("Anon", (PartitionPolicy,), {}))
    finally:
        del PARTITION_POLICIES["_test_all_zero"]


# -- the centralization regression --------------------------------------------


def test_no_vertex_modulo_outside_partition_module():
    """Owner-map arithmetic is centralized: no `% num_shards` (or
    `% self.num_shards`) on raw vertex ids survives anywhere in the
    pipeline package outside partition.py."""
    pipeline_dir = (
        Path(__file__).resolve().parent.parent
        / "src" / "repro" / "pipeline"
    )
    pattern = re.compile(r"%\s*(self\.)?num_shards\b")
    offenders = []
    for path in sorted(pipeline_dir.glob("*.py")):
        if path.name == "partition.py":
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if pattern.search(line):
                offenders.append(f"{path.name}:{lineno}: {line.strip()}")
    assert not offenders, "\n".join(offenders)
