"""UpdateEngine policy dispatch."""

import pytest

from conftest import make_batch
from repro.costs import CostParameters
from repro.errors import ConfigurationError
from repro.exec_model.machine import MachineConfig
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.update.abr import ABRConfig
from repro.update.engine import UpdateEngine, UpdatePolicy
from repro.update.result import (
    STRATEGY_BASELINE,
    STRATEGY_HAU,
    STRATEGY_RO,
    STRATEGY_RO_USC,
)

MACHINE = MachineConfig(name="t", num_workers=8)


class FakeHAU:
    """Minimal accelerator stub returning a fixed time."""

    def __init__(self, time=123.0):
        from repro.exec_model.parallel import PhaseTiming

        self.timing = PhaseTiming(time, time, 0.0, time, "chain")
        self.calls = 0

    def simulate_batch(self, stats):
        self.calls += 1
        return self


def _engine(policy, **kwargs):
    graph = AdjacencyListGraph(64)
    return UpdateEngine(graph, policy, machine=MACHINE, **kwargs)


def test_baseline_policy_runs_baseline():
    engine = _engine(UpdatePolicy.BASELINE)
    result = engine.ingest(make_batch([1], [2]))
    assert result.strategy == STRATEGY_BASELINE
    assert STRATEGY_RO in result.alternatives
    assert STRATEGY_RO_USC in result.alternatives
    assert STRATEGY_BASELINE not in result.alternatives


def test_always_ro_and_usc_policies():
    assert _engine(UpdatePolicy.ALWAYS_RO).ingest(make_batch([1], [2])).strategy == STRATEGY_RO
    assert (
        _engine(UpdatePolicy.ALWAYS_RO_USC).ingest(make_batch([1], [2])).strategy
        == STRATEGY_RO_USC
    )


def test_hau_policy_requires_simulator():
    with pytest.raises(ConfigurationError):
        _engine(UpdatePolicy.ALWAYS_HAU)
    with pytest.raises(ConfigurationError):
        _engine(UpdatePolicy.ABR_USC_HAU)


def test_always_hau_uses_simulator():
    hau = FakeHAU()
    engine = _engine(UpdatePolicy.ALWAYS_HAU, hau=hau)
    result = engine.ingest(make_batch([1], [2]))
    assert result.strategy == STRATEGY_HAU
    assert result.time == pytest.approx(123.0)
    assert hau.calls == 1


def test_perfect_abr_picks_cheaper_strategy():
    engine = _engine(UpdatePolicy.PERFECT_ABR)
    result = engine.ingest(make_batch([1], [2]))
    # Single-edge batch: RO's sort overhead loses, oracle picks baseline.
    assert result.strategy == STRATEGY_BASELINE
    assert result.instrumentation_time == 0.0
    assert result.time <= result.alternatives[STRATEGY_RO]


def test_perfect_abr_picks_reorder_on_hot_batch():
    engine = _engine(UpdatePolicy.PERFECT_ABR)
    engine.ingest(make_batch([1] * 40, list(range(2, 42))))
    result = engine.ingest(
        make_batch([1] * 40, [v % 64 for v in range(42, 82)], batch_id=1)
    )
    assert result.strategy == STRATEGY_RO


def test_abr_policy_instruments_active_batches():
    engine = _engine(UpdatePolicy.ABR, abr_config=ABRConfig(n=2, lam=4, threshold=5.0))
    first = engine.ingest(make_batch([1], [2], batch_id=0))
    assert first.abr_active
    assert first.instrumentation_time > 0
    assert first.cad is not None
    second = engine.ingest(make_batch([1], [3], batch_id=1))
    assert not second.abr_active
    assert second.instrumentation_time == 0.0


def test_abr_usc_hau_routes_adverse_batches_to_hau():
    hau = FakeHAU()
    engine = _engine(
        UpdatePolicy.ABR_USC_HAU,
        hau=hau,
        abr_config=ABRConfig(n=2, lam=4, threshold=5.0),
    )
    # Batch 0 (flat) executes under default RO but flips the mode off.
    first = engine.ingest(make_batch([1], [2], batch_id=0))
    assert first.strategy == STRATEGY_RO_USC
    second = engine.ingest(make_batch([2], [3], batch_id=1))
    assert second.strategy == STRATEGY_HAU
    assert hau.calls == 1


def test_abr_usc_hau_keeps_friendly_batches_in_software():
    hau = FakeHAU()
    engine = _engine(
        UpdatePolicy.ABR_USC_HAU,
        hau=hau,
        abr_config=ABRConfig(n=2, lam=4, threshold=5.0),
    )
    engine.ingest(make_batch([1] * 20, list(range(2, 22)), batch_id=0))  # hot
    result = engine.ingest(make_batch([1] * 20, list(range(22, 42)), batch_id=1))
    assert result.strategy == STRATEGY_RO_USC
    assert hau.calls == 0


def test_total_time_accumulates():
    engine = _engine(UpdatePolicy.BASELINE)
    t1 = engine.ingest(make_batch([1], [2], batch_id=0)).time
    t2 = engine.ingest(make_batch([3], [4], batch_id=1)).time
    assert engine.total_time == pytest.approx(t1 + t2)


def test_reordered_property():
    engine = _engine(UpdatePolicy.ALWAYS_RO)
    assert engine.ingest(make_batch([1], [2])).reordered
    engine2 = _engine(UpdatePolicy.BASELINE)
    assert not engine2.ingest(make_batch([1], [2])).reordered
