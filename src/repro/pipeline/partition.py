"""Pluggable shard-placement policies: the owner-map registry.

Sharded execution needs exactly one fact per vertex: *which shard owns it*.
The paper hard-codes ``v mod N`` (Section 4.4) because its HAU routes tasks
with an on-chip modulo; once shards are OS processes (or other hosts) the
mapping is a free parameter, and streaming-partitioning research — Le
Merrer et al.'s stream (re)partitioning, BuffCut's prioritized buffered
partitioning (both in PAPERS.md) — shows placement choice moves the
cut-edge fraction (communication volume) by integer factors under skew.

Every policy here materializes an explicit **owner map**: one integer array
of length ``num_vertices`` mapping vertex id -> owning shard.  The map is
the single source of truth — the sharded runtime slices batches, routes
fetches and validates checkpoints through it, never through scattered
``v % num_shards`` arithmetic (a regression test enforces that this module
is the only place such a modulo exists).  Because per-shard update results
merge through a placement-oblivious stable sort, *any* total owner map
yields bit-identical RunMetrics; policies trade communication, never
correctness.

Built-in policies:

* ``mod`` — the paper's ``v mod N`` (default; matches the HAU routing).
* ``hash`` — splitmix64-mixed placement; decorrelates shard load from any
  structure in the vertex-id space (e.g. ids assigned by crawl order).
* ``greedy`` — linear deterministic greedy streaming partitioner (à la
  Fennel/LDG as used by Le Merrer et al. and BuffCut): edges stream once,
  each newly seen vertex joins the shard holding its neighbor unless that
  shard exceeds a balance-slack capacity; unseen vertices back-fill toward
  perfect balance.  Cuts co-accessed edges apart far less often than
  ``mod`` on hub-heavy streams.

Add policies from anywhere with :func:`register_policy`; registered names
automatically become valid ``RunConfig.shard_policy`` values and CLI
``--shard-policy`` choices.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "PARTITION_POLICIES",
    "DEFAULT_POLICY",
    "GREEDY_SAMPLE_EDGES",
    "PartitionPolicy",
    "build_owner_map",
    "cut_edge_fraction",
    "owner_map_checksum",
    "register_policy",
    "resolve_partition_policy",
    "shard_owner",
    "validate_owner_map",
]

#: Default placement — the paper's mapping.
DEFAULT_POLICY = "mod"

#: Edge budget the greedy policy's stream sample is capped at; beyond this
#: the assignment quality plateaus while the (Python-loop) pass cost grows.
GREEDY_SAMPLE_EDGES = 200_000


def shard_owner(vertices: np.ndarray, num_shards: int) -> np.ndarray:
    """Owner shard of each vertex under the paper's ``v mod N`` mapping.

    This is the *only* place in the codebase that modulo-maps raw vertex
    ids to shards; everything else reads a materialized owner map.
    """
    return vertices % num_shards


def owner_map_checksum(owner_map: np.ndarray) -> int:
    """Stable crc32 of an owner map (placement identity for checkpoints)."""
    return zlib.crc32(np.ascontiguousarray(owner_map, dtype=np.int64).tobytes())


def _owner_dtype(num_shards: int) -> np.dtype:
    """Smallest integer dtype that can hold every shard id."""
    return np.min_scalar_type(max(num_shards - 1, 0))


class PartitionPolicy:
    """One vertex-placement procedure.

    Subclasses set :attr:`name` and implement :meth:`owner_map`.  Policies
    are stateless: everything they need arrives per call, so one instance
    serves every graph.

    Attributes:
        name: registry key; doubles as the ``RunConfig.shard_policy`` value
            and the CLI ``--shard-policy`` name.
        uses_edges: True if the policy improves with an edge sample —
            :class:`~repro.pipeline.sharding.ShardedPipeline` then peeks at
            the head of the (deterministically regenerable) stream and
            passes it in.  Policies must still produce a valid map with
            ``edges=None``.
    """

    name: str = ""
    uses_edges: bool = False

    def owner_map(
        self,
        num_vertices: int,
        num_shards: int,
        edges: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Materialize the owner map.

        Args:
            num_vertices: vertex id universe (ids are ``0..num_vertices-1``).
            num_shards: shard count (>= 1).
            edges: optional ``(src, dst)`` arrays sampled from the stream,
                in arrival order; ignored by input-oblivious policies.

        Returns:
            Integer array of shape ``(num_vertices,)``, each value in
            ``[0, num_shards)`` — a total partition.  Deterministic: the
            same inputs always yield the same map (checkpoint resume
            compares placements byte-for-byte).
        """
        raise NotImplementedError


#: Registry: policy name -> policy instance.
PARTITION_POLICIES: dict[str, PartitionPolicy] = {}


def register_policy(cls: type[PartitionPolicy]) -> type[PartitionPolicy]:
    """Class decorator adding a policy to the registry (last wins)."""
    if not getattr(cls, "name", ""):
        raise ConfigurationError(
            f"partition policy {cls.__name__} must define a non-empty name"
        )
    PARTITION_POLICIES[cls.name] = cls()
    return cls


def resolve_partition_policy(policy=None) -> PartitionPolicy:
    """Map a policy name (or instance, or None = default) to an instance."""
    if isinstance(policy, PartitionPolicy):
        return policy
    name = policy or DEFAULT_POLICY
    try:
        return PARTITION_POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown shard policy {name!r}; registered: "
            f"{', '.join(sorted(PARTITION_POLICIES))}"
        ) from None


def validate_owner_map(
    owner_map: np.ndarray, num_vertices: int, num_shards: int
) -> np.ndarray:
    """Check an owner map is a total function onto valid shard ids.

    Returns the map as a contiguous array of the canonical compact dtype.
    """
    owner_map = np.ascontiguousarray(owner_map)
    if owner_map.shape != (num_vertices,):
        raise ConfigurationError(
            f"owner map must have shape ({num_vertices},), "
            f"got {owner_map.shape}"
        )
    if not np.issubdtype(owner_map.dtype, np.integer):
        raise ConfigurationError(
            f"owner map must be an integer array, got dtype {owner_map.dtype}"
        )
    if len(owner_map) and (
        int(owner_map.min()) < 0 or int(owner_map.max()) >= num_shards
    ):
        raise ConfigurationError(
            f"owner map values must lie in [0, {num_shards}), found "
            f"[{int(owner_map.min())}, {int(owner_map.max())}]"
        )
    return owner_map.astype(_owner_dtype(num_shards), copy=False)


def build_owner_map(
    policy,
    num_vertices: int,
    num_shards: int,
    edges: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Resolve ``policy`` and materialize its validated owner map."""
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    owners = resolve_partition_policy(policy).owner_map(
        num_vertices, num_shards, edges=edges
    )
    return validate_owner_map(owners, num_vertices, num_shards)


def cut_edge_fraction(
    owner_map: np.ndarray, src: np.ndarray, dst: np.ndarray
) -> float:
    """Fraction of edges whose endpoints live on different shards.

    The communication proxy every streaming partitioner minimizes: a cut
    edge's two directions must be applied by two different workers.
    """
    if len(src) == 0:
        return 0.0
    return float(np.mean(owner_map[src] != owner_map[dst]))


def _ensure_all_shards_nonempty(
    owners: np.ndarray, num_shards: int
) -> np.ndarray:
    """Move vertices from the fullest shards into any empty ones.

    Guarantees the documented invariant that every shard owns at least one
    vertex whenever ``num_vertices >= num_shards`` — a worker with an empty
    partition is legal but useless, and hash placement over a tiny universe
    can otherwise produce one.  Deterministic: empty shards fill in
    ascending id order, each taking the highest-id vertex of the currently
    fullest shard (ties broken toward the lowest shard id).
    """
    if len(owners) < num_shards:
        return owners
    loads = np.bincount(owners, minlength=num_shards)
    for empty in np.flatnonzero(loads == 0):
        donor = int(np.argmax(loads))
        victim = int(np.flatnonzero(owners == donor)[-1])
        owners[victim] = empty
        loads[donor] -= 1
        loads[empty] += 1
    return owners


# -- built-in policies --------------------------------------------------------


@register_policy
class ModPolicy(PartitionPolicy):
    """The paper's Section 4.4 mapping: shard ``k`` owns ``v % N == k``."""

    name = "mod"

    def owner_map(self, num_vertices, num_shards, edges=None):
        vertices = np.arange(num_vertices, dtype=np.int64)
        return shard_owner(vertices, num_shards).astype(
            _owner_dtype(num_shards)
        )


@register_policy
class HashPolicy(PartitionPolicy):
    """splitmix64-mixed placement: structure-free, PYTHONHASHSEED-stable."""

    name = "hash"

    def owner_map(self, num_vertices, num_shards, edges=None):
        x = np.arange(num_vertices, dtype=np.uint64)
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
        owners = (x % np.uint64(num_shards)).astype(_owner_dtype(num_shards))
        return _ensure_all_shards_nonempty(owners, num_shards)


@register_policy
class GreedyPolicy(PartitionPolicy):
    """Streaming greedy partitioner with a balance slack (LDG-style).

    One pass over the sampled edge stream, in arrival order:

    * both endpoints unseen  -> both join the least-loaded shard (the new
      edge becomes internal for free);
    * one endpoint unseen    -> it joins its neighbor's shard, unless that
      shard is at its slack capacity (then least-loaded);
    * both seen              -> placement is already decided; do nothing.

    Vertices absent from the sample back-fill toward perfect balance in id
    order, least-loaded shards first.  ``slack`` bounds skew: no shard's
    sample-assigned load exceeds ``ceil(n/N * (1 + slack))``.
    """

    name = "greedy"
    uses_edges = True

    def __init__(self, slack: float = 0.1):
        if slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self.slack = slack

    def owner_map(self, num_vertices, num_shards, edges=None):
        owners = np.full(num_vertices, -1, dtype=np.int64)
        loads = [0] * num_shards
        if edges is not None and num_shards > 1:
            cap = max(
                1, int(np.ceil(num_vertices * (1.0 + self.slack) / num_shards))
            )
            src, dst = edges
            n_sample = min(len(src), GREEDY_SAMPLE_EDGES)
            own = owners  # local alias: this loop is the hot path
            for u, v in zip(
                src[:n_sample].tolist(), dst[:n_sample].tolist()
            ):
                ou, ov = own[u], own[v]
                if ou >= 0 and ov >= 0:
                    continue
                if ou >= 0:  # v joins u's shard if slack allows
                    s = ou if loads[ou] < cap else loads.index(min(loads))
                    own[v] = s
                    loads[s] += 1
                elif ov >= 0:  # u joins v's shard if slack allows
                    s = ov if loads[ov] < cap else loads.index(min(loads))
                    own[u] = s
                    loads[s] += 1
                else:  # fresh edge: co-locate both endpoints
                    s = loads.index(min(loads))
                    own[u] = s
                    loads[s] += 1
                    if u != v:
                        own[v] = s
                        loads[s] += 1
        # Back-fill unseen vertices toward perfect balance: every shard is
        # topped up to its fair share, least-loaded first, in vertex order.
        remaining = np.flatnonzero(owners < 0)
        if len(remaining):
            loads_arr = np.array(loads, dtype=np.int64)
            base, extra = divmod(num_vertices, num_shards)
            target = np.full(num_shards, base, dtype=np.int64)
            # Extra slots go to the least-loaded shards (stable order).
            target[np.argsort(loads_arr, kind="stable")[:extra]] += 1
            deficit = np.maximum(target - loads_arr, 0)
            fill = np.repeat(np.arange(num_shards), deficit)
            if len(fill) < len(remaining):  # greedy overfilled some shard
                pad = np.arange(len(remaining) - len(fill)) % num_shards
                fill = np.concatenate([fill, pad])
            owners[remaining] = fill[: len(remaining)]
        owners = owners.astype(_owner_dtype(num_shards))
        return _ensure_all_shards_nonempty(owners, num_shards)
