"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied.

    Raised eagerly at construction time (e.g. a negative batch size, an
    unknown dataset name, a cost parameter that must be positive) so that
    misconfiguration surfaces before any expensive work starts.
    """


class UnknownDatasetError(ConfigurationError):
    """A dataset name was not found in the registry."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown dataset {name!r}; known datasets: {', '.join(sorted(known))}"
        )


class GraphError(ReproError):
    """An operation on a graph data structure was invalid."""


class VertexOutOfRangeError(GraphError):
    """A vertex id fell outside the graph's vertex universe."""

    def __init__(self, vertex: int, num_vertices: int):
        self.vertex = vertex
        self.num_vertices = num_vertices
        super().__init__(
            f"vertex {vertex} out of range for graph with {num_vertices} vertices"
        )


class StreamExhaustedError(ReproError):
    """More batches were requested than the stream can provide."""


class CheckpointError(ReproError):
    """A pipeline checkpoint could not be written, read, or applied.

    Covers corrupt/truncated checkpoint files (bad magic, version, or
    checksum), resume attempts against a mismatched run configuration, and
    cursors that fall outside the requested stream window.
    """


class SimulationError(ReproError):
    """The hardware simulator reached an inconsistent state."""


class AnalysisError(ReproError):
    """An analysis routine received inputs it cannot interpret."""


class TuneError(ReproError):
    """An auto-tuning search could not be configured, run, or resumed.

    Covers malformed search-space files, dimensions that do not map onto
    :class:`~repro.pipeline.config.RunConfig`, unknown optimizer or
    objective names, and trial journals that do not match the search being
    resumed (different space, optimizer, seed, or trial budget).
    """
