"""Extension experiment: update performance under edge deletions.

The paper's mechanisms are defined for insert+delete streams (HAU performs
"all insertions first before performing deletions", §4.4.3) but its
evaluation is insert-only.  This experiment sweeps the deletion fraction on
an adverse dataset and verifies the input-aware stack degrades gracefully:
ABR keeps recovering the RO penalty and HAU keeps its win, at every deletion
rate.
"""

from _harness import emit
from repro.analysis.report import render_table
from repro.datasets.generators import StreamGenerator
from repro.datasets.profiles import get_dataset
from repro.exec_model.machine import SIMULATED_MACHINE
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.simulator import HAUSimulator
from repro.update.engine import UpdateEngine, UpdatePolicy

FRACTIONS = (0.0, 0.1, 0.25)
BATCH_SIZE = 5_000
NUM_BATCHES = 10


def _generator(fraction):
    base = get_dataset("fb")
    return StreamGenerator(
        src_profile=base.src_profile,
        dst_profile=base.dst_profile,
        num_vertices=base.num_vertices,
        seed=23,
        delete_fraction=fraction,
        hub_in_pool=base.hub_in_pool,
    )

def _total(policy, fraction, hau=None):
    base = get_dataset("fb")
    graph = AdjacencyListGraph(base.num_vertices)
    engine = UpdateEngine(graph, policy, machine=SIMULATED_MACHINE, hau=hau)
    generator = _generator(fraction)
    return sum(
        engine.ingest(generator.generate_batch(i, BATCH_SIZE)).time
        for i in range(NUM_BATCHES)
    )


def run_deletions():
    rows = []
    for fraction in FRACTIONS:
        baseline = _total(UpdatePolicy.BASELINE, fraction)
        always_ro = _total(UpdatePolicy.ALWAYS_RO, fraction)
        abr = _total(UpdatePolicy.ABR, fraction)
        dynamic = _total(
            UpdatePolicy.ABR_USC_HAU, fraction, hau=HAUSimulator()
        )
        rows.append(
            [
                f"{fraction:.0%}",
                baseline,
                baseline / always_ro,
                baseline / abr,
                baseline / dynamic,
            ]
        )
    return rows


def test_ext_deletions(benchmark):
    rows = benchmark.pedantic(run_deletions, rounds=1, iterations=1)
    emit(
        "ext_deletions",
        render_table(
            ["delete fraction", "baseline update (tu)", "always-RO speedup",
             "ABR speedup", "dynamic SW/HW speedup"],
            rows,
            title="Extension: input-aware updates under edge deletions (fb-5K)",
        ),
    )
    for row in rows:
        assert row[2] < 1.0          # RO penalty persists with deletions
        assert row[3] > row[2]       # ABR still recovers
        assert row[4] > 1.0          # dynamic SW/HW still wins
    # The input-aware advantages are stable across deletion rates (within
    # ~15% of the insert-only values), i.e. deletions do not break the
    # trade-offs the techniques exploit.
    for column in (2, 3, 4):
        values = [row[column] for row in rows]
        assert max(values) / min(values) < 1.15, column
