"""Pluggable shard transports: how the coordinator talks to shard workers.

The sharded runtime (:mod:`repro.pipeline.sharding`) is transport-agnostic:
it speaks a small ``(command, payload)`` request/reply protocol to one
channel per shard and never cares how the bytes move.  This module supplies
the channels:

* ``inproc`` — workers are plain objects in the coordinator process;
  commands dispatch as direct function calls.  Zero processes, zero copies,
  zero transport bytes: the baseline that isolates coordination logic from
  IPC cost, and the fastest substrate for tests.
* ``shm`` — one OS process per shard over :func:`multiprocessing.Pipe`,
  with batch arrays shipped through a single
  :mod:`~multiprocessing.shared_memory` segment per batch (the pipe carries
  only the segment name); ``REPRO_SHARD_SHM=0`` forces the batch inline
  through the pipe instead.  This is the one-host production path.
* ``tcp`` — one OS process per shard connected back to the coordinator
  over length-prefixed ``127.0.0.1`` sockets, with connect and read
  timeouts.  Nothing in the framing assumes a shared kernel, so moving a
  worker to another host is a launcher change, not a protocol change —
  the stepping stone to the shared-nothing distributed runtime.

Every transport yields the same protocol semantics, so RunMetrics are
bit-identical across all of them (the golden parity matrix enforces it).

Environment knobs:

* ``REPRO_SHARD_TRANSPORT`` — default transport when a run does not pick
  one explicitly (mirrors ``REPRO_ADJ_FORMAT``).
* ``REPRO_SHARD_SHM`` — set to ``0`` to keep the ``shm`` transport on its
  inline-pipe batch path.
* ``REPRO_SHARD_CONNECT_TIMEOUT`` — seconds the ``tcp`` transport waits
  for every worker to connect back (default 30).
"""

from __future__ import annotations

import os
import pickle
import select
import socket
import struct

import numpy as np

from ..errors import ConfigurationError
from .executor import CellExecutionError, _env_float, mp_context

__all__ = [
    "SHARD_TRANSPORTS",
    "DEFAULT_TRANSPORT",
    "Channel",
    "ShardTransport",
    "make_transport",
    "register_transport",
    "resolve_shard_transport",
]

DEFAULT_TRANSPORT = "shm"

_ENV_VAR = "REPRO_SHARD_TRANSPORT"
_CONNECT_TIMEOUT_VAR = "REPRO_SHARD_CONNECT_TIMEOUT"
_DEFAULT_CONNECT_TIMEOUT = 30.0

try:  # pragma: no cover - availability probe
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm
    _shared_memory = None


def _shm_enabled() -> bool:
    return (
        _shared_memory is not None
        and os.environ.get("REPRO_SHARD_SHM", "1").strip() != "0"
    )


def _connect_timeout() -> float:
    return _env_float(_CONNECT_TIMEOUT_VAR, _DEFAULT_CONNECT_TIMEOUT)


# -- channels -----------------------------------------------------------------


class Channel:
    """One coordinator<->worker message channel.

    All channels move whole Python objects (the protocol's ``(command,
    payload)`` requests and ``(status, value)`` replies) and meter their
    own traffic so the coordinator can expose transport cost as telemetry.

    Attributes:
        bytes_sent / bytes_received: serialized bytes through this channel
            (0 for in-process channels — nothing is serialized).
    """

    bytes_sent: int = 0
    bytes_received: int = 0

    def send(self, obj) -> None:
        raise NotImplementedError

    def recv(self):
        raise NotImplementedError

    def poll(self, timeout: float) -> bool:
        """True once a reply is ready within ``timeout`` seconds."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PipeChannel(Channel):
    """A :func:`multiprocessing.Pipe` connection with explicit framing.

    Pickling explicitly (``send_bytes`` rather than ``send``) costs nothing
    — ``Connection.send`` does the same internally — and buys exact byte
    accounting.
    """

    def __init__(self, conn):
        self._conn = conn
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, obj) -> None:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._conn.send_bytes(data)
        self.bytes_sent += len(data)

    def recv(self):
        data = self._conn.recv_bytes()
        self.bytes_received += len(data)
        return pickle.loads(data)

    def poll(self, timeout: float) -> bool:
        return self._conn.poll(timeout)

    def close(self) -> None:
        self._conn.close()


_FRAME_HEADER = struct.Struct(">Q")


class SocketChannel(Channel):
    """A length-prefixed pickle framing over one TCP socket.

    8-byte big-endian length, then the pickle bytes.  ``TCP_NODELAY`` is
    set because the protocol is strict request/reply — Nagle batching
    would serialize every round trip behind a delayed ACK.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - exotic socket types
            pass
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, obj) -> None:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        # Two sendall calls instead of concatenating: the header is 8
        # bytes but `header + data` copies the whole payload, doubling
        # the transient allocation for multi-megabyte shard batches.
        # TCP_NODELAY costs nothing here — the kernel still coalesces
        # back-to-back writes into full segments.
        self._sock.sendall(_FRAME_HEADER.pack(len(data)))
        self._sock.sendall(data)
        self.bytes_sent += _FRAME_HEADER.size + len(data)

    def _read_exact(self, count: int) -> bytes:
        chunks = []
        while count:
            chunk = self._sock.recv(min(count, 1 << 20))
            if not chunk:
                raise EOFError("socket closed mid-frame")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def recv(self):
        (length,) = _FRAME_HEADER.unpack(self._read_exact(_FRAME_HEADER.size))
        data = self._read_exact(length)
        self.bytes_received += _FRAME_HEADER.size + length
        return pickle.loads(data)

    def poll(self, timeout: float) -> bool:
        readable, _, _ = select.select([self._sock], [], [], timeout)
        return bool(readable)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class InprocChannel(Channel):
    """A worker living in the coordinator process; send = direct dispatch.

    The worker object is built lazily on first send (mirroring process
    transports, where workers come up on first use), replies queue for the
    following :meth:`recv`, and errors convert to protocol ``("error",
    ...)`` replies exactly like a remote worker's.
    """

    _NO_REPLY = object()

    def __init__(self, spec: dict):
        self._spec = spec
        self._worker = None
        self._reply = self._NO_REPLY
        self._closed = False

    def send(self, message) -> None:
        if self._closed:
            raise OSError("channel is closed")
        if self._worker is None:
            from .sharding import ShardWorker  # lazy: avoids import cycle

            self._worker = ShardWorker(self._spec)
        command, payload = message
        try:
            self._reply = ("ok", self._worker.handle(command, payload))
        except Exception as exc:
            self._reply = ("error", (type(exc).__name__, str(exc)))

    def recv(self):
        if self._reply is self._NO_REPLY:
            raise EOFError("no pending reply")
        reply, self._reply = self._reply, self._NO_REPLY
        return reply

    def poll(self, timeout: float) -> bool:
        return self._reply is not self._NO_REPLY

    def close(self) -> None:
        self._closed = True
        self._worker = None


# -- worker entry points (module-level so ``spawn`` can import them) ----------


def _pipe_worker_main(spec: dict, conn) -> None:
    from .sharding import serve_shard_worker

    serve_shard_worker(spec, PipeChannel(conn))


def _tcp_worker_main(spec: dict, host: str, port: int, deadline: float) -> None:
    import time

    from .sharding import serve_shard_worker

    end = time.monotonic() + deadline
    sock = None
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=deadline)
            break
        except OSError:
            if time.monotonic() >= end:
                raise
            time.sleep(0.05)
    sock.settimeout(None)
    channel = SocketChannel(sock)
    channel.send(("hello", spec["shard"]))
    serve_shard_worker(spec, channel)


# -- transports ---------------------------------------------------------------


class ShardTransport:
    """One way of running and reaching shard workers.

    Lifecycle: :meth:`launch` brings up one worker (and one
    :class:`Channel`) per spec; :meth:`close` reaps everything it started,
    is idempotent, and is safe to call after a *partial* launch failure —
    the attributes below are populated incrementally exactly so a failed
    launch leaves enough state behind to tear down.

    Attributes:
        name: registry key; doubles as ``RunConfig.shard_transport`` and
            the CLI ``--shard-transport`` value.
        channels: per-shard channels, in shard order (after launch).
        processes: worker :class:`multiprocessing.Process` objects; empty
            for in-process transports.
    """

    name: str = ""

    def __init__(self):
        self.channels: list[Channel] = []
        self.processes: list = []

    def launch(self, specs: list[dict]) -> None:
        """Bring up one worker per spec (spec includes its ``shard`` id)."""
        raise NotImplementedError

    def pack_batch(self, arrays):
        """Prepare one batch's five arrays for shipment.

        Returns:
            ``(fields, release, shipped_bytes)`` — ``fields`` merges into
            the ``apply`` payload, ``release`` (or None) must run after all
            replies arrive, ``shipped_bytes`` counts out-of-band bytes
            (e.g. the shared-memory segment) for telemetry.
        """
        return {"inline": arrays}, None, 0

    def close(self) -> None:
        """Reap workers and release channels; idempotent."""
        for channel in self.channels:
            try:
                channel.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        self.channels = []
        for proc in self.processes:
            proc.join(timeout=5)
        for proc in self.processes:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self.processes = []


#: Registry: transport name -> transport class.
SHARD_TRANSPORTS: dict[str, type] = {}


def register_transport(cls: type[ShardTransport]) -> type[ShardTransport]:
    """Class decorator adding a transport to the registry (last wins)."""
    if not getattr(cls, "name", ""):
        raise ConfigurationError(
            f"shard transport {cls.__name__} must define a non-empty name"
        )
    SHARD_TRANSPORTS[cls.name] = cls
    return cls


def resolve_shard_transport(name: str | None = None) -> str:
    """Resolve a transport choice to a registry key.

    An explicit ``name`` wins; otherwise ``REPRO_SHARD_TRANSPORT`` is
    consulted, falling back to :data:`DEFAULT_TRANSPORT`.
    """
    if not name:
        name = os.environ.get(_ENV_VAR, "").strip() or DEFAULT_TRANSPORT
    if name not in SHARD_TRANSPORTS:
        raise ConfigurationError(
            f"shard transport must be one of {sorted(SHARD_TRANSPORTS)}, "
            f"got {name!r}"
        )
    return name


def make_transport(name: str | None = None) -> ShardTransport:
    """Construct the named transport (None = resolve env/default)."""
    return SHARD_TRANSPORTS[resolve_shard_transport(name)]()


@register_transport
class InprocTransport(ShardTransport):
    """Workers are in-process objects; the zero-overhead baseline."""

    name = "inproc"

    def launch(self, specs: list[dict]) -> None:
        self.channels = [InprocChannel(spec) for spec in specs]


@register_transport
class ShmTransport(ShardTransport):
    """Pipe-connected worker processes, batches via SharedMemory."""

    name = "shm"

    def launch(self, specs: list[dict]) -> None:
        ctx = mp_context()
        for spec in specs:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_pipe_worker_main,
                args=(spec, child),
                daemon=True,
                name=f"repro-shard-{spec['shard']}",
            )
            proc.start()
            child.close()
            self.channels.append(PipeChannel(parent))
            self.processes.append(proc)

    def pack_batch(self, arrays):
        total = sum(arr.nbytes for arr in arrays)
        if not _shm_enabled() or total == 0:
            return {"inline": arrays}, None, 0
        shm = _shared_memory.SharedMemory(create=True, size=total)
        offset = 0
        for arr in arrays:
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
            )
            view[:] = arr
            offset += arr.nbytes
        fields = {
            "shm": shm.name, "n_ins": len(arrays[0]), "n_del": len(arrays[3]),
        }

        def release():
            # Every worker has copied its slices by reply time; the
            # coordinator owns the segment's whole lifetime.
            shm.close()
            shm.unlink()

        return fields, release, total


@register_transport
class TcpTransport(ShardTransport):
    """Socket-connected worker processes (host-boundary-ready framing)."""

    name = "tcp"

    def __init__(self):
        super().__init__()
        self._listener: socket.socket | None = None

    def launch(self, specs: list[dict]) -> None:
        timeout = _connect_timeout()
        ctx = mp_context()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener = listener
        listener.bind(("127.0.0.1", 0))
        listener.listen(len(specs))
        host, port = listener.getsockname()
        for spec in specs:
            proc = ctx.Process(
                target=_tcp_worker_main,
                args=(spec, host, port, timeout),
                daemon=True,
                name=f"repro-shard-{spec['shard']}",
            )
            proc.start()
            self.processes.append(proc)
        by_shard: dict[int, SocketChannel] = {}
        listener.settimeout(timeout)
        for _ in specs:
            try:
                sock, _addr = listener.accept()
            except (socket.timeout, OSError) as exc:
                raise CellExecutionError(
                    f"shard worker did not connect within {timeout:g}s "
                    f"(REPRO_SHARD_CONNECT_TIMEOUT): {exc!r}"
                ) from exc
            channel = SocketChannel(sock)
            status, shard = channel.recv()
            if status != "hello":  # pragma: no cover - protocol guard
                raise CellExecutionError(
                    f"unexpected first frame from shard worker: {status!r}"
                )
            by_shard[shard] = channel
        self.channels = [by_shard[spec["shard"]] for spec in specs]
        listener.close()
        self._listener = None

    def close(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._listener = None
        super().close()
