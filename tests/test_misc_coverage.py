"""Assorted coverage: perfect-ABR-USC policy, HAU config helpers, reports."""

import pytest

from conftest import make_batch
from repro.analysis.report import render_series, render_table
from repro.exec_model.machine import MachineConfig
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.config import HAUConfig
from repro.update.engine import UpdateEngine, UpdatePolicy
from repro.update.result import STRATEGY_BASELINE, STRATEGY_RO_USC

MACHINE = MachineConfig(name="t", num_workers=8)


def test_perfect_abr_usc_policy_picks_minimum():
    engine = UpdateEngine(
        AdjacencyListGraph(64), UpdatePolicy.PERFECT_ABR_USC, machine=MACHINE
    )
    flat = engine.ingest(make_batch([1], [2]))
    assert flat.strategy == STRATEGY_BASELINE
    engine.ingest(make_batch([1] * 40, list(range(2, 42)), batch_id=1))
    hot = engine.ingest(
        make_batch([1] * 40, [(v + 42) % 64 for v in range(40)], batch_id=2)
    )
    assert hot.strategy == STRATEGY_RO_USC


def test_hau_config_worker_cores_exclude_master():
    config = HAUConfig(master_core=5)
    assert 5 not in config.worker_cores
    assert len(config.worker_cores) == 15
    assert config.num_workers == 15


def test_hau_config_hops_symmetric():
    config = HAUConfig()
    for a in range(16):
        for b in range(16):
            assert config.hops(a, b) == config.hops(b, a)


def test_render_table_custom_float_format():
    out = render_table(["x"], [[1.23456]], float_format="{:.4f}")
    assert "1.2346" in out


def test_render_series_custom_format():
    out = render_series("s", ["a"], [0.123456], y_format="{:.4f}")
    assert "0.1235" in out


def test_engine_results_list_grows():
    engine = UpdateEngine(AdjacencyListGraph(16), UpdatePolicy.BASELINE, machine=MACHINE)
    for i in range(3):
        engine.ingest(make_batch([i], [i + 4], batch_id=i))
    assert len(engine.results) == 3
    assert [r.batch_id for r in engine.results] == [0, 1, 2]


def test_simulated_machine_matches_hau_config():
    from repro.exec_model.machine import SIMULATED_MACHINE

    assert SIMULATED_MACHINE.num_workers == HAUConfig().num_workers
