"""Dynamic graph data structures and batch statistics."""

from .base import BatchUpdateStats, DirectionStats, DynamicGraph, GraphDelta
from .adjacency_list import AdjacencyListGraph
from .degree_aware_hash import DegreeAwareHashGraph
from .edge_log import EdgeLogGraph
from .formats import (
    ADJACENCY_FORMATS,
    DEFAULT_ADJACENCY,
    make_adjacency_graph,
    resolve_adjacency_format,
)
from .hybrid import HybridAdjacencyGraph
from .reference import ReferenceAdjacencyListGraph
from .snapshot import CSRSnapshot, DeltaSnapshotter, take_snapshot
from .stats import (
    FIG5_BUCKETS,
    DegreeMix,
    degree_counts,
    degree_histogram,
    degree_mix,
    top_degrees,
)

__all__ = [
    "BatchUpdateStats",
    "DirectionStats",
    "DynamicGraph",
    "GraphDelta",
    "AdjacencyListGraph",
    "HybridAdjacencyGraph",
    "ReferenceAdjacencyListGraph",
    "DegreeAwareHashGraph",
    "EdgeLogGraph",
    "ADJACENCY_FORMATS",
    "DEFAULT_ADJACENCY",
    "make_adjacency_graph",
    "resolve_adjacency_format",
    "CSRSnapshot",
    "DeltaSnapshotter",
    "take_snapshot",
    "FIG5_BUCKETS",
    "DegreeMix",
    "degree_counts",
    "degree_histogram",
    "degree_mix",
    "top_degrees",
]
