"""Order-lambda clusterable average degree (CAD) — Section 4.2.

::

    CAD_lambda = (b - y) / x

    b = input batch size
    y = number of edges from vertices with 1 <= degree <= lambda
    x = number of unique vertices with degree > lambda

``b - y`` is the edge mass contributed by the batch's *top-degree* vertices
(degree > lambda), so CAD is their average degree: a cheap, online-computable
proxy for "does this batch contain vertex clusters large enough that lock
elimination pays for the reorder?".  If no vertex exceeds lambda, the batch
has no top-degree vertices at all and CAD is defined as 0 (never reorder).

The paper measures degrees per endpoint side (the batch is reordered by both
source and destination); we evaluate CAD on both sides and take the maximum,
since clusterability on *either* side is enough for that side's reorder pass
to pay off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..costs import CostParameters
from ..errors import ConfigurationError
from ..graph.base import BatchUpdateStats, DirectionStats

__all__ = ["CADResult", "cad_from_degrees", "cad_from_stats", "instrumentation_time"]


@dataclass(frozen=True)
class CADResult:
    """A CAD_lambda measurement for one batch.

    Attributes:
        value: the CAD_lambda value (0 when no vertex exceeds lambda).
        x: number of unique vertices with degree > lambda (max over sides).
        y: edge mass from vertices with degree <= lambda (at the max side).
        batch_size: b.
        lam: the lambda cutoff used.
    """

    value: float
    x: int
    y: int
    batch_size: int
    lam: int


def cad_from_degrees(degrees: np.ndarray, batch_size: int, lam: int) -> float:
    """CAD_lambda of one side given its per-vertex batch degrees."""
    if lam < 1:
        raise ConfigurationError(f"lambda must be >= 1, got {lam}")
    if batch_size <= 0 or len(degrees) == 0:
        return 0.0
    top = degrees > lam
    x = int(top.sum())
    if x == 0:
        return 0.0
    y = int(degrees[~top].sum())
    return (batch_size - y) / x


def cad_from_stats(stats: BatchUpdateStats, lam: int) -> CADResult:
    """CAD_lambda of a batch, taking the maximum over both endpoint sides."""
    best_value = 0.0
    best_x = 0
    best_y = stats.batch_size
    for direction in stats.directions:
        degrees = direction.batch_degree
        value = cad_from_degrees(degrees, stats.batch_size, lam)
        if value > best_value:
            top = degrees > lam
            best_value = value
            best_x = int(top.sum())
            best_y = int(degrees[~top].sum())
    return CADResult(
        value=best_value, x=best_x, y=best_y, batch_size=stats.batch_size, lam=lam
    )


def instrumentation_time(
    batch_size: int,
    currently_reordering: bool,
    costs: CostParameters,
    num_workers: int,
) -> float:
    """Modeled overhead of collecting CAD on an ABR-active batch.

    When the batch is being reordered anyway, degree counting piggybacks on
    the vertex-cluster walk (simple per-vertex counters — Fig. 16(a) shows a
    ~0.90x slowdown).  When it is not reordered, a concurrent hash map must
    be populated per edge with atomic increments (~0.54x).  Instrumentation
    overlaps the parallel update, so the per-edge cost divides across the
    worker pool like any other work.
    """
    per_edge = (
        costs.abr_instr_reordered if currently_reordering else costs.abr_instr_hashmap
    )
    return batch_size * per_edge / (num_workers * costs.parallel_efficiency)
