"""Cost-model sensitivity analysis.

The modeled-time substitution (DESIGN.md §2) is only credible if the paper's
qualitative conclusions do not hinge on the exact constants.  This module
re-runs the RO characterization of representative cells while scaling one
cost parameter across a grid, and reports whether the reorder-friendly /
reorder-adverse classification survives.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..costs import CostParameters
from ..datasets.profiles import DatasetProfile
from ..errors import AnalysisError
from .characterization import characterize_cell

__all__ = ["SensitivityPoint", "sweep_parameter", "classification_robustness"]


@dataclass(frozen=True)
class SensitivityPoint:
    """One (parameter scale, cell) measurement."""

    parameter: str
    scale: float
    dataset: str
    batch_size: int
    ro_speedup: float

    @property
    def friendly(self) -> bool:
        return self.ro_speedup > 1.0


def _scaled_costs(parameter: str, scale: float) -> CostParameters:
    base = CostParameters()
    if not hasattr(base, parameter):
        raise AnalysisError(f"unknown cost parameter {parameter!r}")
    value = getattr(base, parameter) * scale
    if parameter in ("parallel_efficiency", "scan_warm_factor"):
        value = min(value, 1.0)
    return dataclasses.replace(base, **{parameter: value})


def sweep_parameter(
    parameter: str,
    scales: tuple[float, ...],
    cells: list[tuple[DatasetProfile, int, int]],
) -> list[SensitivityPoint]:
    """Characterize ``cells`` under scaled values of one cost parameter.

    Args:
        parameter: a :class:`~repro.costs.CostParameters` field name.
        scales: multiplicative factors applied to the default value.
        cells: (profile, batch_size, num_batches) triples.
    """
    points = []
    for scale in scales:
        costs = _scaled_costs(parameter, scale)
        for profile, batch_size, num_batches in cells:
            cell = characterize_cell(
                profile, batch_size, num_batches, costs=costs
            )
            points.append(
                SensitivityPoint(
                    parameter=parameter,
                    scale=scale,
                    dataset=profile.name,
                    batch_size=batch_size,
                    ro_speedup=cell.ro_speedup,
                )
            )
    return points


def classification_robustness(
    points: list[SensitivityPoint],
    expected: dict[tuple[str, int], bool],
) -> float:
    """Fraction of sweep points whose classification matches expectation.

    Args:
        points: sweep output.
        expected: (dataset, batch_size) -> paper-expected friendliness.
    """
    if not points:
        raise AnalysisError("no sensitivity points supplied")
    correct = sum(
        point.friendly == expected[(point.dataset, point.batch_size)]
        for point in points
    )
    return correct / len(points)
