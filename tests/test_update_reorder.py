"""RO (reordered, vertex-centric) update cost model."""

import math

import pytest

from conftest import make_batch
from repro.costs import CostParameters
from repro.exec_model.machine import MachineConfig
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.update.baseline import baseline_update_timing
from repro.update.reorder import reorder_update_timing, sort_time

MACHINE = MachineConfig(name="t", num_workers=8)
COSTS = CostParameters()


def test_sort_time_zero_for_empty_batch():
    assert sort_time(0, COSTS, MACHINE) == 0.0


def test_sort_time_superlinear():
    assert sort_time(20_000, COSTS, MACHINE) > 2 * sort_time(10_000, COSTS, MACHINE)


def test_sort_time_formula():
    b = 1024
    expected = COSTS.reorder_setup + (
        2 * b * math.log2(b) * COSTS.sort_per_elem_level
    ) / (MACHINE.num_workers * COSTS.parallel_efficiency)
    assert sort_time(b, COSTS, MACHINE) == pytest.approx(expected)


def test_reorder_has_no_lock_cost_but_pays_sort():
    graph = AdjacencyListGraph(64)
    stats = graph.apply_batch(make_batch([1], [2]))
    baseline = baseline_update_timing(stats, graph, COSTS, MACHINE)
    reorder = reorder_update_timing(stats, graph, COSTS, MACHINE)
    # For one edge, RO's sort/setup overhead dominates any lock saving.
    assert reorder.makespan > baseline.makespan
    assert reorder.serial_prefix > baseline.serial_prefix


def test_reorder_beats_baseline_on_hot_vertex():
    graph = AdjacencyListGraph(4096)
    graph.apply_batch(make_batch([7] * 600, [(i + 10) % 4096 for i in range(600)]))
    stats = graph.apply_batch(
        make_batch([7] * 500, [(i + 700) % 4096 for i in range(500)], batch_id=1)
    )
    baseline = baseline_update_timing(stats, graph, COSTS, MACHINE)
    reorder = reorder_update_timing(stats, graph, COSTS, MACHINE)
    assert reorder.makespan < baseline.makespan


def test_reorder_chain_is_heaviest_vertex_task():
    graph = AdjacencyListGraph(4096)
    graph.apply_batch(make_batch([7] * 600, [(i + 10) % 4096 for i in range(600)]))
    stats = graph.apply_batch(
        make_batch([7] * 300 + [8], [(i + 700) % 4096 for i in range(301)], batch_id=1)
    )
    timing = reorder_update_timing(stats, graph, COSTS, MACHINE)
    # Vertex 7's cluster cannot be split across threads.
    assert timing.limiter == "chain"


def test_warm_scans_cheaper_than_baseline_cold():
    """RO's repeated same-thread scans of a hot vertex cost less than the
    baseline's repeated cold scans of the same data."""
    graph = AdjacencyListGraph(4096)
    graph.apply_batch(make_batch([7] * 400, [(i + 10) % 4096 for i in range(400)]))
    stats = graph.apply_batch(
        make_batch([7] * 200, [(i + 500) % 4096 for i in range(200)], batch_id=1)
    )
    baseline = baseline_update_timing(stats, graph, COSTS, MACHINE)
    reorder = reorder_update_timing(stats, graph, COSTS, MACHINE)
    # Compare the parallel bodies net of fixed prefixes.
    baseline_body = baseline.makespan - baseline.serial_prefix
    reorder_body = reorder.makespan - reorder.serial_prefix
    assert reorder_body < baseline_body


def test_empty_batch(tiny_graph):
    stats = tiny_graph.apply_batch(make_batch([], []))
    timing = reorder_update_timing(stats, tiny_graph, COSTS, MACHINE)
    assert timing.makespan == pytest.approx(COSTS.phase_spawn)
