"""Software execution model: machines and makespan computation."""

from .machine import HOST_MACHINE, SIMULATED_MACHINE, MachineConfig
from .parallel import PhaseTiming, makespan

__all__ = [
    "HOST_MACHINE",
    "SIMULATED_MACHINE",
    "MachineConfig",
    "PhaseTiming",
    "makespan",
]
