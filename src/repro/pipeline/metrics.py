"""Per-batch and per-run metric collection."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BatchMetrics", "RunMetrics"]


@dataclass(frozen=True)
class BatchMetrics:
    """Everything measured for one input batch.

    Attributes:
        batch_id: position in the stream.
        update_time: modeled update-phase time (includes instrumentation).
        compute_time: modeled compute-round time; 0.0 when the round was
            deferred by OCA (its work is folded into the next batch's round).
        strategy: update strategy that executed.
        deferred: True if OCA deferred this batch's computation.
        aggregated_batches: batches covered by this batch's compute round
            (0 when deferred, 1 normally, 2 for an OCA-aggregated round).
        cad: CAD value measured on this batch, if any.
        overlap: OCA inter-batch locality measured on this batch, if any.
    """

    batch_id: int
    update_time: float
    compute_time: float
    strategy: str
    deferred: bool = False
    aggregated_batches: int = 1
    cad: float | None = None
    overlap: float | None = None

    @property
    def total_time(self) -> float:
        return self.update_time + self.compute_time


@dataclass
class RunMetrics:
    """Aggregate metrics of one pipeline run.

    The paper's per-workload speedups are ratios of these totals between a
    baseline run and a technique run (Section 6.1).
    """

    dataset: str
    batch_size: int
    algorithm: str
    mode: str
    batches: list[BatchMetrics] = field(default_factory=list)

    def add(self, metrics: BatchMetrics) -> None:
        self.batches.append(metrics)

    @property
    def total_update_time(self) -> float:
        return sum(b.update_time for b in self.batches)

    @property
    def total_compute_time(self) -> float:
        return sum(b.compute_time for b in self.batches)

    @property
    def total_time(self) -> float:
        return self.total_update_time + self.total_compute_time

    @property
    def update_share(self) -> float:
        """Fraction of total time spent in updates (Fig. 6's percentage)."""
        total = self.total_time
        return self.total_update_time / total if total else 0.0

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    def strategies_used(self) -> dict[str, int]:
        """Histogram of executed update strategies."""
        histogram: dict[str, int] = {}
        for b in self.batches:
            histogram[b.strategy] = histogram.get(b.strategy, 0) + 1
        return histogram
