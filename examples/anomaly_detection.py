"""Streaming anomaly detection via incremental triangle counting.

The paper motivates streaming graph processing with anomaly and fraud
detection.  A classic signal is a sudden burst of *triangles*: collusion
rings transact densely among themselves, while organic activity adds edges
whose endpoints rarely share neighbors.  This example streams an
interaction graph, maintains the exact triangle count incrementally, and
flags the batch where an injected 12-vertex collusion ring appears.

Run:  python examples/anomaly_detection.py
"""

import os

import numpy as np

from repro import get_dataset
from repro.compute.triangles import IncrementalTriangleCounter
from repro.graph import AdjacencyListGraph

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
BATCH_SIZE = 2_000
NUM_BATCHES = 8 if QUICK else 10  # keep the ring batch (6) in range
RING_BATCH = 6
RING_SIZE = 12


def ring_edges(base_vertex: int) -> tuple[list[int], list[int]]:
    """A fully connected collusion ring of RING_SIZE accounts."""
    src, dst = [], []
    for i in range(RING_SIZE):
        for j in range(RING_SIZE):
            if i != j:
                src.append(base_vertex + i)
                dst.append(base_vertex + j)
    return src, dst


def main() -> None:
    profile = get_dataset("fb")
    generator = profile.generator(seed=3)
    graph = AdjacencyListGraph(profile.num_vertices)
    counter = IncrementalTriangleCounter(graph)

    print(f"monitoring {profile.full_name}-like stream "
          f"({BATCH_SIZE} edges/batch); collusion ring injected at "
          f"batch {RING_BATCH}\n")
    print(f"{'batch':>6s}{'triangles':>11s}{'delta':>8s}{'verdict':>10s}")
    deltas = []
    for batch_id in range(NUM_BATCHES):
        batch = generator.generate_batch(batch_id, BATCH_SIZE)
        if batch_id == RING_BATCH:
            ring_src, ring_dst = ring_edges(base_vertex=40_000)
            batch = type(batch)(
                batch_id=batch_id,
                src=np.concatenate([batch.src[: -len(ring_src)],
                                    np.array(ring_src)]),
                dst=np.concatenate([batch.dst[: -len(ring_dst)],
                                    np.array(ring_dst)]),
                weight=batch.weight,
            )
        before = counter.count
        counter.ingest(batch)
        delta = counter.count - before
        history = deltas[-4:]
        spike = bool(history) and delta > 10 * (sum(history) / len(history) + 1)
        deltas.append(delta)
        verdict = "ANOMALY" if spike else ""
        print(f"{batch_id:>6d}{counter.count:>11d}{delta:>8d}{verdict:>10s}")
        if spike:
            assert batch_id == RING_BATCH

    print(f"\nring of {RING_SIZE} colluders creates "
          f"{RING_SIZE * (RING_SIZE - 1) * (RING_SIZE - 2) // 6} triangles at "
          "once — unmistakable against the organic baseline.")


if __name__ == "__main__":
    main()
