"""Degree-aware hashing structure: functional parity, cost crossover."""

import numpy as np
import pytest

from conftest import make_batch
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.degree_aware_hash import DegreeAwareHashGraph


def test_functionally_identical_to_adjacency_list(small_generator):
    dah = DegreeAwareHashGraph(500)
    adj = AdjacencyListGraph(500)
    for batch in small_generator.batches(1_000, 3):
        dah.apply_batch(batch)
        adj.apply_batch(batch)
    assert dah.num_edges == adj.num_edges
    for v in adj.vertices_with_edges():
        assert dah.out_neighbors(v) == adj.out_neighbors(v)


def test_validation():
    with pytest.raises(ConfigurationError):
        DegreeAwareHashGraph(10, promote_threshold=0)
    with pytest.raises(ConfigurationError):
        DegreeAwareHashGraph(10, hash_probe_cost=0)


def test_search_cost_flat_below_threshold():
    dah = DegreeAwareHashGraph(10, promote_threshold=16, hash_probe_cost=9.0)
    adj = AdjacencyListGraph(10)
    k = np.array([2])
    length = np.array([5])
    new = np.array([1])
    assert dah.sum_search_cost(k, length, new, 2.0)[0] == pytest.approx(
        adj.sum_search_cost(k, length, new, 2.0)[0]
    )


def test_search_cost_probes_above_threshold():
    dah = DegreeAwareHashGraph(10, promote_threshold=16, hash_probe_cost=9.0)
    k = np.array([4])
    length = np.array([1000])
    new = np.array([4])
    assert dah.sum_search_cost(k, length, new, 2.0)[0] == pytest.approx(4 * 9.0)


def test_search_cost_mixed_crossing():
    dah = DegreeAwareHashGraph(10, promote_threshold=16, hash_probe_cost=9.0)
    k = np.array([8])
    length = np.array([12])   # starts flat
    new = np.array([8])       # crosses 16 mid-batch
    cost = dah.sum_search_cost(k, length, new, 2.0)[0]
    pure_linear = AdjacencyListGraph(10).sum_search_cost(k, length, new, 2.0)[0]
    pure_probe = 8 * 9.0
    assert pure_probe < cost < pure_linear


def test_dah_beats_adjacency_baseline_on_high_degree_but_loses_to_usc():
    """The Section 6.2.3 'other data structures' finding, in miniature.

    For a high-degree vertex, DAH's baseline duplicate checks beat the
    adjacency list's linear scans; but the adjacency list *with coalesced
    search* (one scan total) beats paying one probe per edge on top of the
    adjacency walk being free of per-search scans.
    """
    dah = DegreeAwareHashGraph(10)
    adj = AdjacencyListGraph(10)
    k = np.array([500])
    length = np.array([2000])
    new = np.array([500])
    dah_cost = dah.sum_search_cost(k, length, new, 2.0)[0]
    adj_cost = adj.sum_search_cost(k, length, new, 2.0)[0]
    usc_like_cost = 2.9 * 2000 + 7.0 * 500  # one scan + hash-table prep
    assert dah_cost < adj_cost
    assert usc_like_cost < adj_cost
