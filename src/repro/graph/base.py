"""Dynamic graph interface shared by the evaluated data structures.

The paper evaluates the SAGA-Bench *adjacency list* structure (used by
multiple streaming systems) and discusses *degree-aware hashing* (DAH) as an
alternative (Section 6.2.3).  Both implement this interface: batched edge
ingestion with duplicate checking, plus the per-vertex statistics the update
cost models need (batch degree, pre-update adjacency length, new-vs-duplicate
split per direction).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..datasets.stream import Batch
from ..errors import VertexOutOfRangeError

__all__ = ["DirectionStats", "BatchUpdateStats", "GraphDelta", "DynamicGraph"]


@dataclass
class GraphDelta:
    """Changes to one adjacency direction since the last snapshot.

    Recorded by structures with delta tracking enabled (see
    :meth:`DynamicGraph.consume_delta`) so ``DeltaSnapshotter`` can patch a
    cached CSR snapshot without re-reading unchanged adjacencies.

    Attributes:
        owners/targets/weights: newly appended edges in application order
            (each new edge lands at the end of its owner's adjacency, so a
            stable group-by-owner reproduces dict insertion order exactly).
        stale: vertices whose existing slice cannot be patched by appending
            — an existing edge's weight changed or an edge was deleted —
            and must be re-read from the structure.
    """

    owners: np.ndarray
    targets: np.ndarray
    weights: np.ndarray
    stale: set[int]


@dataclass(frozen=True)
class DirectionStats:
    """Per-vertex update statistics for one direction of one batch.

    For the *out* direction, ``vertices`` are the batch's unique sources and
    each source's entries describe updates to its out-adjacency; for the *in*
    direction, destinations and in-adjacency.

    Attributes:
        vertices: unique vertex ids updated in this direction (sorted).
        batch_degree: number of batch edges per vertex (``k_v``).
        length_before: adjacency length before the batch (``L_v``).
        new_edges: entries actually inserted (non-duplicates).
        duplicates: entries that only refreshed an existing edge's weight.
    """

    vertices: np.ndarray
    batch_degree: np.ndarray
    length_before: np.ndarray
    new_edges: np.ndarray

    @property
    def duplicates(self) -> np.ndarray:
        return self.batch_degree - self.new_edges

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return int(self.batch_degree.sum()) if len(self.batch_degree) else 0


@dataclass(frozen=True)
class BatchUpdateStats:
    """Statistics of applying one batch (both directions).

    The update engines derive *all* modeled-time figures from this object, so
    a batch is applied to the structure exactly once no matter how many
    execution strategies are being compared.
    """

    batch_id: int
    batch_size: int
    out: DirectionStats
    inn: DirectionStats
    deleted_edges: int = 0

    @property
    def directions(self) -> tuple[DirectionStats, DirectionStats]:
        return (self.out, self.inn)


class DynamicGraph(abc.ABC):
    """A dynamic graph ingesting batched edge updates.

    Both directions are maintained (out- and in-adjacency), since batch
    reordering must sort by source *and* destination (Section 3.2).
    """

    def __init__(self, num_vertices: int):
        if num_vertices < 1:
            raise VertexOutOfRangeError(num_vertices, num_vertices)
        self.num_vertices = num_vertices
        self.num_edges = 0
        self.batches_applied = 0

    # -- structure-specific operations ------------------------------------
    @abc.abstractmethod
    def apply_batch(self, batch: Batch) -> BatchUpdateStats:
        """Ingest a batch (insertions, then deletions) and return stats.

        Deletion-after-insertion ordering follows Section 4.4.3 ("software
        triggers HAU to perform all insertions first before performing
        deletions").
        """

    @abc.abstractmethod
    def out_neighbors(self, v: int) -> dict[int, float]:
        """Out-adjacency of ``v`` as a target -> weight mapping."""

    @abc.abstractmethod
    def in_neighbors(self, v: int) -> dict[int, float]:
        """In-adjacency of ``v`` as a source -> weight mapping."""

    @abc.abstractmethod
    def sum_search_cost(
        self,
        batch_degree: np.ndarray,
        length_before: np.ndarray,
        new_edges: np.ndarray,
        per_element: float,
    ) -> np.ndarray:
        """Modeled per-vertex cost of the batch's duplicate-check searches.

        For each vertex, ``batch_degree`` searches run against an adjacency
        that starts at ``length_before`` entries and grows by ``new_edges``
        over the batch.  The plain adjacency list pays a linear scan per
        search; structures with cheaper membership tests (DAH) override this.

        Args:
            batch_degree: searches per vertex (``k_v``).
            length_before: adjacency length before the batch (``L_v``).
            new_edges: inserts that grow the adjacency during the batch.
            per_element: modeled cost of touching one adjacency element
                (already adjusted for cache warmth by the caller).

        Returns:
            Array of per-vertex total search costs.
        """

    @abc.abstractmethod
    def adjacency_views(
        self,
    ) -> tuple[dict[int, dict[int, float]], dict[int, dict[int, float]]]:
        """Direct (out, in) adjacency mappings for read-heavy algorithms.

        The compute engines iterate millions of adjacency entries per round;
        this accessor exposes the underlying vertex -> {neighbor: weight}
        mappings so those loops avoid per-neighbor method dispatch.  Callers
        must treat the returned mappings as read-only.
        """

    def consume_phase_overhead(self) -> float:
        """Structure-specific maintenance time accrued by the last batch.

        Structures with background work (e.g. the edge log's archiving)
        report it here; the update engine charges it to the batch regardless
        of strategy, then the accumulator resets.  The plain structures have
        none.
        """
        return 0.0

    def track_deltas(self, enabled: bool = True) -> None:
        """Start (or stop) recording per-batch deltas for snapshot patching.

        Off by default so plain ingest pays no tracking cost; the default
        implementation ignores the request (structures without tracking
        simply keep returning ``None`` from :meth:`consume_delta`).
        """

    def consume_delta(self) -> tuple[GraphDelta, GraphDelta] | None:
        """Return and clear the (out, in) deltas recorded since last call.

        Only meaningful after :meth:`track_deltas`; consumption clears the
        journal, so attach at most one delta consumer per graph.  ``None``
        means "unknown — rebuild snapshots from scratch".
        """
        return None

    def touched_count(self) -> int | None:
        """Number of vertices with at least one incident edge ever, or None
        if the structure does not track it (used to size rebuild-vs-patch
        decisions without materializing the vertex list)."""
        return None

    def notify_external_mutation(self) -> None:
        """Rebuild derived bookkeeping after direct adjacency mutation.

        A few read-mostly algorithms (e.g. the triangle counter) mutate the
        mappings returned by :meth:`adjacency_views` edge by edge instead of
        going through :meth:`apply_batch`; they must call this afterwards so
        maintained state (edge counts, degree caches, delta journals) is
        recomputed from the mappings.
        """
        out_adj, __ = self.adjacency_views()
        self.num_edges = sum(map(len, out_adj.values()))

    # -- shared helpers ----------------------------------------------------
    def out_degree(self, v: int) -> int:
        return len(self.out_neighbors(v))

    def in_degree(self, v: int) -> int:
        return len(self.in_neighbors(v))

    def check_vertices(self, *arrays: np.ndarray) -> None:
        """Validate vertex ids against the universe."""
        for arr in arrays:
            if len(arr) and (int(arr.max()) >= self.num_vertices or int(arr.min()) < 0):
                bad = int(arr.max()) if int(arr.max()) >= self.num_vertices else int(arr.min())
                raise VertexOutOfRangeError(bad, self.num_vertices)
