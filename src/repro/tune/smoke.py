"""End-to-end tune smoke: ``python -m repro.tune.smoke`` (make tune-smoke).

Runs a real ``repro tune`` subprocess twice over one output directory:

1. a 4-trial random search with ``REPRO_TUNE_KILL_AFTER=2`` — the driver
   hard-exits right after the second trial is journaled, mid-search;
2. the identical command without the kill hook — it must resume from the
   journal and finish the remaining trials.

Asserts the resume contract: the journal holds **exactly 4** trial lines
(ids 0..3 — nothing re-evaluated, nothing skipped), the killed run's two
trials carry the scores the resumed run reports, ``best_config.json``
round-trips through :class:`~repro.pipeline.config.RunConfig` and scores at
least the baseline trial, and ``trajectory.csv`` has one row per trial.
This is the CI gate for the auto-tuning path — spaces, optimizers, the
fault-tolerant driver, the journal, and the CLI surface.
"""

from __future__ import annotations

import csv
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from ..pipeline.config import RunConfig
from .driver import _KILL_EXIT_CODE

TRIALS = 4
KILL_AFTER = 2


def _tune_command(out_dir: Path) -> list[str]:
    return [
        sys.executable, "-m", "repro", "tune", "fb",
        "--batch-size", "500",
        "--num-batches", "3",
        "--trials", str(TRIALS),
        "--optimizer", "random",
        "--seed", "3",
        "--out", str(out_dir),
    ]


def _journal_trials(out_dir: Path) -> list[dict]:
    lines = (out_dir / "journal.jsonl").read_text().splitlines()
    rows = [json.loads(line) for line in lines if line.strip()]
    return [row for row in rows if row.get("type") == "trial"]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-tune-smoke-") as tmp:
        out_dir = Path(tmp) / "search"
        command = _tune_command(out_dir)

        env = dict(os.environ, REPRO_TUNE_KILL_AFTER=str(KILL_AFTER))
        killed = subprocess.run(command, env=env, capture_output=True, text=True)
        assert killed.returncode == _KILL_EXIT_CODE, (
            f"expected the kill hook to exit {_KILL_EXIT_CODE}, got "
            f"{killed.returncode}\nstderr: {killed.stderr}"
        )
        after_kill = _journal_trials(out_dir)
        assert len(after_kill) == KILL_AFTER, (
            f"journal should hold {KILL_AFTER} trials after the kill, "
            f"found {len(after_kill)}"
        )
        print(f"PASS kill: search died after trial {KILL_AFTER - 1} "
              f"with {len(after_kill)} journaled trials")

        env = {k: v for k, v in os.environ.items()
               if k != "REPRO_TUNE_KILL_AFTER"}
        resumed = subprocess.run(command, env=env, capture_output=True,
                                 text=True)
        assert resumed.returncode == 0, (
            f"resumed search failed ({resumed.returncode}):\n{resumed.stderr}"
        )

        trials = _journal_trials(out_dir)
        assert len(trials) == TRIALS, (
            f"expected exactly {TRIALS} journaled trials after resume "
            f"(no re-evaluation, no skips), found {len(trials)}"
        )
        assert [t["trial_id"] for t in trials] == list(range(TRIALS)), (
            f"trial ids out of order: {[t['trial_id'] for t in trials]}"
        )
        for early, late in zip(after_kill, trials):
            assert early == late, (
                f"resume rewrote trial {early['trial_id']}: "
                f"{early} != {late}"
            )
        print(f"PASS resume: exactly {TRIALS} trials, "
              f"pre-kill records untouched")

        best = json.loads((out_dir / "best_config.json").read_text())
        RunConfig.from_dict(best["config"])  # must round-trip
        baseline = next(t for t in trials if t["trial_id"] == 0)
        assert baseline["score"] is not None, "baseline trial failed"
        assert best["score"] >= baseline["score"], (
            f"best {best['score']} below the default config's "
            f"{baseline['score']}"
        )
        print(f"PASS best: score {best['score']:.6g} >= baseline "
              f"{baseline['score']:.6g}, config round-trips")

        with open(out_dir / "trajectory.csv") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == TRIALS, (
            f"trajectory.csv has {len(rows)} rows for {TRIALS} trials"
        )
        print("PASS trajectory: one CSV row per trial")
    print("tune smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
