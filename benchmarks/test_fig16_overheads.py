"""Fig. 16: ABR instrumentation and OCA bookkeeping overheads.

Paper: (a) reordered ABR-active batches slow to ~0.90x from CAD collection;
non-reordered active batches slow to ~0.54x (concurrent hash map); inert
batches are untouched.  (b) OCA's latest_bid bookkeeping costs ~1-2% on top
of ABR+USC.
"""

from _harness import CellRun, emit, geomean, record, run_pipeline
from repro.analysis.report import render_kv
from repro.costs import DEFAULT_COSTS
from repro.datasets.profiles import get_dataset
from repro.exec_model.machine import HOST_MACHINE
from repro.update.cad import instrumentation_time

REORDERED_CELLS = [("wiki", 100_000), ("talk", 100_000), ("yt", 100_000)]
NONREORDERED_CELLS = [("lj", 100_000), ("patents", 100_000), ("fb", 100_000)]


def run_fig16():
    workers = HOST_MACHINE.num_workers
    reordered = []
    for name, size in REORDERED_CELLS:
        cell = CellRun(get_dataset(name), size)
        instr = instrumentation_time(size, True, DEFAULT_COSTS, workers)
        batch_time = cell.usc[0]
        reordered.append(batch_time / (batch_time + instr))
    nonreordered = []
    for name, size in NONREORDERED_CELLS:
        cell = CellRun(get_dataset(name), size)
        instr = instrumentation_time(size, False, DEFAULT_COSTS, workers)
        batch_time = cell.baseline[0]
        nonreordered.append(batch_time / (batch_time + instr))
    # (b): OCA bookkeeping on top of ABR+USC (wiki-100K).
    plain = run_pipeline("wiki", 100_000, 4, algorithm="none", mode="abr_usc")
    oca = run_pipeline(
        "wiki", 100_000, 4, algorithm="none", mode="abr_usc", use_oca=True
    )
    oca_ratio = plain.total_update_time / oca.total_update_time
    return geomean(reordered), geomean(nonreordered), oca_ratio


def test_fig16_overheads(benchmark):
    reordered, nonreordered, oca_ratio = benchmark.pedantic(
        run_fig16, rounds=1, iterations=1
    )
    record(
        "fig16_overheads",
        {"reordered": reordered, "nonreordered": nonreordered, "oca": oca_ratio},
    )
    emit(
        "fig16_overheads",
        render_kv(
            "Fig. 16: instrumentation overheads (active-batch slowdown factor)",
            {
                "(a) reordered ABR-active batches": reordered,
                "(a) non-reordered ABR-active batches": nonreordered,
                "(b) ABR+USC+OCA vs ABR+USC (update)": oca_ratio,
                "paper": "(a) 0.90x / 0.54x, (b) ~0.99x",
            },
        ),
    )
    assert 0.80 < reordered < 1.0        # cheap counter piggyback
    assert 0.35 < nonreordered < 0.80    # costly concurrent hash map
    assert nonreordered < reordered
    assert 0.95 < oca_ratio <= 1.0       # OCA bookkeeping nearly free
