"""Tile cache residency model."""

import pytest

from repro.hau.cache import TileCache
from repro.hau.config import HAUConfig

CFG = HAUConfig()


def _cache():
    return TileCache(CFG)


def test_first_access_misses_to_l3():
    cache = _cache()
    profile = cache.access_vertex(7, scan_lines=10.0, footprint_lines=10,
                                  l3_hit_probability=1.0, remote_hops_cycles=4.0)
    assert profile.local_private == 0.0
    assert profile.local_l3 > 0
    assert profile.lines == 10.0


def test_second_access_hits_private_cache():
    cache = _cache()
    cache.access_vertex(7, 10.0, 10, 1.0, 4.0)
    profile = cache.access_vertex(7, 10.0, 10, 1.0, 4.0)
    assert profile.local_private > 0
    assert profile.local_l3 == 0.0
    # Private hits stream cheaper than L3 fills.
    assert profile.cycles < CFG.l3_stream_cycles * 10


def test_dram_share_follows_l3_probability():
    cache = _cache()
    profile = cache.access_vertex(7, 100.0, 100, l3_hit_probability=0.4,
                                  remote_hops_cycles=4.0)
    interior = profile.lines - profile.remote
    assert profile.local_l3 == pytest.approx(interior * 0.4)
    assert profile.dram == pytest.approx(interior * 0.6)


def test_boundary_lines_counted_remote():
    cache = _cache()
    profile = cache.access_vertex(7, 50.0, 50, 1.0, 4.0)
    assert profile.remote == pytest.approx(CFG.boundary_share_probability)
    assert profile.local_fraction == pytest.approx(1 - profile.remote / 50.0)


def test_lru_eviction_respects_capacity():
    cache = _cache()
    capacity = CFG.l1_lines + CFG.l2_lines
    per_vertex = 100
    n_vertices = capacity // per_vertex + 10
    for v in range(n_vertices):
        cache.access_vertex(v, float(per_vertex), per_vertex, 1.0, 4.0)
    assert cache._resident_lines <= capacity
    # Vertex 0 (oldest) got evicted; re-access misses to L3.
    profile = cache.access_vertex(0, float(per_vertex), per_vertex, 1.0, 4.0)
    assert profile.local_private == 0.0


def test_footprint_growth_updates_residency():
    cache = _cache()
    cache.access_vertex(7, 4.0, 4, 1.0, 4.0)
    cache.access_vertex(7, 8.0, 8, 1.0, 4.0)
    assert cache._resident[7] == 8
    assert cache._resident_lines == 8


def test_access_profile_merge():
    cache = _cache()
    a = cache.access_vertex(1, 10.0, 10, 1.0, 4.0)
    b = cache.access_vertex(2, 20.0, 20, 1.0, 4.0)
    a.merge(b)
    assert a.lines == 30.0
    assert a.cycles > 0
