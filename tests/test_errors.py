"""Exception hierarchy behaviour."""

import pytest

from repro.errors import (
    AnalysisError,
    ConfigurationError,
    GraphError,
    ReproError,
    SimulationError,
    StreamExhaustedError,
    UnknownDatasetError,
    VertexOutOfRangeError,
)


def test_all_errors_derive_from_repro_error():
    for exc in (
        ConfigurationError,
        UnknownDatasetError,
        GraphError,
        VertexOutOfRangeError,
        StreamExhaustedError,
        SimulationError,
        AnalysisError,
    ):
        assert issubclass(exc, ReproError)


def test_unknown_dataset_error_lists_known_names():
    err = UnknownDatasetError("nope", ["lj", "wiki"])
    assert "nope" in str(err)
    assert "lj" in str(err) and "wiki" in str(err)
    assert isinstance(err, ConfigurationError)


def test_vertex_out_of_range_message():
    err = VertexOutOfRangeError(10, 5)
    assert "10" in str(err) and "5" in str(err)
    assert err.vertex == 10 and err.num_vertices == 5


def test_errors_catchable_as_repro_error():
    with pytest.raises(ReproError):
        raise UnknownDatasetError("x", [])
