"""Cache-controller scan logic (Fig. 10/11 workflow).

Per update task the controller: receives the TaskReq from the message
receive unit (MSHR allocate, FIFO push, MSHR free), fetches the vertex's
edge-data cachelines, scans each returning line with dedicated compare logic
(no CPU search instructions), stops on a hit, and otherwise hands the write
operation back to the core through the FIFO.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .cache import AccessProfile, TileCache
from .config import HAUConfig
from .tasks import VertexTaskCluster

__all__ = ["ClusterCost", "scan_lines_for_cluster", "process_cluster"]


@dataclass(frozen=True)
class ClusterCost:
    """Modeled consumer-side cost of one vertex's task cluster.

    Attributes:
        cycles: total consumer-core + controller cycles.
        access: classified cacheline accesses.
        tasks: tasks in the cluster.
    """

    cycles: float
    access: AccessProfile
    tasks: int


def scan_lines_for_cluster(cluster: VertexTaskCluster, config: HAUConfig) -> float:
    """Edge-data cachelines the cluster's searches touch.

    Each of the ``k`` searches scans the current adjacency (stopping early on
    duplicate hits — modeled at half the array — and running to the end for
    inserts, which then grow the array).  Mirrors the software engines' scan
    accounting at cacheline granularity.
    """
    k = cluster.tasks
    length = cluster.length_before
    new = cluster.new_edges
    dup = k - new
    elements = (
        new * (length + max(new - 1, 0) / 2.0)  # misses scan everything
        + dup * (length + new) / 2.0            # hits stop halfway on average
    )
    lines = elements / config.elems_per_line + k  # >=1 line per search
    return lines


def process_cluster(
    cluster: VertexTaskCluster,
    cache: TileCache,
    config: HAUConfig,
    l3_hit_probability: float,
    remote_hops_cycles: float,
    home_is_local: bool = True,
) -> ClusterCost:
    """Model the consumer core executing one vertex's task cluster."""
    scan_lines = scan_lines_for_cluster(cluster, config)
    footprint = math.ceil(
        max(cluster.length_before + cluster.new_edges, 1) / config.elems_per_line
    )
    access = cache.access_vertex(
        vertex=cluster.vertex,
        scan_lines=scan_lines,
        footprint_lines=footprint,
        l3_hit_probability=l3_hit_probability,
        remote_hops_cycles=remote_hops_cycles,
        home_is_local=home_is_local,
    )
    per_task = (
        config.fetch_task_cycles
        + config.controller_overhead_cycles
    )
    insert_cycles = (
        cluster.new_edges * config.core_insert_cycles
        + (cluster.tasks - cluster.new_edges) * config.core_weight_cycles
    )
    cycles = cluster.tasks * per_task + access.cycles + insert_cycles
    return ClusterCost(cycles=cycles, access=access, tasks=cluster.tasks)
