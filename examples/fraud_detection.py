"""Latency-sensitive streaming scenario: transaction-graph monitoring.

Financial fraud detection (one of the paper's motivating applications)
ingests small batches for fast reaction and runs incremental SSSP-style
reachability from a monitored account after every batch.  This example shows
two of the paper's input-aware behaviours on such a workload:

* ABR recognizes the low-degree batches and keeps reordering OFF, avoiding
  the input-oblivious RO penalty;
* OCA stays deactivated at small batch sizes (overlap below threshold), so
  the application never trades reaction latency for throughput.

Run:  python examples/fraud_detection.py
"""

import os

from repro import OCAConfig, RunConfig, get_dataset

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
BATCH_SIZE = 1_000       # small batches: fast reaction to new transactions
NUM_BATCHES = 6 if QUICK else 16


def main() -> None:
    profile = get_dataset("fb")  # timestamped interaction stream
    print(f"monitoring stream: {profile.full_name}, batch size {BATCH_SIZE}\n")

    naive = RunConfig(
        "fb", BATCH_SIZE, algorithm="sssp", mode="always_ro",
        num_batches=NUM_BATCHES,
    ).run()
    aware = RunConfig(
        "fb", BATCH_SIZE, algorithm="sssp", mode="abr_usc",
        use_oca=True, oca=OCAConfig(overlap_threshold=0.25),
        num_batches=NUM_BATCHES,
    ).run()

    print("reaction latency per batch (update + compute, modeled tu):")
    print(f"{'batch':>6s}{'always-RO':>14s}{'input-aware':>14s}")
    for ro_batch, aware_batch in zip(naive.batches, aware.batches):
        print(f"{ro_batch.batch_id:>6d}{ro_batch.total_time:>14.0f}"
              f"{aware_batch.total_time:>14.0f}")

    print(f"\ntotals: always-RO {naive.total_time:.0f} tu, "
          f"input-aware {aware.total_time:.0f} tu "
          f"({naive.total_time / aware.total_time:.2f}x faster)")
    print("strategies:", aware.strategies_used(),
          "(ABR turned reordering off for the low-degree batches)")
    deferred = sum(b.deferred for b in aware.batches)
    print(f"OCA deferrals: {deferred} "
          "(granularity never coarsened at this batch size)")
    assert deferred == 0


if __name__ == "__main__":
    main()
