"""Paper-target registry and the fidelity report."""

import pytest

from repro.analysis.experiments import ExperimentStore
from repro.analysis.paper_targets import PAPER_TARGETS, PaperTarget, fidelity_report
from repro.cli import main


def test_targets_cover_every_headline_artifact():
    experiments = {t.experiment for t in PAPER_TARGETS}
    assert {
        "fig01_headline", "fig06_update_time_share", "fig13_abr_usc",
        "table3_hau", "fig14_oca", "fig16_overheads",
        "fig18_abr_parameters", "fig19_hau_work_distribution", "fig20_hau_noc",
    } <= experiments


def test_targets_bands_contain_direction():
    for target in PAPER_TARGETS:
        assert target.low < target.high, target.description


def test_within():
    target = PaperTarget("x", "k", "d", 1.0, 0.5, 1.5)
    assert target.within(1.0)
    assert not target.within(2.0)


def test_fidelity_report_missing_and_ok(tmp_path):
    store = ExperimentStore(tmp_path)
    store.record("fig01_headline", {
        "wiki_ro": 3.0, "uk_ro": 0.6, "uk_abr": 0.85, "uk_hw": 1.3,
    })
    rows = fidelity_report(store)
    by_desc = {r["description"]: r for r in rows}
    assert by_desc["Fig.1(a) wiki RO update speedup @100K"]["status"] == "ok"
    assert by_desc["Table 3 HAU update-speedup geomean (applied cells)"]["status"] == "missing"


def test_fidelity_report_out_of_band(tmp_path):
    store = ExperimentStore(tmp_path)
    store.record("fig01_headline", {
        "wiki_ro": 99.0, "uk_ro": 0.6, "uk_abr": 0.85, "uk_hw": 1.3,
    })
    rows = fidelity_report(store)
    by_desc = {r["description"]: r for r in rows}
    assert by_desc["Fig.1(a) wiki RO update speedup @100K"]["status"] == "out-of-band"


def test_fidelity_cli(tmp_path, capsys):
    store = ExperimentStore(tmp_path)
    store.record("table3_hau", {"geomean": 2.2, "max": 2.7})
    code = main(["fidelity", "--results", str(tmp_path)])
    out = capsys.readouterr().out
    assert "Reproduction fidelity" in out
    assert "Table 3" in out
    assert code == 0  # missing records are not failures


def test_fidelity_cli_flags_out_of_band(tmp_path, capsys):
    store = ExperimentStore(tmp_path)
    store.record("table3_hau", {"geomean": 99.0, "max": 100.0})
    code = main(["fidelity", "--results", str(tmp_path)])
    assert code == 1
    assert "out-of-band" in capsys.readouterr().out
