"""Telemetry exporters: Prometheus textfile and human-readable summary.

A :class:`~repro.telemetry.core.TelemetrySnapshot` renders to

* the Prometheus *textfile collector* exposition format
  (:func:`to_prometheus` / :func:`write_prometheus_textfile`), for scraping
  run-level metrics off disk with ``node_exporter``;
* a human-readable key/value summary (:func:`render_summary`), used by the
  CLI after instrumented runs.

Metric naming: telemetry names are dotted (``usc.hash_hits``); Prometheus
names replace dots with underscores under a ``repro_`` prefix
(``repro_usc_hash_hits_total``).  Spans export seconds totals and counts;
histograms export count/sum plus cumulative power-of-two ``le`` buckets.
"""

from __future__ import annotations

from pathlib import Path

from .core import MAX_DECISIONS, TelemetrySnapshot

__all__ = ["to_prometheus", "write_prometheus_textfile", "render_summary"]


def _metric_name(name: str, prefix: str) -> str:
    safe = name.replace(".", "_").replace("-", "_").replace("+", "_")
    return f"{prefix}_{safe}"


def to_prometheus(
    snapshot: TelemetrySnapshot,
    prefix: str = "repro",
    labels: dict | None = None,
) -> str:
    """Render a snapshot in the Prometheus exposition format.

    Args:
        snapshot: the telemetry to export.
        prefix: metric-name prefix.
        labels: constant labels stamped on every sample (e.g.
            ``{"dataset": "wiki", "mode": "abr_usc"}``).
    """
    label_str = ""
    if labels:
        inner = ",".join(
            f'{key}="{str(value)}"' for key, value in sorted(labels.items())
        )
        label_str = "{" + inner + "}"
    lines: list[str] = []

    def emit(name: str, kind: str, value: float, suffix: str = "",
             extra_labels: str = "") -> None:
        metric = _metric_name(name, prefix) + suffix
        lines.append(f"# TYPE {metric} {kind}")
        if extra_labels and label_str:
            merged = label_str[:-1] + "," + extra_labels[1:]
        else:
            merged = extra_labels or label_str
        lines.append(f"{metric}{merged} {value:g}")

    for name, value in sorted(snapshot.counters.items()):
        emit(name, "counter", value, suffix="_total")
    for name, value in sorted(snapshot.gauges.items()):
        emit(name, "gauge", value)
    for name, stat in sorted(snapshot.spans.items()):
        emit(name, "counter", stat.total, suffix="_seconds_total")
        emit(name, "counter", stat.count, suffix="_spans_total")
    for name, stat in sorted(snapshot.histograms.items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for exponent, count in stat.buckets:
            cumulative += count
            le = float(2**exponent)
            bucket_labels = (
                label_str[:-1] + f',le="{le:g}"}}'
                if label_str
                else f'{{le="{le:g}"}}'
            )
            lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
        inf_labels = (
            label_str[:-1] + ',le="+Inf"}' if label_str else '{le="+Inf"}'
        )
        lines.append(f"{metric}_bucket{inf_labels} {stat.count}")
        lines.append(f"{metric}_sum{label_str} {stat.total:g}")
        lines.append(f"{metric}_count{label_str} {stat.count}")
    return "\n".join(lines) + "\n"


def write_prometheus_textfile(
    snapshot: TelemetrySnapshot,
    path: str | Path,
    prefix: str = "repro",
    labels: dict | None = None,
) -> Path:
    """Atomically write the exposition text to ``path`` (``.prom`` file).

    Written via a temporary sibling + rename so a concurrently scraping
    textfile collector never reads a half-written file.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(to_prometheus(snapshot, prefix=prefix, labels=labels))
    tmp.replace(path)
    return path


def render_summary(snapshot: TelemetrySnapshot) -> str:
    """Short human-readable digest of a snapshot (CLI post-run inset)."""
    lines = [f"telemetry ({snapshot.level})"]
    if snapshot.spans:
        total = sum(s.total for s in snapshot.spans.values())
        lines.append(f"  spans: {len(snapshot.spans)} names, "
                     f"{total:.4f}s recorded")
    if snapshot.counters:
        lines.append(f"  counters: {len(snapshot.counters)}")
    for name, stat in sorted(snapshot.histograms.items()):
        p = stat.percentiles()
        lines.append(
            f"  {name}: n={stat.count} mean={stat.mean:.4g} "
            f"p50~{p['p50']:.4g} p95~{p['p95']:.4g} p99~{p['p99']:.4g} "
            f"max={stat.max:.4g}"
        )
    if snapshot.decisions:
        kinds: dict[str, int] = {}
        for decision in snapshot.decisions:
            kinds[decision.kind] = kinds.get(decision.kind, 0) + 1
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        lines.append(f"  decisions: {rendered}")
    dropped = snapshot.counter("ledger.dropped")
    if dropped:
        lines.append(
            f"  WARNING: {dropped:.0f} decisions dropped past the "
            f"{MAX_DECISIONS}-entry ledger cap"
        )
    return "\n".join(lines)
