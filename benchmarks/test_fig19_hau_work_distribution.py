"""Fig. 19: HAU work distribution among cores (uk-100K).

Paper (uk-100K, batch 100): ~13,000-13,400 update tasks per core — max core
only ~3% above min and 1.3% above average — while edge-data cachelines per
controller vary much more (max 600% above min), yet throughput holds because
HAU removes remote accesses and search instruction overheads.

Our scaled uk stream reproduces the *shape* (near-uniform tasks, several-fold
more skewed cachelines driven by a few hot hosts' long adjacencies); the
skew magnitude is smaller than the paper's 600% because hot-host adjacencies
only accumulate over ~15 scaled batches rather than 100 full-size ones.
"""

import numpy as np

from _harness import emit, record
from repro.analysis.report import render_kv, render_table
from repro.datasets.profiles import get_dataset
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.simulator import HAUSimulator

#: Scaled stand-in for the paper's batch number 100 (the property needs a
#: mature graph, not a specific index).
BATCH_INDEX = 14


def run_fig19():
    profile = get_dataset("uk")
    graph = AdjacencyListGraph(profile.num_vertices)
    sim = HAUSimulator()
    result = None
    for batch in profile.generator().batches(100_000, BATCH_INDEX + 1):
        result = sim.simulate_batch(graph.apply_batch(batch))
    return result


def test_fig19_hau_work_distribution(benchmark):
    result = benchmark.pedantic(run_fig19, rounds=1, iterations=1)
    rows = [
        [core, result.tasks_per_core[core], result.lines_per_core[core]]
        for core in sorted(result.tasks_per_core)
    ]
    tasks = np.array([result.tasks_per_core[c] for c in sorted(result.tasks_per_core)])
    lines = np.array([result.lines_per_core[c] for c in sorted(result.lines_per_core)])
    summary = {
        "tasks: max/min": tasks.max() / tasks.min(),
        "tasks: max/mean": tasks.max() / tasks.mean(),
        "cachelines: max/min": lines.max() / lines.min(),
        "cachelines: max/mean": lines.max() / lines.mean(),
        "paper": "tasks max/min ~1.03; cachelines max/min ~7 (600% higher)",
    }
    record(
        "fig19_hau_work_distribution",
        {
            "tasks_max_over_min": float(tasks.max() / tasks.min()),
            "lines_max_over_min": float(lines.max() / lines.min()),
        },
    )
    emit(
        "fig19_hau_work_distribution",
        render_table(
            ["core", "update tasks", "edge-data cachelines"],
            rows,
            title=f"Fig. 19: per-core work for uk-100K, batch {BATCH_INDEX}",
            float_format="{:.0f}",
        )
        + "\n\n"
        + render_kv("summary", summary),
    )
    # Tasks distribute near-uniformly under the mod-N hash...
    assert tasks.max() / tasks.min() < 1.15
    # ...while cacheline work is far more skewed (adjacency lengths differ).
    assert lines.max() / lines.min() > 1.5
    assert lines.max() / lines.mean() > tasks.max() / tasks.mean()
