"""Update search coalescing (USC) — Section 4.3, Fig. 8.

USC rides on the reordered organization: since one thread owns all of vertex
``A``'s incoming edges, it can search for *all* of A's targets in a single
scan of A's edge data.  Steps per vertex cluster:

1. populate a small hash table with the cluster's <target, weight> pairs
   (one insert per batch edge);
2. scan A's edge data **once**, probing the hash table per element
   (matches refresh weights and leave the table);
3. insert the remaining (non-matching) pairs.

Relative to RO, a vertex with batch degree ``k`` pays one scan instead of
``k`` — the saving grows with the clusterability (per-vertex edge count) of
the batch, which is exactly what makes high-degree batches USC-friendly.
USC incurs only the small hash-table preparation cost otherwise, so it never
meaningfully degrades low-clusterability batches (Fig. 17's insight).
"""

from __future__ import annotations

import numpy as np

from ..costs import CostParameters
from ..exec_model.machine import MachineConfig
from ..exec_model.parallel import PhaseTiming, makespan
from ..graph.base import BatchUpdateStats, DirectionStats, DynamicGraph
from .reorder import sort_time

__all__ = [
    "usc_direction_costs",
    "usc_update_timing",
    "usc_search_savings",
    "usc_probe_counts",
]


def usc_direction_costs(
    direction: DirectionStats,
    costs: CostParameters,
) -> tuple[float, float]:
    """(total_work, critical_path) of one direction's RO+USC update.

    The coalesced scan always walks the vertex's *pre-batch* edge data once
    (every element must be checked against the hash table); batch-local
    growth is handled by the hash table itself, not by re-scans.
    """
    if direction.num_vertices == 0:
        return 0.0, 0.0
    k = direction.batch_degree.astype(np.float64)
    length = direction.length_before.astype(np.float64)
    new = direction.new_edges.astype(np.float64)
    dup = direction.duplicates.astype(np.float64)
    task = (
        costs.task_sched
        + k * (costs.dispatch + costs.usc_hash_insert)
        + length * costs.usc_scan_elem
        + new * costs.insert
        + dup * costs.weight_update
    )
    return float(task.sum()), float(task.max())


def usc_update_timing(
    stats: BatchUpdateStats,
    graph: DynamicGraph,
    costs: CostParameters,
    machine: MachineConfig,
) -> PhaseTiming:
    """Modeled makespan of the reordered update with search coalescing."""
    total_work = 0.0
    critical_path = 0.0
    for direction in stats.directions:
        work, chain = usc_direction_costs(direction, costs)
        total_work += work
        critical_path = max(critical_path, chain)
    # Deletions run after all insertions (§4.4.3), lock-free under RO.
    total_work += stats.deleted_edges * 2.0 * (costs.dispatch + costs.delete_op)
    prefix = costs.phase_spawn + sort_time(stats.batch_size, costs, machine)
    return makespan(
        total_work=total_work,
        critical_path=critical_path,
        machine=machine,
        efficiency=costs.parallel_efficiency,
        serial_prefix=prefix,
    )


def usc_probe_counts(stats: BatchUpdateStats) -> dict[str, float]:
    """Hash-table operation counts of one batch's RO+USC update.

    Mirrors the cost terms of :func:`usc_direction_costs` as raw operation
    counts (GraphTango-style per-operation telemetry):

    * ``inserts`` — <target, weight> pairs inserted while populating each
      cluster's hash table (one per batch edge, both directions);
    * ``probes`` — hash probes issued by the coalesced scans (one per
      pre-batch edge-data element walked);
    * ``hits`` — probes that matched (duplicates whose weights refresh
      in place).
    """
    inserts = probes = hits = 0.0
    for direction in stats.directions:
        if direction.num_vertices == 0:
            continue
        inserts += float(direction.batch_degree.sum())
        probes += float(direction.length_before.sum())
        hits += float(direction.duplicates.sum())
    return {"inserts": inserts, "probes": probes, "hits": hits}


def usc_search_savings(stats: BatchUpdateStats) -> float:
    """Elements *not* scanned thanks to coalescing, summed over directions.

    A vertex with batch degree ``k`` and pre-batch length ``L`` scans
    ``k * L``-ish elements without USC but only ``L`` with it; the saving is
    ``(k - 1) * L`` elements (ignoring batch-local growth).  Useful for the
    Fig. 17 analysis of where USC pays.
    """
    saved = 0.0
    for direction in stats.directions:
        k = direction.batch_degree.astype(np.float64)
        length = direction.length_before.astype(np.float64)
        saved += float((np.maximum(k - 1.0, 0.0) * length).sum())
    return saved
