"""Cost-model sensitivity analysis.

The modeled-time substitution (DESIGN.md §2) is only credible if the paper's
qualitative conclusions do not hinge on the exact constants.  This module
re-runs the RO characterization of representative cells while scaling one
cost parameter across a grid, and reports whether the reorder-friendly /
reorder-adverse classification survives.

Sweep cells are independent, so :func:`sweep_parameter` fans them out
through the fault-isolating executor (``pipeline.executor.map_cells``):
``jobs > 1`` runs cells in worker processes, and a cell that crashes (a
worker death, a pathological parameter combination) yields a
:class:`SensitivityPoint` carrying its :attr:`~SensitivityPoint.error`
instead of killing the whole Fig. 18-style sweep.  Results are identical to
the serial path at any job count (each cell is self-contained and seeded).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from ..costs import CostParameters
from ..datasets.profiles import DatasetProfile
from ..errors import AnalysisError
from .characterization import characterize_cell

__all__ = ["SensitivityPoint", "sweep_parameter", "classification_robustness"]


@dataclass(frozen=True)
class SensitivityPoint:
    """One (parameter scale, cell) measurement.

    Attributes:
        error: None for a measured point; otherwise a short
            ``"ExceptionType: message"`` string describing why this cell
            failed (its ``ro_speedup`` is NaN in that case).
    """

    parameter: str
    scale: float
    dataset: str
    batch_size: int
    ro_speedup: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def friendly(self) -> bool:
        return self.ro_speedup > 1.0


def _scaled_costs(parameter: str, scale: float) -> CostParameters:
    base = CostParameters()
    if not hasattr(base, parameter):
        raise AnalysisError(f"unknown cost parameter {parameter!r}")
    value = getattr(base, parameter) * scale
    if parameter in ("parallel_efficiency", "scan_warm_factor"):
        value = min(value, 1.0)
    return dataclasses.replace(base, **{parameter: value})


def _sweep_cell(spec) -> SensitivityPoint:
    """Measure one sweep cell (module-level: runs inside worker processes)."""
    parameter, scale, profile, batch_size, num_batches = spec
    cell = characterize_cell(
        profile, batch_size, num_batches, costs=_scaled_costs(parameter, scale)
    )
    return SensitivityPoint(
        parameter=parameter,
        scale=scale,
        dataset=profile.name,
        batch_size=batch_size,
        ro_speedup=cell.ro_speedup,
    )


def sweep_parameter(
    parameter: str,
    scales: tuple[float, ...],
    cells: list[tuple[DatasetProfile, int, int]],
    jobs: int = 1,
) -> list[SensitivityPoint]:
    """Characterize ``cells`` under scaled values of one cost parameter.

    Cells run through the fault-isolating executor: with ``jobs > 1`` they
    execute in worker processes, and any cell that fails is surfaced as an
    error point (see :attr:`SensitivityPoint.error`) while every other
    cell's measurement is returned normally.  Point order and values are
    identical to the serial path regardless of ``jobs``.

    Args:
        parameter: a :class:`~repro.costs.CostParameters` field name.
        scales: multiplicative factors applied to the default value.
        cells: (profile, batch_size, num_batches) triples.
        jobs: worker processes (1 = serial in-process, 0 = all cores).
    """
    from ..pipeline.executor import map_cells

    # Validate the parameter before fanning anything out, so a typo raises
    # immediately instead of surfacing as N identical per-cell errors.
    _scaled_costs(parameter, 1.0)
    specs = [
        (parameter, scale, profile, batch_size, num_batches)
        for scale in scales
        for profile, batch_size, num_batches in cells
    ]

    def error_point(spec, exc: BaseException) -> SensitivityPoint:
        _, scale, profile, batch_size, _ = spec
        return SensitivityPoint(
            parameter=parameter,
            scale=scale,
            dataset=profile.name,
            batch_size=batch_size,
            ro_speedup=math.nan,
            error=f"{type(exc).__name__}: {exc}",
        )

    return map_cells(_sweep_cell, specs, jobs=jobs, on_error=error_point)


def classification_robustness(
    points: list[SensitivityPoint],
    expected: dict[tuple[str, int], bool],
) -> float:
    """Fraction of sweep points whose classification matches expectation.

    Args:
        points: sweep output (must contain no failed points — a sweep with
            errors cannot support a robustness claim, so failures raise).
        expected: (dataset, batch_size) -> paper-expected friendliness.
    """
    if not points:
        raise AnalysisError("no sensitivity points supplied")
    failed = [p for p in points if not p.ok]
    if failed:
        cells = ", ".join(
            f"{p.dataset}@{p.batch_size}x{p.scale:g} ({p.error})" for p in failed
        )
        raise AnalysisError(
            f"{len(failed)} sweep cell(s) failed, robustness is undefined: {cells}"
        )
    correct = sum(
        point.friendly == expected[(point.dataset, point.batch_size)]
        for point in points
    )
    return correct / len(points)
