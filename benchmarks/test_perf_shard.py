"""Wall-clock sharded-ingest benchmark: coordinator overhead and scaling.

Measures real seconds for the update phase (graph mutation is the one
genuinely parallel wall-clock cost in the model, see docs/MODEL.md) on the
highest-vertex-churn stream:

* **serial** — plain in-process ``AdjacencyListGraph.apply_batch``;
* **1 shard** — the same batches through ``ShardedGraph``, so the delta
  against *serial* is pure coordination tax (slicing, IPC, stat merging);
* **N shards** — the scaling direction.

The summary lands in ``results/BENCH_shard.json``; ``make bench-shard``
compares against the committed ``benchmarks/BENCH_shard.json`` baseline.

Honesty notes for the committed baseline: worker spawn/teardown is excluded
(one-time setup, not per-batch cost), and on a single-core box the N-shard
"speedup" is expected to be *below* 1.0 — N processes time-slicing one core
still pay the full coordination tax.  The scaling assertion therefore only
fires under ``REPRO_BENCH_ENFORCE=1`` on a machine with at least
``NUM_SHARDS`` cores; the always-on assertions bound the coordination
overhead, which is measurable anywhere.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _harness import RESULTS_DIR, emit
from repro.analysis.report import render_table
from repro.datasets.profiles import get_dataset
from repro.datasets.stream_cache import cached_batches
from repro.graph.formats import make_adjacency_graph, resolve_adjacency_format
from repro.pipeline.sharding import ShardedGraph

DATASET = "friendster"
BATCH_SIZE = 100_000
NUM_BATCHES = 8
NUM_SHARDS = 4
ROUNDS = 3  # best-of to shave scheduler noise

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_shard.json"


def _batches():
    return list(cached_batches(get_dataset(DATASET), BATCH_SIZE, NUM_BATCHES, seed=7))


def _time_serial_once(batches) -> float:
    graph = make_adjacency_graph(None, get_dataset(DATASET).num_vertices)
    start = time.perf_counter()
    for batch in batches:
        graph.apply_batch(batch)
    return time.perf_counter() - start


def _time_sharded_once(batches, num_shards: int) -> float:
    graph = ShardedGraph(
        get_dataset(DATASET).num_vertices, num_shards,
        adjacency=resolve_adjacency_format(None),
    )
    try:
        graph._ensure_workers()  # spawn outside the timed region
        start = time.perf_counter()
        for batch in batches:
            graph.apply_batch(batch)
        return time.perf_counter() - start
    finally:
        graph.close()


def run_shard() -> dict:
    batches = _batches()
    best_serial = best_one = best_n = float("inf")
    # Interleave the three variants so machine-load drift during the run
    # biases none of the ratios.
    for __ in range(ROUNDS):
        best_serial = min(best_serial, _time_serial_once(batches))
        best_one = min(best_one, _time_sharded_once(batches, 1))
        best_n = min(best_n, _time_sharded_once(batches, NUM_SHARDS))
    return {
        "dataset": DATASET,
        "batch_size": BATCH_SIZE,
        "num_batches": NUM_BATCHES,
        "num_shards": NUM_SHARDS,
        "adjacency": resolve_adjacency_format(None),
        "cpu_cores": os.cpu_count(),
        "serial_s": best_serial,
        "shard1_s": best_one,
        "shardN_s": best_n,
        "overhead_1shard": best_one / best_serial,
        "speedup_Nshard": best_one / best_n,
    }


def test_perf_shard(benchmark):
    result = benchmark.pedantic(run_shard, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_shard.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    emit(
        "perf_shard",
        render_table(
            ["path", "seconds", "vs serial", "vs 1 shard"],
            [
                [f"serial ingest {DATASET}@{BATCH_SIZE} x{NUM_BATCHES}",
                 result["serial_s"], 1.0, "-"],
                ["1 shard (coordination tax)", result["shard1_s"],
                 result["overhead_1shard"], 1.0],
                [f"{NUM_SHARDS} shards ({result['cpu_cores']} cores)",
                 result["shardN_s"], result["shardN_s"] / result["serial_s"],
                 1.0 / result["speedup_Nshard"]],
            ],
            title="Sharded ingest wall-clock benchmark",
        ),
    )
    # Coordination tax backstop on any machine: routing a batch through one
    # worker process must stay within a small constant factor of applying
    # it in-process, or the transport has regressed (e.g. shm fell back to
    # pickling the whole batch per shard, or a per-edge hot loop appeared
    # on the coordinator).
    assert result["overhead_1shard"] < 10.0
    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        assert result["overhead_1shard"] < 4.0, (
            f"1-shard coordination tax is {result['overhead_1shard']:.2f}x "
            f"serial ingest (budget: 4x)"
        )
        cores = os.cpu_count() or 1
        if cores >= NUM_SHARDS:
            # Only meaningful with real parallel hardware; see module note.
            # Sharding must strictly pay for its coordination tax here.
            assert result["speedup_Nshard"] > 1.0, (
                f"{NUM_SHARDS} shards on {cores} cores delivered only "
                f"{result['speedup_Nshard']:.2f}x over 1 shard "
                "(must exceed 1.0x)"
            )
        baseline = (
            json.loads(BASELINE_PATH.read_text())
            if BASELINE_PATH.exists() else None
        )
        if baseline is not None and (
            baseline.get("adjacency", "dict") != result["adjacency"]
        ):
            # Apples-to-apples only: absolute seconds and the coordination
            # tax depend on the worker-side format.
            baseline = None
        if baseline is not None:
            assert result["overhead_1shard"] <= baseline["overhead_1shard"] * 1.5, (
                f"coordination tax regressed >50% vs committed baseline: "
                f"{result['overhead_1shard']:.2f}x vs "
                f"{baseline['overhead_1shard']:.2f}x"
            )
            for key in ("shard1_s", "shardN_s"):
                assert result[key] <= baseline[key] * 2.0, (
                    f"{key} regressed >2x vs committed baseline: "
                    f"{result[key]:.3f}s vs {baseline[key]:.3f}s"
                )
