"""RunConfig: serialization round-trips, validation, and factory behavior."""

import argparse
import dataclasses
import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.compute.oca import OCAConfig
from repro.compute.registry import ALGORITHMS
from repro.costs import ComputeCostParameters, CostParameters
from repro.datasets.profiles import dataset_names
from repro.errors import ConfigurationError
from repro.exec_model.machine import HOST_MACHINE, SIMULATED_MACHINE
from repro.pipeline.config import MACHINE_NAMES, RunConfig
from repro.pipeline.executor import CellSpec
from repro.pipeline.modes import MODES
from repro.update.abr import ABRConfig

# -- config strategy ----------------------------------------------------------

abr_configs = st.builds(
    ABRConfig,
    n=st.integers(1, 32),
    lam=st.sampled_from([64, 256, 1024]),
    threshold=st.floats(1.0, 50_000.0, allow_nan=False),
    default_reorder=st.booleans(),
)

oca_configs = st.builds(
    OCAConfig,
    overlap_threshold=st.floats(0.01, 1.0, allow_nan=False),
    n=st.integers(1, 32),
)

configs = st.builds(
    RunConfig,
    dataset=st.sampled_from(dataset_names()),
    batch_size=st.integers(1, 1_000_000),
    algorithm=st.sampled_from(list(ALGORITHMS)),
    mode=st.sampled_from(sorted(MODES)),
    use_oca=st.booleans(),
    machine=st.sampled_from(["auto", *sorted(MACHINE_NAMES)]),
    seed=st.integers(0, 2**31 - 1),
    num_batches=st.none() | st.integers(1, 1_000),
    pr_tolerance=st.floats(1e-12, 1e-2, allow_nan=False),
    pr_max_rounds=st.integers(1, 500),
    sssp_source=st.none() | st.integers(0, 100_000),
    costs=st.none() | st.just(CostParameters()),
    compute_costs=st.none() | st.just(ComputeCostParameters()),
    abr=st.none() | abr_configs,
    oca=st.none() | oca_configs,
    telemetry=st.sampled_from(["off", "basic", "full"]),
    num_shards=st.integers(1, 8),
    adjacency=st.sampled_from(["dict", "hybrid"]),
    shard_transport=st.sampled_from(["inproc", "shm", "tcp"]),
    shard_policy=st.sampled_from(["mod", "hash", "greedy"]),
)


# -- round trips --------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(configs)
def test_json_round_trip(config):
    assert RunConfig.from_json(config.to_json()) == config


@settings(max_examples=60, deadline=None)
@given(configs)
def test_to_dict_is_plain_json_data(config):
    # No dataclass instances survive to_dict: the document is pure JSON.
    json.dumps(config.to_dict())


@settings(max_examples=60, deadline=None)
@given(configs)
def test_pickle_round_trip(config):
    # Workers receive configs through a process pool; equality and hash
    # must survive the trip.
    restored = pickle.loads(pickle.dumps(config))
    assert restored == config
    assert hash(restored) == hash(config)


@settings(max_examples=40, deadline=None)
@given(configs)
def test_cell_spec_round_trip_preserves_shared_fields(config):
    lifted = RunConfig.from_cell_spec(config.to_cell_spec())
    for field in ("dataset", "batch_size", "algorithm", "mode", "use_oca",
                  "num_batches", "seed"):
        assert getattr(lifted, field) == getattr(config, field)


def test_from_cell_spec_defaults_extras():
    spec = CellSpec(dataset="fb", batch_size=500, algorithm="pr",
                    mode="baseline", use_oca=False, num_batches=3, seed=11)
    config = RunConfig.from_cell_spec(spec)
    assert config.to_cell_spec() == spec
    assert config.pr_tolerance == RunConfig("fb", 500).pr_tolerance


# -- validation ---------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"algorithm": "no_such_algorithm"},
        {"mode": "no_such_mode"},
        {"machine": "tpu"},
        {"batch_size": 0},
        {"telemetry": "verbose"},
        {"num_shards": 0},
        {"shard_transport": "udp"},
        {"shard_policy": "metis"},
    ],
)
def test_invalid_fields_raise(kwargs):
    with pytest.raises(ConfigurationError):
        RunConfig(**{"dataset": "fb", "batch_size": 100, **kwargs})


def test_frozen():
    config = RunConfig("fb", 100)
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.batch_size = 200


# -- derived views ------------------------------------------------------------

def test_machine_auto_resolution():
    assert RunConfig("fb", 100, mode="abr_usc").resolved_machine() is HOST_MACHINE
    for mode in ("hw_only", "dynamic", "always_hau", "abr_usc_hau"):
        config = RunConfig("fb", 100, algorithm="none", mode=mode)
        assert config.requires_hau
        assert config.resolved_machine() is SIMULATED_MACHINE
    forced = RunConfig("fb", 100, machine="simulated")
    assert forced.resolved_machine() is SIMULATED_MACHINE


def test_from_cli_args():
    args = argparse.Namespace(
        dataset=["wiki", "fb"], batch_size=2_000, algorithm="sssp",
        mode="baseline", oca=True, num_batches=4,
    )
    config = RunConfig.from_cli_args(args)
    assert config == RunConfig(
        dataset="wiki", batch_size=2_000, algorithm="sssp", mode="baseline",
        use_oca=True, num_batches=4,
    )
    assert RunConfig.from_cli_args(args, dataset="fb").dataset == "fb"
    # Namespaces without a --telemetry attribute (older callers) default off.
    assert config.telemetry == "off"
    args.telemetry = "basic"
    assert RunConfig.from_cli_args(args).telemetry == "basic"
    # Namespaces without shard flags (older callers) default to shm/mod.
    assert config.shard_transport == "shm"
    assert config.shard_policy == "mod"
    args.shard_transport = "tcp"
    args.shard_policy = "greedy"
    lifted = RunConfig.from_cli_args(args)
    assert lifted.shard_transport == "tcp"
    assert lifted.shard_policy == "greedy"


def test_from_cli_args_resolves_transport_env(monkeypatch):
    args = argparse.Namespace(
        dataset=["fb"], batch_size=500, algorithm="pr", mode="baseline",
        oca=False, num_batches=2,
    )
    monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "inproc")
    assert RunConfig.from_cli_args(args).shard_transport == "inproc"


def test_build_pipeline_creates_telemetry_backend(flat_profile):
    from repro.telemetry.core import NULL_TELEMETRY, Telemetry

    off = RunConfig("custom", 200, algorithm="none", mode="baseline")
    assert off.build_pipeline(profile=flat_profile).telemetry is NULL_TELEMETRY
    full = dataclasses.replace(off, telemetry="full")
    backend = full.build_pipeline(profile=flat_profile).telemetry
    assert isinstance(backend, Telemetry)
    assert backend.level == "full"


def test_build_pipeline_honours_config(flat_profile):
    config = RunConfig(
        "custom", 200, algorithm="pr", mode="baseline",
        pr_tolerance=1e-3, pr_max_rounds=7, num_batches=1,
    )
    pipeline = config.build_pipeline(profile=flat_profile)
    pipeline.run(1)
    assert pipeline._incremental_pr.tolerance == 1e-3
    assert pipeline._incremental_pr.max_rounds == 7
    assert pipeline.engine.policy_name == "baseline"
