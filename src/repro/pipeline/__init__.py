"""Streaming pipeline: run configs, modes, metrics, the staged runner and
the workload matrix."""

from .checkpoint import PipelineCheckpoint, latest_checkpoint
from .config import RunConfig
from .executor import CellExecutionError, CellResult, CellSpec, run_matrix
from .latency import LatencyStats, latency_stats, reaction_latencies
from .metrics import BatchMetrics, RunMetrics
from .modes import MODE_ALIASES, MODES, resolve_mode
from .partition import (
    PARTITION_POLICIES,
    PartitionPolicy,
    build_owner_map,
    register_policy,
)
from .runner import ALGORITHMS, BatchContext, StreamingPipeline
from .transport import SHARD_TRANSPORTS, ShardTransport, register_transport
from .tracing import TraceEvent, TraceWriter, read_trace
from .workloads import DEFAULT_BATCH_CAPS, Workload, workload_matrix

__all__ = [
    "PipelineCheckpoint",
    "latest_checkpoint",
    "RunConfig",
    "CellExecutionError",
    "CellResult",
    "CellSpec",
    "run_matrix",
    "LatencyStats",
    "latency_stats",
    "reaction_latencies",
    "BatchMetrics",
    "RunMetrics",
    "MODE_ALIASES",
    "MODES",
    "resolve_mode",
    "PARTITION_POLICIES",
    "PartitionPolicy",
    "build_owner_map",
    "register_policy",
    "SHARD_TRANSPORTS",
    "ShardTransport",
    "register_transport",
    "ALGORITHMS",
    "BatchContext",
    "StreamingPipeline",
    "TraceEvent",
    "TraceWriter",
    "read_trace",
    "DEFAULT_BATCH_CAPS",
    "Workload",
    "workload_matrix",
]
