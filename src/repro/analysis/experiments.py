"""Experiment result persistence.

Benchmarks and user studies record their measured rows as JSON documents so
later runs can be diffed, aggregated into EXPERIMENTS.md, or compared against
the paper's reported values programmatically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path

from ..errors import AnalysisError

__all__ = ["ExperimentStore"]


def _jsonable(value):
    if is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return value


@dataclass(frozen=True)
class _Record:
    name: str
    payload: dict


class ExperimentStore:
    """A directory of named JSON experiment records.

    Example::

        store = ExperimentStore("results")
        store.record("table3", {"cells": rows, "geomean": 2.6})
        later = store.load("table3")
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise AnalysisError(f"invalid experiment name {name!r}")
        return self.directory / f"{name}.json"

    def record(self, name: str, payload: dict) -> Path:
        """Persist one experiment's payload; returns the file written."""
        path = self._path(name)
        path.write_text(json.dumps(_jsonable(payload), indent=2, sort_keys=True))
        return path

    def load(self, name: str) -> dict:
        """Load a previously recorded experiment.

        Raises:
            AnalysisError: if the record does not exist.
        """
        path = self._path(name)
        if not path.exists():
            raise AnalysisError(f"no recorded experiment named {name!r}")
        return json.loads(path.read_text())

    def names(self) -> list[str]:
        """All recorded experiment names, sorted."""
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def compare(self, name: str, key: str, expected: float, tolerance: float) -> bool:
        """True if a recorded scalar is within ``tolerance`` (relative) of
        ``expected``."""
        value = self.load(name)
        for part in key.split("."):
            value = value[part]
        if expected == 0:
            raise AnalysisError("expected value must be nonzero for relative compare")
        return abs(value - expected) / abs(expected) <= tolerance
