"""Public API surface: imports, exports, docstrings."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_headline_symbols_present():
    # The objects a downstream user needs, importable from the top level.
    for name in (
        "StreamingPipeline", "UpdatePolicy", "get_dataset", "DATASETS",
        "ABRConfig", "ABRController", "HAUSimulator", "OCAController",
        "AdjacencyListGraph", "IncrementalPageRank", "IncrementalSSSP",
        "CostParameters", "workload_matrix",
    ):
        assert name in repro.__all__, name


def test_public_modules_have_docstrings():
    import importlib
    import pkgutil

    missing = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(module_info.name)
        if not (module.__doc__ or "").strip():
            missing.append(module_info.name)
    assert missing == []


def test_public_classes_have_docstrings():
    undocumented = [
        name
        for name in repro.__all__
        if isinstance(getattr(repro, name), type)
        and not (getattr(repro, name).__doc__ or "").strip()
    ]
    assert undocumented == []
