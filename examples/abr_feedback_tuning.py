"""Online feedback tuning of ABR's threshold (the paper's future work).

Section 6.2.3 closes with: "In future work, ABR could be extended with an
online feedback tuning method."  This example deploys ABR with a threshold
badly miscalibrated for the workload (far too high, so reordering never
triggers) and shows the feedback controller converging to a working
threshold within a few ABR-active batches — recovering most of the oracle's
performance without any offline parameter search.

Run:  python examples/abr_feedback_tuning.py
"""

import os

from repro import ABRConfig, HOST_MACHINE, UpdateEngine, UpdatePolicy, get_dataset
from repro.costs import DEFAULT_COSTS
from repro.graph import AdjacencyListGraph
from repro.update.feedback import FeedbackABRController

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
BATCH_SIZE = 10_000
NUM_BATCHES = 12 if QUICK else 24
BAD_THRESHOLD = 50_000.0  # orders of magnitude above any CAD this stream has


def run(policy_label, controller=None):
    profile = get_dataset("wiki")  # reorder-friendly at 10K
    graph = AdjacencyListGraph(profile.num_vertices)
    config = ABRConfig(n=4, threshold=BAD_THRESHOLD)
    engine = UpdateEngine(
        graph, UpdatePolicy.ABR_USC, abr_config=config, abr_controller=controller
    )
    total = 0.0
    decisions = []
    for batch in profile.generator().batches(BATCH_SIZE, NUM_BATCHES):
        result = engine.ingest(batch)
        total += result.time
        decisions.append("RO" if result.reordered else "base")
    return total, decisions, engine


def main() -> None:
    static_total, static_decisions, __ = run("static ABR")
    controller = FeedbackABRController(
        ABRConfig(n=4, threshold=BAD_THRESHOLD),
        DEFAULT_COSTS,
        HOST_MACHINE.num_workers,
    )
    tuned_total, tuned_decisions, engine = run("feedback ABR", controller)

    print(f"workload: wiki @ {BATCH_SIZE}, miscalibrated TH = {BAD_THRESHOLD:g}\n")
    print("per-batch decisions:")
    print("  static  :", " ".join(static_decisions))
    print("  feedback:", " ".join(tuned_decisions))
    print(f"\nthreshold adjustments: {controller.adjustments}")
    print(f"final threshold: {controller.threshold:.0f} "
          f"(paper's offline value: 465)")
    print(f"\nupdate time — static ABR: {static_total:.0f} tu, "
          f"feedback ABR: {tuned_total:.0f} tu "
          f"({static_total / tuned_total:.2f}x faster)")
    assert tuned_total < static_total


if __name__ == "__main__":
    main()
