"""Low-overhead instrumentation core: counters, gauges, histograms, spans.

One :class:`Telemetry` instance accompanies one pipeline run and is threaded
through every subsystem that has something worth measuring (update engine,
OCA, HAU simulator, snapshotter).  Four primitives:

* **counters** — monotonically accumulated floats (``count("usc.hash_hits",
  n)``); merged across worker processes by summation;
* **gauges** — last-written values (``gauge("hau.local_fraction", f)``);
* **histograms** — streaming power-of-two bucket histograms
  (``observe("pipeline.batch_edges", b.size)``) keeping count/sum/min/max;
* **spans** — wall-clock timed regions (``with tel.span("stage.update")``)
  measured with :func:`time.perf_counter`; nested spans record
  independently under their own names.

Plus the **decision ledger**: every input-aware decision (ABR, OCA, the
strategy selector) appends a :class:`Decision` carrying the inputs that
produced it, so a run can answer *why* it executed the way it did.

Disabled runs use :data:`NULL_TELEMETRY`, whose methods are empty and whose
``span()`` returns a shared no-op context manager — the cost of leaving the
instrumentation points in the hot paths is a method call and a branch.  The
``"basic"`` level records counters/gauges/decisions but skips spans and
histograms (no clock reads); ``"full"`` records everything.

:meth:`Telemetry.snapshot` freezes the state into a plain-data, picklable
:class:`TelemetrySnapshot`; snapshots from executor workers merge
deterministically with :func:`merge_snapshots` (counters sum, histograms
combine, span stats pool, ledgers concatenate in merge order).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = [
    "TELEMETRY_LEVELS",
    "Decision",
    "SpanStat",
    "HistogramStat",
    "TelemetrySnapshot",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "make_telemetry",
    "as_telemetry",
    "merge_snapshots",
]

#: Recognized instrumentation levels, least to most detailed.
TELEMETRY_LEVELS = ("off", "basic", "full")

#: Ledger entries kept per run; beyond this, entries are dropped and the
#: ``ledger.dropped`` counter records how many (``repro report`` warns when
#: it is nonzero).
MAX_DECISIONS = 100_000


@dataclass(frozen=True)
class Decision:
    """One recorded decision of an input-aware component.

    Attributes:
        kind: decision point — ``"abr"``, ``"oca"``, ``"strategy"``, or any
            custom label.
        choice: the outcome (e.g. ``"reorder"``, ``"defer"``, a strategy
            label).
        batch_id: the stream position the decision was made at, if any.
        inputs: the values the decision was computed from, as sorted
            ``(name, value)`` pairs (e.g. ``cad`` vs ``threshold``).
    """

    kind: str
    choice: str
    batch_id: int | None
    inputs: tuple[tuple[str, object], ...]

    def input(self, name: str, default=None):
        """Look one input value up by name."""
        for key, value in self.inputs:
            if key == name:
                return value
        return default

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "choice": self.choice,
            "batch_id": self.batch_id,
            "inputs": dict(self.inputs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Decision":
        return cls(
            kind=data["kind"],
            choice=data["choice"],
            batch_id=data.get("batch_id"),
            inputs=tuple(sorted(data.get("inputs", {}).items())),
        )


@dataclass(frozen=True)
class SpanStat:
    """Aggregated wall-clock statistics of one span name.

    Attributes:
        count: completed entries.
        total: summed wall-clock seconds.
        min / max: extreme single-entry durations.
    """

    count: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merged(self, other: "SpanStat") -> "SpanStat":
        return SpanStat(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )


@dataclass(frozen=True)
class HistogramStat:
    """Streaming histogram of one observed value name.

    Values land in power-of-two buckets keyed by ``ceil(log2(v))`` (bucket 0
    holds everything <= 1), so the storage is O(log range) regardless of
    how many values are observed.

    Attributes:
        count: observations.
        total: summed values.
        min / max: extreme observations.
        buckets: sorted ``(bucket_exponent, count)`` pairs.
    """

    count: int
    total: float
    min: float
    max: float
    buckets: tuple[tuple[int, int], ...]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the power-of-two buckets.

        Finds the bucket holding rank ``q * count`` and interpolates
        linearly inside it, clamping the bucket range to the observed
        min/max so single-bucket histograms stay exact at the extremes.
        The estimate is bounded by the bucket resolution: at most a factor
        of 2 off, exact when the bucket holds one distinct value.
        """
        if self.count <= 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        rank = q * self.count
        cumulative = 0
        for exponent, count in self.buckets:
            if cumulative + count >= rank:
                lo = 0.0 if exponent == 0 else float(2 ** (exponent - 1))
                hi = float(2 ** exponent)
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                fraction = (rank - cumulative) / count
                return lo + fraction * (hi - lo)
            cumulative += count
        return self.max

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 estimates, keyed for rendering."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merged(self, other: "HistogramStat") -> "HistogramStat":
        combined = dict(self.buckets)
        for exponent, count in other.buckets:
            combined[exponent] = combined.get(exponent, 0) + count
        return HistogramStat(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
            buckets=tuple(sorted(combined.items())),
        )


def _bucket(value: float) -> int:
    if value <= 1.0:
        return 0
    return max(0, math.ceil(math.log2(value)))


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Frozen, picklable aggregation of one run's telemetry.

    Plain dicts/tuples of primitives only, so snapshots cross process
    boundaries (executor workers), serialize into trace summaries, and
    merge deterministically.
    """

    level: str = "full"
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    decisions: tuple = ()

    def counter(self, name: str, default: float = 0.0) -> float:
        """One counter's value (0 when never incremented)."""
        return self.counters.get(name, default)

    def decisions_of(self, kind: str) -> list[Decision]:
        """Ledger entries of one kind, in recording order."""
        return [d for d in self.decisions if d.kind == kind]

    def merged(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Deterministic pairwise merge (see :func:`merge_snapshots`)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = {**self.gauges, **other.gauges}
        spans = dict(self.spans)
        for name, stat in other.spans.items():
            spans[name] = spans[name].merged(stat) if name in spans else stat
        histograms = dict(self.histograms)
        for name, stat in other.histograms.items():
            histograms[name] = (
                histograms[name].merged(stat) if name in histograms else stat
            )
        return TelemetrySnapshot(
            level=self.level if self.level == other.level else "full",
            counters=counters,
            gauges=gauges,
            spans=spans,
            histograms=histograms,
            decisions=self.decisions + other.decisions,
        )

    def to_dict(self) -> dict:
        """Plain-JSON form (the trace summary record's payload)."""
        return {
            "level": self.level,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": {
                name: {
                    "count": s.count, "total": s.total,
                    "min": s.min, "max": s.max,
                }
                for name, s in sorted(self.spans.items())
            },
            "histograms": {
                name: {
                    "count": h.count, "total": h.total,
                    "min": h.min, "max": h.max,
                    "buckets": [list(pair) for pair in h.buckets],
                }
                for name, h in sorted(self.histograms.items())
            },
            "decisions": [d.to_dict() for d in self.decisions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySnapshot":
        return cls(
            level=data.get("level", "full"),
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            spans={
                name: SpanStat(s["count"], s["total"], s["min"], s["max"])
                for name, s in data.get("spans", {}).items()
            },
            histograms={
                name: HistogramStat(
                    h["count"], h["total"], h["min"], h["max"],
                    tuple((int(e), int(c)) for e, c in h.get("buckets", [])),
                )
                for name, h in data.get("histograms", {}).items()
            },
            decisions=tuple(
                Decision.from_dict(d) for d in data.get("decisions", [])
            ),
        )


class _NullSpan:
    """Shared no-op context manager returned by disabled ``span()`` calls."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live timed region; records into its telemetry on exit."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_Span":
        self._telemetry._span_depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = time.perf_counter() - self._start
        tel = self._telemetry
        tel._span_depth -= 1
        tel._max_span_depth = max(tel._max_span_depth, tel._span_depth + 1)
        record = tel._spans.get(self._name)
        if record is None:
            tel._spans[self._name] = [1, elapsed, elapsed, elapsed]
        else:
            record[0] += 1
            record[1] += elapsed
            if elapsed < record[2]:
                record[2] = elapsed
            if elapsed > record[3]:
                record[3] = elapsed
        timeline = tel.timeline
        if timeline is not None:
            timeline.span(self._name, self._start, elapsed, tel._batch)
        return False


class Telemetry:
    """Recording instrumentation backend (levels ``"basic"`` and ``"full"``).

    Thread-compatible, not thread-safe: one instance per pipeline (the
    executor gives each worker process its own and merges snapshots).

    Args:
        level: ``"basic"`` (counters/gauges/decisions only — no clock
            reads) or ``"full"`` (adds spans and histograms).
    """

    enabled = True

    def __init__(self, level: str = "full"):
        if level not in ("basic", "full"):
            raise ConfigurationError(
                f"telemetry level must be 'basic' or 'full', got {level!r}"
            )
        self.level = level
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._spans: dict[str, list] = {}
        self._hists: dict[str, list] = {}
        self._decisions: list[Decision] = []
        self._span_depth = 0
        self._max_span_depth = 0
        self._full = level == "full"
        self._batch: int | None = None
        # Every full-level backend carries a flight-recorder timeline so
        # shard/executor workers (built via make_telemetry) participate
        # without extra plumbing.  Imported lazily to avoid a cycle.
        if self._full:
            from .timeline import TimelineRecorder
            self.timeline = TimelineRecorder()
        else:
            self.timeline = None

    # -- primitives ---------------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name`` (full level only)."""
        if not self._full:
            return
        record = self._hists.get(name)
        if record is None:
            self._hists[name] = [1, value, value, value, {_bucket(value): 1}]
            return
        record[0] += 1
        record[1] += value
        if value < record[2]:
            record[2] = value
        if value > record[3]:
            record[3] = value
        buckets = record[4]
        b = _bucket(value)
        buckets[b] = buckets.get(b, 0) + 1

    def span(self, name: str):
        """Context manager timing one region under ``name`` (full only)."""
        if not self._full:
            return _NULL_SPAN
        return _Span(self, name)

    def set_batch(self, batch_id: int | None) -> None:
        """Tag subsequent timeline events with the current batch id."""
        self._batch = batch_id

    def decision(self, kind: str, choice: str, batch_id: int | None = None,
                 **inputs) -> None:
        """Append one entry to the decision ledger."""
        if len(self._decisions) >= MAX_DECISIONS:
            self.count("ledger.dropped")
            return
        self._decisions.append(
            Decision(
                kind=kind,
                choice=choice,
                batch_id=batch_id,
                inputs=tuple(sorted(inputs.items())),
            )
        )
        if self.timeline is not None:
            self.timeline.instant(
                f"decision.{kind}:{choice}",
                self._batch if batch_id is None else batch_id,
            )

    def timeline_snapshot(self):
        """Freeze the flight-recorder timeline (``None`` below full)."""
        return None if self.timeline is None else self.timeline.snapshot()

    # -- aggregation --------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the current state into a picklable snapshot."""
        return TelemetrySnapshot(
            level=self.level,
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            spans={
                name: SpanStat(r[0], r[1], r[2], r[3])
                for name, r in self._spans.items()
            },
            histograms={
                name: HistogramStat(
                    r[0], r[1], r[2], r[3], tuple(sorted(r[4].items()))
                )
                for name, r in self._hists.items()
            },
            decisions=tuple(self._decisions),
        )


class NullTelemetry:
    """The disabled backend: every primitive is a no-op.

    A single shared instance (:data:`NULL_TELEMETRY`) serves every
    uninstrumented run; ``span()`` hands back one shared no-op context
    manager so disabled spans allocate nothing.
    """

    enabled = False
    level = "off"
    timeline = None

    __slots__ = ()

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str):
        return _NULL_SPAN

    def set_batch(self, batch_id: int | None) -> None:
        pass

    def decision(self, kind: str, choice: str, batch_id: int | None = None,
                 **inputs) -> None:
        pass

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(level="off")

    def timeline_snapshot(self):
        return None


#: Shared no-op backend used wherever telemetry was not requested.
NULL_TELEMETRY = NullTelemetry()


def make_telemetry(level: str | None):
    """Backend for a named level (``None``/``"off"`` -> the null backend).

    Raises:
        ConfigurationError: for unrecognized level names.
    """
    if level is None or level == "off":
        return NULL_TELEMETRY
    return Telemetry(level)


def as_telemetry(telemetry):
    """Normalize an optional backend argument (``None`` -> null backend)."""
    return NULL_TELEMETRY if telemetry is None else telemetry


def merge_snapshots(snapshots) -> TelemetrySnapshot:
    """Merge worker snapshots left to right (deterministic in input order).

    Counters and span/histogram statistics accumulate; gauges take the
    last-merged value; decision ledgers concatenate.  Merging results in
    submission order makes ``jobs=N`` aggregation identical to ``jobs=1``.
    """
    merged = TelemetrySnapshot(level="off")
    first = True
    for snap in snapshots:
        merged = snap if first else merged.merged(snap)
        first = False
    return merged
