"""The adjacency-list dynamic graph structure (the paper's evaluated one).

SAGA-Bench's adjacency list keeps, per vertex, a growable array of
``<neighbor, weight>`` entries; updating an edge requires a linear duplicate-
check scan of that array (Section 4.3).  We store each vertex's adjacency as a
Python dict (neighbor -> weight) for C-speed *functional* updates, while the
modeled duplicate-check cost charged by the update engines remains that of the
linear array scan the paper's structure performs — the split between real
mutation and modeled time is the library's core substitution (DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from ..datasets.stream import Batch
from .base import BatchUpdateStats, DirectionStats, DynamicGraph

__all__ = ["AdjacencyListGraph"]


class AdjacencyListGraph(DynamicGraph):
    """Dynamic graph with per-vertex adjacency arrays (modeled) / dicts (actual).

    Args:
        num_vertices: size of the vertex id universe.
    """

    def __init__(self, num_vertices: int):
        super().__init__(num_vertices)
        self._out: dict[int, dict[int, float]] = {}
        self._in: dict[int, dict[int, float]] = {}

    # -- queries -----------------------------------------------------------
    def out_neighbors(self, v: int) -> dict[int, float]:
        return self._out.get(v, {})

    def in_neighbors(self, v: int) -> dict[int, float]:
        return self._in.get(v, {})

    def has_edge(self, u: int, v: int) -> bool:
        """True if edge u->v is currently present."""
        return v in self._out.get(u, {})

    def edge_weight(self, u: int, v: int) -> float | None:
        """Current weight of u->v, or None if absent."""
        return self._out.get(u, {}).get(v)

    def adjacency_views(
        self,
    ) -> tuple[dict[int, dict[int, float]], dict[int, dict[int, float]]]:
        return self._out, self._in

    def vertices_with_edges(self) -> list[int]:
        """Vertices with at least one incident edge."""
        return sorted(set(self._out) | set(self._in))

    def sum_search_cost(
        self,
        batch_degree: np.ndarray,
        length_before: np.ndarray,
        new_edges: np.ndarray,
        per_element: float,
    ) -> np.ndarray:
        """Linear-scan model: each search scans the current adjacency.

        Total elements scanned per vertex is ``k * L`` for the pre-existing
        entries plus the ramp contributed by the batch's own inserts (on
        average, every search after the first sees half of the batch's new
        entries already in place).
        """
        k = batch_degree.astype(np.float64)
        scanned = (
            k * length_before.astype(np.float64)
            + np.maximum(k - 1.0, 0.0) * new_edges.astype(np.float64) / 2.0
        )
        return per_element * scanned

    # -- updates -----------------------------------------------------------
    def _apply_direction(
        self,
        adjacency: dict[int, dict[int, float]],
        keys: np.ndarray,
        values: np.ndarray,
        weights: np.ndarray,
    ) -> DirectionStats:
        """Group edges by ``keys`` and merge them into ``adjacency``.

        Duplicate edges (same key/value pair, whether already in the graph or
        repeated inside the batch) overwrite the stored weight — the paper's
        "update the weight only" semantics.
        """
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        values_list = values[order].tolist()
        weights_list = weights[order].tolist()
        verts, starts, counts = np.unique(
            keys_sorted, return_index=True, return_counts=True
        )
        length_before = np.empty(len(verts), dtype=np.int64)
        new_edges = np.empty(len(verts), dtype=np.int64)
        starts_list = starts.tolist()
        counts_list = counts.tolist()
        for i, v in enumerate(verts.tolist()):
            a = starts_list[i]
            c = counts_list[i]
            entry = adjacency.get(v)
            if entry is None:
                entry = {}
                adjacency[v] = entry
            before = len(entry)
            entry.update(zip(values_list[a : a + c], weights_list[a : a + c]))
            length_before[i] = before
            new_edges[i] = len(entry) - before
        return DirectionStats(
            vertices=verts,
            batch_degree=counts,
            length_before=length_before,
            new_edges=new_edges,
        )

    def _delete_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Remove listed edges (both directions); returns edges removed."""
        removed = 0
        for u, v in zip(src.tolist(), dst.tolist()):
            out_entry = self._out.get(u)
            if out_entry is not None and v in out_entry:
                del out_entry[v]
                in_entry = self._in.get(v)
                if in_entry is not None:
                    in_entry.pop(u, None)
                removed += 1
        return removed

    def apply_batch(self, batch: Batch) -> BatchUpdateStats:
        """Ingest a batch: all insertions first, then deletions (§4.4.3)."""
        self.check_vertices(batch.src, batch.dst)
        inserts = batch.insertions
        out_stats = self._apply_direction(
            self._out, inserts.src, inserts.dst, inserts.weight
        )
        in_stats = self._apply_direction(
            self._in, inserts.dst, inserts.src, inserts.weight
        )
        inserted = int(out_stats.new_edges.sum()) if len(out_stats.new_edges) else 0
        deletes = batch.deletions
        deleted = self._delete_edges(deletes.src, deletes.dst) if deletes.size else 0
        self.num_edges += inserted - deleted
        self.batches_applied += 1
        return BatchUpdateStats(
            batch_id=batch.batch_id,
            batch_size=batch.size,
            out=out_stats,
            inn=in_stats,
            deleted_edges=deleted,
        )
