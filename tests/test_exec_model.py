"""Machine config and makespan model."""

import pytest

from repro.errors import ConfigurationError
from repro.exec_model.machine import HOST_MACHINE, SIMULATED_MACHINE, MachineConfig
from repro.exec_model.parallel import makespan


def test_machine_validation():
    with pytest.raises(ConfigurationError):
        MachineConfig(name="bad", num_workers=0)
    with pytest.raises(ConfigurationError):
        MachineConfig(name="bad", num_workers=4, clock_ghz=0)


def test_predefined_machines():
    assert HOST_MACHINE.num_workers > SIMULATED_MACHINE.num_workers
    assert SIMULATED_MACHINE.num_workers == 15  # 16 cores minus the master


def test_makespan_work_bound():
    machine = MachineConfig(name="m", num_workers=10)
    timing = makespan(total_work=1000.0, critical_path=10.0, machine=machine, efficiency=1.0)
    assert timing.makespan == pytest.approx(100.0)
    assert timing.limiter == "work"


def test_makespan_chain_bound():
    machine = MachineConfig(name="m", num_workers=10)
    timing = makespan(total_work=100.0, critical_path=500.0, machine=machine, efficiency=1.0)
    assert timing.makespan == pytest.approx(500.0)
    assert timing.limiter == "chain"


def test_makespan_serial_prefix_added():
    machine = MachineConfig(name="m", num_workers=4)
    timing = makespan(400.0, 0.0, machine, efficiency=1.0, serial_prefix=50.0)
    assert timing.makespan == pytest.approx(150.0)
    assert timing.serial_prefix == 50.0


def test_makespan_efficiency_scales_throughput():
    machine = MachineConfig(name="m", num_workers=10)
    full = makespan(1000.0, 0.0, machine, efficiency=1.0)
    half = makespan(1000.0, 0.0, machine, efficiency=0.5)
    assert half.makespan == pytest.approx(2 * full.makespan)


def test_makespan_rejects_negative_inputs():
    machine = MachineConfig(name="m", num_workers=2)
    with pytest.raises(ConfigurationError):
        makespan(-1.0, 0.0, machine, efficiency=1.0)
    with pytest.raises(ConfigurationError):
        makespan(1.0, 0.0, machine, efficiency=0.0)


def test_makespan_never_below_critical_path():
    machine = MachineConfig(name="m", num_workers=100)
    timing = makespan(10.0, 42.0, machine, efficiency=1.0)
    assert timing.makespan >= 42.0
