"""Degree-adaptive hybrid adjacency structure (pooled arrays + hub hashing).

The per-vertex-dict structure in :mod:`repro.graph.adjacency_list` merges
batches through C-level ``map`` calls, but still pays one dict operation per
edge.  This module stores low-degree vertices — the overwhelming majority
under power-law degree distributions — as contiguous slices of one pooled
numpy block per direction, appended in *insertion order*; vertices whose
degree crosses ``promote_threshold`` are promoted to a per-vertex hash
dict, the software analogue of the paper's degree-aware hashing (DAH,
Section 6.2.3) and of GraphTango's type-switching representation.

The batch apply path is fully vectorized and avoids per-edge work:

* one stable key argsort groups the batch by owner while preserving batch
  order within each owner — exactly the dict graph's untracked insertion
  order, so no second sort is needed to reproduce dict iteration order;
* in-batch repeats are certified absent per owner with a 64-bit signature
  (``bitwise_or.reduceat`` + popcount); only suspicious segments pay a
  local dedup sort;
* membership against existing adjacency is resolved with a scatter-probe
  into a reusable universe-sized array instead of binary searches — O(1)
  random access, a few milliseconds per 100K-edge batch;
* new edges append at slice tails (capacity-doubling, pow2 slots), so
  existing entries are never rewritten on the hot path.

Every observable contract of :class:`AdjacencyListGraph` is preserved
bit-for-bit:

* :class:`~repro.graph.base.DirectionStats` equal the dict graph's exactly
  (golden parity + sharded parity hold under this format);
* per-vertex *dict insertion order* is the pool storage order, so
  materialized adjacency dicts (and the CSR snapshots built from them)
  iterate identically to the dict graph's — the float-accumulating compute
  kernels depend on this;
* the tracked apply path journals appends / stale vertices exactly like
  the dict graph (tracked inserts land in composite dst-ascending order,
  untracked in first-occurrence batch order, matching the dict graph's two
  code paths);
* :meth:`sum_search_cost` stays the *modeled* linear-scan formula — the
  real structure is faster, the charged time must not move.
"""

from __future__ import annotations

import os
from collections import deque
from itertools import compress

import numpy as np

from ..datasets.stream import Batch
from ..telemetry.core import as_telemetry
from .adjacency_list import AdjacencyListGraph, _empty_direction_stats
from .base import BatchUpdateStats, DirectionStats, DynamicGraph, GraphDelta

__all__ = ["HybridAdjacencyGraph", "DEFAULT_PROMOTE_THRESHOLD"]

#: Degree above which a vertex's adjacency moves to a hash dict.  Override
#: per instance (constructor) or globally (``REPRO_ADJ_PROMOTE``).
DEFAULT_PROMOTE_THRESHOLD = 32

_INITIAL_POOL = 1 << 12
_MIN_SLOT = 4
_INT32_MAX = 0x7FFFFFFF
# keys*nv+values stays inside int64 when nv <= 2**31 (nv**2 <= 2**62).
_COMPOSITE_SAFE = 1 << 31


_SLOT_TABLE = np.array(
    [max(_MIN_SLOT, 1 << max(n - 1, 0).bit_length()) for n in range(257)],
    dtype=np.int64,
)


def _slots_for(deg: np.ndarray) -> np.ndarray:
    """Per-vertex slot capacity: next power of two, floored at ``_MIN_SLOT``.

    Table lookup for the common small degrees; float log only for the tail.
    """
    if deg.max(initial=0) <= 256:
        return _SLOT_TABLE[deg]
    exp = np.ceil(np.log2(np.maximum(deg, 1))).astype(np.int64)
    return np.maximum(_MIN_SLOT, np.left_shift(np.int64(1), exp))


def _slot_for(n: int) -> int:
    return max(_MIN_SLOT, 1 << max(n - 1, 0).bit_length())


def _dst_dtype(num_vertices: int):
    """Narrowest integer dtype that holds every vertex id.

    Target storage and the membership probe are the hottest randomly
    accessed arrays; halving their element size roughly halves the cache
    footprint of every batch apply.  Values round-trip exactly — consumers
    only ever see Python ints or compare element-wise — so the narrowing
    is invisible outside this module.
    """
    return np.int32 if num_vertices <= (1 << 31) - 1 else np.int64


def _segment_index(starts: np.ndarray, counts: np.ndarray):
    """Flat indices of the slices ``(starts[i], counts[i])``, concatenated.

    Returns ``(index, owner, within, seg_off)`` where ``owner`` maps each
    output element to its segment, ``within`` is its position inside the
    segment and ``seg_off`` the per-segment offset into the concatenation.
    """
    total = int(counts.sum())
    seg_off = np.cumsum(counts) - counts
    owner = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    within = np.arange(total, dtype=np.int64) - seg_off[owner]
    return starts[owner] + within, owner, within, seg_off


def _suspect_segments(
    vs: np.ndarray, seg_start: np.ndarray, seg_len: np.ndarray
) -> np.ndarray | None:
    """Segments that *may* contain a repeated value, or None when every
    segment is provably repeat-free.

    A 64-bit membership signature per segment certifies distinctness: a
    repeated value collides with itself, so popcount(signature) equals the
    segment length only when all values are distinct.  Unsigned arithmetic
    is load-bearing — ``np.bitwise_count`` on signed ints counts bits of
    the *absolute value*, which is garbage once bit 63 is set.
    """
    bits = np.left_shift(
        np.uint64(1), np.bitwise_and(vs, 63).astype(np.uint64)
    )
    segsig = np.bitwise_or.reduceat(bits, seg_start)
    distinct = np.bitwise_count(segsig).astype(np.int64)
    suspect = distinct < seg_len
    if not suspect.any():
        return None
    return suspect


def _key_order(keys: np.ndarray, nv: int) -> np.ndarray:
    """Stable argsort by key: groups by owner, batch order within.

    Non-negative keys below ``nv`` sort as one or two 16-bit radix passes
    (numpy's stable sort on uint16 is a counting sort, ~3x faster than the
    general integer path on 100K-element batches).
    """
    if nv <= 1 << 16:
        return np.argsort(keys.astype(np.uint16), kind="stable")
    if nv <= 1 << 32:
        k = keys.astype(np.uint32)
        low = np.argsort(k.astype(np.uint16), kind="stable")  # low 16 bits
        if nv <= 1 << 24:  # high bits fit in 8: 256-bucket counting sort
            high = (k >> np.uint32(16)).astype(np.uint8)
        else:
            high = (k >> np.uint32(16)).astype(np.uint16)
        return low[np.argsort(high[low], kind="stable")]
    return np.argsort(keys, kind="stable")


def _grouped_value_order(
    group: np.ndarray, values: np.ndarray, nv: int
) -> np.ndarray:
    """Stable argsort by ``(group, value)``: two stable passes, each taking
    the radix fast path of :func:`_key_order` when its bound allows."""
    hi = int(group[-1]) + 1 if len(group) else 1
    order = _key_order(values, nv)
    return order[_key_order(group[order], hi)]


class _Direction:
    """One adjacency direction: pooled array slices plus hub hash dicts.

    Array-class vertices own the pool slice ``[start[v], start[v]+deg[v])``
    (capacity ``cap[v]``), stored in *dict insertion order* — the slice is
    the iteration order, so materialization is a straight ``zip``.  Hub
    vertices (``hub_mask``) live in ``hubs`` as authoritative
    insertion-ordered dicts and have ``cap == 0``.
    """

    def __init__(self, num_vertices: int):
        self.start = np.zeros(num_vertices, dtype=np.int64)
        self.deg = np.zeros(num_vertices, dtype=np.int64)
        self.cap = np.zeros(num_vertices, dtype=np.int64)
        self.pool_dst = np.empty(_INITIAL_POOL, dtype=_dst_dtype(num_vertices))
        self.pool_w = np.empty(_INITIAL_POOL, dtype=np.float64)
        self.used = 0  # next free pool offset
        self.live = 0  # total capacity of live array-class slots
        self.hubs: dict[int, dict[int, float]] = {}
        self.hub_mask = np.zeros(num_vertices, dtype=bool)
        # Outer-key bookkeeping, mirroring the dict graph's outer dict:
        # first-appearance order (sorted within each batch) + O(1) membership.
        self.key_order: list[int] = []
        self.key_mask = np.zeros(num_vertices, dtype=bool)
        # Lazily materialized per-vertex dicts for array-class vertices,
        # invalidated per vertex on every touch.  Handed out by the views,
        # so external mutations stay visible until the next rebuild.
        self.dict_cache: dict[int, dict[int, float]] = {}
        # Delta journal (track_deltas): appended edges per batch + stale set.
        self.journal: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.stale: set[int] = set()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Trim pool slack out of checkpoints; caches rebuild on demand.
        state["pool_dst"] = self.pool_dst[: self.used].copy()
        state["pool_w"] = self.pool_w[: self.used].copy()
        state["dict_cache"] = {}
        return state


class _HybridAdjacencyView:
    """Mapping view over one direction of a :class:`HybridAdjacencyGraph`.

    Iterates outer keys in dict-graph insertion order and materializes inner
    dicts lazily (in storage = insertion order, so they compare equal —
    content *and* iteration order — to the dict graph's).  Supports the
    mutation subset the view-mutating algorithms use (``setdefault`` /
    ``__setitem__`` on the outer mapping, plain dict ops on the inner
    dicts); callers must finish with
    :meth:`DynamicGraph.notify_external_mutation`.
    """

    __slots__ = ("_graph", "_d")

    def __init__(self, graph: "HybridAdjacencyGraph", d: _Direction):
        self._graph = graph
        self._d = d

    def __len__(self) -> int:
        return len(self._d.key_order)

    def __contains__(self, v) -> bool:
        try:
            return bool(self._d.key_mask[v]) if 0 <= v else False
        except (TypeError, IndexError):
            return False

    def __iter__(self):
        return iter(self._d.key_order)

    def __getitem__(self, v) -> dict[int, float]:
        if v not in self:
            raise KeyError(v)
        return self._graph._materialize(self._d, v)

    def get(self, v, default=None):
        if v not in self:
            return default
        return self._graph._materialize(self._d, v)

    def setdefault(self, v, default=None):
        if v in self:
            return self._graph._materialize(self._d, v)
        self._graph._register_key(self._d, int(v))
        self._d.dict_cache[int(v)] = default
        return default

    def __setitem__(self, v, entry) -> None:
        v = int(v)
        if v not in self:
            self._graph._register_key(self._d, v)
        if self._d.hub_mask[v]:
            self._d.hubs[v] = entry
        else:
            self._d.dict_cache[v] = entry

    def keys(self):
        return list(self._d.key_order)

    def items(self):
        graph, d = self._graph, self._d
        for v in d.key_order:
            yield v, graph._materialize(d, v)

    def values(self):
        for _v, entry in self.items():
            yield entry


class HybridAdjacencyGraph(DynamicGraph):
    """Degree-adaptive dynamic graph with vectorized batch apply.

    Args:
        num_vertices: size of the vertex id universe.
        promote_threshold: degree above which a vertex's adjacency is
            promoted to a hash dict (demotion back to the array class
            happens at half this, giving the switch hysteresis).  Defaults
            to ``REPRO_ADJ_PROMOTE`` or :data:`DEFAULT_PROMOTE_THRESHOLD`.
        telemetry: optional telemetry backend; promotion/demotion counters,
            ledger entries and per-degree-class apply spans land there.
    """

    def __init__(
        self,
        num_vertices: int,
        promote_threshold: int | None = None,
        telemetry=None,
    ):
        super().__init__(num_vertices)
        if promote_threshold is None:
            promote_threshold = int(
                os.environ.get("REPRO_ADJ_PROMOTE", "")
                or DEFAULT_PROMOTE_THRESHOLD
            )
        if promote_threshold < 1:
            raise ValueError(
                f"promote_threshold must be >= 1, got {promote_threshold}"
            )
        self.promote_threshold = promote_threshold
        self._tel = as_telemetry(telemetry)
        self._outd = _Direction(num_vertices)
        self._ind = _Direction(num_vertices)
        self._track = False
        self._delta_invalid = False
        self._touched_mask = np.zeros(num_vertices, dtype=bool)
        self._touched_n = 0
        self._touched_sorted: list[int] | None = None
        # Scatter-probe scratch (shared across directions; applies are
        # sequential).  Stamps from call N are written at or above that
        # call's generation base, so older stamps read as "absent" and the
        # array never needs clearing between uses.
        self._probe = np.full(num_vertices, -1, dtype=np.int32)
        self._probe_base = 0
        self._view_out = _HybridAdjacencyView(self, self._outd)
        self._view_in = _HybridAdjacencyView(self, self._ind)

    # -- pickling -----------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_view_out"], state["_view_in"], state["_probe"]
        del state["_probe_base"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._probe = np.full(self.num_vertices, -1, dtype=np.int32)
        self._probe_base = 0
        self._view_out = _HybridAdjacencyView(self, self._outd)
        self._view_in = _HybridAdjacencyView(self, self._ind)

    # -- pool management ----------------------------------------------------
    def _reserve(self, d: _Direction, extra: int) -> None:
        """Ensure ``extra`` free pool entries, compacting or growing.

        Compaction moves slices (updating ``d.start``); callers holding
        gathered *copies* of slice contents stay valid, but must re-read
        ``d.start`` afterwards.
        """
        if d.used + extra <= len(d.pool_dst):
            return
        if d.live + extra <= len(d.pool_dst) // 2:
            self._compact(d)
            if d.used + extra <= len(d.pool_dst):
                return
        new_len = max(len(d.pool_dst), _INITIAL_POOL)
        while new_len < d.used + extra:
            new_len *= 4  # steep growth: each resize copies the whole pool
        for name in ("pool_dst", "pool_w"):
            old = getattr(d, name)
            grown = np.empty(new_len, dtype=old.dtype)
            grown[: d.used] = old[: d.used]
            setattr(d, name, grown)

    def _compact(self, d: _Direction) -> None:
        """Rewrite live slices tightly, dropping dead capacity."""
        verts = np.flatnonzero(d.cap > 0)
        degs = d.deg[verts]
        gidx, gowner, within, _ = _segment_index(d.start[verts], degs)
        dsts = d.pool_dst[gidx]
        ws = d.pool_w[gidx]
        caps = _slots_for(degs) if len(degs) else degs
        starts = np.cumsum(caps) - caps
        d.start[verts] = starts
        d.cap[verts] = caps
        pos = starts[gowner] + within
        for name, contents in (("pool_dst", dsts), ("pool_w", ws)):
            fresh = np.empty(len(getattr(d, name)), dtype=contents.dtype)
            fresh[pos] = contents
            setattr(d, name, fresh)
        d.used = int(caps.sum())
        d.live = d.used
        if self._tel.enabled:
            self._tel.count("adjacency.compactions")

    # -- class transitions ---------------------------------------------------
    def _promote(self, d: _Direction, v: int) -> None:
        s = int(d.start[v])
        n = int(d.deg[v])
        d.dict_cache.pop(v, None)
        # Slices are stored in insertion order: the dict is a straight zip.
        d.hubs[v] = dict(
            zip(d.pool_dst[s : s + n].tolist(), d.pool_w[s : s + n].tolist())
        )
        d.hub_mask[v] = True
        d.live -= int(d.cap[v])
        d.cap[v] = 0

    def _demote(self, d: _Direction, v: int) -> None:
        entry = d.hubs.pop(v)
        d.hub_mask[v] = False
        n = len(entry)
        cap = _slot_for(n)
        self._reserve(d, cap)
        s = d.used
        d.used += cap
        d.live += cap
        d.start[v] = s
        d.cap[v] = cap
        d.deg[v] = n
        if n:
            d.pool_dst[s : s + n] = np.fromiter(
                entry.keys(), dtype=np.int64, count=n
            )
            d.pool_w[s : s + n] = np.fromiter(
                entry.values(), dtype=np.float64, count=n
            )
        # The demoted dict *is* the current materialization; keep it cached.
        d.dict_cache[v] = entry

    def _promote_crossed(
        self,
        d: _Direction,
        direction: str,
        verts: np.ndarray,
        degs: np.ndarray,
    ) -> None:
        """Promote candidates from ``verts`` (the vertices whose degree
        just changed — only they can newly cross the threshold; ``degs``
        holds their already-gathered post-update degrees)."""
        crossed = verts[
            (degs > self.promote_threshold)
            & ~d.hub_mask[verts]
            & (d.cap[verts] > 0)
        ]
        if not len(crossed):
            return
        for v in crossed.tolist():
            self._promote(d, v)
        if self._tel.enabled:
            self._tel.count("adjacency.promotions", len(crossed))
            self._tel.decision(
                "adjacency",
                choice="promote",
                direction=direction,
                count=len(crossed),
                threshold=self.promote_threshold,
            )

    def _demote_crossed(
        self, d: _Direction, verts: np.ndarray, direction: str
    ) -> None:
        floor = self.promote_threshold // 2
        crossed = verts[d.hub_mask[verts] & (d.deg[verts] <= floor)]
        if not len(crossed):
            return
        demoted = np.unique(crossed)
        for v in demoted.tolist():
            self._demote(d, v)
        if self._tel.enabled:
            self._tel.count("adjacency.demotions", len(demoted))
            self._tel.decision(
                "adjacency",
                choice="demote",
                direction=direction,
                count=len(demoted),
                threshold=self.promote_threshold,
            )

    # -- outer-key / touched bookkeeping -------------------------------------
    def _register_key(self, d: _Direction, v: int) -> None:
        d.key_mask[v] = True
        d.key_order.append(v)
        if not self._touched_mask[v]:
            self._touched_mask[v] = True
            self._touched_n += 1
            self._touched_sorted = None

    def _note_keys(self, d: _Direction, verts: np.ndarray) -> None:
        known = d.key_mask[verts]
        if known.all():
            return
        fresh = verts[~known]
        d.key_mask[fresh] = True
        d.key_order.extend(fresh.tolist())
        newly = fresh[~self._touched_mask[fresh]]
        if len(newly):
            self._touched_mask[newly] = True
            self._touched_n += len(newly)
            self._touched_sorted = None

    # -- materialization ------------------------------------------------------
    def _materialize(self, d: _Direction, v) -> dict[int, float]:
        if d.hub_mask[v]:
            return d.hubs[v]
        entry = d.dict_cache.get(v)
        if entry is None:
            s = int(d.start[v])
            n = int(d.deg[v])
            entry = dict(
                zip(
                    d.pool_dst[s : s + n].tolist(),
                    d.pool_w[s : s + n].tolist(),
                )
            )
            d.dict_cache[v] = entry
        return entry

    # -- queries --------------------------------------------------------------
    def out_neighbors(self, v: int) -> dict[int, float]:
        return self._view_out.get(v, {})

    def in_neighbors(self, v: int) -> dict[int, float]:
        return self._view_in.get(v, {})

    def out_degree(self, v: int) -> int:
        return int(self._outd.deg[v])

    def in_degree(self, v: int) -> int:
        return int(self._ind.deg[v])

    def has_edge(self, u: int, v: int) -> bool:
        """True if edge u->v is currently present."""
        return self.edge_weight(u, v) is not None

    def edge_weight(self, u: int, v: int) -> float | None:
        """Current weight of u->v, or None if absent."""
        d = self._outd
        if d.hub_mask[u]:
            return d.hubs[u].get(v)
        s, n = int(d.start[u]), int(d.deg[u])
        if n == 0:
            return None
        hits = np.flatnonzero(d.pool_dst[s : s + n] == v)
        if len(hits):
            return float(d.pool_w[s + int(hits[0])])
        return None

    def adjacency_views(self):
        return self._view_out, self._view_in

    def vertices_with_edges(self) -> list[int]:
        """Vertices with at least one incident edge (treat as read-only)."""
        if self._touched_sorted is None:
            self._touched_sorted = np.flatnonzero(self._touched_mask).tolist()
        return self._touched_sorted

    def touched_count(self) -> int:
        return self._touched_n

    # -- delta tracking (DeltaSnapshotter contract) ---------------------------
    def track_deltas(self, enabled: bool = True) -> None:
        self._track = enabled
        self._delta_invalid = False
        for d in (self._outd, self._ind):
            d.journal = []
            d.stale = set()

    def consume_delta(self) -> tuple[GraphDelta, GraphDelta] | None:
        if not self._track:
            return None
        if self._delta_invalid:
            self.track_deltas(True)  # reset journal, report "unknown"
            return None
        delta = (
            self._direction_delta(self._outd),
            self._direction_delta(self._ind),
        )
        for d in (self._outd, self._ind):
            d.journal = []
            d.stale = set()
        return delta

    @staticmethod
    def _direction_delta(d: _Direction) -> GraphDelta:
        if d.journal:
            owners = np.concatenate([j[0] for j in d.journal])
            targets = np.concatenate([j[1] for j in d.journal])
            weights = np.concatenate([j[2] for j in d.journal])
        else:
            owners = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)
        return GraphDelta(
            owners=owners, targets=targets, weights=weights, stale=d.stale
        )

    def notify_external_mutation(self) -> None:
        for d in (self._outd, self._ind):
            entries = [self._materialize(d, v) for v in d.key_order]
            self._rebuild_direction(d, entries)
        self.num_edges = int(self._outd.deg.sum())
        self._touched_mask[:] = False
        for d in (self._outd, self._ind):
            if d.key_order:
                self._touched_mask[np.asarray(d.key_order)] = True
        self._touched_n = int(self._touched_mask.sum())
        self._touched_sorted = None
        if self._track:
            # The journal did not see these mutations; poison it so the next
            # consume_delta() forces a full snapshot rebuild.
            self._delta_invalid = True

    def _rebuild_direction(self, d: _Direction, entries) -> None:
        """Reload one direction from materialized dicts (external mutation)."""
        d.deg[:] = 0
        d.cap[:] = 0
        d.hub_mask[:] = False
        d.hubs = {}
        d.dict_cache = {}
        lens = np.fromiter(
            map(len, entries), dtype=np.int64, count=len(entries)
        )
        total_cap = int(_slots_for(lens).sum()) if len(lens) else 0
        if total_cap > len(d.pool_dst):
            size = _INITIAL_POOL
            while size < total_cap:
                size *= 2
            d.pool_dst = np.empty(size, dtype=_dst_dtype(self.num_vertices))
            d.pool_w = np.empty(size, dtype=np.float64)
        d.used = 0
        d.live = 0
        for v, entry in zip(d.key_order, entries):
            n = len(entry)
            d.deg[v] = n
            if n > self.promote_threshold:
                d.hubs[v] = entry
                d.hub_mask[v] = True
                continue
            cap = _slot_for(n)
            s = d.used
            d.used += cap
            d.live += cap
            d.start[v] = s
            d.cap[v] = cap
            if n:
                d.pool_dst[s : s + n] = np.fromiter(
                    entry.keys(), dtype=np.int64, count=n
                )
                d.pool_w[s : s + n] = np.fromiter(
                    entry.values(), dtype=np.float64, count=n
                )
            # The dict handed to callers stays the authoritative cache.
            d.dict_cache[v] = entry

    # -- modeled cost ---------------------------------------------------------
    def sum_search_cost(self, batch_degree, length_before, new_edges, per_element):
        # The *modeled* duplicate-check cost stays the adjacency list's
        # linear scan: this structure accelerates the real mutation, not the
        # evaluated structure's charged time.  DAH's modeled alternative
        # lives in repro.graph.degree_aware_hash.
        return AdjacencyListGraph.sum_search_cost(
            self, batch_degree, length_before, new_edges, per_element
        )

    # -- scatter-probe membership ---------------------------------------------
    def _probe_match(
        self,
        d: _Direction,
        owners: np.ndarray,
        targets: np.ndarray,
        pair_group: np.ndarray,
        averts: np.ndarray,
    ):
        """Locate each (owner, target) pair in the owners' pool slices.

        Returns ``(hit, gidx, gowner, gt)``: ``hit[i]`` is the position of
        pair ``i``'s existing entry *in the gathered arrays* (-1 if absent),
        ``gidx`` maps gathered positions back to pool offsets, ``gowner``
        to segment indices and ``gt`` holds the gathered targets.

        Membership is scatters + gathers into a universe-sized probe array
        instead of per-pair binary search.  The probe is stamped by target
        value, so a read below the call's generation base *proves* absence
        (stale stamps from earlier calls sit below it, so no restore pass
        is needed).  When several owners share a target, stamps shadow
        each other — so two generations are written, one in reverse
        (probe = the target's *first* stamper) and one forward (its
        *last*).  A pair matching either end resolves immediately; only
        pairs whose target was stamped by two or more *other* owners
        remain ambiguous (the owner could hide between the ends) and pay
        the sorted merge over contested slices.
        """
        degs = d.deg[averts]
        # Leaner than _segment_index: fold start and segment offset into
        # one small base array so the flat index costs a single gather.
        total = int(degs.sum())
        seg_off = np.cumsum(degs) - degs
        # int32 halves the traffic of the repeat and the safe-gather below;
        # segment counts comfortably fit (they are bounded by len(averts)).
        gowner = np.repeat(
            np.arange(len(averts), dtype=np.int32), degs
        )
        gidx = (d.start[averts] - seg_off)[gowner] + np.arange(
            total, dtype=np.int64
        )
        gt = d.pool_dst[gidx]
        probe = self._probe
        hit = np.full(len(owners), -1, dtype=np.int64)
        if not len(gt):
            return hit, gidx, gowner, gt
        base = self._probe_base
        if base + 2 * total > (1 << 31) - 1:
            # int32 stamp space exhausted: clear once, restart generations.
            # Amortized over ~2e9 stamped entries — effectively free.
            probe.fill(-1)
            base = 0
        base_l = base + total
        self._probe_base = base_l + total
        # Reversed scatter: for a repeated target the position written
        # last is the smallest one, so this generation reads back the
        # target's FIRST stamper; the forward generation reads its LAST.
        probe[gt[::-1]] = np.arange(base, base_l, dtype=np.int32)[::-1]
        cand_f = probe[targets] - np.int32(base)
        probe[gt] = np.arange(base_l, base_l + total, dtype=np.int32)
        cand_l = probe[targets] - np.int32(base_l)
        found = cand_l >= 0  # gt[cand] == target is guaranteed by stamping
        safe = np.maximum(cand_l, 0)
        # Segment index comparison == owner comparison (averts is unique).
        own = gowner[safe] == pair_group
        sure = found & own
        hit[sure] = cand_l[sure]
        rem = found & ~own
        if rem.any():
            own_f = rem.copy()
            own_f[rem] = (
                gowner[cand_f[rem]] == pair_group[rem]
            )
            hit[own_f] = cand_f[own_f]
            # Owner is neither end: ambiguous only if the target has >= 2
            # stampers (cand_f < cand_l) and the owner's slice is nonempty.
            ambig = rem & ~own_f & (cand_f < cand_l)
            if ambig.any():
                ambig &= degs[pair_group] > 0
            if ambig.any():
                self._probe_fallback(
                    hit, targets, pair_group, ambig, degs, seg_off, gt
                )
        return hit, gidx, gowner, gt

    def _probe_fallback(
        self,
        hit: np.ndarray,
        targets: np.ndarray,
        pair_group: np.ndarray,
        ambig: np.ndarray,
        degs: np.ndarray,
        seg_off: np.ndarray,
        gt: np.ndarray,
    ) -> None:
        """Resolve probe reads shadowed at both stamp generations.

        Sorted merge over just the contested owners' slices, enumerated by
        segment arithmetic so the cost scales with the contested entries,
        not the whole gathered universe; sets ``hit`` to gathered positions
        for pairs that do exist.
        """
        nv = self.num_vertices
        need = np.zeros(len(degs), dtype=bool)
        need[pair_group[ambig]] = True
        cseg = np.flatnonzero(need)
        cdeg = degs[cseg]
        total_c = int(cdeg.sum())
        if not total_c:  # every contested owner's slice is empty
            return
        clocal = np.repeat(np.arange(len(cseg), dtype=np.int64), cdeg)
        esel = (seg_off[cseg] - (np.cumsum(cdeg) - cdeg))[clocal] + np.arange(
            total_c, dtype=np.int64
        )
        sub_group = cseg[clocal]
        sub_t = gt[esel]
        if len(degs) * nv < 2**62 and nv <= _COMPOSITE_SAFE:
            ecomp = sub_group * np.int64(nv) + sub_t
            eorder = np.argsort(ecomp, kind="stable")
            ecomp = ecomp[eorder]
            qcomp = pair_group[ambig] * np.int64(nv) + targets[ambig]
            pos = np.searchsorted(ecomp, qcomp)
            lim = np.minimum(pos, len(ecomp) - 1)
            good = (pos < len(ecomp)) & (ecomp[lim] == qcomp)
            aidx = np.flatnonzero(ambig)
            hit[aidx[good]] = esel[eorder[lim[good]]]
        else:  # gigantic universe: scan each contested slice directly
            for i in np.flatnonzero(ambig).tolist():
                in_seg = sub_group == pair_group[i]
                match = np.flatnonzero(sub_t[in_seg] == targets[i])
                if len(match):
                    hit[i] = esel[np.flatnonzero(in_seg)[int(match[0])]]

    # -- batch apply ----------------------------------------------------------
    def _dedup_in_batch(
        self,
        ks: np.ndarray,
        vs: np.ndarray,
        ws: np.ndarray,
        seg_start: np.ndarray,
        seg_len: np.ndarray,
    ) -> np.ndarray | None:
        """Drop in-batch repeats of a (key, value) pair, keeping the first
        occurrence with the last occurrence's weight (dict semantics).

        Inputs are in key-grouped batch order.  Returns a keep-mask, or
        ``None`` when every pair is provably unique: a 64-bit membership
        signature per segment certifies distinctness for the overwhelmingly
        common repeat-free case, and only suspicious segments pay a local
        dedup sort.  ``ws`` is edited in place for kept repeats.
        """
        suspect = _suspect_segments(vs, seg_start, seg_len)
        if suspect is None:
            return None
        sidx, sowner, _, _ = _segment_index(
            seg_start[suspect], seg_len[suspect]
        )
        lorder = _grouped_value_order(sowner, vs[sidx], self.num_vertices)
        so = sowner[lorder]
        sv = vs[sidx][lorder]
        cut = np.flatnonzero((so[1:] != so[:-1]) | (sv[1:] != sv[:-1]))
        gfirst = np.append(0, cut + 1)
        glast = np.append(cut, len(so) - 1)
        keep = np.ones(len(ks), dtype=bool)
        keep[sidx] = False
        firsts = sidx[lorder[gfirst]]
        keep[firsts] = True
        ws[firsts] = ws[sidx[lorder[glast]]]
        return keep

    def _apply_direction(
        self,
        d: _Direction,
        direction: str,
        keys: np.ndarray,
        values: np.ndarray,
        weights: np.ndarray,
    ) -> DirectionStats:
        n = len(keys)
        if n == 0:
            return _empty_direction_stats()
        korder = _key_order(keys, self.num_vertices)
        ks = keys[korder]
        vs = values[korder]
        ws = weights[korder]
        neq = ks[1:] != ks[:-1]
        cuts = np.flatnonzero(neq)
        seg_start = np.append(0, cuts + 1)
        verts = ks[seg_start]
        batch_degree = np.diff(np.append(seg_start, n))
        length_before = d.deg[verts]

        keep = self._dedup_in_batch(ks, vs, ws, seg_start, batch_degree)
        # Unique pairs are now grouped by owner in first-occurrence batch
        # order — the dict graph's *untracked* insertion order.  The tracked
        # dict graph inserts in composite (dst-ascending) order instead.
        if keep is None:
            owners, targets, w_final = ks, vs, ws
            ucounts = batch_degree
            pair_group = np.zeros(n, dtype=np.int64)
            np.cumsum(neq, out=pair_group[1:])
        else:
            owners = ks[keep]
            targets = vs[keep]
            w_final = ws[keep]
            ucounts = np.add.reduceat(keep, seg_start).astype(np.int64)
            pair_group = np.repeat(
                np.arange(len(verts), dtype=np.int64), ucounts
            )
        if self._track:
            porder = _grouped_value_order(pair_group, targets, self.num_vertices)
            owners = owners[porder]
            targets = targets[porder]
            w_final = w_final[porder]

        is_new = np.empty(len(owners), dtype=bool)
        tel = self._tel
        # The mask gather only pays off when hubs exist at all.
        hub_pair = d.hub_mask[owners] if d.hubs else None
        any_hub = hub_pair is not None and bool(hub_pair.any())
        if any_hub:
            with tel.span("adjacency.apply.hub"):
                self._apply_hub(
                    d, owners, targets, w_final, hub_pair, is_new
                )
            arr_pair = ~hub_pair
            if arr_pair.any():
                with tel.span("adjacency.apply.array"):
                    self._apply_array(
                        d,
                        owners[arr_pair],
                        targets[arr_pair],
                        w_final[arr_pair],
                        is_new,
                        arr_pair,
                    )
        else:
            with tel.span("adjacency.apply.array"):
                # No hub split: the caller's grouping is the array grouping.
                self._apply_array(
                    d, owners, targets, w_final, is_new, None,
                    averts=verts, pgroup=pair_group, ucounts=ucounts,
                )
        if self._track and is_new.any():
            d.journal.append(
                (owners[is_new], targets[is_new], w_final[is_new])
            )
        if bool(is_new.all()):
            new_per_vertex = ucounts  # never mutated downstream
        else:
            new_per_vertex = np.bincount(
                pair_group[is_new], minlength=len(verts)
            ).astype(np.int64)
        new_degs = length_before + new_per_vertex
        d.deg[verts] = new_degs
        self._note_keys(d, verts)
        self._promote_crossed(d, direction, verts, new_degs)
        if tel.enabled:
            hub_count = int(hub_pair.sum()) if hub_pair is not None else 0
            tel.count(f"adjacency.{direction}.hub_pairs", hub_count)
            tel.count(
                f"adjacency.{direction}.array_pairs",
                len(owners) - hub_count,
            )
        return DirectionStats(
            vertices=verts,
            batch_degree=batch_degree,
            length_before=length_before,
            new_edges=new_per_vertex,
        )

    def _apply_hub(
        self,
        d: _Direction,
        owners: np.ndarray,
        targets: np.ndarray,
        w: np.ndarray,
        hub_pair: np.ndarray,
        is_new_out: np.ndarray,
    ) -> None:
        """Merge unique pairs owned by hub vertices (hash-dict class).

        Pairs arrive in the required insertion order (batch order when
        untracked, composite order when tracked), so one C-level setitem
        sweep lands them exactly like the dict graph would.
        """
        owners_list = owners[hub_pair].tolist()
        targets_list = targets[hub_pair].tolist()
        entries = list(map(d.hubs.__getitem__, owners_list))
        contains = np.fromiter(
            map(dict.__contains__, entries, targets_list),
            dtype=bool,
            count=len(entries),
        )
        is_new_out[hub_pair] = ~contains
        wsel = w[hub_pair]
        if self._track and contains.any():
            flags = contains.tolist()
            old_w = np.fromiter(
                map(
                    dict.__getitem__,
                    compress(entries, flags),
                    compress(targets_list, flags),
                ),
                dtype=np.float64,
                count=int(contains.sum()),
            )
            changed = old_w != wsel[contains]
            if changed.any():
                d.stale.update(owners[hub_pair][contains][changed].tolist())
        deque(
            map(dict.__setitem__, entries, targets_list, wsel.tolist()),
            maxlen=0,
        )
        for v in dict.fromkeys(owners_list):
            d.dict_cache.pop(v, None)

    def _apply_array(
        self,
        d: _Direction,
        owners: np.ndarray,
        targets: np.ndarray,
        w: np.ndarray,
        is_new_out: np.ndarray,
        pair_mask: np.ndarray | None,
        averts: np.ndarray | None = None,
        pgroup: np.ndarray | None = None,
        ucounts: np.ndarray | None = None,
    ) -> None:
        """Merge unique pairs owned by array-class vertices, vectorized.

        Existing entries are never moved: duplicate pairs update weights at
        their probed pool offsets, new pairs append at slice tails in the
        order given (which is the required dict insertion order).  Only
        vertices outgrowing their slot capacity relocate.  ``averts`` /
        ``pgroup`` / ``ucounts`` (the owner grouping and per-owner pair
        counts) are recomputed unless the caller already has them.
        """
        if averts is None:
            averts = owners[
                np.append(0, np.flatnonzero(owners[1:] != owners[:-1]) + 1)
            ]
            pgroup = np.cumsum(
                np.append(False, owners[1:] != owners[:-1])
            ).astype(np.int64)
        hit, gidx, _gowner, _gt = self._probe_match(
            d, owners, targets, pgroup, averts
        )
        new_mask = hit < 0
        if pair_mask is None:
            is_new_out[:] = new_mask
        else:
            is_new_out[pair_mask] = new_mask
        all_new = bool(new_mask.all())
        if not all_new:
            dup = ~new_mask
            pool_pos = gidx[hit[dup]]
            if self._track:
                changed = d.pool_w[pool_pos] != w[dup]
                if changed.any():
                    d.stale.update(owners[dup][changed].tolist())
            d.pool_w[pool_pos] = w[dup]
            if not new_mask.any():
                if d.dict_cache:
                    for v in averts.tolist():
                        d.dict_cache.pop(v, None)
                return
        if all_new and ucounts is not None:
            # Every pair appends (the overwhelmingly common streaming
            # case): the caller's per-owner counts are the new counts, so
            # skip the bincount and all the new-pair subsetting gathers.
            new_counts = ucounts
            nowner = pgroup
            new_targets, new_w = targets, w
        else:
            new_counts = np.bincount(
                pgroup[new_mask], minlength=len(averts)
            ).astype(np.int64)
            nsel = np.flatnonzero(new_mask)
            nowner = pgroup[nsel]
            new_targets, new_w = targets[nsel], w[nsel]
        degs = d.deg[averts]
        new_deg = degs + new_counts
        grow = new_deg > d.cap[averts]
        if grow.any():
            self._grow_slots(d, averts[grow], new_deg[grow])
        # new_pos[i] = start[o] + deg[o] + (i - ncoff[o]); folding the
        # per-owner terms into one base array costs one gather, not three.
        base = d.start[averts] + degs - (np.cumsum(new_counts) - new_counts)
        new_pos = base[nowner] + np.arange(len(nowner), dtype=np.int64)
        d.pool_dst[new_pos] = new_targets
        d.pool_w[new_pos] = new_w
        # Degrees are updated by the caller (uniformly for both classes).
        if d.dict_cache:
            for v in averts.tolist():
                d.dict_cache.pop(v, None)

    def _grow_slots(
        self, d: _Direction, verts: np.ndarray, need: np.ndarray
    ) -> None:
        """Relocate vertices whose slices outgrow their capacity."""
        degs = d.deg[verts]
        if degs.any():
            occupied = np.flatnonzero(degs)
            gidx, gowner_sub, within, _ = _segment_index(
                d.start[verts[occupied]], degs[occupied]
            )
            gowner = occupied[gowner_sub]
            moved_dst = d.pool_dst[gidx]
            moved_w = d.pool_w[gidx]
        else:
            # First-touch vertices (the common streaming case) own no
            # entries yet — pure allocation, nothing to relocate.
            gowner = within = moved_dst = moved_w = None
        caps = _slots_for(need)
        extra = int(caps.sum())
        freed = int(d.cap[verts].sum())
        self._reserve(d, extra)  # may compact; gathered copies stay valid
        starts = d.used + np.cumsum(caps) - caps
        d.start[verts] = starts
        d.cap[verts] = caps
        d.used += extra
        d.live += extra - freed
        if gowner is not None:
            pos = starts[gowner] + within
            d.pool_dst[pos] = moved_dst
            d.pool_w[pos] = moved_w

    # -- per-direction API (sharded execution) --------------------------------
    def apply_direction_edges(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        direction: str,
    ) -> DirectionStats:
        """Merge ``key -> value`` edges into one adjacency direction.

        Same contract as
        :meth:`AdjacencyListGraph.apply_direction_edges`: bit-identical
        :class:`~repro.graph.base.DirectionStats` for the same slice, no
        ``num_edges``/``batches_applied`` bookkeeping.
        """
        if direction == "out":
            return self._apply_direction(self._outd, "out", keys, values, weights)
        if direction == "in":
            return self._apply_direction(self._ind, "in", keys, values, weights)
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")

    # -- deletions ------------------------------------------------------------
    def _delete_direction(
        self, d: _Direction, direction: str, keys: np.ndarray, values: np.ndarray
    ) -> tuple[dict[int, int], np.ndarray, np.ndarray]:
        """Remove unique ``key -> value`` pairs from one direction.

        Returns per-key removal counts plus the (owner, target) arrays of
        the pairs actually removed, so :meth:`_delete_edges` can mirror the
        dict graph's "remove the in-entry only when the out-entry existed"
        coupling exactly.
        """
        removed: dict[int, int] = {}
        none = np.empty(0, dtype=np.int64)
        if len(keys) == 0:
            return removed, none, none
        korder = _key_order(keys, self.num_vertices)
        ks = keys[korder]
        vs = values[korder]
        seg_start = np.append(0, np.flatnonzero(ks[1:] != ks[:-1]) + 1)
        seg_len = np.diff(np.append(seg_start, len(ks)))
        keep = self._dedup_pairs(ks, vs, seg_start, seg_len)
        if keep is None:
            owners, targets = ks, vs
        else:
            owners = ks[keep]
            targets = vs[keep]
        track = self._track
        hub_pair = d.hub_mask[owners]
        rem_owner_parts: list[np.ndarray] = []
        rem_target_parts: list[np.ndarray] = []
        if hub_pair.any():
            ho = owners[hub_pair]
            ht = targets[hub_pair]
            hhit = np.zeros(len(ho), dtype=bool)
            for i, (u, v) in enumerate(zip(ho.tolist(), ht.tolist())):
                entry = d.hubs[u]
                if v in entry:
                    del entry[v]
                    d.deg[u] -= 1
                    hhit[i] = True
                    if track:
                        d.stale.add(u)
                    removed[u] = removed.get(u, 0) + 1
            if hhit.any():
                rem_owner_parts.append(ho[hhit])
                rem_target_parts.append(ht[hhit])
            # Demotions may compact/relocate the pool; finish before the
            # array-class gather reads slice starts.
            self._demote_crossed(d, np.unique(ho), direction)
        arr_pair = ~hub_pair
        if arr_pair.any():
            ao = owners[arr_pair]
            at = targets[arr_pair]
            pgroup = np.cumsum(
                np.append(False, ao[1:] != ao[:-1])
            ).astype(np.int64)
            seg = np.append(0, np.flatnonzero(ao[1:] != ao[:-1]) + 1)
            dverts = ao[seg]
            hit, gidx, gowner, gt = self._probe_match(
                d, ao, at, pgroup, dverts
            )
            present = hit >= 0
            if present.any():
                rem_owner_parts.append(ao[present])
                rem_target_parts.append(at[present])
                degs = d.deg[dverts]
                keep_old = np.ones(len(gt), dtype=bool)
                keep_old[hit[present]] = False
                rem_counts = np.bincount(
                    gowner[hit[present]], minlength=len(dverts)
                ).astype(np.int64)
                # Compact survivors to the slice prefix, preserving storage
                # (= insertion) order; sources are gathered copies.
                pref = np.cumsum(keep_old) - keep_old
                kept = degs - rem_counts
                kept_off = np.cumsum(kept) - kept
                dest = d.start[dverts][gowner] + (pref - kept_off[gowner])
                d.pool_dst[dest[keep_old]] = gt[keep_old]
                d.pool_w[dest[keep_old]] = d.pool_w[gidx][keep_old]
                d.deg[dverts] = kept
                hit_verts = dverts[rem_counts > 0]
                removed.update(
                    zip(
                        hit_verts.tolist(),
                        rem_counts[rem_counts > 0].tolist(),
                    )
                )
                if track:
                    d.stale.update(hit_verts.tolist())
                if d.dict_cache:
                    for v in hit_verts.tolist():
                        d.dict_cache.pop(v, None)
        if rem_owner_parts:
            return (
                removed,
                np.concatenate(rem_owner_parts),
                np.concatenate(rem_target_parts),
            )
        return removed, none, none

    def _dedup_pairs(
        self,
        ks: np.ndarray,
        vs: np.ndarray,
        seg_start: np.ndarray,
        seg_len: np.ndarray,
    ) -> np.ndarray | None:
        """Keep-mask dropping repeated (key, value) pairs (weights ignored)."""
        suspect = _suspect_segments(vs, seg_start, seg_len)
        if suspect is None:
            return None
        sidx, sowner, _, _ = _segment_index(
            seg_start[suspect], seg_len[suspect]
        )
        lorder = _grouped_value_order(sowner, vs[sidx], self.num_vertices)
        so = sowner[lorder]
        sv = vs[sidx][lorder]
        first = np.empty(len(so), dtype=bool)
        first[0] = True
        first[1:] = (so[1:] != so[:-1]) | (sv[1:] != sv[:-1])
        keep = np.ones(len(ks), dtype=bool)
        keep[sidx] = False
        keep[sidx[lorder[first]]] = True
        return keep

    def delete_direction_edges(
        self, keys: np.ndarray, values: np.ndarray, *, direction: str
    ) -> dict[int, int]:
        """Remove ``key -> value`` entries from one adjacency direction.

        Same contract as
        :meth:`AdjacencyListGraph.delete_direction_edges`; in-batch repeats
        of a pair delete once, like the dict graph's sequential loop.
        """
        if direction == "out":
            d = self._outd
        elif direction == "in":
            d = self._ind
        else:
            raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
        removed, _, _ = self._delete_direction(d, direction, keys, values)
        return removed

    def _delete_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Remove listed edges (both directions); returns edges removed.

        The in-direction entry is removed only for pairs whose out-entry
        existed, matching the dict graph's coupled loop even if external
        mutation left the directions asymmetric.
        """
        removed, rem_src, rem_dst = self._delete_direction(
            self._outd, "out", src, dst
        )
        if len(rem_src):
            self._delete_direction(self._ind, "in", rem_dst, rem_src)
        return sum(removed.values())

    def apply_batch(self, batch: Batch) -> BatchUpdateStats:
        """Ingest a batch: all insertions first, then deletions."""
        self.check_vertices(batch.src, batch.dst)
        inserts = batch.insertions
        out_stats = self._apply_direction(
            self._outd, "out", inserts.src, inserts.dst, inserts.weight
        )
        in_stats = self._apply_direction(
            self._ind, "in", inserts.dst, inserts.src, inserts.weight
        )
        inserted = int(out_stats.new_edges.sum()) if len(out_stats.new_edges) else 0
        deletes = batch.deletions
        deleted = self._delete_edges(deletes.src, deletes.dst) if deletes.size else 0
        self.num_edges += inserted - deleted
        self.batches_applied += 1
        return BatchUpdateStats(
            batch_id=batch.batch_id,
            batch_size=batch.size,
            out=out_stats,
            inn=in_stats,
            deleted_edges=deleted,
        )
