"""Task-MSHR and FIFO occupancy models."""

import pytest

from repro.errors import SimulationError
from repro.hau.config import HAUConfig
from repro.hau.fifo import FIFOModel
from repro.hau.mshr import MSHRModel

CFG = HAUConfig()


def test_mshr_low_rate_no_stall():
    model = MSHRModel(CFG)
    stall = model.account(tasks=100, interval_cycles=100_000)
    assert stall == 0.0
    assert model.peak_occupancy < CFG.task_mshr_entries


def test_mshr_saturation_stalls():
    model = MSHRModel(CFG)
    # 10_000 tasks in 1_000 cycles -> occupancy 60 >> 10 entries.
    stall = model.account(tasks=10_000, interval_cycles=1_000)
    assert stall > 0
    assert model.peak_occupancy > CFG.task_mshr_entries
    assert model.stall_cycles == pytest.approx(stall)


def test_mshr_rejects_bad_interval():
    with pytest.raises(SimulationError):
        MSHRModel(CFG).account(1, 0)


def test_fifo_drain_keeps_up():
    model = FIFOModel(CFG)
    stall = model.account(arriving_tasks=100, drain_cycles_per_task=10,
                          interval_cycles=10_000)
    assert stall == 0.0
    assert model.peak_fill <= CFG.fifo_entries


def test_fifo_overload_backpressures():
    model = FIFOModel(CFG)
    stall = model.account(arriving_tasks=10_000, drain_cycles_per_task=10,
                          interval_cycles=1_000)
    assert stall > 0
    assert model.peak_fill == CFG.fifo_entries


def test_fifo_rejects_bad_interval():
    with pytest.raises(SimulationError):
        FIFOModel(CFG).account(1, 1, -5)
