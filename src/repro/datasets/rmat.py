"""RMAT (Graph500-style) synthetic edge streams.

The hub/tail mixture of :mod:`repro.datasets.generators` is calibrated to
reproduce the paper's per-dataset batch statistics; RMAT is the
community-standard *generic* synthetic family (recursive quadrant sampling
with probabilities ``a, b, c, d``), useful for stress tests and for users
who want a power-law stream without calibrating a profile.  The generator
implements the same ``generate_batch`` / ``batches`` interface as
:class:`~repro.datasets.generators.StreamGenerator`, so it plugs into
:class:`~repro.update.engine.UpdateEngine` loops and characterization
helpers directly.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..errors import ConfigurationError
from .stream import Batch

__all__ = ["RMATGenerator"]


class RMATGenerator:
    """Recursive-matrix (RMAT) edge-stream generator.

    Args:
        scale: vertex universe is ``2**scale``.
        a, b, c: quadrant probabilities (``d = 1 - a - b - c``).  The
            Graph500 defaults (0.57, 0.19, 0.19) give a heavy-tailed degree
            distribution; ``a = b = c = 0.25`` degenerates to Erdos-Renyi.
        seed: RNG seed; batches are deterministic in (seed, batch_id, size).
        weighted: deterministic per-pair integer weights in [1, 16] (matching
            the calibrated generators' convention) instead of all-ones.
    """

    def __init__(
        self,
        scale: int = 14,
        a: float = 0.57,
        b: float = 0.19,
        c: float = 0.19,
        seed: int = 7,
        weighted: bool = True,
    ):
        if not 1 <= scale <= 30:
            raise ConfigurationError(f"scale must be in [1, 30], got {scale}")
        d = 1.0 - a - b - c
        if min(a, b, c, d) < 0 or max(a, b, c) > 1:
            raise ConfigurationError(
                f"quadrant probabilities must be a valid distribution, got "
                f"a={a}, b={b}, c={c} (d={d:.3f})"
            )
        self.scale = scale
        self.num_vertices = 1 << scale
        self.a, self.b, self.c, self.d = a, b, c, d
        self.seed = seed
        self.weighted = weighted

    def generate_batch(self, batch_id: int, batch_size: int) -> Batch:
        """Generate one batch deterministically from (seed, batch_id)."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        rng = np.random.default_rng((self.seed, batch_id, batch_size))
        src = np.zeros(batch_size, dtype=np.int64)
        dst = np.zeros(batch_size, dtype=np.int64)
        # Per bit level, draw which quadrant every edge falls into.
        p_src_one = self.c + self.d          # quadrants c/d set the src bit
        for level in range(self.scale):
            u = rng.random(batch_size)
            src_bit = u >= (self.a + self.b)
            # dst-bit probability depends on the src bit (conditional
            # quadrant distribution).
            p_dst_given = np.where(
                src_bit,
                self.d / max(p_src_one, 1e-12),
                self.b / max(self.a + self.b, 1e-12),
            )
            dst_bit = rng.random(batch_size) < p_dst_given
            src = (src << 1) | src_bit
            dst = (dst << 1) | dst_bit
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % self.num_vertices
        if self.weighted:
            weight = (((src * 2654435761) ^ (dst * 40503)) % 16 + 1).astype(
                np.float64
            )
        else:
            weight = np.ones(batch_size, dtype=np.float64)
        return Batch(batch_id=batch_id, src=src, dst=dst, weight=weight)

    def batches(self, batch_size: int, num_batches: int) -> Iterator[Batch]:
        """Yield ``num_batches`` consecutive batches."""
        if num_batches < 0:
            raise ConfigurationError(f"num_batches must be >= 0, got {num_batches}")
        for batch_id in range(num_batches):
            yield self.generate_batch(batch_id, batch_size)
