"""Pluggable per-batch update-strategy selectors (Fig. 2's decision layer).

The :class:`~repro.update.engine.UpdateEngine` applies every batch to the
graph exactly once and prices the software strategies; *which* strategy's
time the batch is charged is decided by a **selector** looked up in the
registry below.  Each selector object encodes one policy from the paper
(input-oblivious, input-aware ABR, oracle) — and new policies can be added
from anywhere with :func:`register_strategy`, without touching the engine:

    from repro.update.strategies import StrategySelector, register_strategy

    @register_strategy
    class CoinFlipSelector(StrategySelector):
        name = "coin_flip"
        def select(self, engine, stats, timings):
            return (STRATEGY_RO if stats.batch_id % 2 else STRATEGY_BASELINE), None

    UpdateEngine(graph, policy="coin_flip")

Registered names automatically become valid engine policies, CLI ``--mode``
values and :data:`~repro.pipeline.modes.MODES` entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from .result import (
    STRATEGY_BASELINE,
    STRATEGY_HAU,
    STRATEGY_RO,
    STRATEGY_RO_USC,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.base import BatchUpdateStats
    from .abr import ABRDecision
    from .engine import UpdateEngine

__all__ = [
    "StrategySelector",
    "register_strategy",
    "resolve_strategy",
    "strategy_names",
    "STRATEGY_REGISTRY",
]


class StrategySelector:
    """One update-policy decision procedure.

    Subclasses set :attr:`name` (the policy/mode label) and implement
    :meth:`select`.  Selectors are stateless — per-stream state (the ABR
    controller, cost models, the HAU simulator) lives on the engine passed
    into each call, so one selector instance can serve many engines.

    Attributes:
        name: registry key; doubles as the engine policy label and the CLI
            mode name.
        requires_hau: True if the selector can emit :data:`STRATEGY_HAU`
            (the engine then requires a HAU simulator at construction).
    """

    name: str = ""
    requires_hau: bool = False

    def select(
        self,
        engine: "UpdateEngine",
        stats: "BatchUpdateStats",
        timings: dict,
    ) -> tuple[str, "ABRDecision | None"]:
        """Pick the executed strategy label for one batch.

        Args:
            engine: the calling engine (exposes ``abr``, ``costs``,
                ``machine``, ``hau``).
            stats: the batch's :class:`~repro.graph.base.BatchUpdateStats`.
            timings: modeled :class:`~repro.exec_model.parallel.PhaseTiming`
                per software strategy label.

        Returns:
            ``(strategy_label, abr_decision_or_None)``.
        """
        raise NotImplementedError


#: Registry: policy name -> selector instance.
STRATEGY_REGISTRY: dict[str, StrategySelector] = {}


def register_strategy(cls: type[StrategySelector]) -> type[StrategySelector]:
    """Class decorator adding a selector to the registry (last wins)."""
    if not getattr(cls, "name", ""):
        raise ConfigurationError(
            f"strategy selector {cls.__name__} must define a non-empty name"
        )
    STRATEGY_REGISTRY[cls.name] = cls()
    return cls


def strategy_names() -> tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(STRATEGY_REGISTRY)


def resolve_strategy(policy) -> StrategySelector:
    """Map a policy (name, :class:`UpdatePolicy`, or selector) to a selector.

    Raises:
        ConfigurationError: for unregistered policy names.
    """
    if isinstance(policy, StrategySelector):
        return policy
    name = getattr(policy, "value", policy)
    try:
        return STRATEGY_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown update policy {name!r}; registered: "
            f"{', '.join(sorted(STRATEGY_REGISTRY))}"
        ) from None


# -- input-oblivious selectors ------------------------------------------------


class _FixedSelector(StrategySelector):
    """Always the same strategy, regardless of input."""

    strategy: str = STRATEGY_BASELINE

    def select(self, engine, stats, timings):
        return self.strategy, None


@register_strategy
class BaselineSelector(_FixedSelector):
    """Always locked edge-centric updates."""

    name = "baseline"
    strategy = STRATEGY_BASELINE


@register_strategy
class AlwaysReorderSelector(_FixedSelector):
    """Always reorder (the naive always-RO of Fig. 3)."""

    name = "always_ro"
    strategy = STRATEGY_RO


@register_strategy
class AlwaysReorderUSCSelector(_FixedSelector):
    """Always reorder + search coalescing (Fig. 15 left's enforced RO+USC)."""

    name = "always_ro_usc"
    strategy = STRATEGY_RO_USC


@register_strategy
class AlwaysHAUSelector(_FixedSelector):
    """Every batch on the accelerator (Fig. 15 right's enforced HAU)."""

    name = "always_hau"
    strategy = STRATEGY_HAU
    requires_hau = True


# -- oracle selectors ---------------------------------------------------------


class _PerfectSelector(StrategySelector):
    """Zero-overhead oracle between baseline and one reorder variant."""

    alternative: str = STRATEGY_RO

    def select(self, engine, stats, timings):
        baseline = timings[STRATEGY_BASELINE].makespan
        alternative = timings[self.alternative].makespan
        chosen = self.alternative if alternative < baseline else STRATEGY_BASELINE
        return chosen, None


@register_strategy
class PerfectABRSelector(_PerfectSelector):
    """Oracle ABR with zero instrumentation overhead (Fig. 13 "perfect ABR")."""

    name = "perfect_abr"
    alternative = STRATEGY_RO


@register_strategy
class PerfectABRUSCSelector(_PerfectSelector):
    """Oracle choosing between baseline and RO+USC with zero overhead."""

    name = "perfect_abr_usc"
    alternative = STRATEGY_RO_USC


# -- input-aware (ABR) selectors ----------------------------------------------


class _ABRSelector(StrategySelector):
    """Consult the engine's ABR controller; route per its decision."""

    reorder_strategy: str = STRATEGY_RO
    fallback_strategy: str = STRATEGY_BASELINE

    def select(self, engine, stats, timings):
        decision = engine.abr.step(stats)
        chosen = self.reorder_strategy if decision.reorder else self.fallback_strategy
        return chosen, decision


@register_strategy
class ABRSelector(_ABRSelector):
    """Input-aware software: ABR decides reorder vs baseline."""

    name = "abr"
    reorder_strategy = STRATEGY_RO


@register_strategy
class ABRUSCSelector(_ABRSelector):
    """Input-aware software: ABR decides (reorder + USC) vs baseline."""

    name = "abr_usc"
    reorder_strategy = STRATEGY_RO_USC


@register_strategy
class ABRUSCHAUSelector(_ABRSelector):
    """The paper's full proposal: friendly batches -> RO+USC in software,
    adverse batches -> HAU in hardware (Fig. 2)."""

    name = "abr_usc_hau"
    reorder_strategy = STRATEGY_RO_USC
    fallback_strategy = STRATEGY_HAU
    requires_hau = True
