"""Sharded single-run execution: vertex-partitioned update across workers.

The paper's HAU eliminates update locks by routing every update task to core
``src mod N`` (Section 4.4): tasks that touch the same vertex land on the
same core, so no two cores ever write the same adjacency.  This module lifts
that owner mapping from the simulated CMP to real shard workers, so one
pipeline run's *update phase* — the real data-structure work in this library
(DESIGN.md §2) — fans out over ``num_shards`` persistent workers.

Since PR 7 the runtime is split into three separable layers:

* **placement** (:mod:`repro.pipeline.partition`) — *which shard owns each
  vertex* is an explicit owner-map array materialized once by a registered
  policy (``mod`` — the paper's mapping and the default — ``hash``, or the
  ``greedy`` streaming partitioner).  Workers and coordinator slice and
  route through the map; no ``v % N`` arithmetic exists outside the policy
  module.
* **transport** (:mod:`repro.pipeline.transport`) — *how coordinator and
  workers talk* is a registered channel implementation: ``inproc`` direct
  calls, ``shm`` pipes + SharedMemory (the default), or ``tcp``
  length-prefixed sockets ready to cross host boundaries.
* **coordination** (this module) — the owner-disjoint apply/merge protocol,
  mirrored reads, checkpointing, and lifecycle, all agnostic to the other
  two layers.

The shard owning a vertex holds the full out-adjacency of its sources and
the full in-adjacency of its destinations — the two directions of one edge
generally live on different shards, exactly like the HAU's per-direction
task routing.  Per-shard :class:`~repro.graph.base.DirectionStats` merge
back into the exact arrays the serial graph would have produced: the vertex
partition is disjoint, so a concatenate + stable argsort *is* the serial
sort order **regardless of placement**.  Compute stays serial on the
coordinator against lazily mirrored byte-exact adjacency views.

The hard invariant: a run at any ``num_shards``, under any transport and
any placement policy, produces algorithm results and
:class:`~repro.pipeline.metrics.RunMetrics` bit-identical to
``num_shards=1`` (enforced by the golden parity matrix in
``tests/test_pipeline_parity.py`` and ``tests/test_sharding.py``).

Environment knobs:

* ``REPRO_MP_START`` — start method for shard workers (see
  :func:`~repro.pipeline.executor.mp_context`);
* ``REPRO_SHARD_TRANSPORT`` / ``REPRO_SHARD_SHM`` /
  ``REPRO_SHARD_CONNECT_TIMEOUT`` — see :mod:`repro.pipeline.transport`;
* ``REPRO_CELL_TIMEOUT`` — seconds the coordinator waits on a shard reply
  before declaring the worker hung (unset/0 = wait forever), shared with
  the matrix executor.
"""

from __future__ import annotations

import pickle
import time
import uuid

import numpy as np

from ..errors import ConfigurationError, GraphError
from ..graph.adjacency_list import AdjacencyListGraph, _empty_direction_stats
from ..graph.base import BatchUpdateStats, DirectionStats, DynamicGraph
from ..graph.formats import make_adjacency_graph, resolve_adjacency_format
from ..telemetry.core import as_telemetry, make_telemetry, merge_snapshots
from .executor import CellExecutionError, _env_float
from .partition import (
    GREEDY_SAMPLE_EDGES,
    build_owner_map,
    owner_map_checksum,
    resolve_partition_policy,
    shard_owner,  # noqa: F401  (canonical home is partition.py; re-exported)
    validate_owner_map,
)
from .runner import StreamingPipeline
from .transport import (
    _shared_memory,
    make_transport,
    resolve_shard_transport,
)

__all__ = ["ShardedGraph", "ShardedPipeline", "ShardWorker", "shard_owner"]

# -- batch representation -----------------------------------------------------
#
# One batch becomes five flat arrays (insert src/dst/weight, delete src/dst).
# The transport decides how they travel (SharedMemory segment, inline pipe
# pickle, socket frame); the worker slices out its own edges either way.

_INT = np.dtype(np.int64)
_FLT = np.dtype(np.float64)


def _attach_shm(name):
    """Attach to a coordinator-owned segment without tracker side effects.

    On Python < 3.13 attaching registers the segment with a resource
    tracker, which is wrong either way the worker was started: a spawned
    worker's own tracker would unlink the segment (and warn) when the
    worker exits, and a forked worker shares the coordinator's tracker, so
    an unregister-after-attach would cancel the owner's registration
    instead.  Suppress the registration entirely — only the coordinator,
    which created the segment, tracks its lifetime.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _unpack_shm(shm, n_ins: int, n_del: int):
    """Rebuild the five arrays as views over an attached segment."""
    buf = shm.buf
    offset = 0
    out = []
    for count, dtype in (
        (n_ins, _INT), (n_ins, _INT), (n_ins, _FLT), (n_del, _INT), (n_del, _INT),
    ):
        out.append(np.ndarray((count,), dtype=dtype, buffer=buf, offset=offset))
        offset += count * dtype.itemsize
    return out


# -- worker side --------------------------------------------------------------


def _slice_batch(arrays, shard: int, owners: np.ndarray):
    """Cut one shard's slices out of the five batch arrays via the owner map.

    Boolean-mask indexing *copies*, so the slices outlive any shared-memory
    views behind ``arrays``; masks preserve batch order, which per-vertex
    dict insertion-order parity depends on.  Out-direction slices are keyed
    by source, in-direction slices by destination — one edge's two
    directions generally route to two different shards.
    """
    ins_src, ins_dst, ins_w, del_src, del_dst = arrays
    out_pick = owners[ins_src] == shard
    in_pick = owners[ins_dst] == shard
    dout_pick = owners[del_src] == shard
    din_pick = owners[del_dst] == shard
    return (
        (ins_src[out_pick], ins_dst[out_pick], ins_w[out_pick]),
        (ins_dst[in_pick], ins_src[in_pick], ins_w[in_pick]),
        (del_src[dout_pick], del_dst[dout_pick]),
        (del_dst[din_pick], del_src[din_pick]),
    )


class ShardWorker:
    """One shard's state and command handlers, transport-agnostic.

    Owns the partition's adjacency graph and a shard-local telemetry
    backend.  Process transports run one of these behind
    :func:`serve_shard_worker`; the ``inproc`` transport dispatches into
    :meth:`handle` directly.

    The spec dict carries everything a freshly spawned process needs:
    ``shard``, ``num_vertices``, ``telemetry_level``, ``adjacency`` and the
    policy-materialized ``owner_map``.
    """

    def __init__(self, spec: dict):
        self.shard = spec["shard"]
        self.num_vertices = spec["num_vertices"]
        self.owners = spec["owner_map"]
        self.tel = make_telemetry(spec.get("telemetry_level", "off"))
        timeline = getattr(self.tel, "timeline", None)
        if timeline is not None:
            timeline.configure(
                run_id=spec.get("run_id", ""),
                process=f"shard-{self.shard}",
                shard=self.shard,
            )
        self.graph = make_adjacency_graph(
            spec.get("adjacency", "dict"), self.num_vertices, telemetry=self.tel
        )

    # -- command handlers -----------------------------------------------------
    def handle(self, command: str, payload):
        """Serve one protocol command; raises on failure (the channel layer
        converts exceptions to ``("error", ...)`` replies)."""
        if command == "apply":
            return self._apply(payload)
        if command == "fetch":
            direction, vertices = payload
            adjacency_of = (
                self.graph.out_neighbors
                if direction == "out"
                else self.graph.in_neighbors
            )
            if self.tel.enabled:
                self.tel.count("shard.fetches")
                self.tel.count("shard.fetched_vertices", len(vertices))
            return {v: adjacency_of(v) for v in vertices}
        if command == "state":
            return pickle.dumps(self.graph, protocol=pickle.HIGHEST_PROTOCOL)
        if command == "restore":
            graph = pickle.loads(payload)
            if graph.num_vertices != self.num_vertices:
                raise GraphError(
                    f"restored shard graph has {graph.num_vertices} "
                    f"vertices, worker was spawned for {self.num_vertices}"
                )
            self.graph = graph
            return None
        if command == "track":
            self.graph.track_deltas(bool(payload))
            return None
        if command == "telemetry":
            return self.tel.snapshot()
        if command == "timeline":
            # Clock-offset handshake: the local perf_counter reading rides
            # back with the snapshot so the coordinator can express worker
            # timestamps on its own clock (offset = midpoint(t0, t1) - t_w).
            return (time.perf_counter(), self.tel.timeline_snapshot())
        if command == "close":
            return None
        raise GraphError(f"unknown shard command {command!r}")

    def _apply(self, payload):
        """Apply this shard's slice of one batch; reply with stats + updates."""
        tel = self.tel
        tel.set_batch(payload.get("batch_id"))
        with tel.span("shard.apply"):
            return self._apply_slices(payload)

    def _apply_slices(self, payload):
        graph, tel = self.graph, self.tel
        if "shm" in payload:
            shm = _attach_shm(payload["shm"])
            arrays = None
            try:
                arrays = _unpack_shm(shm, payload["n_ins"], payload["n_del"])
                slices = _slice_batch(arrays, self.shard, self.owners)
            finally:
                # Drop the zero-copy views before close(); a live export
                # would make releasing the segment's buffer fail.
                arrays = None  # noqa: F841
                shm.close()
        else:
            slices = _slice_batch(payload["inline"], self.shard, self.owners)
        (out_keys, out_vals, out_w), (in_keys, in_vals, in_w), dout, din = slices

        out_stats = graph.apply_direction_edges(
            out_keys, out_vals, out_w, direction="out"
        )
        in_stats = graph.apply_direction_edges(
            in_keys, in_vals, in_w, direction="in"
        )
        removed_out = graph.delete_direction_edges(dout[0], dout[1], direction="out")
        removed_in = graph.delete_direction_edges(din[0], din[1], direction="in")
        deleted = sum(removed_out.values())
        # Tracking exists here only to keep the worker on the tracked apply
        # path (its per-vertex dict order differs from the fast path's); the
        # coordinator rebuilds snapshots from scratch, so drop the journal
        # rather than let it accumulate across batches.
        graph.consume_delta()

        updated_out = updated_in = None
        if payload["include_updates"]:
            touched_out = set(out_stats.vertices.tolist())
            touched_out.update(removed_out)
            touched_in = set(in_stats.vertices.tolist())
            touched_in.update(removed_in)
            updated_out = {v: graph.out_neighbors(v) for v in sorted(touched_out)}
            updated_in = {v: graph.in_neighbors(v) for v in sorted(touched_in)}

        if tel.enabled:
            tel.count("shard.batches")
            tel.count("shard.out_edges", len(out_keys))
            tel.count("shard.in_edges", len(in_keys))
            if len(out_stats.new_edges):
                tel.count("shard.new_edges", int(out_stats.new_edges.sum()))
            if deleted:
                tel.count("shard.deleted_edges", deleted)
        return (out_stats, in_stats, deleted, updated_out, updated_in)


def serve_shard_worker(spec: dict, channel) -> None:
    """Shard worker loop: serve protocol commands until close/disconnect.

    Protocol: the coordinator sends ``(command, payload)`` tuples, the
    worker replies ``("ok", result)`` or ``("error", (type_name,
    message))``; exceptions never cross the channel as live objects
    (arbitrary tracebacks may not unpickle in the parent).
    """
    worker = ShardWorker(spec)
    while True:
        try:
            command, payload = channel.recv()
        except (EOFError, OSError):  # coordinator vanished; nothing to serve
            break
        if command == "close":
            try:
                channel.send(("ok", None))
            except (OSError, ValueError):  # pragma: no cover - racing close
                pass
            break
        try:
            reply = worker.handle(command, payload)
        except Exception as exc:
            channel.send(("error", (type(exc).__name__, str(exc))))
            continue
        channel.send(("ok", reply))
    channel.close()


# -- coordinator side ---------------------------------------------------------


def _merge_direction(parts) -> DirectionStats:
    """Merge disjoint per-shard stats into the serial direction stats.

    Every shard reports sorted vertices and the partition is disjoint, so a
    stable argsort of the concatenation reproduces the serial (globally
    sorted) order exactly — whatever policy produced the partition; the
    per-vertex columns ride along unchanged.
    """
    parts = [p for p in parts if len(p.vertices)]
    if not parts:
        return _empty_direction_stats()
    if len(parts) == 1:
        return parts[0]
    vertices = np.concatenate([p.vertices for p in parts])
    order = np.argsort(vertices, kind="stable")
    return DirectionStats(
        vertices=vertices[order],
        batch_degree=np.concatenate([p.batch_degree for p in parts])[order],
        length_before=np.concatenate([p.length_before for p in parts])[order],
        new_edges=np.concatenate([p.new_edges for p in parts])[order],
    )


class _ShardAdjacencyView:
    """Read-only mapping view over one direction of a :class:`ShardedGraph`.

    Looks like the dict the serial graph hands out — same outer key
    *insertion order* (CC's rebuild iterates it), same inner dict order
    (cached dicts are byte-for-byte copies of the owning worker's) — but
    materializes adjacencies lazily from the owner shard on first access.
    """

    __slots__ = ("_graph", "_direction")

    def __init__(self, graph: "ShardedGraph", direction: str):
        self._graph = graph
        self._direction = direction

    def _order(self):
        g = self._graph
        return g._key_order_out if self._direction == "out" else g._key_order_in

    def _keys(self):
        g = self._graph
        return g._key_set_out if self._direction == "out" else g._key_set_in

    def __len__(self) -> int:
        return len(self._order())

    def __contains__(self, v) -> bool:
        return v in self._keys()

    def __iter__(self):
        return iter(self._order())

    def __getitem__(self, v):
        if v not in self._keys():
            raise KeyError(v)
        return self._graph._adjacency_of(self._direction, v)

    def get(self, v, default=None):
        if v not in self._keys():
            return default
        return self._graph._adjacency_of(self._direction, v)

    def keys(self):
        return list(self._order())

    def items(self):
        graph, direction = self._graph, self._direction
        graph._warm(direction)
        for v in self._order():
            yield v, graph._adjacency_of(direction, v)

    def values(self):
        for _v, entry in self.items():
            yield entry


class ShardedGraph(DynamicGraph):
    """A dynamic graph whose update phase runs on ``num_shards`` workers.

    Drop-in for :class:`~repro.graph.adjacency_list.AdjacencyListGraph`
    inside a pipeline: :meth:`apply_batch` returns bit-identical
    :class:`~repro.graph.base.BatchUpdateStats` and the read accessors
    expose bit-identical adjacency (content *and* iteration order), so the
    cost models and compute algorithms cannot tell the difference.  The
    coordinator holds no authoritative adjacency — only merged bookkeeping
    (edge counts, outer-key order, a read cache) — while each worker owns
    its partition outright and applies its slices lock-free.

    Picklable for checkpoints: pickling drains each worker's graph into a
    per-shard payload; unpickling re-launches the transport lazily and
    pushes the payloads back on first use.  The owner map travels in the
    checkpoint, so a resume under a different placement is rejected instead
    of silently mis-routing.

    Args:
        num_vertices: vertex id universe.
        num_shards: shard worker count (>= 1).
        telemetry_level: level for the shard-local backends (coordinator +
            one per worker), kept separate from the pipeline's backend so
            sharding does not perturb the run's own telemetry stream; read
            the merged view with :meth:`shard_telemetry`.
        adjacency: adjacency-format name each worker builds its partition
            with (see :mod:`repro.graph.formats`); parity holds at any
            format, so this is a per-worker wall-clock lever.
        transport: shard-transport name (see
            :mod:`repro.pipeline.transport`); None resolves
            ``REPRO_SHARD_TRANSPORT`` / the default.
        policy: partition-policy name (see
            :mod:`repro.pipeline.partition`); ignored for placement when
            ``owner_map`` is given (it still labels the map's origin).
        owner_map: pre-materialized owner map (policies that sample the
            stream build it upstream); None materializes ``policy`` with
            no edge sample.
        run_telemetry: the *pipeline's* telemetry backend, used only for
            partition-quality and transport-traffic counters
            (``partition.*`` / ``transport.*``) that `repro report`
            surfaces; None records none.
    """

    def __init__(
        self,
        num_vertices: int,
        num_shards: int,
        telemetry_level: str = "off",
        adjacency: str | None = None,
        transport: str | None = None,
        policy: str | None = None,
        owner_map: np.ndarray | None = None,
        run_telemetry=None,
        run_id: str | None = None,
    ):
        super().__init__(num_vertices)
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.num_shards = num_shards
        self.adjacency = resolve_adjacency_format(adjacency)
        self.transport_name = resolve_shard_transport(transport)
        self.policy = resolve_partition_policy(policy).name
        if owner_map is None:
            owner_map = build_owner_map(self.policy, num_vertices, num_shards)
        self.owner_map = validate_owner_map(owner_map, num_vertices, num_shards)
        self._tel_level = telemetry_level
        self._tel = make_telemetry(telemetry_level)
        self._run_tel = as_telemetry(run_telemetry)
        # Outer-key bookkeeping mirroring the serial dicts: insertion order
        # (new keys arrive sorted within each batch, exactly like the serial
        # setdefault pass) and O(1) membership for negative lookups that
        # must not cross a process boundary.
        self._key_order_out: list[int] = []
        self._key_order_in: list[int] = []
        self._key_set_out: set[int] = set()
        self._key_set_in: set[int] = set()
        self._touched: set[int] = set()
        self._touched_sorted: list[int] | None = None
        # Read cache: exact copies of worker adjacency dicts.  ``_mirror``
        # flips on the first read access; from then on apply replies carry
        # the updated dicts so the cache stays coherent without re-fetching.
        self._cache_out: dict[int, dict[int, float]] = {}
        self._cache_in: dict[int, dict[int, float]] = {}
        self._mirror = False
        self._view_out = _ShardAdjacencyView(self, "out")
        self._view_in = _ShardAdjacencyView(self, "in")
        self._transport = None
        self._traffic_seen = (0, 0)
        self._pending_payloads: list[bytes] | None = None
        self._track_deltas = False
        self._closed = False
        #: Run identifier propagated into worker specs (timeline tracks).
        self.run_id = run_id or f"shards-{uuid.uuid4().hex[:8]}"
        #: Worker timelines harvested at (or before) close.
        self._worker_timelines: list = []

    # -- worker lifecycle ---------------------------------------------------
    @property
    def _conns(self):
        """Live per-shard channels (None before launch / after close)."""
        return None if self._transport is None else self._transport.channels

    @property
    def _procs(self):
        """Live worker processes (empty for in-process transports)."""
        return None if self._transport is None else self._transport.processes

    def _worker_specs(self) -> list[dict]:
        return [
            {
                "shard": shard,
                "num_shards": self.num_shards,
                "num_vertices": self.num_vertices,
                "telemetry_level": self._tel_level,
                "adjacency": self.adjacency,
                "owner_map": self.owner_map,
                "run_id": self.run_id,
            }
            for shard in range(self.num_shards)
        ]

    def _ensure_workers(self) -> None:
        if self._transport is not None:
            return
        if self._closed:
            raise GraphError("ShardedGraph has been closed")
        transport = make_transport(self.transport_name)
        try:
            transport.launch(self._worker_specs())
            self._transport = transport
            self._traffic_seen = (0, 0)
            if self._pending_payloads is not None:
                for shard, payload in enumerate(self._pending_payloads):
                    self._send(shard, ("restore", payload))
                for shard in range(self.num_shards):
                    self._recv(shard)
                self._pending_payloads = None
            if self._track_deltas:
                for shard in range(self.num_shards):
                    self._send(shard, ("track", True))
                for shard in range(self.num_shards):
                    self._recv(shard)
        except BaseException:
            # A partial launch (a worker that failed to spawn or connect,
            # a restore payload the worker rejected) must never leak live
            # shard processes: reap everything the transport started, then
            # surface the original error.  close() is idempotent, so the
            # caller's own try/finally close() remains safe.
            self._transport = transport
            self.close()
            raise

    def track_deltas(self, enabled: bool = True) -> None:
        """Keep the shard workers on the *tracked* apply path.

        The tracked and untracked ingest paths insert a vertex's new
        targets in different dict orders (composite-sort dedup vs raw batch
        order), so when a delta consumer attaches — ``DeltaSnapshotter``
        does this for the static-recompute algorithms — the workers must
        flip too, or their adjacency would diverge bit-for-bit from a
        tracked serial graph's.  The journal itself never crosses the
        channel: workers drop it after every batch, :meth:`consume_delta`
        stays ``None`` (the inherited default), and snapshots rebuild from
        the coordinator's mirror.
        """
        self._track_deltas = enabled
        if self._transport is not None:
            self._request_all("track", enabled)

    def _recv(self, shard: int):
        channel = self._transport.channels[shard]
        timeout = _env_float("REPRO_CELL_TIMEOUT", 0.0)
        try:
            if timeout > 0 and not channel.poll(timeout):
                raise CellExecutionError(
                    f"shard worker {shard} gave no reply within {timeout:g}s"
                )
            status, value = channel.recv()
        except (EOFError, OSError) as exc:
            raise CellExecutionError(
                f"shard worker {shard} died (channel closed: {exc!r}); its "
                "partition's state is lost — resume from a checkpoint"
            ) from exc
        if status == "error":
            type_name, message = value
            raise GraphError(f"shard worker {shard} failed: {type_name}: {message}")
        return value

    def _send(self, shard: int, message) -> None:
        try:
            self._transport.channels[shard].send(message)
        except (OSError, ValueError) as exc:
            # A killed worker surfaces as EPIPE on the *next* send; same
            # diagnosis and remedy as a recv-side death.
            raise CellExecutionError(
                f"shard worker {shard} died (channel closed: {exc!r}); its "
                "partition's state is lost — resume from a checkpoint"
            ) from exc

    def _request_all(self, command: str, payload=None) -> list:
        """Send one command to every worker, then gather replies in order."""
        self._ensure_workers()
        for shard in range(self.num_shards):
            self._send(shard, (command, payload))
        replies = [self._recv(shard) for shard in range(self.num_shards)]
        if self._run_tel.enabled:
            self._run_tel.count("transport.round_trips", self.num_shards)
        return replies

    def _harvest_worker_timelines(self) -> list:
        """Fetch every live worker's timeline with a clock handshake.

        For each worker the coordinator stamps ``t0``/``t1`` around the
        round trip and the worker replies with its own ``perf_counter``
        reading ``t_w``; ``offset = (t0 + t1)/2 - t_w`` expresses the
        worker's timestamps on the coordinator's clock (exact up to half
        the round-trip asymmetry, and ~0 for same-clock transports).
        Best-effort by design — dead or hung workers are skipped so close()
        and crash paths never stall on observability.
        """
        if self._transport is None:
            return self._worker_timelines
        snapshots = []
        for shard in range(self.num_shards):
            try:
                channel = self._transport.channels[shard]
                t0 = time.perf_counter()
                channel.send(("timeline", None))
                if not channel.poll(10.0):
                    continue
                status, value = channel.recv()
                t1 = time.perf_counter()
            except Exception:
                continue
            if status != "ok" or value is None:
                continue
            t_worker, snap = value
            if snap is not None:
                snapshots.append(snap.shifted((t0 + t1) / 2.0 - t_worker))
        if snapshots:
            self._worker_timelines = snapshots
        return self._worker_timelines

    def worker_timelines(self) -> list:
        """Clock-aligned worker timelines (live harvest, else the snapshots
        cached by :meth:`close`; empty below telemetry level ``full``)."""
        if self._tel_level != "full":
            return []
        if self._transport is not None:
            return list(self._harvest_worker_timelines())
        return list(self._worker_timelines)

    def close(self) -> None:
        """Shut the shard workers down; the graph is unusable afterwards.

        Idempotent: safe to call repeatedly, after a partial launch
        failure, and with already-dead workers (their broken channels are
        tolerated and the processes reaped regardless).

        Worker flight-recorder timelines are harvested (best effort) just
        before shutdown, so :meth:`worker_timelines` — and through it the
        trace writer's close — still sees them afterwards.
        """
        self._closed = True
        if self._transport is not None and self._tel_level == "full":
            try:
                self._harvest_worker_timelines()
            except Exception:
                pass
        transport, self._transport = self._transport, None
        if transport is None:
            return
        for channel in transport.channels:
            try:
                channel.send(("close", None))
            except (OSError, ValueError, EOFError):
                pass
        transport.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -- checkpointing ------------------------------------------------------
    def describe_shards(self) -> dict:
        """Placement identity for checkpoint headers and reports."""
        return {
            "num_shards": self.num_shards,
            "transport": self.transport_name,
            "policy": self.policy,
            "owner_map_crc32": owner_map_checksum(self.owner_map),
        }

    def __getstate__(self) -> dict:
        self._ensure_workers()
        payloads = self._request_all("state")
        return {
            "num_vertices": self.num_vertices,
            "num_shards": self.num_shards,
            "num_edges": self.num_edges,
            "batches_applied": self.batches_applied,
            "tel_level": self._tel_level,
            "tel": self._tel,
            "run_tel": self._run_tel,
            "adjacency": self.adjacency,
            "transport": self.transport_name,
            "policy": self.policy,
            "owner_map": self.owner_map,
            "key_order_out": self._key_order_out,
            "key_order_in": self._key_order_in,
            "touched": self._touched,
            "mirror": self._mirror,
            "track": self._track_deltas,
            "payloads": payloads,
            "run_id": self.run_id,
        }

    def __setstate__(self, state: dict) -> None:
        self.num_vertices = state["num_vertices"]
        self.num_shards = state["num_shards"]
        self.num_edges = state["num_edges"]
        self.batches_applied = state["batches_applied"]
        self._tel_level = state["tel_level"]
        self._tel = state["tel"]
        self._run_tel = state.get("run_tel", as_telemetry(None))
        # Checkpoints written before these fields default to the layout
        # every pre-refactor run used: dicts over pipes, mod placement.
        self.adjacency = state.get("adjacency", "dict")
        self.transport_name = state.get("transport", "shm")
        self.policy = state.get("policy", "mod")
        owner_map = state.get("owner_map")
        if owner_map is None:
            owner_map = build_owner_map(
                self.policy, self.num_vertices, self.num_shards
            )
        self.owner_map = validate_owner_map(
            owner_map, self.num_vertices, self.num_shards
        )
        self._key_order_out = state["key_order_out"]
        self._key_order_in = state["key_order_in"]
        self._key_set_out = set(self._key_order_out)
        self._key_set_in = set(self._key_order_in)
        self._touched = state["touched"]
        self._touched_sorted = None
        self._cache_out = {}
        self._cache_in = {}
        self._mirror = state["mirror"]
        self._view_out = _ShardAdjacencyView(self, "out")
        self._view_in = _ShardAdjacencyView(self, "in")
        self._transport = None
        self._traffic_seen = (0, 0)
        # Worker graphs travel as opaque pickles and are pushed back into
        # freshly launched workers on first use (worker-side telemetry
        # resets — only the coordinator backend survives a checkpoint).
        self._pending_payloads = state["payloads"]
        self._track_deltas = state["track"]
        self._closed = False
        self.run_id = state.get("run_id") or f"shards-{uuid.uuid4().hex[:8]}"
        self._worker_timelines = []

    # -- updates ------------------------------------------------------------
    def apply_batch(self, batch) -> BatchUpdateStats:
        self.check_vertices(batch.src, batch.dst)
        self._ensure_workers()
        inserts = batch.insertions
        deletes = batch.deletions
        arrays = (
            np.ascontiguousarray(inserts.src, dtype=_INT),
            np.ascontiguousarray(inserts.dst, dtype=_INT),
            np.ascontiguousarray(inserts.weight, dtype=_FLT),
            np.ascontiguousarray(deletes.src, dtype=_INT),
            np.ascontiguousarray(deletes.dst, dtype=_INT),
        )
        fields, release, shipped = self._transport.pack_batch(arrays)
        payload = {
            "include_updates": self._mirror,
            "batch_id": batch.batch_id,
            **fields,
        }
        try:
            replies = self._request_all("apply", payload)
        finally:
            if release is not None:
                release()
        out_stats = _merge_direction([reply[0] for reply in replies])
        in_stats = _merge_direction([reply[1] for reply in replies])
        deleted = sum(reply[2] for reply in replies)
        inserted = int(out_stats.new_edges.sum()) if len(out_stats.new_edges) else 0
        self.num_edges += inserted - deleted
        self.batches_applied += 1
        self._note_keys(
            out_stats.vertices, self._key_set_out, self._key_order_out
        )
        self._note_keys(in_stats.vertices, self._key_set_in, self._key_order_in)
        if self._mirror:
            for reply in replies:
                self._cache_out.update(reply[3])
                self._cache_in.update(reply[4])
        if self._tel.enabled:
            self._tel.count("shard.coordinator_batches")
            self._tel.count(
                "shard.shm_batches" if "shm" in fields else "shard.inline_batches"
            )
        self._record_partition_telemetry(arrays, shipped)
        return BatchUpdateStats(
            batch_id=batch.batch_id,
            batch_size=batch.size,
            out=out_stats,
            inn=in_stats,
            deleted_edges=deleted,
        )

    def _record_partition_telemetry(self, arrays, shipped: int) -> None:
        """Partition-quality + transport-traffic counters on the *run's*
        telemetry stream (``repro report`` renders them; see
        docs/OBSERVABILITY.md).  Placement quality is observation-only —
        it never feeds back into routing."""
        tel = self._run_tel
        if not tel.enabled:
            return
        owners = self.owner_map
        src_own = owners[arrays[0]]
        dst_own = owners[arrays[1]]
        tel.count("partition.edges", len(src_own))
        tel.count("partition.cut_edges", int(np.sum(src_own != dst_own)))
        loads = np.bincount(src_own, minlength=self.num_shards) + np.bincount(
            dst_own, minlength=self.num_shards
        )
        for shard in range(self.num_shards):
            tel.count(f"partition.load.s{shard:02d}", int(loads[shard]))
        sent = sum(c.bytes_sent for c in self._transport.channels)
        received = sum(c.bytes_received for c in self._transport.channels)
        last_sent, last_received = self._traffic_seen
        tel.count("transport.bytes_sent", sent - last_sent)
        tel.count("transport.bytes_received", received - last_received)
        self._traffic_seen = (sent, received)
        if shipped:
            tel.count("transport.shm_bytes", shipped)

    def _note_keys(self, vertices: np.ndarray, key_set: set, key_order: list) -> None:
        """Append this batch's new outer keys in serial insertion order.

        ``vertices`` arrives sorted, matching the order the serial graph's
        setdefault pass materializes new outer keys in.
        """
        fresh = [v for v in vertices.tolist() if v not in key_set]
        if not fresh:
            return
        key_set.update(fresh)
        key_order.extend(fresh)
        before = len(self._touched)
        self._touched.update(fresh)
        if len(self._touched) != before:
            self._touched_sorted = None

    # -- reads --------------------------------------------------------------
    def _adjacency_of(self, direction: str, v: int) -> dict[int, float]:
        """The (cached) adjacency dict of an existing outer key ``v``."""
        cache = self._cache_out if direction == "out" else self._cache_in
        entry = cache.get(v)
        if entry is None:
            self._mirror = True
            entry = self._fetch(direction, [v])[v]
            cache[v] = entry
            if self._tel.enabled:
                self._tel.count("shard.cache_misses")
        return entry

    def _fetch(self, direction: str, vertices: list) -> dict:
        """Fetch adjacency dicts from their owner shards, grouped per owner."""
        self._ensure_workers()
        owner_map = self.owner_map
        by_owner: dict[int, list] = {}
        for v in vertices:
            by_owner.setdefault(int(owner_map[v]), []).append(v)
        owners = sorted(by_owner)
        for owner in owners:
            self._send(owner, ("fetch", (direction, by_owner[owner])))
        fetched: dict = {}
        for owner in owners:
            fetched.update(self._recv(owner))
        return fetched

    def _warm(self, direction: str) -> None:
        """Pull every not-yet-cached adjacency of one direction at once."""
        self._mirror = True
        cache = self._cache_out if direction == "out" else self._cache_in
        order = self._key_order_out if direction == "out" else self._key_order_in
        missing = [v for v in order if v not in cache]
        if not missing:
            return
        if self._tel.enabled:
            self._tel.count("shard.cache_warms")
            self._tel.count("shard.warmed_vertices", len(missing))
        cache.update(self._fetch(direction, missing))

    def out_neighbors(self, v: int) -> dict[int, float]:
        self._mirror = True
        return self._view_out.get(v, {})

    def in_neighbors(self, v: int) -> dict[int, float]:
        self._mirror = True
        return self._view_in.get(v, {})

    def has_edge(self, u: int, v: int) -> bool:
        """True if edge u->v is currently present."""
        return v in self.out_neighbors(u)

    def edge_weight(self, u: int, v: int) -> float | None:
        """Current weight of u->v, or None if absent."""
        return self.out_neighbors(u).get(v)

    def adjacency_views(self):
        self._mirror = True
        return self._view_out, self._view_in

    def vertices_with_edges(self) -> list[int]:
        """Sorted vertices with any incident edge; pre-warms the read cache
        (snapshot construction reads every vertex right after calling this)."""
        self._warm("out")
        self._warm("in")
        if self._touched_sorted is None:
            self._touched_sorted = sorted(self._touched)
        return self._touched_sorted

    def touched_count(self) -> int:
        return len(self._touched)

    def notify_external_mutation(self) -> None:
        raise GraphError(
            "ShardedGraph adjacency views are read-only mirrors; algorithms "
            "that mutate views directly require num_shards=1"
        )

    def sum_search_cost(self, batch_degree, length_before, new_edges, per_element):
        # The modeled duplicate-check cost is a pure function of the stats;
        # delegate to the serial structure's linear-scan formula so sharded
        # runs charge identical modeled time.
        return AdjacencyListGraph.sum_search_cost(
            self, batch_degree, length_before, new_edges, per_element
        )

    # -- telemetry ----------------------------------------------------------
    def shard_telemetry(self):
        """Merged shard telemetry: coordinator backend + workers, in shard
        order (deterministic, mirroring the executor's snapshot merge)."""
        if not self._tel.enabled:
            return self._tel.snapshot()
        snapshots = [self._tel.snapshot()]
        snapshots.extend(self._request_all("telemetry"))
        return merge_snapshots(snapshots)


def _sample_stream_edges(profile, batch_size: int, seed: int):
    """Peek at the head of a profile's stream for edge-aware placement.

    Stream generation is a pure function of ``(seed, batch_id)``, so
    peeking consumes nothing and the sample — hence the owner map — is
    identical on every (re)construction of the same run, which checkpoint
    resume depends on.
    """
    generator = profile.generator(seed=seed)
    limit = min(profile.num_batches(batch_size), 8)
    src_parts, dst_parts, total = [], [], 0
    for index in range(limit):
        if total >= GREEDY_SAMPLE_EDGES:
            break
        inserts = generator.generate_batch(index, batch_size).insertions
        src_parts.append(np.ascontiguousarray(inserts.src, dtype=np.int64))
        dst_parts.append(np.ascontiguousarray(inserts.dst, dtype=np.int64))
        total += len(inserts.src)
    if not src_parts:
        return None
    return np.concatenate(src_parts), np.concatenate(dst_parts)


class ShardedPipeline(StreamingPipeline):
    """A :class:`StreamingPipeline` whose graph updates fan out over shards.

    The stage logic is inherited untouched — only the graph substrate
    changes — which is what makes sharded metrics bit-identical by
    construction.  Use as a context manager (or call :meth:`close`) so the
    shard workers shut down promptly; abandoned workers are daemons and die
    with the coordinator regardless.

    Args:
        num_shards: shard workers (>= 1).
        adjacency: per-worker adjacency format (see
            :mod:`repro.graph.formats`).
        shard_transport: transport name (see
            :mod:`repro.pipeline.transport`); None resolves the
            environment/default.
        shard_policy: partition-policy name (see
            :mod:`repro.pipeline.partition`); edge-aware policies sample
            the head of the stream before the first batch runs.
        (remaining arguments as :class:`StreamingPipeline`)
    """

    def __init__(self, profile, batch_size, *, num_shards, graph=None,
                 telemetry=None, adjacency=None, shard_transport=None,
                 shard_policy=None, seed=7, **kwargs):
        # One run id spans coordinator and workers so their timeline
        # snapshots merge into a single clock-aligned trace.
        run_id = kwargs.pop("run_id", None)
        if graph is None:
            run_id = run_id or f"{profile.name}-{uuid.uuid4().hex[:8]}"
            backend = as_telemetry(telemetry)
            policy = resolve_partition_policy(shard_policy)
            edges = (
                _sample_stream_edges(profile, batch_size, seed)
                if policy.uses_edges
                else None
            )
            owner_map = build_owner_map(
                policy, profile.num_vertices, num_shards, edges=edges
            )
            graph = ShardedGraph(
                profile.num_vertices, num_shards,
                telemetry_level=backend.level, adjacency=adjacency,
                transport=shard_transport, policy=policy.name,
                owner_map=owner_map, run_telemetry=backend, run_id=run_id,
            )
        else:
            run_id = run_id or getattr(graph, "run_id", None)
        self.num_shards = num_shards
        super().__init__(
            profile, batch_size, graph=graph, telemetry=telemetry, seed=seed,
            run_id=run_id, **kwargs
        )

    def close(self) -> None:
        """Shut down the shard workers backing this pipeline's graph."""
        close = getattr(self.graph, "close", None)
        if close is not None:
            close()

    def shard_telemetry(self):
        """The graph's merged shard telemetry (see
        :meth:`ShardedGraph.shard_telemetry`)."""
        return self.graph.shard_telemetry()

    def __enter__(self) -> "ShardedPipeline":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
