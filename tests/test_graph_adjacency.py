"""AdjacencyListGraph: functional batch ingestion semantics."""

import numpy as np
import pytest

from conftest import make_batch
from repro.errors import VertexOutOfRangeError
from repro.graph.adjacency_list import AdjacencyListGraph


def test_insert_single_edge_both_directions(tiny_graph):
    stats = tiny_graph.apply_batch(make_batch([1], [2], [5.0]))
    assert tiny_graph.out_neighbors(1) == {2: 5.0}
    assert tiny_graph.in_neighbors(2) == {1: 5.0}
    assert tiny_graph.num_edges == 1
    assert stats.out.num_vertices == 1
    assert stats.inn.num_vertices == 1


def test_duplicate_within_batch_refreshes_weight(tiny_graph):
    tiny_graph.apply_batch(make_batch([1, 1], [2, 2], [5.0, 7.0]))
    assert tiny_graph.edge_weight(1, 2) == 7.0  # last write wins
    assert tiny_graph.num_edges == 1


def test_duplicate_across_batches_refreshes_weight(tiny_graph):
    tiny_graph.apply_batch(make_batch([1], [2], [5.0], batch_id=0))
    stats = tiny_graph.apply_batch(make_batch([1], [2], [9.0], batch_id=1))
    assert tiny_graph.edge_weight(1, 2) == 9.0
    assert tiny_graph.num_edges == 1
    assert stats.out.new_edges.sum() == 0
    assert stats.out.duplicates.sum() == 1


def test_stats_length_before_and_new_edges(tiny_graph):
    tiny_graph.apply_batch(make_batch([1, 1], [2, 3]))
    stats = tiny_graph.apply_batch(make_batch([1, 1, 1], [3, 4, 5], batch_id=1))
    (v,) = [i for i, vv in enumerate(stats.out.vertices.tolist()) if vv == 1]
    assert stats.out.length_before[v] == 2
    assert stats.out.batch_degree[v] == 3
    assert stats.out.new_edges[v] == 2  # 3 already present
    assert stats.out.duplicates[v] == 1


def test_in_direction_stats_group_by_destination(tiny_graph):
    stats = tiny_graph.apply_batch(make_batch([1, 2, 3], [9, 9, 9]))
    assert stats.inn.vertices.tolist() == [9]
    assert stats.inn.batch_degree.tolist() == [3]
    assert tiny_graph.in_degree(9) == 3


def test_has_edge_and_edge_weight(tiny_graph):
    tiny_graph.apply_batch(make_batch([4], [5], [2.5]))
    assert tiny_graph.has_edge(4, 5)
    assert not tiny_graph.has_edge(5, 4)
    assert tiny_graph.edge_weight(4, 5) == 2.5
    assert tiny_graph.edge_weight(5, 4) is None


def test_deletion_removes_both_directions(tiny_graph):
    tiny_graph.apply_batch(make_batch([1, 2], [2, 3]))
    stats = tiny_graph.apply_batch(
        make_batch([1], [2], is_delete=[True], batch_id=1)
    )
    assert stats.deleted_edges == 1
    assert not tiny_graph.has_edge(1, 2)
    assert 1 not in tiny_graph.in_neighbors(2)
    assert tiny_graph.num_edges == 1


def test_deleting_missing_edge_is_noop(tiny_graph):
    stats = tiny_graph.apply_batch(make_batch([1], [2], is_delete=[True]))
    assert stats.deleted_edges == 0
    assert tiny_graph.num_edges == 0


def test_insert_then_delete_same_batch(tiny_graph):
    # Insertions apply before deletions (Section 4.4.3 ordering).
    stats = tiny_graph.apply_batch(
        make_batch([1, 1], [2, 2], is_delete=[False, True])
    )
    assert not tiny_graph.has_edge(1, 2)
    assert stats.deleted_edges == 1
    assert tiny_graph.num_edges == 0


def test_vertex_out_of_range_rejected(tiny_graph):
    with pytest.raises(VertexOutOfRangeError):
        tiny_graph.apply_batch(make_batch([1], [99]))
    with pytest.raises(VertexOutOfRangeError):
        tiny_graph.apply_batch(make_batch([-1], [2]))


def test_vertices_with_edges(tiny_graph):
    tiny_graph.apply_batch(make_batch([1, 3], [2, 4]))
    assert tiny_graph.vertices_with_edges() == [1, 2, 3, 4]


def test_batches_applied_counter(tiny_graph):
    tiny_graph.apply_batch(make_batch([1], [2], batch_id=0))
    tiny_graph.apply_batch(make_batch([2], [3], batch_id=1))
    assert tiny_graph.batches_applied == 2


def test_adjacency_views_expose_live_state(tiny_graph):
    tiny_graph.apply_batch(make_batch([1], [2]))
    out, inn = tiny_graph.adjacency_views()
    assert out[1] == {2: 1.0}
    assert inn[2] == {1: 1.0}


def test_sum_search_cost_linear_model(tiny_graph):
    k = np.array([3])
    length = np.array([10])
    new = np.array([2])
    cost = tiny_graph.sum_search_cost(k, length, new, per_element=2.0)
    # 3 searches over L=10 plus the (k-1)*new/2 growth ramp.
    assert cost[0] == pytest.approx(2.0 * (3 * 10 + 2 * 2 / 2))


def test_large_batch_matches_reference_dict_model(small_generator):
    """Cross-check batch application against a naive per-edge reference."""
    graph = AdjacencyListGraph(500)
    reference_out: dict[int, dict[int, float]] = {}
    for batch in small_generator.batches(2_000, 4):
        graph.apply_batch(batch)
        for u, v, w in zip(batch.src.tolist(), batch.dst.tolist(), batch.weight.tolist()):
            reference_out.setdefault(u, {})[v] = w
    for v, expected in reference_out.items():
        assert graph.out_neighbors(v) == expected
    assert graph.num_edges == sum(len(d) for d in reference_out.values())
