"""Typed, bounded search spaces over :class:`~repro.pipeline.config.RunConfig`.

A :class:`SearchSpace` declares which run-config knobs an auto-tuning search
may move and within which bounds, as plain data with a JSON round-trip (so a
space ships in a file next to its results).  Each :class:`Dimension` names a
dotted path into ``RunConfig`` — top-level fields (``batch_size``,
``adjacency``) or fields of the nested parameter dataclasses
(``abr.threshold``, ``oca.overlap_threshold``, ``costs.usc_hash_insert``) —
and the space's :meth:`~SearchSpace.apply` turns an assignment (a plain
``{dimension name: value}`` dict) into a fully validated ``RunConfig``.

Dimension kinds:

* ``continuous`` — a float in ``[low, high]``, optionally log-scaled
  (samples uniform in ``ln`` space, natural for thresholds spanning
  decades such as ABR's TH);
* ``integer`` — an int in ``[low, high]``, optionally log-scaled
  (ABR's n and lambda, batch_size);
* ``categorical`` — one of ``choices`` (adjacency format, shard policy).

An integer dimension may additionally declare ``transform="pow2"``: the
searched value is an *exponent* and the config receives ``2**value``.  The
built-in ``usc_hash_bits`` dimension uses this to tune the modeled USC
hash-structure width — the per-insert cost ``costs.usc_hash_insert`` scales
as a power of two of the searched bit count, so the optimizer walks a small
integer range while the config sees the exponential cost it implies.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import TuneError
from ..pipeline.config import RunConfig, _NESTED_FIELDS

__all__ = ["Dimension", "SearchSpace", "BUILTIN_SPACES", "load_space"]

DIMENSION_KINDS = ("continuous", "integer", "categorical")
TRANSFORMS = ("none", "pow2")


@dataclass(frozen=True)
class Dimension:
    """One tunable knob: a bounded region of one ``RunConfig`` field.

    Attributes:
        name: assignment key (unique within a space).
        field: dotted path into ``RunConfig`` (``"batch_size"``,
            ``"abr.threshold"``, ``"costs.usc_hash_insert"``).
        kind: one of :data:`DIMENSION_KINDS`.
        low / high: inclusive bounds (numeric kinds only).
        log: sample/grid in log space (numeric kinds; requires ``low > 0``).
        choices: the value set (categorical only).
        transform: ``"none"`` or ``"pow2"`` (integer only) — how a searched
            value maps onto the config field.
    """

    name: str
    field: str
    kind: str
    low: float | None = None
    high: float | None = None
    log: bool = False
    choices: tuple = ()
    transform: str = "none"

    def __post_init__(self) -> None:
        if self.kind not in DIMENSION_KINDS:
            raise TuneError(
                f"dimension {self.name!r}: kind must be one of "
                f"{DIMENSION_KINDS}, got {self.kind!r}"
            )
        if self.transform not in TRANSFORMS:
            raise TuneError(
                f"dimension {self.name!r}: transform must be one of "
                f"{TRANSFORMS}, got {self.transform!r}"
            )
        object.__setattr__(self, "choices", tuple(self.choices))
        if self.kind == "categorical":
            if not self.choices:
                raise TuneError(
                    f"categorical dimension {self.name!r} needs choices"
                )
            if self.low is not None or self.high is not None or self.log:
                raise TuneError(
                    f"categorical dimension {self.name!r} takes no bounds"
                )
            if self.transform != "none":
                raise TuneError(
                    f"categorical dimension {self.name!r} takes no transform"
                )
            return
        if self.choices:
            raise TuneError(
                f"numeric dimension {self.name!r} takes no choices"
            )
        if self.low is None or self.high is None or not self.low < self.high:
            raise TuneError(
                f"dimension {self.name!r} needs bounds with low < high, "
                f"got low={self.low!r} high={self.high!r}"
            )
        if self.log and self.low <= 0:
            raise TuneError(
                f"log dimension {self.name!r} needs low > 0, got {self.low}"
            )
        if self.transform == "pow2" and self.kind != "integer":
            raise TuneError(
                f"dimension {self.name!r}: pow2 transform requires an "
                f"integer dimension"
            )

    # -- search-side operations ----------------------------------------------
    def sample(self, rng) -> object:
        """One uniformly drawn in-bounds value (log-uniform when ``log``)."""
        if self.kind == "categorical":
            return self.choices[rng.randrange(len(self.choices))]
        if self.log:
            raw = math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        else:
            raw = rng.uniform(self.low, self.high)
        return self.clip(round(raw)) if self.kind == "integer" else raw

    def clip(self, value):
        """Force a numeric value back into bounds (identity for categorical)."""
        if self.kind == "categorical":
            return value
        value = min(max(value, self.low), self.high)
        return int(round(value)) if self.kind == "integer" else float(value)

    def grid(self, levels: int) -> list:
        """``levels`` evenly spaced in-bounds values (deduplicated ints)."""
        if self.kind == "categorical":
            return list(self.choices)
        levels = max(2, levels)
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            points = [
                math.exp(lo + (hi - lo) * i / (levels - 1))
                for i in range(levels)
            ]
        else:
            points = [
                self.low + (self.high - self.low) * i / (levels - 1)
                for i in range(levels)
            ]
        values = [self.clip(p) for p in points]
        if self.kind == "integer":  # rounding can collide adjacent levels
            values = list(dict.fromkeys(values))
        return values

    def config_value(self, value):
        """Map a searched value onto the config field's value."""
        value = self.validated(value)
        if self.transform == "pow2":
            return float(2 ** int(value))
        return value

    def validated(self, value):
        """Check an assignment value against this dimension's domain."""
        if self.kind == "categorical":
            if value not in self.choices:
                raise TuneError(
                    f"dimension {self.name!r}: {value!r} is not one of "
                    f"{self.choices}"
                )
            return value
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TuneError(
                f"dimension {self.name!r}: expected a number, got {value!r}"
            )
        if not self.low <= value <= self.high:
            raise TuneError(
                f"dimension {self.name!r}: {value!r} outside "
                f"[{self.low}, {self.high}]"
            )
        return int(value) if self.kind == "integer" else float(value)

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["choices"] = list(self.choices)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Dimension":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise TuneError(
                f"dimension has unknown keys: {sorted(unknown)}"
            )
        return cls(**{k: tuple(v) if k == "choices" else v
                      for k, v in data.items()})


def _check_field_path(dimension: Dimension) -> None:
    """Eagerly reject dimensions whose field path cannot reach RunConfig."""
    top, _, leaf = dimension.field.partition(".")
    config_fields = {f.name for f in dataclasses.fields(RunConfig)}
    if top not in config_fields:
        raise TuneError(
            f"dimension {dimension.name!r}: {top!r} is not a RunConfig field"
        )
    if not leaf:
        return
    if top not in _NESTED_FIELDS:
        raise TuneError(
            f"dimension {dimension.name!r}: {top!r} is not a nested config "
            f"(nested: {sorted(_NESTED_FIELDS)})"
        )
    nested_fields = {f.name for f in dataclasses.fields(_NESTED_FIELDS[top])}
    if leaf not in nested_fields:
        raise TuneError(
            f"dimension {dimension.name!r}: {leaf!r} is not a field of "
            f"{_NESTED_FIELDS[top].__name__}"
        )


@dataclass(frozen=True)
class SearchSpace:
    """A named, ordered collection of dimensions with a JSON round-trip."""

    name: str
    dimensions: tuple[Dimension, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "dimensions", tuple(self.dimensions))
        if not self.dimensions:
            raise TuneError(f"search space {self.name!r} has no dimensions")
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise TuneError(
                f"search space {self.name!r} has duplicate dimension names"
            )
        for dimension in self.dimensions:
            _check_field_path(dimension)

    def __iter__(self):
        return iter(self.dimensions)

    def __len__(self) -> int:
        return len(self.dimensions)

    def dimension(self, name: str) -> Dimension:
        for d in self.dimensions:
            if d.name == name:
                return d
        raise TuneError(
            f"space {self.name!r} has no dimension {name!r} "
            f"(has: {[d.name for d in self.dimensions]})"
        )

    # -- search-side operations ----------------------------------------------
    def sample(self, rng) -> dict:
        """One full random assignment (every dimension drawn)."""
        return {d.name: d.sample(rng) for d in self.dimensions}

    def grid_assignments(self, budget: int) -> list[dict]:
        """The smallest full-factorial grid covering ``budget`` assignments.

        Per-dimension level counts grow together until the cartesian
        product reaches ``budget`` (or stops growing — integer and
        categorical dimensions saturate), then the product is enumerated
        in dimension-major order.
        """
        levels = 2
        sizes = [len(d.grid(levels)) for d in self.dimensions]
        while math.prod(sizes) < budget:
            levels += 1
            grown = [len(d.grid(levels)) for d in self.dimensions]
            if grown == sizes:  # every dimension saturated
                break
            sizes = grown
        grids = [d.grid(levels) for d in self.dimensions]
        assignments: list[dict] = [{}]
        for dimension, values in zip(self.dimensions, grids):
            assignments = [
                {**partial, dimension.name: value}
                for partial in assignments
                for value in values
            ]
        return assignments

    def apply(self, base: RunConfig, assignment: dict) -> RunConfig:
        """Materialize an assignment as a run config derived from ``base``.

        Unassigned dimensions keep the base's values; nested fields
        (``abr.threshold``) instantiate the nested config from its defaults
        when the base carries None.  The result passes full ``RunConfig``
        validation, so an in-bounds assignment always yields a buildable
        run.
        """
        known = {d.name for d in self.dimensions}
        unknown = set(assignment) - known
        if unknown:
            raise TuneError(
                f"assignment has unknown dimensions: {sorted(unknown)}"
            )
        updates: dict = {}
        nested_updates: dict[str, dict] = {}
        for dimension in self.dimensions:
            if dimension.name not in assignment:
                continue
            value = dimension.config_value(assignment[dimension.name])
            top, _, leaf = dimension.field.partition(".")
            if leaf:
                nested_updates.setdefault(top, {})[leaf] = value
            else:
                updates[top] = value
        for top, fields in nested_updates.items():
            current = getattr(base, top)
            if current is None:
                current = _NESTED_FIELDS[top]()
            updates[top] = dataclasses.replace(current, **fields)
        return dataclasses.replace(base, **updates)

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "dimensions": [d.to_dict() for d in self.dimensions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        try:
            name = data["name"]
            rows = data["dimensions"]
        except (TypeError, KeyError) as exc:
            raise TuneError(
                f"search space needs 'name' and 'dimensions': {exc}"
            ) from exc
        return cls(
            name=name,
            dimensions=tuple(Dimension.from_dict(row) for row in rows),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "SearchSpace":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise TuneError(f"search space is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def _abr_dimensions() -> tuple[Dimension, ...]:
    return (
        Dimension("abr_threshold", "abr.threshold", "continuous",
                  low=50.0, high=2000.0, log=True),
        Dimension("abr_lambda", "abr.lam", "integer",
                  low=32, high=1024, log=True),
        Dimension("abr_n", "abr.n", "integer", low=2, high=40, log=True),
    )


def _builtin_spaces() -> dict[str, SearchSpace]:
    abr = _abr_dimensions()
    batch = Dimension("batch_size", "batch_size", "integer",
                      low=200, high=5000, log=True)
    adjacency = Dimension("adjacency", "adjacency", "categorical",
                          choices=("dict", "hybrid"))
    oca = Dimension("oca_threshold", "oca.overlap_threshold", "continuous",
                    low=0.05, high=0.9)
    usc_bits = Dimension("usc_hash_bits", "costs.usc_hash_insert", "integer",
                         low=1, high=5, transform="pow2")
    shard = Dimension("shard_policy", "shard_policy", "categorical",
                      choices=("mod", "hash", "greedy"))
    return {
        "abr": SearchSpace("abr", abr),
        "demo": SearchSpace("demo", (abr[0], abr[2], batch, adjacency)),
        "full": SearchSpace(
            "full", abr + (oca, usc_bits, batch, adjacency, shard)
        ),
    }


#: Named spaces shipped with the library: ``"abr"`` (the paper's §6.2.3
#: design parameters alone), ``"demo"`` (a small, cheap space exercising
#: ABR plus the batch-size / adjacency axes — the default for ``repro
#: tune``), ``"full"`` (every tunable policy axis at once).
BUILTIN_SPACES: dict[str, SearchSpace] = _builtin_spaces()


def load_space(name_or_path: str) -> SearchSpace:
    """Resolve a built-in space name or a JSON space file path."""
    if name_or_path in BUILTIN_SPACES:
        return BUILTIN_SPACES[name_or_path]
    path = Path(name_or_path)
    if path.exists():
        return SearchSpace.from_json(path.read_text())
    raise TuneError(
        f"unknown search space {name_or_path!r}: not a built-in "
        f"({sorted(BUILTIN_SPACES)}) and no such file"
    )
