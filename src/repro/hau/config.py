"""HAU simulator configuration — the Table 1 baseline architecture.

===========  ==================================================================
core         16 cores, 2.5 GHz, 4-issue
L1D/I        32 KB private, 8-way, 3 cycles
L2           256 KB private, 8-way, 8 cycles
L3           16 MB NUCA (2 MB slices), 16-way, 8-cycle bank access
NOC          4x4 mesh, 2-cycle hop, 256 bits/cycle per link per direction
DRAM         4 memory controllers, 17 GB/s each, 40 ns device access
===========  ==================================================================

Plus the HAU additions of Section 4.4: ten task-reserved MSHR entries per
core and two 32-entry FIFO buffers per core tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["HAUConfig", "DEFAULT_HAU_CONFIG"]


@dataclass(frozen=True)
class HAUConfig:
    """Parameters of the simulated CMP and the HAU machinery (cycles)."""

    # -- chip organization ---------------------------------------------------
    num_cores: int = 16
    mesh_width: int = 4
    clock_ghz: float = 2.5
    #: Core 0 hosts the master thread (SAGA-Bench setup); workers are 1..15.
    master_core: int = 0

    # -- memory hierarchy ------------------------------------------------------
    cacheline_bytes: int = 64
    #: 8-byte <neighbor, weight-packed> entries per cacheline.
    elems_per_line: int = 8
    l1_lines: int = 512        # 32 KB / 64 B
    l2_lines: int = 4096       # 256 KB / 64 B
    l3_lines_per_slice: int = 32768  # 2 MB / 64 B
    l1_latency: int = 3
    l2_latency: int = 8
    l3_latency: int = 12       # bank access + tag path
    dram_latency: int = 100    # 40 ns at 2.5 GHz
    #: Effective per-line cycles when the controller *streams* consecutive
    #: lines with multiple fills in flight (the dedicated scan logic of
    #: Fig. 11 overlaps fetch and compare, so throughput — not load-to-use
    #: latency — governs): private-cache resident, L3-resident, and DRAM
    #: streaming rates.
    l2_stream_cycles: float = 3.0
    l3_stream_cycles: float = 5.0
    dram_stream_cycles: float = 15.0

    # -- NoC ----------------------------------------------------------------
    hop_latency: int = 2
    #: Flits per task packet (three 64-bit fields on a 256-bit link).
    task_packet_flits: int = 1
    #: Flits per cacheline transfer packet (64 B on a 256-bit link).
    data_packet_flits: int = 2

    # -- HAU machinery (Section 4.4) ------------------------------------------
    task_mshr_entries: int = 10
    fifo_entries: int = 32
    #: supply_task instruction on the producing core.
    supply_task_cycles: int = 2
    #: fetch_task instruction + FIFO pop on the consuming core.
    fetch_task_cycles: int = 2
    #: Cache-controller engage/disengage per task (MSHR allocate/free,
    #: FSM transitions of Fig. 10/11).
    controller_overhead_cycles: int = 2
    #: Dedicated scan logic: per-cacheline compare cost (overlapped with the
    #: next line's fetch, so this is the *additional* cost per line).
    scan_per_line_cycles: int = 0
    #: Insert handed back to the core (Fig. 11 step 6): the controller has
    #: already located the slot, the core commits the entry (and rarely
    #: allocates), per inserted edge.
    core_insert_cycles: int = 8
    #: Weight refresh for duplicate edges, per edge.
    core_weight_cycles: int = 4
    #: Probability that a vertex's edge array shares a boundary cacheline
    #: with a neighboring vertex homed on another core (the source of the
    #: paper's residual 1-2% remote accesses).
    boundary_share_probability: float = 0.03

    def __post_init__(self) -> None:
        if self.num_cores != self.mesh_width ** 2:
            raise ConfigurationError(
                f"num_cores ({self.num_cores}) must equal mesh_width^2 "
                f"({self.mesh_width ** 2})"
            )
        if not 0 <= self.boundary_share_probability <= 1:
            raise ConfigurationError(
                "boundary_share_probability must be in [0,1], got "
                f"{self.boundary_share_probability}"
            )
        if self.master_core < 0 or self.master_core >= self.num_cores:
            raise ConfigurationError(
                f"master_core {self.master_core} out of range"
            )

    @property
    def num_workers(self) -> int:
        """Task-consuming cores (all but the master)."""
        return self.num_cores - 1

    @property
    def worker_cores(self) -> list[int]:
        """Core ids hosting update workers (Fig. 19 reports these)."""
        return [c for c in range(self.num_cores) if c != self.master_core]

    def core_coords(self, core: int) -> tuple[int, int]:
        """(x, y) tile coordinates of a core on the mesh."""
        return core % self.mesh_width, core // self.mesh_width

    def hops(self, src_core: int, dst_core: int) -> int:
        """XY-routed hop count between two tiles."""
        sx, sy = self.core_coords(src_core)
        dx, dy = self.core_coords(dst_core)
        return abs(sx - dx) + abs(sy - dy)


DEFAULT_HAU_CONFIG = HAUConfig()
