"""The adjacency-list dynamic graph structure (the paper's evaluated one).

SAGA-Bench's adjacency list keeps, per vertex, a growable array of
``<neighbor, weight>`` entries; updating an edge requires a linear duplicate-
check scan of that array (Section 4.3).  We store each vertex's adjacency as a
Python dict (neighbor -> weight) for C-speed *functional* updates, while the
modeled duplicate-check cost charged by the update engines remains that of the
linear array scan the paper's structure performs — the split between real
mutation and modeled time is the library's core substitution (DESIGN.md §2).

Batch ingestion is vectorized: edges are deduplicated and grouped with one
composite-key sort (``key * |V| + value``) and ``np.unique`` segment
arithmetic, per-vertex adjacency lengths live in a maintained degree array,
and the surviving per-edge dict merges run through C-level ``map`` calls —
no Python-level per-vertex loop.  ``repro.graph.reference`` keeps the
original per-vertex implementation as the semantics oracle; the two must
produce bit-identical :class:`~repro.graph.base.DirectionStats`.
"""

from __future__ import annotations

from collections import deque
from itertools import compress, repeat

import numpy as np

from ..datasets.stream import Batch
from .base import BatchUpdateStats, DirectionStats, DynamicGraph, GraphDelta

__all__ = ["AdjacencyListGraph"]


def _empty_direction_stats() -> DirectionStats:
    empty = np.empty(0, dtype=np.int64)
    return DirectionStats(
        vertices=empty,
        batch_degree=empty.copy(),
        length_before=empty.copy(),
        new_edges=empty.copy(),
    )


class AdjacencyListGraph(DynamicGraph):
    """Dynamic graph with per-vertex adjacency arrays (modeled) / dicts (actual).

    Args:
        num_vertices: size of the vertex id universe.
    """

    def __init__(self, num_vertices: int):
        super().__init__(num_vertices)
        self._out: dict[int, dict[int, float]] = {}
        self._in: dict[int, dict[int, float]] = {}
        # Maintained per-vertex adjacency lengths: len(self._out.get(v, {}))
        # et al., kept exact by _apply_direction/_delete_edges so DirectionStats
        # never needs per-vertex len() calls.
        self._deg_out = np.zeros(num_vertices, dtype=np.int64)
        self._deg_in = np.zeros(num_vertices, dtype=np.int64)
        # Delta journal for snapshot patching (see track_deltas): per
        # direction, the appended-edge arrays of each batch plus the set of
        # vertices whose existing slices went stale.
        self._track = False
        self._delta_invalid = False
        self._journal_out: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._journal_in: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._stale_out: set[int] = set()
        self._stale_in: set[int] = set()
        # Incrementally maintained union of both directions' key sets, with a
        # cached sorted materialization (invalidated when vertices are added).
        self._touched: set[int] = set()
        self._touched_sorted: list[int] | None = None

    # -- queries -----------------------------------------------------------
    def out_neighbors(self, v: int) -> dict[int, float]:
        return self._out.get(v, {})

    def in_neighbors(self, v: int) -> dict[int, float]:
        return self._in.get(v, {})

    def has_edge(self, u: int, v: int) -> bool:
        """True if edge u->v is currently present."""
        return v in self._out.get(u, {})

    def edge_weight(self, u: int, v: int) -> float | None:
        """Current weight of u->v, or None if absent."""
        return self._out.get(u, {}).get(v)

    def adjacency_views(
        self,
    ) -> tuple[dict[int, dict[int, float]], dict[int, dict[int, float]]]:
        return self._out, self._in

    def vertices_with_edges(self) -> list[int]:
        """Vertices with at least one incident edge (treat as read-only).

        The sorted list is maintained incrementally — the union of both key
        sets is tracked as batches apply and re-sorted only when new vertices
        appeared, not O(V log V) on every call.
        """
        if self._touched_sorted is None:
            self._touched_sorted = sorted(self._touched)
        return self._touched_sorted

    def touched_count(self) -> int:
        return len(self._touched)

    def track_deltas(self, enabled: bool = True) -> None:
        self._track = enabled
        self._delta_invalid = False
        self._journal_out = []
        self._journal_in = []
        self._stale_out = set()
        self._stale_in = set()

    def notify_external_mutation(self) -> None:
        self.num_edges = sum(map(len, self._out.values()))
        self._touched = set(self._out).union(self._in)
        self._touched_sorted = None
        for degrees, adjacency in ((self._deg_out, self._out), (self._deg_in, self._in)):
            degrees[:] = 0
            if adjacency:
                verts = np.fromiter(adjacency.keys(), dtype=np.int64, count=len(adjacency))
                degrees[verts] = np.fromiter(
                    map(len, adjacency.values()), dtype=np.int64, count=len(adjacency)
                )
        if self._track:
            # The journal did not see these mutations; poison it so the next
            # consume_delta() forces a full snapshot rebuild.
            self._delta_invalid = True

    def _direction_delta(
        self, journal: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
        stale: set[int],
    ) -> GraphDelta:
        if journal:
            owners = np.concatenate([j[0] for j in journal])
            targets = np.concatenate([j[1] for j in journal])
            weights = np.concatenate([j[2] for j in journal])
        else:
            owners = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)
        return GraphDelta(owners=owners, targets=targets, weights=weights, stale=stale)

    def consume_delta(self) -> tuple[GraphDelta, GraphDelta] | None:
        if not self._track:
            return None
        if self._delta_invalid:
            self.track_deltas(True)  # reset journal, report "unknown"
            return None
        delta = (
            self._direction_delta(self._journal_out, self._stale_out),
            self._direction_delta(self._journal_in, self._stale_in),
        )
        self._journal_out = []
        self._journal_in = []
        self._stale_out = set()
        self._stale_in = set()
        return delta

    def sum_search_cost(
        self,
        batch_degree: np.ndarray,
        length_before: np.ndarray,
        new_edges: np.ndarray,
        per_element: float,
    ) -> np.ndarray:
        """Linear-scan model: each search scans the current adjacency.

        Total elements scanned per vertex is ``k * L`` for the pre-existing
        entries plus the ramp contributed by the batch's own inserts (on
        average, every search after the first sees half of the batch's new
        entries already in place).
        """
        k = batch_degree.astype(np.float64)
        scanned = (
            k * length_before.astype(np.float64)
            + np.maximum(k - 1.0, 0.0) * new_edges.astype(np.float64) / 2.0
        )
        return per_element * scanned

    # -- updates -----------------------------------------------------------
    def _apply_direction(
        self,
        adjacency: dict[int, dict[int, float]],
        degrees: np.ndarray,
        journal: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
        stale: set[int],
        keys: np.ndarray,
        values: np.ndarray,
        weights: np.ndarray,
    ) -> DirectionStats:
        """Group edges by ``keys`` and merge them into ``adjacency``.

        Duplicate edges (same key/value pair, whether already in the graph or
        repeated inside the batch) overwrite the stored weight — the paper's
        "update the weight only" semantics; for in-batch repeats the last
        arrival wins.  Untracked ingest applies edges in stable key-sorted
        order, so later repeats overwrite earlier ones without an explicit
        dedup pass; the tracked path needs deduplicated appends for the delta
        journal and pays for a composite-key sort instead.
        """
        if len(keys) == 0:
            return _empty_direction_stats()
        if not self._track:
            return self._apply_direction_fast(adjacency, degrees, keys, values, weights)
        nv = self.num_vertices
        # One stable sort of the composite (key, value) id both deduplicates
        # in-batch repeats (keep the last occurrence) and groups by vertex;
        # every other grouping quantity derives from the sorted array with
        # flat vector ops instead of further sorts.
        comp = keys * nv + values
        order = np.argsort(comp, kind="stable")
        comp_sorted = comp[order]
        last = np.flatnonzero(comp_sorted[1:] != comp_sorted[:-1])
        last = np.append(last, len(comp_sorted) - 1)
        dedup_idx = order[last]
        owners = keys[dedup_idx]  # gathers, cheaper than decoding comp by division
        targets = values[dedup_idx]
        merged_weights = weights[dedup_idx]
        seg_starts = np.append(0, np.flatnonzero(owners[1:] != owners[:-1]) + 1)
        verts = owners[seg_starts]
        keys_sorted = keys[order]
        key_starts = np.append(
            0, np.flatnonzero(keys_sorted[1:] != keys_sorted[:-1]) + 1
        )
        batch_degree = np.diff(np.append(key_starts, len(keys_sorted)))
        verts_list = verts.tolist()
        # setdefault in one C pass: fetches the entry dict, materializing it
        # for vertices seen for the first time.
        size_before = len(adjacency)
        vert_entries = list(
            map(adjacency.setdefault, verts_list, map(dict, repeat(())))
        )
        if len(adjacency) != size_before:
            touched_before = len(self._touched)
            self._touched.update(verts_list)
            if len(self._touched) != touched_before:
                self._touched_sorted = None
        dedup_counts = np.diff(np.append(seg_starts, len(owners)))
        entries = np.repeat(
            np.array(vert_entries, dtype=object), dedup_counts
        ).tolist()
        targets_list = targets.tolist()
        length_before = degrees[verts]
        # Per-edge duplicate flags are only needed for the delta journal;
        # the stats below get by with per-vertex length deltas.
        is_dup = np.fromiter(
            map(dict.__contains__, entries, targets_list),
            dtype=bool,
            count=len(entries),
        )
        self._record_delta(
            journal, stale, entries, owners, targets, targets_list,
            merged_weights, is_dup,
        )
        deque(map(dict.__setitem__, entries, targets_list, merged_weights.tolist()), maxlen=0)
        new_deg = np.fromiter(
            map(len, vert_entries), dtype=np.int64, count=len(vert_entries)
        )
        new_edges = new_deg - length_before
        degrees[verts] = new_deg
        return DirectionStats(
            vertices=verts,
            batch_degree=batch_degree,
            length_before=length_before,
            new_edges=new_edges,
        )

    def _apply_direction_fast(
        self,
        adjacency: dict[int, dict[int, float]],
        degrees: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        weights: np.ndarray,
    ) -> DirectionStats:
        """Untracked merge: apply every edge in stable key-sorted order.

        Skipping the dedup pass is safe because ``dict.__setitem__`` applied
        in batch order reproduces last-occurrence-wins (and first-occurrence
        dict insertion order, matching the reference loop exactly).  Sorting
        the bare keys — downcast to int32, halving the radix passes — is
        measurably cheaper than the composite sort the tracked path needs.
        """
        sort_keys = keys if self.num_vertices > 0x7FFFFFFF else keys.astype(np.int32)
        order = np.argsort(sort_keys, kind="stable")
        keys_sorted = keys[order]
        key_starts = np.append(
            0, np.flatnonzero(keys_sorted[1:] != keys_sorted[:-1]) + 1
        )
        verts = keys_sorted[key_starts]
        batch_degree = np.diff(np.append(key_starts, len(keys_sorted)))
        verts_list = verts.tolist()
        length_before = degrees[verts]
        if length_before.min() > 0:
            # Every vertex already has edges, so its entry dict must exist:
            # plain lookups, no per-vertex dict() allocation.
            vert_entries = list(map(adjacency.__getitem__, verts_list))
        else:
            # iter(dict, None) calls dict() lazily per consumed element,
            # avoiding an argument tuple per construction.
            size_before = len(adjacency)
            vert_entries = list(map(adjacency.setdefault, verts_list, iter(dict, None)))
            if len(adjacency) != size_before:
                touched_before = len(self._touched)
                self._touched.update(verts_list)
                if len(self._touched) != touched_before:
                    self._touched_sorted = None
        entries = np.repeat(
            np.array(vert_entries, dtype=object), batch_degree
        ).tolist()
        deque(
            map(dict.__setitem__, entries, values[order].tolist(), weights[order].tolist()),
            maxlen=0,
        )
        new_deg = np.fromiter(
            map(len, vert_entries), dtype=np.int64, count=len(vert_entries)
        )
        new_edges = new_deg - length_before
        degrees[verts] = new_deg
        return DirectionStats(
            vertices=verts,
            batch_degree=batch_degree,
            length_before=length_before,
            new_edges=new_edges,
        )

    def _record_delta(
        self,
        journal: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
        stale: set[int],
        entries: list[dict[int, float]],
        owners: np.ndarray,
        targets: np.ndarray,
        targets_list: list[int],
        merged_weights: np.ndarray,
        is_dup: np.ndarray,
    ) -> None:
        """Journal this merge: new edges append, weight changes go stale.

        Must run *before* the weights are merged in, so duplicate edges can
        be compared against their pre-batch weight — a refresh that keeps
        the weight (the common case for weight-stable streams) leaves the
        cached CSR slice valid.
        """
        is_new = ~is_dup
        if is_new.any():
            journal.append(
                (owners[is_new], targets[is_new], merged_weights[is_new])
            )
        if is_dup.any():
            flags = is_dup.tolist()
            old_weights = np.fromiter(
                map(
                    dict.__getitem__,
                    compress(entries, flags),
                    compress(targets_list, flags),
                ),
                dtype=np.float64,
                count=int(is_dup.sum()),
            )
            changed = old_weights != merged_weights[is_dup]
            if changed.any():
                stale.update(owners[is_dup][changed].tolist())

    # -- per-direction API (sharded execution) -----------------------------
    def apply_direction_edges(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        direction: str,
    ) -> DirectionStats:
        """Merge ``key -> value`` edges into one adjacency direction.

        The building block :meth:`apply_batch` is made of, exposed so a
        shard worker can ingest just the slice of a batch whose *owning*
        endpoint it holds (out-edges keyed by source, in-edges keyed by
        destination) — the two directions of one edge generally live on
        different shards.  Applies edges in stable key-sorted batch order,
        so per-vertex insertion order (and therefore the resulting
        :class:`~repro.graph.base.DirectionStats`) is bit-identical to the
        unsharded ingest of the same slice.

        Does **not** touch ``num_edges``/``batches_applied`` bookkeeping;
        callers composing directions by hand own those.
        """
        if direction == "out":
            return self._apply_direction(
                self._out, self._deg_out, self._journal_out, self._stale_out,
                keys, values, weights,
            )
        if direction == "in":
            return self._apply_direction(
                self._in, self._deg_in, self._journal_in, self._stale_in,
                keys, values, weights,
            )
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")

    def delete_direction_edges(
        self, keys: np.ndarray, values: np.ndarray, *, direction: str
    ) -> dict[int, int]:
        """Remove ``key -> value`` entries from one adjacency direction.

        The single-direction half of :meth:`_delete_edges`, for shard
        workers that own only one endpoint of a deleted edge.  Because
        insertions maintain both directions symmetrically, deleting
        independently per direction removes exactly the edges the coupled
        serial path would.

        Returns:
            Per-key removal counts (``{vertex: edges_removed}``), so a
            coordinator can maintain degree bookkeeping without the dicts.
        """
        if direction == "out":
            adjacency, degrees, stale = self._out, self._deg_out, self._stale_out
        elif direction == "in":
            adjacency, degrees, stale = self._in, self._deg_in, self._stale_in
        else:
            raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
        removed: dict[int, int] = {}
        get = adjacency.get
        track = self._track
        for u, v in zip(keys.tolist(), values.tolist()):
            entry = get(u)
            if entry is not None and v in entry:
                del entry[v]
                degrees[u] -= 1
                if track:
                    stale.add(u)
                removed[u] = removed.get(u, 0) + 1
        return removed

    def _delete_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Remove listed edges (both directions); returns edges removed."""
        removed = 0
        out_get = self._out.get
        in_get = self._in.get
        track = self._track
        for u, v in zip(src.tolist(), dst.tolist()):
            out_entry = out_get(u)
            if out_entry is not None and v in out_entry:
                del out_entry[v]
                self._deg_out[u] -= 1
                in_entry = in_get(v)
                if in_entry is not None and u in in_entry:
                    del in_entry[u]
                    self._deg_in[v] -= 1
                if track:
                    self._stale_out.add(u)
                    self._stale_in.add(v)
                removed += 1
        return removed

    def apply_batch(self, batch: Batch) -> BatchUpdateStats:
        """Ingest a batch: all insertions first, then deletions (§4.4.3)."""
        self.check_vertices(batch.src, batch.dst)
        inserts = batch.insertions
        out_stats = self._apply_direction(
            self._out, self._deg_out, self._journal_out, self._stale_out,
            inserts.src, inserts.dst, inserts.weight,
        )
        in_stats = self._apply_direction(
            self._in, self._deg_in, self._journal_in, self._stale_in,
            inserts.dst, inserts.src, inserts.weight,
        )
        inserted = int(out_stats.new_edges.sum()) if len(out_stats.new_edges) else 0
        deletes = batch.deletions
        deleted = self._delete_edges(deletes.src, deletes.dst) if deletes.size else 0
        self.num_edges += inserted - deleted
        self.batches_applied += 1
        return BatchUpdateStats(
            batch_id=batch.batch_id,
            batch_size=batch.size,
            out=out_stats,
            inn=in_stats,
            deleted_edges=deleted,
        )
