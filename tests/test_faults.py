"""Fault-injection tests for the per-cell failure isolation in the executor.

Every test injects a fault through :mod:`faultinject`'s env knobs (workers
are forked, so they inherit the environment set via monkeypatch) and then
asserts the two invariants the executor guarantees:

* completed cells are never re-executed (invocation counts via the
  append-only fault log are exact across processes);
* a failed cell surfaces as an error outcome for *that cell only* — the
  surviving cells' results are identical to a serial run.

The machine may have a single core; ``jobs=2`` is passed explicitly so the
process-pool paths are exercised regardless of ``os.cpu_count()``.
"""

import pytest

import faultinject
from repro.pipeline.executor import (
    CellExecutionError,
    executor_telemetry,
    map_cells,
    run_matrix,
)
from repro.pipeline.config import RunConfig

pytestmark = pytest.mark.faults

ITEMS = list(range(6))


@pytest.fixture
def fault_env(tmp_path, monkeypatch):
    """Arm the fault harness; returns the invocation-log path."""
    log = tmp_path / "invocations.log"
    monkeypatch.setenv("REPRO_FAULT_LOG", str(log))
    monkeypatch.setenv("REPRO_FAULT_CELLS", "3")
    monkeypatch.delenv("REPRO_FAULT_MODE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_DELAY", raising=False)
    # Faster pool-rebuild rounds than the 0.1s default.
    monkeypatch.setenv("REPRO_EXECUTOR_BACKOFF", "0.01")
    return log


def _counts(log):
    tags = faultinject.read_invocations(log)
    return {tag: tags.count(tag) for tag in set(tags)}


# -- worker raises ----------------------------------------------------------
def test_worker_raise_fails_only_that_cell(fault_env, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_MODE", "raise")
    results = map_cells(
        faultinject.fault_cell, ITEMS, jobs=2,
        on_error=lambda item, exc: ("error", item, str(exc)),
    )
    assert results[3] == ("error", 3, "injected fault at cell 3")
    for item in ITEMS:
        if item != 3:
            assert results[item] == item * 2
    # Every cell — including the failing one — executed exactly once.
    assert _counts(fault_env) == {str(item): 1 for item in ITEMS}


def test_worker_raise_without_handler_raises_after_completion(
    fault_env, monkeypatch
):
    """Regression for the double-execution bug.

    The old ``map_cells`` caught ``TypeError`` (among others) escaping
    ``pool.map`` and re-ran the *entire* item list serially, so a genuine
    ``TypeError`` raised by ``fn`` executed every cell twice.  Now the
    error re-raises without any cell running more than once.
    """
    monkeypatch.setenv("REPRO_FAULT_MODE", "typeerror")
    with pytest.raises(TypeError, match="injected fault at cell 3"):
        map_cells(faultinject.fault_cell, ITEMS, jobs=2)
    assert _counts(fault_env) == {str(item): 1 for item in ITEMS}


def test_serial_error_also_single_execution(fault_env, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_MODE", "typeerror")
    with pytest.raises(TypeError):
        map_cells(faultinject.fault_cell, ITEMS, jobs=1)
    counts = _counts(fault_env)
    assert all(count == 1 for count in counts.values())


# -- worker dies ------------------------------------------------------------
def test_worker_death_preserves_completed_cells(fault_env, monkeypatch):
    """A worker dying via ``os._exit`` fails its own cell only.

    The delay lets every innocent cell finish before the pool breaks, so
    "completed cells are not re-executed" is deterministic: each innocent
    runs exactly once, and only the dying cell is retried (bounded rounds
    plus the final isolated attempt).
    """
    monkeypatch.setenv("REPRO_FAULT_MODE", "exit")
    monkeypatch.setenv("REPRO_FAULT_DELAY", "1.5")
    stats = {}
    results = map_cells(
        faultinject.fault_cell, ITEMS, jobs=2,
        on_error=lambda item, exc: ("error", item, exc),
        stats=stats,
    )
    for item in ITEMS:
        if item != 3:
            assert results[item] == item * 2
    kind, item, exc = results[3]
    assert (kind, item) == ("error", 3)
    assert isinstance(exc, CellExecutionError)
    counts = _counts(fault_env)
    assert all(counts[str(item)] == 1 for item in ITEMS if item != 3)
    # Initial run + retry round(s) + the isolated attribution attempt.
    assert counts["3"] >= 2
    assert stats["pool_breaks"] >= 1
    assert stats["isolated"] == 1


# -- worker hangs -----------------------------------------------------------
@pytest.mark.slow_faults
def test_worker_hang_times_out(fault_env, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_MODE", "hang")
    monkeypatch.setenv("REPRO_FAULT_HANG", "30")
    stats = {}
    results = map_cells(
        faultinject.fault_cell, ITEMS, jobs=2, timeout=1.0,
        on_error=lambda item, exc: ("error", item, exc),
        stats=stats,
    )
    for item in ITEMS:
        if item != 3:
            assert results[item] == item * 2
    kind, item, exc = results[3]
    assert isinstance(exc, CellExecutionError)
    assert "timed out" in str(exc)
    assert stats["timeouts"] >= 1
    counts = _counts(fault_env)
    assert all(counts[str(item)] == 1 for item in ITEMS if item != 3)


# -- unpicklable result -----------------------------------------------------
def test_unpicklable_result_fails_only_that_cell(fault_env, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_MODE", "unpicklable")
    results = map_cells(
        faultinject.fault_cell, ITEMS, jobs=2,
        on_error=lambda item, exc: ("error", item, exc),
    )
    for item in ITEMS:
        if item != 3:
            assert results[item] == item * 2
    assert results[3][:2] == ("error", 3)
    # The pool survives an unpicklable result: nothing was re-executed.
    assert _counts(fault_env) == {str(item): 1 for item in ITEMS}


# -- parallel/serial parity -------------------------------------------------
def test_jobs_parity_for_surviving_cells(fault_env, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_FAULT_MODE", "raise")
    parallel = map_cells(
        faultinject.fault_cell, ITEMS, jobs=2,
        on_error=lambda item, exc: ("error", item),
    )
    monkeypatch.setenv("REPRO_FAULT_LOG", str(tmp_path / "serial.log"))
    serial = map_cells(
        faultinject.fault_cell, ITEMS, jobs=1,
        on_error=lambda item, exc: ("error", item),
    )
    assert parallel == serial


# -- run_matrix acceptance criterion ---------------------------------------
def _matrix_configs():
    return [
        RunConfig(dataset=name, batch_size=100, num_batches=4, algorithm="pr")
        for name in ("wiki", "talk", "amazon")
    ]


def test_run_matrix_worker_crash_isolated(fault_env, monkeypatch):
    """One injected worker crash: every other cell completes exactly once,
    the dead cell reports its error, and nothing raises."""
    monkeypatch.setenv("REPRO_FAULT_DATASET", "talk")
    monkeypatch.setenv("REPRO_FAULT_DELAY", "1.5")
    monkeypatch.setattr(
        "repro.pipeline.executor._run_cell", faultinject.faulty_run_cell
    )
    stats = {}
    results = run_matrix(_matrix_configs(), jobs=2, stats=stats)

    assert [r.spec.dataset for r in results] == ["wiki", "talk", "amazon"]
    dead = results[1]
    assert not dead.ok
    assert "CellExecutionError" in dead.error
    assert dead.num_batches == 0 and dead.strategies == ()

    # The surviving cells match an uninterrupted serial run bit-for-bit.
    monkeypatch.delenv("REPRO_FAULT_DATASET")
    monkeypatch.delenv("REPRO_FAULT_LOG")
    expected = run_matrix(_matrix_configs(), jobs=1)
    for got, want in zip(results, expected):
        if got.ok:
            assert got == want

    # ...and each survivor executed exactly once despite the pool breaking.
    counts = _counts(fault_env)
    assert counts["wiki"] == 1 and counts["amazon"] == 1

    # Executor health telemetry reflects the failure.
    snapshot = executor_telemetry(results, stats)
    assert snapshot.counters["executor.cells"] == 3.0
    assert snapshot.counters["executor.cells_failed"] == 1.0
    assert snapshot.counters.get("executor.pool_breaks", 0) >= 1
    ledger = [d for d in snapshot.decisions if d.kind == "cell"]
    assert len(ledger) == 1
    assert dict(ledger[0].inputs)["dataset"] == "talk"


def test_run_matrix_serial_cell_error_does_not_abort(fault_env, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_DATASET", "talk")
    monkeypatch.setattr(
        "repro.pipeline.executor._run_cell",
        faultinject.faulty_raise_run_cell,
    )
    results = run_matrix(_matrix_configs(), jobs=1)
    assert [r.ok for r in results] == [True, False, True]
    assert "injected" in results[1].error
