"""Trace analyzer behind ``repro report``.

Loads one recorded trace (schema v1 or v2) and renders a run report —
per-stage wall-clock breakdown, modeled per-strategy breakdown, subsystem
counters, and the decision-ledger summary ("batches reordered because
CAD >= TH: 14/24").  Given two traces it renders an A/B comparison with
regression deltas instead.

The analyzer is offline-only: everything it prints comes from the trace
file, so reports are reproducible from artifacts alone, long after the run
(and on a different machine).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import render_kv, render_table
from ..pipeline.tracing import TraceDocument, read_trace_document
from .anomaly import rolling_mad_flags
from .core import TelemetrySnapshot

__all__ = ["TraceReport", "load_report", "render_report", "render_compare"]


@dataclass
class TraceReport:
    """One loaded trace plus the aggregates the report prints."""

    document: TraceDocument

    @property
    def events(self):
        return self.document.events

    @property
    def summary(self) -> TelemetrySnapshot | None:
        return self.document.summary

    @property
    def label(self) -> str:
        if not self.events:
            return str(self.document.path)
        e = self.events[0]
        return f"{e.dataset} @ {e.batch_size} [{e.algorithm}, {e.mode}]"

    @property
    def num_batches(self) -> int:
        return len(self.events)

    @property
    def total_update_time(self) -> float:
        return sum(e.update_time for e in self.events)

    @property
    def total_compute_time(self) -> float:
        return sum(e.compute_time for e in self.events)

    @property
    def total_time(self) -> float:
        return self.total_update_time + self.total_compute_time

    @property
    def deferred(self) -> int:
        return sum(e.deferred for e in self.events)

    @property
    def wall_seconds(self) -> float | None:
        """Summed wall-clock of the five stage spans, if recorded."""
        if self.summary is None:
            return None
        stage = [
            s.total for name, s in self.summary.spans.items()
            if name.startswith("stage.")
        ]
        return sum(stage) if stage else None

    def strategy_breakdown(self) -> dict[str, tuple[int, float]]:
        """strategy -> (batches, modeled update time)."""
        out: dict[str, tuple[int, float]] = {}
        for e in self.events:
            count, t = out.get(e.strategy, (0, 0.0))
            out[e.strategy] = (count + 1, t + e.update_time)
        return out

    # -- sharded-run aggregates (absent counters -> None / {}) ---------------
    def _counter(self, name: str) -> float | None:
        if self.summary is None:
            return None
        value = self.summary.counters.get(name)
        return None if value is None else float(value)

    @property
    def cut_edge_fraction(self) -> float | None:
        """Fraction of routed edges whose endpoints live on different
        shards (recorded only by sharded runs)."""
        edges = self._counter("partition.edges")
        cut = self._counter("partition.cut_edges")
        if not edges or cut is None:
            return None
        return cut / edges

    def shard_loads(self) -> dict[int, float]:
        """shard id -> per-shard routed edge-direction load."""
        if self.summary is None:
            return {}
        out: dict[int, float] = {}
        for name, value in self.summary.counters.items():
            if name.startswith("partition.load.s"):
                out[int(name[len("partition.load.s"):])] = float(value)
        return out

    @property
    def load_imbalance(self) -> float | None:
        """max/mean per-shard load — 1.0 is perfect balance."""
        loads = self.shard_loads()
        if not loads:
            return None
        values = list(loads.values())
        mean = sum(values) / len(values)
        return max(values) / mean if mean else None

    def batch_wall_seconds(self) -> dict[int, float]:
        """batch id -> wall-clock seconds, from the coordinator's
        flight-recorder ``pipeline.batch`` spans (empty without a
        recorded timeline)."""
        out: dict[int, float] = {}
        for snapshot in self.document.timelines:
            if snapshot.process != "coordinator":
                continue
            for start, end, batch_id in snapshot.spans_named("pipeline.batch"):
                if batch_id is not None:
                    out[batch_id] = end - start
        return out

    @property
    def transport_bytes(self) -> float | None:
        """Total transport bytes (both directions + shm segments)."""
        parts = [
            self._counter("transport.bytes_sent"),
            self._counter("transport.bytes_received"),
            self._counter("transport.shm_bytes"),
        ]
        present = [p for p in parts if p is not None]
        return sum(present) if present else None


def load_report(path) -> TraceReport:
    """Load one trace file into a report object.

    Raises:
        AnalysisError: for missing files or malformed (non-trailing) lines.
    """
    return TraceReport(document=read_trace_document(path))


# -- single-trace rendering ---------------------------------------------------

def _modeled_section(report: TraceReport) -> list[str]:
    pairs = {
        "batches": report.num_batches,
        "update time (tu)": report.total_update_time,
        "compute time (tu)": report.total_compute_time,
        "total time (tu)": report.total_time,
        "rounds deferred (OCA)": report.deferred,
    }
    wall = report.wall_seconds
    if wall is not None:
        pairs["wall clock, staged (s)"] = wall
    return [render_kv("modeled totals", pairs)]


def _strategy_section(report: TraceReport) -> list[str]:
    breakdown = report.strategy_breakdown()
    if not breakdown:
        return []
    total = report.total_update_time or 1.0
    rows = [
        [name, count, t, 100.0 * t / total]
        for name, (count, t) in sorted(breakdown.items())
    ]
    return [
        render_table(
            ["strategy", "batches", "update time (tu)", "share (%)"],
            rows,
            title="per-strategy modeled update breakdown",
        )
    ]


def _span_section(summary: TelemetrySnapshot) -> list[str]:
    if not summary.spans:
        return []
    stage_total = sum(
        s.total for name, s in summary.spans.items() if name.startswith("stage.")
    )
    rows = []
    for name, stat in sorted(
        summary.spans.items(), key=lambda kv: -kv[1].total
    ):
        share = (
            100.0 * stat.total / stage_total
            if name.startswith("stage.") and stage_total
            else float("nan")
        )
        rows.append([
            name,
            stat.count,
            stat.total,
            1e3 * stat.mean,
            "-" if share != share else f"{share:.1f}",
        ])
    return [
        render_table(
            ["span", "count", "total (s)", "mean (ms)", "stage share (%)"],
            rows,
            title="wall-clock spans",
            float_format="{:.4f}",
        )
    ]


def _histogram_section(summary: TelemetrySnapshot) -> list[str]:
    """Approximate quantiles from the power-of-two histogram buckets."""
    if not summary.histograms:
        return []
    rows = []
    for name, hist in sorted(summary.histograms.items()):
        p = hist.percentiles()
        rows.append([
            name, hist.count, hist.mean, p["p50"], p["p95"], p["p99"],
            hist.max,
        ])
    return [
        render_table(
            ["histogram", "n", "mean", "p50~", "p95~", "p99~", "max"],
            rows,
            title="value distributions (quantiles approximated from "
            "power-of-two buckets)",
            float_format="{:.4g}",
        )
    ]


def _anomaly_section(report: TraceReport) -> list[str]:
    """Rolling-median/MAD outlier flags on the per-batch series.

    Robust to the level shifts a streaming run produces (strategy
    switches, graph growth): each batch is judged against the median of a
    trailing window, and deviation is scaled by the window's MAD rather
    than a standard deviation an outlier could inflate.
    """
    events = report.events
    series: list[tuple[str, str, list[float]]] = [
        ("update time", "tu", [e.update_time for e in events]),
        ("total time", "tu",
         [e.update_time + e.compute_time for e in events]),
    ]
    wall = report.batch_wall_seconds()
    if wall:
        ordered = sorted(wall)
        series.append(
            ("batch wall clock", "s", [wall[b] for b in ordered])
        )
        series.append(
            ("batch throughput", "edges/s",
             [e.batch_size / wall[e.batch_id] for e in events
              if e.batch_id in wall and wall[e.batch_id] > 0])
        )
    lines = ["anomaly flags (rolling-median / MAD, |z| > 3.5)"]
    flagged = 0
    for name, unit, values in series:
        for flag in rolling_mad_flags(values):
            flagged += 1
            lines.append(
                f"  batch {flag.index}: {name} {flag.value:.4g} {unit} "
                f"vs rolling median {flag.baseline:.4g} "
                f"({flag.ratio:.1f}x, z={flag.z:.1f})"
            )
    if not flagged:
        lines.append(
            f"  none over {len(events)} batches "
            f"({len(series)} series checked)"
        )
    return ["\n".join(lines)]


def _counter_section(summary: TelemetrySnapshot) -> list[str]:
    if not summary.counters:
        return []
    rows = [[name, value] for name, value in sorted(summary.counters.items())]
    for name, value in sorted(summary.gauges.items()):
        rows.append([f"{name} (gauge)", value])
    return [render_table(["counter", "value"], rows, title="counters",
                         float_format="{:.4g}")]


def _partition_section(report: TraceReport) -> list[str]:
    """Partition quality + transport traffic (sharded runs only)."""
    cut = report.cut_edge_fraction
    loads = report.shard_loads()
    if cut is None and not loads:
        return []
    pairs: dict[str, object] = {}
    edges = report._counter("partition.edges")
    if edges is not None:
        pairs["edges routed"] = edges
    if cut is not None:
        pairs["cut-edge fraction"] = cut
    imbalance = report.load_imbalance
    if imbalance is not None:
        pairs["load imbalance (max/mean)"] = imbalance
    for shard in sorted(loads):
        pairs[f"shard {shard} load (edge-directions)"] = loads[shard]
    round_trips = report._counter("transport.round_trips")
    if round_trips is not None:
        pairs["transport round trips"] = round_trips
    transport_bytes = report.transport_bytes
    if transport_bytes is not None:
        pairs["transport bytes (total)"] = transport_bytes
    return [render_kv("partition quality / transport", pairs)]


def _decision_section(report: TraceReport) -> list[str]:
    summary = report.summary
    lines = ["decision ledger"]
    events = report.events
    reordered = sum(1 for e in events if e.strategy in ("reorder", "reorder+usc"))
    if summary is not None:
        abr = summary.decisions_of("abr")
        if abr:
            chose_reorder = sum(1 for d in abr if d.choice == "reorder")
            lines.append(
                f"  ABR: reorder chosen on {chose_reorder}/{len(abr)} active "
                f"batches (CAD >= TH)"
            )
        oca = summary.decisions_of("oca")
        if oca:
            aggregated = sum(1 for d in oca if d.choice == "aggregate")
            threshold = oca[0].input("threshold")
            lines.append(
                f"  OCA: aggregation on {aggregated}/{len(oca)} measurements "
                f"(overlap >= {threshold}); {report.deferred} rounds deferred"
            )
        strategy = summary.decisions_of("strategy")
        if strategy:
            histogram: dict[str, int] = {}
            for d in strategy:
                histogram[d.choice] = histogram.get(d.choice, 0) + 1
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(histogram.items())
            )
            lines.append(f"  strategy selector: {rendered}")
    lines.append(
        f"  batches executed reordered: {reordered}/{len(events)}"
    )
    if summary is not None:
        dropped = summary.counter("ledger.dropped")
        if dropped:
            lines.append(
                f"  WARNING: {dropped:.0f} decisions dropped past the "
                f"ledger cap — the ledger holds the first entries only"
            )
    if summary is None:
        lines.append(
            "  (no telemetry summary in trace — v1 trace or telemetry off; "
            "modeled breakdown only)"
        )
    return ["\n".join(lines)]


def render_report(report: TraceReport) -> str:
    """Render the full single-trace report."""
    doc = report.document
    header = (
        f"trace report: {report.label}\n"
        f"  file: {doc.path} (schema v{doc.schema_version}, "
        f"{report.num_batches} batch events)"
    )
    if doc.timelines:
        timeline_events = sum(len(s.events) for s in doc.timelines)
        header += (
            f"\n  timeline: {timeline_events} flight-recorder events from "
            f"{len(doc.timelines)} process(es) — export with "
            f"`repro report ... --timeline out.json`"
        )
    sections = [header]
    sections += _modeled_section(report)
    sections += _strategy_section(report)
    if report.summary is not None:
        sections += _span_section(report.summary)
        sections += _histogram_section(report.summary)
        sections += _counter_section(report.summary)
    sections += _partition_section(report)
    sections += _anomaly_section(report)
    sections += _decision_section(report)
    return "\n\n".join(sections)


# -- A/B comparison -----------------------------------------------------------

def _delta_row(name: str, a: float | None, b: float | None) -> list:
    if a is None or b is None:
        return [name, "-" if a is None else f"{a:.4f}",
                "-" if b is None else f"{b:.4f}", "-", "-"]
    delta = b - a
    pct = f"{100.0 * delta / a:+.1f}" if a else "-"
    return [name, a, b, delta, pct]


def render_compare(a: TraceReport, b: TraceReport) -> str:
    """Render the A/B comparison table (positive delta = B is slower)."""
    rows = [
        _delta_row("batches", float(a.num_batches), float(b.num_batches)),
        _delta_row("update time (tu)", a.total_update_time, b.total_update_time),
        _delta_row("compute time (tu)", a.total_compute_time, b.total_compute_time),
        _delta_row("total time (tu)", a.total_time, b.total_time),
        _delta_row("rounds deferred", float(a.deferred), float(b.deferred)),
        _delta_row("wall clock (s)", a.wall_seconds, b.wall_seconds),
    ]
    if a.cut_edge_fraction is not None or b.cut_edge_fraction is not None:
        rows.append(
            _delta_row(
                "cut-edge fraction", a.cut_edge_fraction, b.cut_edge_fraction
            )
        )
    if a.load_imbalance is not None or b.load_imbalance is not None:
        rows.append(
            _delta_row(
                "load imbalance (max/mean)", a.load_imbalance, b.load_imbalance
            )
        )
    if a.transport_bytes is not None or b.transport_bytes is not None:
        rows.append(
            _delta_row("transport bytes", a.transport_bytes, b.transport_bytes)
        )
    strategies_a = a.strategy_breakdown()
    strategies_b = b.strategy_breakdown()
    for name in sorted(set(strategies_a) | set(strategies_b)):
        rows.append(
            _delta_row(
                f"batches via {name}",
                float(strategies_a.get(name, (0, 0.0))[0]),
                float(strategies_b.get(name, (0, 0.0))[0]),
            )
        )
    header = (
        f"A/B trace comparison (positive delta = B slower)\n"
        f"  A: {a.label} ({a.document.path})\n"
        f"  B: {b.label} ({b.document.path})"
    )
    table = render_table(
        ["metric", "A", "B", "delta", "delta (%)"],
        rows,
        float_format="{:.4f}",
    )
    return header + "\n\n" + table
