"""Weakly connected components: static and incremental (extension algorithm).

Insert-only streams are the textbook case for incremental CC: a union-find
over edge endpoints answers component queries in near-constant time per
update.  Deletions can split components, which union-find cannot undo, so a
deletion-containing batch triggers a full relabel (the standard fallback of
streaming CC systems); the work counters reflect that asymmetry, which is
exactly what a granularity-vs-freshness study wants to see.
"""

from __future__ import annotations

import numpy as np

from ..datasets.stream import Batch
from ..graph.base import DynamicGraph
from ..graph.snapshot import CSRSnapshot
from .result import ComputeCounters

__all__ = ["StaticConnectedComponents", "IncrementalConnectedComponents"]


class StaticConnectedComponents:
    """Label-propagation WCC over a CSR snapshot (undirected view)."""

    def run(self, snapshot: CSRSnapshot) -> tuple[np.ndarray, ComputeCounters]:
        """Compute component labels (the minimum vertex id in each WCC)."""
        n = snapshot.num_vertices
        labels = np.arange(n, dtype=np.int64)
        iterations = 0
        touched_edges = 0
        changed = True
        while changed:
            iterations += 1
            changed = False
            src = np.repeat(
                np.arange(n, dtype=np.int64), snapshot.out_degrees()
            )
            dst = snapshot.out_targets
            touched_edges += 2 * len(dst)
            # Propagate the minimum label both ways along every edge.
            for a, b in ((src, dst), (dst, src)):
                candidate = labels[a]
                improved = candidate < labels[b]
                if improved.any():
                    np.minimum.at(labels, b[improved], candidate[improved])
                    changed = True
        counters = ComputeCounters(
            iterations=iterations,
            touched_vertices=iterations * n,
            touched_edges=touched_edges,
        )
        return labels, counters


class _UnionFind:
    """Path-halving union-find with union by size."""

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n
        self.operations = 0

    def find(self, v: int) -> int:
        parent = self.parent
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
            self.operations += 1
        return v

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


class IncrementalConnectedComponents:
    """Incremental WCC over a dynamic graph.

    Insertions union endpoints; batches containing deletions relabel from
    scratch over the current adjacency (documented fallback).
    """

    def __init__(self, graph: DynamicGraph):
        self.graph = graph
        self._uf = _UnionFind(graph.num_vertices)
        self.rebuilds = 0

    def _rebuild(self) -> ComputeCounters:
        """Full relabel from the live adjacency after deletions."""
        self.rebuilds += 1
        self._uf = _UnionFind(self.graph.num_vertices)
        out_adj, __ = self.graph.adjacency_views()
        touched_edges = 0
        for u, neighbors in out_adj.items():
            for v in neighbors:
                self._uf.union(u, v)
            touched_edges += len(neighbors)
        return ComputeCounters(
            iterations=1,
            touched_vertices=self.graph.num_vertices,
            touched_edges=touched_edges,
        )

    def on_batch(self, batch: Batch) -> ComputeCounters:
        """Update component structure after ``batch`` has been applied."""
        if batch.deletions.size:
            return self._rebuild()
        inserts = batch.insertions
        before = self._uf.operations
        merges = 0
        for u, v in zip(inserts.src.tolist(), inserts.dst.tolist()):
            merges += self._uf.union(u, v)
        return ComputeCounters(
            iterations=1,
            touched_vertices=merges * 2,
            touched_edges=inserts.size + (self._uf.operations - before),
        )

    def component(self, v: int) -> int:
        """Canonical component representative of ``v``."""
        return self._uf.find(v)

    def same_component(self, a: int, b: int) -> bool:
        return self._uf.find(a) == self._uf.find(b)

    def labels(self) -> np.ndarray:
        """Component labels normalized to each component's minimum vertex id."""
        n = self.graph.num_vertices
        roots = np.fromiter((self._uf.find(v) for v in range(n)), dtype=np.int64, count=n)
        minima: dict[int, int] = {}
        for v in range(n):
            root = int(roots[v])
            if root not in minima or v < minima[root]:
                minima[root] = v
        return np.fromiter((minima[int(r)] for r in roots), dtype=np.int64, count=n)
