"""The 14 evaluated datasets (Table 2), modeled as calibrated profiles.

Each :class:`DatasetProfile` records the paper's reference statistics plus the
parameters of a scaled synthetic stream generator whose *batch-level*
properties land in the regime the paper reports:

* the six reorder-friendly datasets (topcats, talk, berkstan, yt, superuser,
  wiki) produce batches whose top degrees reach the hundreds/thousands at the
  batch sizes where Fig. 3 shows RO winning;
* the eight reorder-adverse datasets (lj, patents, fb, flickr, amazon, stack,
  friendster, uk) produce low-degree batches at every batch size (e.g. lj's
  max batch degree at 100 K is ~30, matching Fig. 4);
* timestamped datasets get warm-up (early low-degree batches, Fig. 17) and
  hub drift; the static ones are stationary, modeling the paper's random
  shuffle of the input file.

Stream lengths and vertex universes are scaled (~1/20 to ~1/300 of the
originals, 1 M-2.5 M edges) so the full 260-workload matrix is tractable in
Python; DESIGN.md Section 2 records the substitution rationale.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from ..errors import ConfigurationError, UnknownDatasetError
from .generators import SideProfile, StreamGenerator

__all__ = [
    "DatasetProfile",
    "DATASETS",
    "BATCH_SIZES",
    "TABLE3_DATASETS",
    "TABLE3_BATCH_SIZES",
    "get_dataset",
    "dataset_names",
    "friendly_cells",
]

#: The five evaluated input batch sizes (Section 6.1).
BATCH_SIZES: tuple[int, ...] = (100, 1_000, 10_000, 100_000, 500_000)

#: The HAU evaluation subset (Table 3).
TABLE3_DATASETS: tuple[str, ...] = (
    "lj", "patents", "topcats", "berkstan", "fb", "flickr", "amazon", "superuser",
)
TABLE3_BATCH_SIZES: tuple[int, ...] = (100, 1_000, 10_000, 100_000)


@dataclass(frozen=True)
class DatasetProfile:
    """One evaluated dataset.

    Attributes:
        name: short name used throughout the paper (Table 2).
        full_name: Table 2's long name.
        kind: ``"shuffled"`` (static dataset, input file randomly shuffled)
            or ``"timestamped"`` (edge arrival order given by the data).
        paper_vertices / paper_edges: the original dataset's size (Table 2),
            reported for reference only.
        num_vertices: scaled vertex universe of the synthetic stream.
        stream_edges: scaled stream length.
        src_profile / dst_profile: endpoint degree profiles.
        warmup_edges: initial hub-free edges (timestamped only).
        drift_period: hub churn period in edges (timestamped only).
        hub_in_pool: per-hub bounded community size feeding each hub's
            in-edges (see :class:`~repro.datasets.generators.StreamGenerator`).
        hub_ramp: hub-activity saturation scale making batch top degrees grow
            sub-linearly with batch size (see the generator docs).
        friendly_sizes: batch sizes at which the paper's Fig. 3 finds RO
            beneficial (used by calibration tests and perfect-ABR checks).
    """

    name: str
    full_name: str
    kind: str
    paper_vertices: int
    paper_edges: int
    num_vertices: int
    stream_edges: int
    src_profile: SideProfile
    dst_profile: SideProfile
    warmup_edges: int = 0
    drift_period: int = 0
    hub_in_pool: int = 0
    hub_ramp: int = 0
    friendly_sizes: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.kind not in ("shuffled", "timestamped"):
            raise ConfigurationError(f"kind must be shuffled|timestamped, got {self.kind!r}")
        if self.stream_edges < 1 or self.num_vertices < 2:
            raise ConfigurationError("stream_edges and num_vertices must be positive")

    def generator(self, seed: int = 7) -> StreamGenerator:
        """Build the deterministic stream generator for this dataset."""
        return StreamGenerator(
            src_profile=self.src_profile,
            dst_profile=self.dst_profile,
            num_vertices=self.num_vertices,
            # crc32, not hash(): str hashing is randomized per interpreter
            # launch, which would make "the same seed" produce a different
            # stream in every process — breaking run-to-run reproducibility,
            # the on-disk stream cache, and parallel/serial equivalence.
            seed=seed + (zlib.crc32(self.name.encode()) & 0xFFFF),
            warmup_edges=self.warmup_edges,
            drift_period=self.drift_period,
            hub_in_pool=self.hub_in_pool,
            hub_ramp=self.hub_ramp,
        )

    def num_batches(self, batch_size: int, cap: int | None = None) -> int:
        """Batches available at ``batch_size`` (optionally capped)."""
        n = max(1, self.stream_edges // batch_size)
        return n if cap is None else min(n, cap)

    def is_friendly(self, batch_size: int) -> bool:
        """Paper-reported reorder-friendliness of this (dataset, size) cell."""
        return batch_size in self.friendly_sizes


def _hub(mass: float, count: int, alpha: float, tail: int) -> SideProfile:
    return SideProfile(hub_mass=mass, hub_count=count, hub_alpha=alpha, tail_size=tail)


def _flat(tail: int) -> SideProfile:
    return SideProfile(hub_mass=0.0, hub_count=0, hub_alpha=0.0, tail_size=tail)


_FRIENDLY_LARGE = frozenset({100_000, 500_000})
_FRIENDLY_MED = frozenset({10_000, 100_000, 500_000})

#: Registry of the 14 evaluated datasets.  Endpoint skew sits on the
#: destination side (popular pages/users receiving edges) with a milder source
#: side, matching the paper's in-degree-centric batch degree definition.
DATASETS: dict[str, DatasetProfile] = {
    p.name: p
    for p in [
        # ---- shuffled static datasets (Table 2 rows 1-7) -----------------
        DatasetProfile(
            name="talk", full_name="Wiki-Talk", kind="shuffled",
            paper_vertices=2_394_385, paper_edges=5_021_410,
            num_vertices=60_000, stream_edges=1_000_000,
            src_profile=_hub(0.18, 3_000, 0.30, 58_000),
            dst_profile=_hub(0.21, 200, 1.50, 58_000),
            hub_in_pool=800, hub_ramp=6_000,
            friendly_sizes=_FRIENDLY_MED,
        ),
        DatasetProfile(
            name="berkstan", full_name="Web-BerkStan", kind="shuffled",
            paper_vertices=685_230, paper_edges=7_600_595,
            num_vertices=34_000, stream_edges=1_000_000,
            src_profile=_hub(0.18, 2_500, 0.30, 32_000),
            dst_profile=_hub(0.032, 150, 1.50, 32_000),
            hub_in_pool=8_000, hub_ramp=15_000,
            friendly_sizes=_FRIENDLY_LARGE,
        ),
        DatasetProfile(
            name="patents", full_name="cit-Patents", kind="shuffled",
            paper_vertices=3_774_768, paper_edges=16_518_948,
            num_vertices=95_000, stream_edges=1_000_000,
            src_profile=_hub(0.15, 4_000, 0.25, 90_000),
            dst_profile=_hub(0.22, 3_500, 0.30, 90_000),
            friendly_sizes=frozenset(),
        ),
        DatasetProfile(
            name="topcats", full_name="Wiki-Topcats", kind="shuffled",
            paper_vertices=1_791_489, paper_edges=28_511_807,
            num_vertices=90_000, stream_edges=1_400_000,
            src_profile=_hub(0.18, 3_000, 0.30, 86_000),
            dst_profile=_hub(0.030, 150, 1.50, 86_000),
            hub_in_pool=8_000, hub_ramp=15_000,
            friendly_sizes=_FRIENDLY_LARGE,
        ),
        DatasetProfile(
            name="lj", full_name="soc-LiveJournal", kind="shuffled",
            paper_vertices=4_847_571, paper_edges=68_993_773,
            num_vertices=120_000, stream_edges=2_000_000,
            src_profile=_hub(0.18, 4_500, 0.22, 114_000),
            dst_profile=_hub(0.20, 4_000, 0.25, 114_000),
            friendly_sizes=frozenset(),
        ),
        DatasetProfile(
            name="friendster", full_name="com-Friendster", kind="shuffled",
            paper_vertices=65_608_366, paper_edges=1_806_067_135,
            num_vertices=400_000, stream_edges=2_500_000,
            src_profile=_hub(0.08, 9_000, 0.18, 390_000),
            dst_profile=_hub(0.10, 8_000, 0.20, 390_000),
            friendly_sizes=frozenset(),
        ),
        DatasetProfile(
            name="uk", full_name="UK-Union-2006-2007", kind="shuffled",
            paper_vertices=133_633_040, paper_edges=5_507_679_822,
            num_vertices=400_000, stream_edges=2_500_000,
            src_profile=_hub(0.12, 11_000, 0.22, 388_000),
            dst_profile=SideProfile(
                hub_mass=0.14, hub_count=10_000, hub_alpha=0.25,
                tail_size=388_000, hot_mass=0.007, hot_count=7,
            ),
            friendly_sizes=frozenset(),
        ),
        # ---- timestamped datasets (Table 2 rows 8-14) --------------------
        DatasetProfile(
            name="fb", full_name="Facebook-wall", kind="timestamped",
            paper_vertices=46_952, paper_edges=876_993,
            num_vertices=47_000, stream_edges=1_000_000,
            src_profile=_hub(0.25, 3_000, 0.28, 44_000),
            dst_profile=_hub(0.28, 2_500, 0.30, 44_000),
            warmup_edges=20_000, drift_period=400_000,
            friendly_sizes=frozenset(),
        ),
        DatasetProfile(
            name="flickr", full_name="Flickr-photo", kind="timestamped",
            paper_vertices=11_730_773, paper_edges=34_734_221,
            num_vertices=230_000, stream_edges=1_700_000,
            src_profile=_hub(0.22, 3_200, 0.30, 225_000),
            dst_profile=_hub(0.28, 2_800, 0.32, 225_000),
            warmup_edges=30_000, drift_period=600_000,
            friendly_sizes=frozenset(),
        ),
        DatasetProfile(
            name="yt", full_name="Youtube", kind="timestamped",
            paper_vertices=3_223_589, paper_edges=12_223_774,
            num_vertices=80_000, stream_edges=1_000_000,
            src_profile=_hub(0.18, 3_000, 0.30, 78_000),
            dst_profile=_hub(0.21, 200, 1.50, 78_000),
            drift_period=500_000,
            hub_in_pool=1_500, hub_ramp=6_000,
            friendly_sizes=_FRIENDLY_MED,
        ),
        DatasetProfile(
            name="amazon", full_name="Amazon-ratings", kind="timestamped",
            paper_vertices=2_146_057, paper_edges=5_838_041,
            num_vertices=54_000, stream_edges=1_000_000,
            src_profile=_hub(0.20, 3_400, 0.25, 50_000),
            dst_profile=_hub(0.25, 3_000, 0.28, 50_000),
            warmup_edges=20_000, drift_period=500_000,
            friendly_sizes=frozenset(),
        ),
        DatasetProfile(
            name="stack", full_name="Stack-overflow", kind="timestamped",
            paper_vertices=2_601_977, paper_edges=63_497_050,
            num_vertices=65_000, stream_edges=2_000_000,
            src_profile=_hub(0.22, 3_600, 0.28, 62_000),
            dst_profile=_hub(0.30, 3_200, 0.33, 62_000),
            warmup_edges=25_000, drift_period=700_000,
            friendly_sizes=frozenset(),
        ),
        DatasetProfile(
            name="superuser", full_name="Superuser", kind="timestamped",
            paper_vertices=194_085, paper_edges=1_443_339,
            num_vertices=48_000, stream_edges=1_440_000,
            src_profile=_hub(0.18, 2_500, 0.30, 46_000),
            dst_profile=_hub(0.042, 150, 1.50, 46_000),
            drift_period=600_000,
            hub_in_pool=8_000, hub_ramp=15_000,
            friendly_sizes=_FRIENDLY_LARGE,
        ),
        DatasetProfile(
            name="wiki", full_name="Wiki-talk-temporal", kind="timestamped",
            paper_vertices=1_140_149, paper_edges=7_833_140,
            num_vertices=57_000, stream_edges=2_000_000,
            src_profile=_hub(0.18, 3_000, 0.30, 55_000),
            dst_profile=_hub(0.21, 200, 1.50, 55_000),
            drift_period=800_000,
            hub_in_pool=1_500, hub_ramp=6_000,
            friendly_sizes=_FRIENDLY_MED,
        ),
    ]
}


def get_dataset(name: str) -> DatasetProfile:
    """Look up a dataset profile by short name.

    Raises:
        UnknownDatasetError: if the name is not in the registry.
    """
    try:
        return DATASETS[name]
    except KeyError:
        raise UnknownDatasetError(name, list(DATASETS)) from None


def dataset_names() -> list[str]:
    """All dataset short names, in Table 2 order."""
    return list(DATASETS)


def friendly_cells() -> list[tuple[str, int]]:
    """All (dataset, batch size) cells the paper classifies reorder-friendly."""
    return [
        (profile.name, size)
        for profile in DATASETS.values()
        for size in sorted(profile.friendly_sizes)
    ]
