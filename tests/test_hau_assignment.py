"""HAU task-assignment ablation: vertex pinning vs per-batch scatter."""

import pytest

from conftest import make_batch
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.config import HAUConfig
from repro.hau.simulator import HAUSimulator
from repro.hau.tasks import clusters_from_stats


def _batches(n=6, size=300):
    return [
        make_batch(
            [(i * 13 + j) % 400 for j in range(size)],
            [(i * 13 + j + 200) % 400 for j in range(size)],
            batch_id=i,
        )
        for i in range(n)
    ]


def test_unknown_assignment_rejected(tiny_graph):
    stats = tiny_graph.apply_batch(make_batch([1], [2]))
    with pytest.raises(ValueError):
        clusters_from_stats(stats, HAUConfig(), assignment="roulette")


def test_scatter_changes_mapping_across_batches(tiny_graph):
    stats0 = tiny_graph.apply_batch(make_batch([1, 2, 3], [4, 5, 6], batch_id=0))
    stats1 = tiny_graph.apply_batch(make_batch([1, 2, 3], [4, 5, 6], batch_id=1))
    map0 = {c.vertex: c.consumer for c in clusters_from_stats(stats0, HAUConfig(), "scatter")}
    map1 = {c.vertex: c.consumer for c in clusters_from_stats(stats1, HAUConfig(), "scatter")}
    assert map0 != map1


def test_vertex_mod_mapping_stable_across_batches(tiny_graph):
    stats0 = tiny_graph.apply_batch(make_batch([1, 2, 3], [4, 5, 6], batch_id=0))
    stats1 = tiny_graph.apply_batch(make_batch([1, 2, 3], [4, 5, 6], batch_id=1))
    map0 = {c.vertex: c.consumer for c in clusters_from_stats(stats0, HAUConfig())}
    map1 = {c.vertex: c.consumer for c in clusters_from_stats(stats1, HAUConfig())}
    assert map0 == map1


def test_scatter_destroys_cross_batch_residency():
    """With pinning, repeat batches hit the consumer's private cache; with
    scattering they keep missing — more cycles, same task counts."""
    def run(assignment):
        graph = AdjacencyListGraph(400)
        sim = HAUSimulator(assignment=assignment)
        total = 0.0
        for batch in _batches():
            total += sim.simulate_batch(graph.apply_batch(batch)).cycles
        return total

    pinned = run("vertex_mod")
    scattered = run("scatter")
    assert scattered > pinned
