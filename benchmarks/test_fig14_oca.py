"""Fig. 14: OCA compute speedup across datasets and batch sizes.

Paper: OCA activates at the larger batch sizes (high inter-batch vertex
overlap) and yields up to 2.7x compute speedup; averaged over the matrix,
incremental PR gains 1.24x and incremental SSSP 1.26x.  Small batch sizes
fail the 0.25 overlap threshold and stay at 1x.
"""

from _harness import caps, emit, geomean, record, run_pipeline
from repro.analysis.report import render_kv, render_table
from repro.datasets.profiles import DATASETS

SIZES = (1_000, 10_000, 100_000)
#: OCA needs enough batches for measure -> defer -> aggregate cycles.
MIN_BATCHES = 6


def _cell(name, profile, batch_size, algorithm, use_oca):
    nb = max(profile.num_batches(batch_size, cap=caps()[batch_size]), 1)
    nb = min(max(nb, MIN_BATCHES), profile.num_batches(batch_size))
    return run_pipeline(
        name, batch_size, nb,
        algorithm=algorithm, mode="abr_usc", use_oca=use_oca,
        pr_tolerance=1e-5, pr_max_rounds=10,
    )


def run_fig14(algorithm="pr"):
    rows = []
    speedups = []
    for name, profile in DATASETS.items():
        for batch_size in SIZES:
            plain = _cell(name, profile, batch_size, algorithm, use_oca=False)
            oca = _cell(name, profile, batch_size, algorithm, use_oca=True)
            speedup = plain.total_compute_time / oca.total_compute_time
            overlaps = [b.overlap for b in oca.batches if b.overlap is not None]
            rows.append(
                [
                    name,
                    batch_size,
                    speedup,
                    sum(b.deferred for b in oca.batches),
                    f"{max(overlaps):.2f}" if overlaps else "-",
                ]
            )
            speedups.append(speedup)
    return rows, speedups


def test_fig14_oca(benchmark):
    rows, speedups = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    record("fig14_oca", {"average": geomean(speedups), "max": max(speedups)})
    emit(
        "fig14_oca",
        render_table(
            ["dataset", "batch size", "OCA compute speedup",
             "rounds deferred", "max overlap"],
            rows,
            title="Fig. 14: compute speedup from overlap-based aggregation (incremental PR)",
        )
        + "\n\n"
        + render_kv(
            "summary",
            {
                "average speedup (geomean)": geomean(speedups),
                "max speedup": max(speedups),
                "paper": "avg 1.24x (PR), up to 2.7x",
            },
        ),
    )
    by_cell = {(r[0], r[1]): r for r in rows}
    # Small batches never aggregate (overlap below threshold).
    for (name, size), row in by_cell.items():
        if size == 1_000:
            assert row[3] == 0, (name, size)
            assert abs(row[2] - 1.0) < 0.02
    # Large batches aggregate somewhere and help.
    activated = [r for r in rows if r[1] == 100_000 and r[3] > 0]
    assert len(activated) >= 6
    assert max(r[2] for r in activated) > 1.1
    # OCA never hurts compute meaningfully.
    assert min(speedups) > 0.95
