"""On-disk cache of generated synthetic streams.

Stream generation is deterministic in (profile, batch size, seed, generator
version) but not free — regenerating the same 100K-edge batches for every
benchmark invocation costs more than reading them back from one ``.npz``
file.  :func:`cached_batches` is a drop-in for
``profile.generator(seed=...).batches(batch_size, num_batches)`` that
persists each stream the first time it is materialized and replays it from
disk afterwards.

Cache entries live under ``.cache/streams/`` (override with
``REPRO_CACHE_DIR``); set ``REPRO_STREAM_CACHE=0`` to bypass the cache
entirely.  A cached file holding a longer run of the same stream serves any
shorter prefix; requesting more batches than cached regenerates and
overwrites the entry with the longer run.  ``repro cache`` reports/clears
the directory from the CLI.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import zlib
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from .generators import GENERATOR_VERSION
from .profiles import DatasetProfile
from .stream import Batch

__all__ = ["cache_dir", "cache_enabled", "cached_batches", "cache_stats", "clear_cache"]

#: On-disk entry layout version (independent of GENERATOR_VERSION, which
#: tracks the *stream contents*).  v2 added per-batch sizes + validation;
#: v1 entries (no ``sizes`` array / 3-element meta) load as cache misses.
_FORMAT_VERSION = 2


def cache_enabled() -> bool:
    return os.environ.get("REPRO_STREAM_CACHE", "1") != "0"


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path(".cache")
    return base / "streams"


def _profile_fingerprint(profile: DatasetProfile) -> int:
    """CRC32 over every profile parameter the stream generator consumes.

    The entry name must change whenever the generated stream would: a
    :class:`DatasetProfile` edited in place (new vertex count, reshaped
    skew) without a ``GENERATOR_VERSION`` bump must miss the old entry
    rather than silently replay the stale stream.
    """
    params = (
        profile.num_vertices,
        dataclasses.astuple(profile.src_profile),
        dataclasses.astuple(profile.dst_profile),
        profile.warmup_edges,
        profile.drift_period,
        profile.hub_in_pool,
        profile.hub_ramp,
    )
    return zlib.crc32(repr(params).encode())


def _entry_path(profile: DatasetProfile, batch_size: int, seed: int) -> Path:
    fingerprint = _profile_fingerprint(profile)
    return cache_dir() / (
        f"{profile.name}-b{batch_size}-s{seed}"
        f"-v{GENERATOR_VERSION}-p{fingerprint:08x}.npz"
    )


def _generate(
    profile: DatasetProfile, batch_size: int, num_batches: int, seed: int
) -> list[Batch]:
    return list(profile.generator(seed=seed).batches(batch_size, num_batches))


def _save(path: Path, batches: list[Batch], batch_size: int) -> None:
    n = len(batches)
    # Exact per-batch sizes: a stream's final batch may be short, so flat
    # prefix arithmetic cannot recover batch boundaries — the offsets do.
    sizes = np.array([b.size for b in batches], dtype=np.int64)
    src = np.concatenate([b.src for b in batches])
    dst = np.concatenate([b.dst for b in batches])
    weight = np.concatenate([b.weight for b in batches])
    has_delete = np.array([b.is_delete is not None for b in batches], dtype=bool)
    is_delete = np.concatenate(
        [
            b.is_delete if b.is_delete is not None else np.zeros(b.size, dtype=bool)
            for b in batches
        ]
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename so a crashed run never leaves a torn cache entry.
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                meta=np.array(
                    [n, batch_size, GENERATOR_VERSION, _FORMAT_VERSION],
                    dtype=np.int64,
                ),
                sizes=sizes,
                src=src,
                dst=dst,
                weight=weight,
                has_delete=has_delete,
                is_delete=is_delete,
            )
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _load(path: Path, batch_size: int, num_batches: int) -> list[Batch] | None:
    """Read a prefix of a cached stream, or None if unusable.

    Every structural invariant is checked before any batch is built —
    format version, per-batch size list, and the flat arrays' lengths
    against the sizes' sum.  Any mismatch (a v1 entry, a torn write that
    survived rename, a foreign file) is a cache miss, never a misaligned
    stream.
    """
    try:
        with np.load(path) as data:
            meta = data["meta"]
            if meta.shape != (4,) or int(meta[3]) != _FORMAT_VERSION:
                return None
            cached_n, cached_bs = int(meta[0]), int(meta[1])
            if cached_bs != batch_size or cached_n < num_batches:
                return None
            sizes = data["sizes"]
            has_delete = data["has_delete"]
            if sizes.shape != (cached_n,) or has_delete.shape != (cached_n,):
                return None
            if np.any(sizes < 0) or np.any(sizes > batch_size):
                return None
            total = int(sizes.sum())
            src = data["src"]
            dst = data["dst"]
            weight = data["weight"]
            is_delete = data["is_delete"]
            if not (
                src.shape == dst.shape == weight.shape == is_delete.shape == (total,)
            ):
                return None
            offsets = np.concatenate(([0], np.cumsum(sizes)))
    except (OSError, KeyError, ValueError, zlib.error):
        return None
    batches = []
    for i in range(num_batches):
        a, b = int(offsets[i]), int(offsets[i + 1])
        batches.append(
            Batch(
                batch_id=i,
                src=src[a:b],
                dst=dst[a:b],
                weight=weight[a:b],
                is_delete=is_delete[a:b] if has_delete[i] else None,
            )
        )
    return batches


def cached_batches(
    profile: DatasetProfile, batch_size: int, num_batches: int, seed: int = 7
) -> Iterator[Batch]:
    """Yield the profile's stream, served from the on-disk cache when possible.

    Equivalent to ``profile.generator(seed=seed).batches(batch_size,
    num_batches)`` — generation is deterministic, so replaying the persisted
    arrays produces the identical stream.
    """
    if not cache_enabled():
        yield from profile.generator(seed=seed).batches(batch_size, num_batches)
        return
    path = _entry_path(profile, batch_size, seed)
    batches = _load(path, batch_size, num_batches)
    if batches is None:
        batches = _generate(profile, batch_size, num_batches, seed)
        try:
            _save(path, batches, batch_size)
        except OSError:
            pass  # read-only filesystem etc. — serve the generated stream
    yield from batches


def cache_stats() -> dict[str, object]:
    """Entry count and total bytes currently cached."""
    directory = cache_dir()
    files = sorted(directory.glob("*.npz")) if directory.is_dir() else []
    return {
        "directory": str(directory),
        "entries": len(files),
        "bytes": sum(f.stat().st_size for f in files),
    }


def clear_cache() -> int:
    """Delete all cached streams; returns the number of entries removed."""
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    removed = 0
    for f in directory.glob("*.npz"):
        f.unlink()
        removed += 1
    return removed
