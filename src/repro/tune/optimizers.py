"""Pluggable search strategies for the auto-tuning driver.

Optimizers follow a minimal ask/tell protocol: the driver calls
:meth:`Optimizer.ask` with a trial id to get the next assignment (or None
when the strategy is exhausted) and :meth:`Optimizer.tell` with each
finished trial's score.  Strategies register by name via
:func:`register_optimizer`, so external code can add its own without
touching the driver.

Every strategy is deterministic given ``(seed, history)``: proposal
randomness comes from a per-trial RNG keyed on ``(seed, trial_id)``, never
from global state, so a resumed search — the driver replays the journal
through :meth:`tell` and asks for the remaining trial ids — proposes
exactly what the uninterrupted search would have.

Built-ins:

* ``random`` — independent uniform draws from the space;
* ``grid`` — full-factorial sweep sized to the trial budget;
* ``tpe`` — a dependency-free TPE-style model-guided strategy: splits
  observed trials into good/bad by score quantile, samples candidates near
  good assignments, and keeps the candidate whose per-dimension Parzen
  likelihood ratio (good vs bad) is highest.
"""

from __future__ import annotations

import math
import random

from ..errors import TuneError
from .space import SearchSpace

__all__ = [
    "Optimizer",
    "OPTIMIZERS",
    "register_optimizer",
    "make_optimizer",
    "RandomSearch",
    "GridSearch",
    "TPELite",
]

OPTIMIZERS: dict[str, type] = {}


def register_optimizer(name: str):
    """Class decorator adding an optimizer to the registry under ``name``."""

    def decorate(cls):
        cls.name = name
        OPTIMIZERS[name] = cls
        return cls

    return decorate


def make_optimizer(name: str, space: SearchSpace, *, seed: int = 0,
                   trials: int = 16) -> "Optimizer":
    """Instantiate a registered optimizer by name."""
    if name not in OPTIMIZERS:
        raise TuneError(
            f"unknown optimizer {name!r}; registered: {sorted(OPTIMIZERS)}"
        )
    return OPTIMIZERS[name](space, seed=seed, trials=trials)


class Optimizer:
    """Base ask/tell strategy over one :class:`SearchSpace`.

    Args:
        space: the space proposals are drawn from.
        seed: search seed — all proposal randomness derives from it.
        trials: the search's total trial budget (including the driver's
            baseline trial 0), letting budget-aware strategies size
            themselves.
    """

    name = "base"

    def __init__(self, space: SearchSpace, *, seed: int = 0, trials: int = 16):
        self.space = space
        self.seed = seed
        self.trials = trials
        #: (trial_id, assignment, score) triples in tell order; score is
        #: None for failed trials.
        self.history: list[tuple[int, dict, float | None]] = []

    def _rng(self, trial_id: int) -> random.Random:
        """Per-trial RNG: resume-safe because it never depends on call order."""
        return random.Random(f"repro-tune:{self.seed}:{trial_id}")

    def ask(self, trial_id: int) -> dict | None:
        """Propose the assignment for ``trial_id`` (None = exhausted).

        Trial ids start at 1 — the driver reserves trial 0 for the
        unmodified base config (the incumbent every search must beat).
        """
        raise NotImplementedError

    def tell(self, trial_id: int, assignment: dict,
             score: float | None) -> None:
        """Record one finished trial (``score`` None when it failed)."""
        self.history.append((trial_id, assignment, score))

    def _scored_history(self) -> list[tuple[dict, float]]:
        return [
            (assignment, score)
            for _, assignment, score in self.history
            if score is not None and math.isfinite(score)
        ]


@register_optimizer("random")
class RandomSearch(Optimizer):
    """Independent uniform samples; the canonical cheap baseline."""

    def ask(self, trial_id: int) -> dict | None:
        return self.space.sample(self._rng(trial_id))


@register_optimizer("grid")
class GridSearch(Optimizer):
    """Full-factorial sweep sized to the trial budget, then exhausted.

    The grid is fixed at construction (the smallest factorial covering
    ``trials - 1`` proposals), so a resumed search walks the identical
    sequence.  ``ask`` returns None past the last grid point.
    """

    def __init__(self, space: SearchSpace, *, seed: int = 0, trials: int = 16):
        super().__init__(space, seed=seed, trials=trials)
        self._assignments = space.grid_assignments(max(1, trials - 1))

    def ask(self, trial_id: int) -> dict | None:
        index = trial_id - 1  # trial 0 is the driver's baseline
        if index < 0 or index >= len(self._assignments):
            return None
        return self._assignments[index]


@register_optimizer("tpe")
class TPELite(Optimizer):
    """Dependency-free tree-of-Parzen-estimators-style guided search.

    Until ``startup`` scored trials exist it behaves like random search.
    After that, each ask: (1) split history into the top ``gamma`` fraction
    (good) and the rest (bad); (2) draw ``candidates`` assignments by
    perturbing randomly chosen good assignments (gaussian in the
    dimension's search coordinates, bandwidth = range/8; categorical keeps
    the good value with probability 0.75); (3) return the candidate
    maximizing the summed per-dimension log likelihood ratio
    ``l_good / l_bad`` under gaussian/counting Parzen estimators.
    """

    startup = 4
    gamma = 0.35
    candidates = 24

    # -- search-coordinate helpers (log dims optimize in ln space) -----------
    @staticmethod
    def _coord(dimension, value) -> float:
        return math.log(value) if dimension.log else float(value)

    @staticmethod
    def _uncoord(dimension, x: float):
        value = math.exp(x) if dimension.log else x
        return dimension.clip(value)

    @classmethod
    def _bandwidth(cls, dimension) -> float:
        lo = cls._coord(dimension, dimension.low)
        hi = cls._coord(dimension, dimension.high)
        return (hi - lo) / 8.0

    def _likelihood(self, dimension, value, observed: list) -> float:
        """Parzen density of ``value`` under a set of observed values."""
        if dimension.kind == "categorical":
            hits = sum(1 for v in observed if v == value)
            return (hits + 1.0) / (len(observed) + len(dimension.choices))
        x = self._coord(dimension, value)
        h = self._bandwidth(dimension)
        total = sum(
            math.exp(-0.5 * ((x - self._coord(dimension, v)) / h) ** 2)
            for v in observed
        )
        return total / len(observed) + 1e-12

    def _perturb(self, dimension, value, rng: random.Random):
        if dimension.kind == "categorical":
            if rng.random() < 0.75:
                return value
            return dimension.choices[rng.randrange(len(dimension.choices))]
        x = self._coord(dimension, value)
        x += rng.gauss(0.0, self._bandwidth(dimension))
        return self._uncoord(dimension, x)

    def ask(self, trial_id: int) -> dict | None:
        rng = self._rng(trial_id)
        # Model only complete assignments — the driver's baseline trial 0
        # carries an empty one (it runs the base config verbatim).
        scored = [
            (assignment, score)
            for assignment, score in self._scored_history()
            if all(d.name in assignment for d in self.space.dimensions)
        ]
        if len(scored) < self.startup:
            return self.space.sample(rng)
        scored.sort(key=lambda pair: pair[1], reverse=True)
        n_good = max(1, math.ceil(self.gamma * len(scored)))
        good = [assignment for assignment, _ in scored[:n_good]]
        bad = [assignment for assignment, _ in scored[n_good:]] or good
        best, best_ratio = None, -math.inf
        for _ in range(self.candidates):
            anchor = good[rng.randrange(len(good))]
            candidate = {
                d.name: self._perturb(d, anchor[d.name], rng)
                for d in self.space.dimensions
            }
            ratio = sum(
                math.log(
                    self._likelihood(
                        d, candidate[d.name], [a[d.name] for a in good]
                    )
                )
                - math.log(
                    self._likelihood(
                        d, candidate[d.name], [a[d.name] for a in bad]
                    )
                )
                for d in self.space.dimensions
            )
            if ratio > best_ratio:
                best, best_ratio = candidate, ratio
        return best
