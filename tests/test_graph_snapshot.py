"""CSR snapshot correctness."""

import numpy as np

from conftest import make_batch
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.snapshot import take_snapshot


def test_snapshot_round_trips_adjacency(small_generator):
    graph = AdjacencyListGraph(500)
    for batch in small_generator.batches(1_000, 3):
        graph.apply_batch(batch)
    snap = take_snapshot(graph)
    assert snap.num_edges == graph.num_edges
    for v in graph.vertices_with_edges():
        targets, weights = snap.out_slice(v)
        assert dict(zip(targets.tolist(), weights.tolist())) == graph.out_neighbors(v)
        sources, weights = snap.in_slice(v)
        assert dict(zip(sources.tolist(), weights.tolist())) == graph.in_neighbors(v)


def test_snapshot_degrees(tiny_graph):
    tiny_graph.apply_batch(make_batch([1, 1, 2], [2, 3, 3]))
    snap = take_snapshot(tiny_graph)
    assert snap.out_degrees()[1] == 2
    assert snap.out_degrees()[2] == 1
    assert snap.in_degrees()[3] == 2
    assert snap.out_degrees().sum() == snap.in_degrees().sum() == 3


def test_snapshot_empty_graph(tiny_graph):
    snap = take_snapshot(tiny_graph)
    assert snap.num_edges == 0
    assert snap.out_offsets[-1] == 0
    targets, weights = snap.out_slice(0)
    assert len(targets) == 0 and len(weights) == 0


def test_snapshot_is_immutable_copy(tiny_graph):
    tiny_graph.apply_batch(make_batch([1], [2]))
    snap = take_snapshot(tiny_graph)
    tiny_graph.apply_batch(make_batch([1], [3], batch_id=1))
    # The earlier snapshot still reflects the old state.
    targets, __ = snap.out_slice(1)
    assert targets.tolist() == [2]
