"""Adaptive batch reordering (ABR) — Section 4.2, Fig. 7.

ABR instruments every ``n``-th input batch (the *ABR-active* batch) to
collect the batch's CAD_lambda, then applies the resulting reorder/don't-
reorder decision to the following ``n`` *ABR-inert* batches.  Per the paper's
pseudocode the controller starts in reordering mode ("default RO"), and the
active batch itself executes under the *previous* decision (instrumentation
is overlapped with its update).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..costs import CostParameters
from ..errors import ConfigurationError
from ..graph.base import BatchUpdateStats
from .cad import CADResult, cad_from_stats, instrumentation_time

__all__ = ["ABRConfig", "ABRDecision", "ABRController"]


@dataclass(frozen=True)
class ABRConfig:
    """ABR design parameters (Section 6.2.3 defaults: n=10, lambda=256, TH=465).

    Attributes:
        n: instrumentation period — one ABR-active batch every ``n`` batches.
        lam: the lambda cutoff locating an individual batch's top degrees.
        threshold: the TH cutoff distinguishing high from low CAD values.
        default_reorder: initial mode before the first measurement.
    """

    n: int = 10
    lam: int = 256
    threshold: float = 465.0
    default_reorder: bool = True

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"ABR n must be >= 1, got {self.n}")
        if self.lam < 1:
            raise ConfigurationError(f"ABR lambda must be >= 1, got {self.lam}")
        if self.threshold <= 0:
            raise ConfigurationError(
                f"ABR threshold must be positive, got {self.threshold}"
            )


@dataclass(frozen=True)
class ABRDecision:
    """Outcome of ABR's per-batch step.

    Attributes:
        reorder: whether *this* batch is updated via reordering.
        active: True if this batch was ABR-active (instrumented).
        cad: the CAD measured on this batch (None on inert batches).
        instrumentation: modeled instrumentation time added to this batch's
            update (0 on inert batches).
    """

    reorder: bool
    active: bool
    cad: CADResult | None
    instrumentation: float


class ABRController:
    """Stateful ABR decision maker driven once per batch.

    Args:
        config: ABR parameters.
        costs: cost model used for the instrumentation overhead.
        num_workers: worker pool size the instrumentation divides across.
    """

    def __init__(self, config: ABRConfig, costs: CostParameters, num_workers: int):
        self.config = config
        self.costs = costs
        self.num_workers = num_workers
        self.reordering = config.default_reorder
        #: Live decision threshold; starts at the configured TH and may be
        #: retuned by feedback-enabled subclasses.
        self.threshold = float(config.threshold)
        self.decisions_made = 0
        self.active_batches = 0

    def step(self, stats: BatchUpdateStats) -> ABRDecision:
        """Advance the controller by one batch and return its decision.

        The batch is ABR-active when its position is a multiple of ``n``
        (batch 0 is active, seeding the first real decision).  Active batches
        run under the pre-existing mode while being instrumented; the fresh
        decision governs the next ``n`` batches.
        """
        active = stats.batch_id % self.config.n == 0
        mode_for_this_batch = self.reordering
        if not active:
            return ABRDecision(
                reorder=mode_for_this_batch, active=False, cad=None, instrumentation=0.0
            )
        instrumentation = instrumentation_time(
            stats.batch_size, mode_for_this_batch, self.costs, self.num_workers
        )
        cad = cad_from_stats(stats, self.config.lam)
        self.reordering = cad.value >= self.threshold
        self.decisions_made += 1
        self.active_batches += 1
        return ABRDecision(
            reorder=mode_for_this_batch,
            active=True,
            cad=cad,
            instrumentation=instrumentation,
        )

    def observe_times(
        self, stats: BatchUpdateStats, baseline_time: float, reorder_time: float
    ) -> None:
        """Hook for feedback-enabled subclasses; the base controller is static."""

    def describe_state(self) -> dict:
        """JSON-friendly digest of the controller's mutable state.

        Used by checkpoint headers so an operator can inspect a run's ABR
        mode without unpickling the payload.
        """
        return {
            "reordering": bool(self.reordering),
            "threshold": float(self.threshold),
            "decisions_made": int(self.decisions_made),
            "active_batches": int(self.active_batches),
        }
