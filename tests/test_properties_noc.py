"""Property-based tests on the mesh NoC routing model."""

from hypothesis import given, settings, strategies as st

from repro.hau.config import HAUConfig
from repro.hau.noc import MeshNoC

CFG = HAUConfig()
NOC = MeshNoC(CFG)

cores = st.integers(0, 15)


@given(cores, cores)
@settings(max_examples=200, deadline=None)
def test_route_is_contiguous_and_ends_at_destination(src, dst):
    links = NOC.route(src, dst)
    position = src
    for a, b in links:
        assert a == position
        # Adjacent tiles only.
        assert CFG.hops(a, b) == 1
        position = b
    assert position == dst


@given(cores, cores)
@settings(max_examples=100, deadline=None)
def test_route_is_shortest(src, dst):
    assert len(NOC.route(src, dst)) == CFG.hops(src, dst)


@given(cores, cores)
@settings(max_examples=100, deadline=None)
def test_xy_routing_goes_x_first(src, dst):
    seen_y_move = False
    for a, b in NOC.route(src, dst):
        ax, ay = CFG.core_coords(a)
        bx, by = CFG.core_coords(b)
        if ay != by:
            seen_y_move = True
        else:
            assert not seen_y_move, "X move after a Y move violates XY routing"


@given(cores, cores, st.floats(1.0, 1e6), st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_latency_at_least_zero_load(src, dst, packets, flits):
    loads = NOC.new_loads()
    NOC.add_traffic(loads, src, dst, packets, flits)
    latency = NOC.average_packet_latency(loads, 1e7, src, dst, flits)
    assert latency >= NOC.base_latency(src, dst)


@given(cores, cores)
@settings(max_examples=100, deadline=None)
def test_base_latency_triangle_inequality(src, dst):
    # Through any midpoint the routed distance can only grow.
    for mid in range(16):
        assert NOC.base_latency(src, dst) <= (
            NOC.base_latency(src, mid) + NOC.base_latency(mid, dst)
        )
