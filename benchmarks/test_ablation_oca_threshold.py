"""Ablation: OCA's overlap threshold (Section 5's design-choice narrative).

The paper picks 0.25 by sweeping down from 0.5: most large batch sizes gain
at 0.25, while lower thresholds start triggering aggregation for *small*
batch sizes where the speedup is marginal (yt-10K activates at 0.15 for only
~8%) and granularity should not be traded away.
"""

from _harness import emit, run_pipeline
from repro.analysis.report import render_table
from repro.compute.oca import OCAConfig

THRESHOLDS = (0.5, 0.4, 0.3, 0.25, 0.15, 0.08)
CELLS = (("yt", 10_000, 8), ("yt", 100_000, 6), ("amazon", 100_000, 6))


def _run(dataset, batch_size, nb, threshold):
    oca_kwargs = {}
    if threshold is not None:
        oca_kwargs = dict(
            use_oca=True, oca=OCAConfig(overlap_threshold=threshold, n=2)
        )
    return run_pipeline(
        dataset, batch_size, nb,
        algorithm="pr", mode="abr_usc", pr_tolerance=1e-5, **oca_kwargs,
    )


def run_ablation():
    rows = []
    for name, batch_size, nb in CELLS:
        base = _run(name, batch_size, nb, None)
        for threshold in THRESHOLDS:
            run = _run(name, batch_size, nb, threshold)
            rows.append(
                [
                    f"{name}-{batch_size}",
                    threshold,
                    sum(b.deferred for b in run.batches),
                    base.total_compute_time / run.total_compute_time,
                ]
            )
    return rows


def test_ablation_oca_threshold(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        "ablation_oca_threshold",
        render_table(
            ["cell", "threshold", "rounds deferred", "compute speedup"],
            rows,
            title="Ablation: OCA overlap-threshold sweep (Section 5)",
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # At the chosen 0.25: large batches aggregate, the small one does not.
    assert by_key[("yt-100000", 0.25)][2] > 0
    assert by_key[("amazon-100000", 0.25)][2] > 0
    assert by_key[("yt-10000", 0.25)][2] == 0
    # Dropping the threshold far enough triggers yt-10K (the paper's 0.15
    # example) — aggregation the latency-sensitive sizes should not get.
    assert by_key[("yt-10000", 0.15)][2] > 0
    # Lower thresholds never defer fewer rounds.
    for name, batch_size, __ in CELLS:
        deferred = [by_key[(f"{name}-{batch_size}", t)][2] for t in THRESHOLDS]
        assert all(a <= b for a, b in zip(deferred, deferred[1:]))
