"""PageRank: static (GAP-style) and incremental (frontier-based).

Both variants compute the same fixed point::

    pr(v) = (1 - d) / N + d * sum_{u in in(v)} pr(u) / outdeg(u)

without dangling-mass redistribution (the convention of the incremental
streaming-graph computation models the paper builds on, where contributions
flow only along existing edges), so the incremental engine converges to the
static solution and tests can cross-check them.

* :class:`StaticPageRank` re-runs power iteration from scratch on a CSR
  snapshot each round ("start-from-scratch" in Section 6.1).
* :class:`IncrementalPageRank` keeps rank state across batches and, per
  round, propagates changes outward from the *affected* vertices (the
  endpoints of the batch's edges) until ranks stop moving — the incremental
  model of Kineograph/KickStarter-style systems the paper cites.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..graph.base import DynamicGraph
from ..graph.snapshot import CSRSnapshot
from .result import ComputeCounters

__all__ = ["StaticPageRank", "IncrementalPageRank"]


class StaticPageRank:
    """Power-iteration PageRank over a CSR snapshot.

    Args:
        damping: the damping factor ``d``.
        tolerance: L1 change per vertex below which iteration stops.
        max_iterations: safety cap.
    """

    def __init__(
        self,
        damping: float = 0.85,
        tolerance: float = 1e-8,
        max_iterations: int = 100,
    ):
        if not 0 < damping < 1:
            raise ConfigurationError(f"damping must be in (0,1), got {damping}")
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations

    def run(self, snapshot: CSRSnapshot) -> tuple[np.ndarray, ComputeCounters]:
        """Compute ranks; returns (values, work counters)."""
        n = snapshot.num_vertices
        base = (1.0 - self.damping) / n
        values = np.full(n, base)
        out_deg = snapshot.out_degrees().astype(np.float64)
        safe_deg = np.maximum(out_deg, 1.0)
        touched_edges = 0
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            contrib = np.where(out_deg > 0, values / safe_deg, 0.0)
            per_edge = np.repeat(contrib, snapshot.out_degrees())
            new_values = base + self.damping * np.bincount(
                snapshot.out_targets, weights=per_edge, minlength=n
            )
            touched_edges += snapshot.num_edges
            delta = float(np.abs(new_values - values).sum())
            values = new_values
            if delta < self.tolerance * n:
                break
        counters = ComputeCounters(
            iterations=iterations,
            touched_vertices=iterations * n,
            touched_edges=touched_edges,
        )
        return values, counters


class IncrementalPageRank:
    """Frontier-based incremental PageRank over a dynamic graph.

    State persists across batches; each :meth:`on_batch` call localizes the
    recomputation around the affected vertices.

    Args:
        graph: the dynamic graph the pipeline maintains.
        damping: damping factor.
        tolerance: per-vertex rank change below which propagation stops.
        max_rounds: frontier-round safety cap.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        damping: float = 0.85,
        tolerance: float = 1e-7,
        max_rounds: int = 100,
    ):
        if not 0 < damping < 1:
            raise ConfigurationError(f"damping must be in (0,1), got {damping}")
        self.graph = graph
        self.damping = damping
        self.tolerance = tolerance
        self.max_rounds = max_rounds
        self._base = (1.0 - damping) / graph.num_vertices
        self.values: list[float] = [self._base] * graph.num_vertices

    def on_batch(self, affected) -> ComputeCounters:
        """Propagate rank changes outward from the affected vertices.

        Args:
            affected: iterable of vertex ids whose incident edges changed
                (for OCA-aggregated rounds, the union over the covered
                batches).

        Returns:
            Work counters of this round.
        """
        out_adj, in_adj = self.graph.adjacency_views()
        empty: dict[int, float] = {}
        values = self.values
        base = self._base
        damping = self.damping
        tolerance = self.tolerance
        frontier = set(int(v) for v in affected)
        touched_vertices = 0
        touched_edges = 0
        rounds = 0
        while frontier and rounds < self.max_rounds:
            rounds += 1
            next_frontier: set[int] = set()
            # Round 1 pushes every affected vertex's out-neighbors even when
            # its own rank is unchanged: a source that gained edges has a new
            # out-degree, so its *contribution per edge* changed and all its
            # targets must re-pull (the rank delta alone cannot see this).
            force_push = rounds == 1
            touched_vertices += len(frontier)
            for v in frontier:
                total = 0.0
                in_nbrs = in_adj.get(v, empty)
                for u in in_nbrs:
                    deg = len(out_adj.get(u, empty))
                    if deg:
                        total += values[u] / deg
                touched_edges += len(in_nbrs)
                new_value = base + damping * total
                if force_push or abs(new_value - values[v]) > tolerance:
                    values[v] = new_value
                    out_nbrs = out_adj.get(v, empty)
                    touched_edges += len(out_nbrs)
                    next_frontier.update(out_nbrs)
                else:
                    values[v] = new_value
            frontier = next_frontier
        return ComputeCounters(
            iterations=rounds,
            touched_vertices=touched_vertices,
            touched_edges=touched_edges,
        )

    def as_array(self) -> np.ndarray:
        """Current rank vector as a numpy array."""
        return np.asarray(self.values)
