"""Synthetic stream generators: determinism, calibration knobs."""

import numpy as np
import pytest

from repro.datasets.generators import SideProfile, StreamGenerator
from repro.errors import ConfigurationError


def _gen(**overrides):
    defaults = dict(
        src_profile=SideProfile(0.2, 20, 1.0, 480),
        dst_profile=SideProfile(0.4, 10, 1.4, 480),
        num_vertices=500,
        seed=42,
    )
    defaults.update(overrides)
    return StreamGenerator(**defaults)


def test_side_profile_validation():
    with pytest.raises(ConfigurationError):
        SideProfile(hub_mass=1.5, hub_count=10, hub_alpha=1.0, tail_size=10)
    with pytest.raises(ConfigurationError):
        SideProfile(hub_mass=0.5, hub_count=0, hub_alpha=1.0, tail_size=10)
    with pytest.raises(ConfigurationError):
        SideProfile(hub_mass=0.0, hub_count=0, hub_alpha=0.0, tail_size=0)


def test_hub_probabilities_sum_to_one():
    p = SideProfile(0.5, 30, 1.2, 100)
    probs = p.hub_probabilities()
    assert probs.sum() == pytest.approx(1.0)
    assert (np.diff(probs) <= 0).all()  # Zipf is monotone decreasing


def test_flat_profile_has_no_hub_probabilities():
    p = SideProfile(0.0, 0, 0.0, 100)
    assert len(p.hub_probabilities()) == 0
    assert p.num_vertices == 100


def test_expected_top_degree_scales_linearly_without_ramp():
    p = SideProfile(0.4, 10, 1.4, 480)
    assert p.expected_top_degree(10_000) == pytest.approx(
        10 * p.expected_top_degree(1_000)
    )


def test_generator_is_deterministic():
    a = _gen().generate_batch(3, 1_000)
    b = _gen().generate_batch(3, 1_000)
    np.testing.assert_array_equal(a.src, b.src)
    np.testing.assert_array_equal(a.dst, b.dst)
    np.testing.assert_array_equal(a.weight, b.weight)


def test_different_seeds_differ():
    a = _gen(seed=1).generate_batch(0, 1_000)
    b = _gen(seed=2).generate_batch(0, 1_000)
    assert not np.array_equal(a.src, b.src)


def test_no_self_loops():
    batch = _gen().generate_batch(0, 5_000)
    assert (batch.src != batch.dst).all()


def test_vertices_within_universe():
    batch = _gen().generate_batch(0, 5_000)
    assert batch.src.max() < 500 and batch.dst.max() < 500
    assert batch.src.min() >= 0 and batch.dst.min() >= 0


def test_skew_produces_high_top_degree():
    batch = _gen().generate_batch(0, 5_000)
    __, counts = batch.in_degrees()
    # Top hub receives ~ hub_mass * p1 * b edges.
    assert counts.max() > 300


def test_warmup_disables_hubs():
    gen = _gen(warmup_edges=10_000)
    warm = gen.generate_batch(0, 1_000)   # within warmup
    hot = gen.generate_batch(20, 1_000)   # past warmup
    assert warm.max_degree() < 20
    assert hot.max_degree() > 50


def test_hub_ramp_suppresses_small_batches():
    with_ramp = _gen(hub_ramp=4_000)
    without = _gen()
    small_ramped = with_ramp.generate_batch(0, 500)
    small_plain = without.generate_batch(0, 500)
    assert small_ramped.max_degree() < small_plain.max_degree()
    # At large batch sizes the ramp factor approaches 1.
    big_ramped = with_ramp.generate_batch(0, 20_000)
    big_plain = without.generate_batch(0, 20_000)
    assert big_ramped.max_degree() > 0.7 * big_plain.max_degree()


def test_hub_in_pool_bounds_unique_sources():
    pooled = _gen(hub_in_pool=16)
    sources = set()
    for i in range(20):
        batch = pooled.generate_batch(i, 2_000)
        verts, counts = batch.in_degrees()
        top_hub = int(verts[counts.argmax()])
        mask = batch.dst == top_hub
        sources.update(batch.src[mask].tolist())
    # The top hub's lifetime in-neighborhood stays near the pool size even
    # though it receives thousands of edges.
    assert len(sources) <= 32


def test_drift_changes_hub_identities():
    gen = _gen(drift_period=5_000)
    early = gen.generate_batch(0, 2_000)
    late = gen.generate_batch(10, 2_000)  # 20_000 edges in -> epoch 4
    def top_vertex(batch):
        verts, counts = batch.in_degrees()
        return int(verts[counts.argmax()])
    assert top_vertex(early) != top_vertex(late)


def test_weights_deterministic_per_pair():
    batch = _gen().generate_batch(0, 5_000)
    seen = {}
    for u, v, w in zip(batch.src.tolist(), batch.dst.tolist(), batch.weight.tolist()):
        assert seen.setdefault((u, v), w) == w
    assert set(np.unique(batch.weight)).issubset(set(range(1, 17)))


def test_unweighted_generator():
    batch = _gen(weighted=False).generate_batch(0, 100)
    assert (batch.weight == 1.0).all()


def test_delete_fraction_marks_deletions():
    gen = _gen(delete_fraction=0.2)
    first = gen.generate_batch(0, 1_000)
    later = gen.generate_batch(5, 1_000)
    assert first.is_delete is None  # batch 0 never deletes
    assert later.is_delete is not None
    fraction = later.is_delete.mean()
    assert 0.1 < fraction < 0.3


def test_generator_validation():
    with pytest.raises(ConfigurationError):
        _gen(num_vertices=1)
    with pytest.raises(ConfigurationError):
        _gen(delete_fraction=1.0)
    with pytest.raises(ConfigurationError):
        _gen(warmup_edges=-1)
    with pytest.raises(ConfigurationError):
        _gen().generate_batch(0, 0)
    with pytest.raises(ConfigurationError):
        list(_gen().batches(10, -1))


def test_batches_iterator_ids_are_sequential():
    ids = [b.batch_id for b in _gen().batches(100, 5)]
    assert ids == [0, 1, 2, 3, 4]
