"""Mesh NoC: routing, latency, utilization."""

import pytest

from repro.errors import ConfigurationError
from repro.hau.config import HAUConfig
from repro.hau.noc import MeshNoC

CFG = HAUConfig()
NOC = MeshNoC(CFG)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        HAUConfig(num_cores=15)
    with pytest.raises(ConfigurationError):
        HAUConfig(boundary_share_probability=2.0)
    with pytest.raises(ConfigurationError):
        HAUConfig(master_core=99)


def test_coords_and_hops():
    assert CFG.core_coords(0) == (0, 0)
    assert CFG.core_coords(5) == (1, 1)
    assert CFG.core_coords(15) == (3, 3)
    assert CFG.hops(0, 15) == 6
    assert CFG.hops(3, 3) == 0
    assert CFG.hops(0, 3) == 3


def test_xy_route_goes_x_then_y():
    links = NOC.route(0, 5)  # (0,0) -> (1,1)
    assert links == [(0, 1), (1, 5)]


def test_route_self_is_empty():
    assert NOC.route(7, 7) == []


def test_route_length_matches_hops():
    for src in range(16):
        for dst in range(16):
            assert len(NOC.route(src, dst)) == CFG.hops(src, dst)


def test_base_latency():
    assert NOC.base_latency(0, 15) == 6 * CFG.hop_latency + 1
    assert NOC.base_latency(2, 2) == 1


def test_traffic_accumulates_on_route_links():
    loads = NOC.new_loads()
    NOC.add_traffic(loads, 0, 5, packets=10, flits_per_packet=2)
    assert loads.flits[0, 1] == 20
    assert loads.flits[1, 5] == 20
    assert loads.total_flits() == 40


def test_utilization_capped():
    loads = NOC.new_loads()
    NOC.add_traffic(loads, 0, 1, packets=10_000, flits_per_packet=2)
    util = NOC.link_utilization(loads, duration_cycles=100.0)
    assert util[0, 1] == pytest.approx(0.95)


def test_latency_grows_with_load():
    light = NOC.new_loads()
    heavy = NOC.new_loads()
    NOC.add_traffic(light, 0, 15, 10, 1)
    NOC.add_traffic(heavy, 0, 15, 10_000, 1)
    duration = 20_000.0
    lat_light = NOC.average_packet_latency(light, duration, 0, 15, 2)
    lat_heavy = NOC.average_packet_latency(heavy, duration, 0, 15, 2)
    assert lat_heavy > lat_light >= NOC.base_latency(0, 15)
