"""Analysis: characterization runners, ABR accuracy, report rendering."""

from .accuracy import (
    FIG18_EXCLUDED_DATASETS,
    FIG18_GRID,
    AccuracyPoint,
    accuracy_grid,
    decision_accuracy,
)
from .characterization import CellCharacterization, characterize_cell, geomean
from .experiments import ExperimentStore
from .report import render_kv, render_series, render_table
from .visualize import bar_chart, grouped_bar_chart
from .sensitivity import (
    SensitivityPoint,
    classification_robustness,
    sweep_parameter,
)

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "ExperimentStore",
    "SensitivityPoint",
    "classification_robustness",
    "sweep_parameter",
    "FIG18_EXCLUDED_DATASETS",
    "FIG18_GRID",
    "AccuracyPoint",
    "accuracy_grid",
    "decision_accuracy",
    "CellCharacterization",
    "characterize_cell",
    "geomean",
    "render_kv",
    "render_series",
    "render_table",
]
