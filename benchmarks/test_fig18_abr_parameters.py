"""Fig. 18: ABR parameter study.

(a) decision accuracy over the (lambda, TH) grid — the paper's sweep peaks
at 97% for (256, 465), excluding yt/friendster/uk (trivially right).
(b) sensitivity to the instrumentation period n: n=100 is slightly better on
average than n=10 (fewer instrumented batches) but misses temporal
fluctuations on some workloads.
"""

from _harness import CellRun, caps, emit, record
from repro.analysis.accuracy import FIG18_EXCLUDED_DATASETS, FIG18_GRID
from repro.analysis.report import render_kv, render_table
from repro.datasets.profiles import DATASETS, get_dataset
from repro.update.cad import cad_from_degrees

SIZES = (1_000, 10_000, 100_000)


def _examples():
    """Per-batch (ground truth, in/out degree arrays) examples."""
    examples = []
    for name, profile in DATASETS.items():
        if name in FIG18_EXCLUDED_DATASETS:
            continue
        for batch_size in SIZES:
            nb = profile.num_batches(batch_size, cap=caps()[batch_size])
            cell = CellRun(profile, batch_size, nb=nb)
            generator = profile.generator()
            for index, (t_base, t_ro) in enumerate(zip(cell.baseline, cell.reorder)):
                batch = generator.generate_batch(index, batch_size)
                degree_sides = (batch.in_degrees()[1], batch.out_degrees()[1])
                examples.append((t_ro < t_base, batch.size, degree_sides))
    return examples


def run_fig18():
    examples = _examples()
    grid_points = []
    for lam, threshold in FIG18_GRID:
        correct = 0
        for truth, size, degree_sides in examples:
            cad = max(cad_from_degrees(d, size, lam) for d in degree_sides)
            correct += (cad >= threshold) == truth
        grid_points.append((lam, threshold, correct / len(examples)))
    # (b): n sensitivity on a few representative cells.
    n_rows = []
    for name, size in (("flickr", 100_000), ("yt", 100_000), ("stack", 100_000)):
        cell = CellRun(get_dataset(name), size, nb=12)
        base = cell.baseline_update
        n_rows.append(
            [f"{name}-{size}", base / cell.abr_update(n=10), base / cell.abr_update(n=12)]
        )
    return grid_points, n_rows, len(examples)


def test_fig18_abr_parameters(benchmark):
    grid_points, n_rows, examples = benchmark.pedantic(run_fig18, rounds=1, iterations=1)
    emit(
        "fig18_abr_parameters",
        render_table(
            ["lambda", "TH", "decision accuracy"],
            [[lam, th, acc] for lam, th, acc in grid_points],
            title=f"Fig. 18(a): ABR accuracy over the (lambda, TH) grid "
            f"({examples} example batches)",
        )
        + "\n\n"
        + render_table(
            ["workload", "ABR speedup (n=10)", "ABR speedup (larger n)"],
            n_rows,
            title="Fig. 18(b): sensitivity of the update speedup to n",
        ),
    )
    accuracy = {(lam, th): acc for lam, th, acc in grid_points}
    paper_point = accuracy[(256, 465.0)]
    record(
        "fig18_abr_parameters",
        {"paper_point_accuracy": paper_point, "best": max(accuracy.values())},
    )
    # The paper's chosen combination is (near-)optimal and highly accurate.
    assert paper_point > 0.9
    assert paper_point >= max(accuracy.values()) - 0.02
    # Tiny lambdas over-trigger reordering and lose accuracy.
    assert accuracy[(2, 10.0)] < paper_point
