"""Run telemetry: instrumentation core, exporters, and the trace analyzer.

See ``docs/OBSERVABILITY.md`` for naming conventions and the trace schema.

* :mod:`repro.telemetry.core` — counters, gauges, histograms, timed spans,
  the decision ledger, and the no-op null backend;
* :mod:`repro.telemetry.timeline` — the flight-recorder timeline (bounded
  ring of timestamped events) and the Chrome trace-event exporter;
* :mod:`repro.telemetry.heartbeat` — the atomic live-run heartbeat file
  and the ``repro top`` renderer;
* :mod:`repro.telemetry.anomaly` — rolling-median/MAD flags on per-batch
  series;
* :mod:`repro.telemetry.export` — Prometheus textfile exporter and the
  human-readable summary;
* :mod:`repro.telemetry.report` — the offline analyzer behind
  ``repro report`` (imported lazily by the CLI; not re-exported here to
  keep ``import repro`` light).
"""

from .anomaly import AnomalyFlag, rolling_mad_flags
from .core import (
    NULL_TELEMETRY,
    TELEMETRY_LEVELS,
    Decision,
    HistogramStat,
    NullTelemetry,
    SpanStat,
    Telemetry,
    TelemetrySnapshot,
    as_telemetry,
    make_telemetry,
    merge_snapshots,
)
from .export import render_summary, to_prometheus, write_prometheus_textfile
from .heartbeat import HeartbeatMonitor, read_heartbeat, render_heartbeat
from .timeline import (
    TimelineRecorder,
    TimelineSnapshot,
    merge_timeline_snapshots,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "NULL_TELEMETRY",
    "TELEMETRY_LEVELS",
    "AnomalyFlag",
    "Decision",
    "HeartbeatMonitor",
    "HistogramStat",
    "NullTelemetry",
    "SpanStat",
    "Telemetry",
    "TelemetrySnapshot",
    "TimelineRecorder",
    "TimelineSnapshot",
    "as_telemetry",
    "make_telemetry",
    "merge_snapshots",
    "merge_timeline_snapshots",
    "read_heartbeat",
    "render_heartbeat",
    "render_summary",
    "rolling_mad_flags",
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
    "write_prometheus_textfile",
]
