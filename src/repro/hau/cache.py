"""Per-tile cache model for edge-data accesses.

Because HAU pins every update of vertex ``v`` to the same core
(``v mod N``), v's edge-data cachelines settle in that core's private
L1/L2 across batches and its pages are NUCA-homed on that tile's L3 slice —
this is precisely why the paper measures 98-99% of accessed edge-data
cachelines hitting in the *local core tile* (Fig. 20).  The residual remote
accesses come from boundary cachelines shared with a neighboring vertex's
array that is homed on a different core.

The model tracks, per core, an LRU set of vertex footprints bounded by the
private-cache capacity: a vertex found resident costs the L1/L2 rate per
line, otherwise lines fill from the local L3 slice (or DRAM when the graph
outgrows the L3).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .config import HAUConfig

__all__ = ["AccessProfile", "TileCache"]


@dataclass
class AccessProfile:
    """Classified cacheline accesses of one vertex's task cluster.

    Attributes:
        lines: total edge-data cachelines touched.
        local_private: served by the local L1/L2 (resident vertex).
        local_l3: filled from the local L3 slice.
        dram: filled from DRAM (graph footprint exceeds the L3).
        remote: boundary lines forwarded from another tile.
        cycles: modeled fetch+scan cycles for all the above.
    """

    lines: float = 0.0
    local_private: float = 0.0
    local_l3: float = 0.0
    dram: float = 0.0
    remote: float = 0.0
    cycles: float = 0.0

    def merge(self, other: "AccessProfile") -> None:
        self.lines += other.lines
        self.local_private += other.local_private
        self.local_l3 += other.local_l3
        self.dram += other.dram
        self.remote += other.remote
        self.cycles += other.cycles

    @property
    def local_fraction(self) -> float:
        """Fraction of lines served by the local tile (Fig. 20's metric)."""
        return (self.lines - self.remote) / self.lines if self.lines else 1.0


@dataclass
class TileCache:
    """One core tile's private-cache residency model."""

    config: HAUConfig
    #: vertex -> resident footprint in lines (LRU order).
    _resident: OrderedDict = field(default_factory=OrderedDict)
    _resident_lines: int = 0

    def _evict_to_capacity(self) -> None:
        capacity = self.config.l1_lines + self.config.l2_lines
        while self._resident_lines > capacity and self._resident:
            __, lines = self._resident.popitem(last=False)
            self._resident_lines -= lines

    def access_vertex(
        self,
        vertex: int,
        scan_lines: float,
        footprint_lines: int,
        l3_hit_probability: float,
        remote_hops_cycles: float,
        home_is_local: bool = True,
    ) -> AccessProfile:
        """Model one task cluster's scans over a vertex's edge data.

        Args:
            vertex: the vertex whose edge data is scanned.
            scan_lines: cachelines touched by all of the cluster's searches.
            footprint_lines: the vertex's current edge-data footprint.
            l3_hit_probability: chance a non-resident line is in the L3.
            remote_hops_cycles: extra NoC cycles for a boundary-line forward.
            home_is_local: True when the vertex's NUCA home slice is this
                tile's (guaranteed by the paper's vertex-pinned assignment;
                False under the scatter ablation, turning every non-resident
                L3 fill into a remote-slice access).

        Returns:
            The classified accesses and their modeled cycles.
        """
        cfg = self.config
        profile = AccessProfile(lines=scan_lines)
        resident = vertex in self._resident
        if resident:
            self._resident.move_to_end(vertex)
            delta = footprint_lines - self._resident[vertex]
            self._resident[vertex] = footprint_lines
            self._resident_lines += delta
        else:
            self._resident[vertex] = footprint_lines
            self._resident_lines += footprint_lines
        self._evict_to_capacity()

        boundary = min(scan_lines, cfg.boundary_share_probability)
        interior = scan_lines - boundary
        if resident:
            profile.local_private = interior
            per_line = cfg.l2_stream_cycles
        elif home_is_local:
            profile.local_l3 = interior * l3_hit_probability
            profile.dram = interior * (1.0 - l3_hit_probability)
            per_line = (
                cfg.l3_stream_cycles * l3_hit_probability
                + cfg.dram_stream_cycles * (1.0 - l3_hit_probability)
            )
        else:
            # Remote NUCA slice: every fill crosses the mesh.
            profile.remote += interior
            per_line = (
                (cfg.l3_stream_cycles + remote_hops_cycles) * l3_hit_probability
                + cfg.dram_stream_cycles * (1.0 - l3_hit_probability)
            )
        profile.remote = profile.remote + boundary
        profile.cycles = (
            interior * (per_line + cfg.scan_per_line_cycles)
            + boundary * (cfg.l3_latency + remote_hops_cycles + cfg.scan_per_line_cycles)
        )
        return profile
