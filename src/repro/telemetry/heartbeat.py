"""Live run monitoring: atomic heartbeat file + terminal renderer.

While a run is in flight the only artifacts on disk today are written at
close (trace summary, Prometheus textfile), so a long run is a black box
until it ends.  :class:`HeartbeatMonitor` fixes that: the pipeline calls
:meth:`HeartbeatMonitor.beat` after every batch and the monitor writes a
small JSON document — throughput, batch-latency quantiles over a rolling
window, per-stage latency for the last batch, per-shard load, transport
bytes, checkpoint age — via a temp file + ``os.replace`` so a concurrent
reader (``repro top``, a crash post-mortem) never sees a torn file.

The same beat optionally refreshes the Prometheus textfile in-run, so a
scraping ``node_exporter`` sees live counters rather than only the
end-of-run flush.

``repro top RUNDIR`` tails the heartbeat (:func:`read_heartbeat` +
:func:`render_heartbeat`); ``--once`` renders a single frame for scripts
and smoke tests.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path

from .export import write_prometheus_textfile

__all__ = [
    "HEARTBEAT_FILENAME",
    "HeartbeatMonitor",
    "read_heartbeat",
    "render_heartbeat",
]

#: Default file name when a directory is given instead of a file.
HEARTBEAT_FILENAME = "heartbeat.json"

#: Beats retained for the rolling throughput / quantile window.
DEFAULT_WINDOW = 32


def _resolve(path) -> Path:
    path = Path(path)
    if path.is_dir():
        return path / HEARTBEAT_FILENAME
    return path


def _quantile(values: list[float], q: float) -> float:
    """Linear-interpolated quantile of a small unsorted sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + fraction * (ordered[high] - ordered[low])


class HeartbeatMonitor:
    """Writes the per-batch heartbeat (and optional in-run Prometheus file).

    Args:
        path: heartbeat file (or directory to hold ``heartbeat.json``);
            ``None`` disables the JSON heartbeat (useful when only the
            in-run Prometheus refresh is wanted).
        prom_path: Prometheus textfile to refresh on every beat; ``None``
            disables the refresh.
        prom_labels: constant labels for the Prometheus export.
        run_id: run identifier stamped into the heartbeat.
        label: human run label ("fb @ 500 [pr, abr_usc]").
        total_batches: planned batch count, if known (progress rendering).
        window: beats in the rolling throughput/quantile window.
    """

    def __init__(self, path=None, *, prom_path=None, prom_labels=None,
                 run_id: str = "", label: str = "",
                 total_batches: int | None = None,
                 window: int = DEFAULT_WINDOW):
        self.path = None if path is None else _resolve(path)
        self.prom_path = None if prom_path is None else Path(prom_path)
        self.prom_labels = prom_labels
        self.run_id = run_id
        self.label = label
        self.total_batches = total_batches
        self.beats = 0
        self._window: deque = deque(maxlen=max(2, window))
        self._last_checkpoint: float | None = None
        self._last_checkpoint_mono: float | None = None
        self._last_stage_totals: dict[str, tuple[int, float]] = {}

    def note_checkpoint(self) -> None:
        """Record that a checkpoint was just written (age resets to 0).

        The wall-clock stamp is kept for display; the age arithmetic uses
        the monotonic clock so an NTP step or DST change cannot produce a
        negative or wildly wrong checkpoint age.
        """
        self._last_checkpoint = time.time()
        self._last_checkpoint_mono = time.monotonic()

    # -- the per-batch beat --------------------------------------------------
    def _stage_deltas(self, snapshot) -> dict[str, float]:
        """Per-stage seconds spent since the previous beat."""
        deltas: dict[str, float] = {}
        if snapshot is None:
            return deltas
        for name, stat in snapshot.spans.items():
            if not name.startswith("stage."):
                continue
            prev_count, prev_total = self._last_stage_totals.get(name, (0, 0.0))
            if stat.count > prev_count:
                deltas[name[len("stage."):]] = stat.total - prev_total
            self._last_stage_totals[name] = (stat.count, stat.total)
        return deltas

    def beat(self, telemetry, *, batch_id: int, batch_edges: int,
             wall_seconds: float, serve: dict | None = None) -> dict:
        """Record one completed batch and rewrite the heartbeat file.

        Args:
            telemetry: the run's telemetry backend (``snapshot()`` is read
                for stage spans, shard loads and transport counters; the
                null backend degrades to throughput-only beats).
            batch_id: id of the batch that just completed.
            batch_edges: edge events applied by that batch.
            wall_seconds: wall-clock seconds the batch took end to end.
            serve: optional live-ingest service section (``repro serve``:
                queue depth, pending edges, watermarks) embedded verbatim.

        Returns the payload written (also returned when ``path`` is None,
        so callers can test/forward it).

        The payload carries two clocks: ``ts`` (wall, for humans) and
        ``mono`` (monotonic, for age arithmetic — same-host readers like
        ``repro top`` compute staleness from it, immune to clock steps).
        """
        now = time.time()
        mono = time.monotonic()
        snapshot = telemetry.snapshot() if telemetry.enabled else None
        stages = self._stage_deltas(snapshot)
        self._window.append((batch_edges, wall_seconds))
        self.beats += 1

        window_edges = sum(edges for edges, _ in self._window)
        window_seconds = sum(seconds for _, seconds in self._window)
        batch_times = [seconds for _, seconds in self._window]
        payload: dict = {
            "schema": 1,
            "run_id": self.run_id,
            "label": self.label,
            "pid": os.getpid(),
            "ts": now,
            "mono": mono,
            "batch_id": batch_id,
            "batches_done": self.beats,
            "total_batches": self.total_batches,
            "batch_edges": batch_edges,
            "throughput_eps": (
                window_edges / window_seconds if window_seconds > 0 else 0.0
            ),
            "batch_seconds": {
                "last": wall_seconds,
                "p50": _quantile(batch_times, 0.50),
                "p95": _quantile(batch_times, 0.95),
                "p99": _quantile(batch_times, 0.99),
            },
            "stages": stages,
        }
        if snapshot is not None:
            shards = {
                name[len("partition.load.s"):]: value
                for name, value in snapshot.counters.items()
                if name.startswith("partition.load.s")
            }
            if shards:
                payload["shards"] = dict(sorted(shards.items()))
            transport = {
                key: snapshot.counters[name]
                for key, name in (
                    ("bytes_sent", "transport.bytes_sent"),
                    ("bytes_received", "transport.bytes_received"),
                    ("shm_bytes", "transport.shm_bytes"),
                    ("round_trips", "transport.round_trips"),
                )
                if name in snapshot.counters
            }
            if transport:
                payload["transport"] = transport
            dropped = snapshot.counter("ledger.dropped")
            if dropped:
                payload["ledger_dropped"] = dropped
        if serve:
            payload["serve"] = serve
        if self._last_checkpoint is not None:
            payload["checkpoint"] = {
                "last_ts": self._last_checkpoint,
                "age_s": max(0.0, mono - self._last_checkpoint_mono),
            }

        if self.path is not None:
            self._write_atomic(payload)
        if self.prom_path is not None and snapshot is not None:
            write_prometheus_textfile(
                snapshot, self.prom_path, labels=self.prom_labels
            )
        return payload

    def _write_atomic(self, payload: dict) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, self.path)


# -- reading + rendering (repro top) ------------------------------------------

def read_heartbeat(path) -> dict | None:
    """Load one heartbeat document (accepts the file or its directory).

    Returns ``None`` for anything unreadable: missing file, permission
    problems, invalid or truncated JSON, undecodable bytes, or valid
    JSON that is not an object.  The writer's replaces are atomic, so
    these only arise from files that were never (whole) heartbeats — a
    watching ``repro top`` must render "waiting", not crash.
    """
    try:
        with open(_resolve(path), encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    return data if isinstance(data, dict) else None


def _rate(value: float) -> str:
    for unit, scale in (("M", 1e6), ("k", 1e3)):
        if value >= scale:
            return f"{value / scale:.2f}{unit}"
    return f"{value:.1f}"


def render_heartbeat(data: dict, *, now: float | None = None,
                     max_age: float | None = None) -> str:
    """One terminal frame of a heartbeat document (``repro top``).

    ``max_age`` flags the run as stalled when the heartbeat timestamp is
    older than that many seconds (the writer beats every batch, so a
    stale file means the run is stuck, killed, or finished).

    Age arithmetic prefers the payload's monotonic stamp (``mono``) when
    the caller does not supply ``now``: writer and reader run on the same
    host, so monotonic differences are meaningful and immune to wall-clock
    steps (NTP, DST) that would otherwise yield negative or inflated ages
    and spurious STALLED flags.  An explicit ``now`` keeps wall-clock
    semantics (tests, rendering archived heartbeats).
    """
    if now is None and "mono" in data:
        age = max(0.0, time.monotonic() - data["mono"])
    else:
        now = time.time() if now is None else now
        age = max(0.0, now - data.get("ts", now))
    stalled = max_age is not None and age > max_age
    lines = []
    title = data.get("label") or data.get("run_id") or "run"
    lines.append(f"repro top — {title} (pid {data.get('pid', '?')}, "
                 f"heartbeat {age:.1f}s old"
                 f"{' — STALLED?' if stalled else ''})")
    done = data.get("batches_done", 0)
    total = data.get("total_batches")
    progress = f"{done}/{total}" if total else str(done)
    lines.append(
        f"  batches: {progress}   last batch id: {data.get('batch_id', '?')}"
        f"   throughput: {_rate(data.get('throughput_eps', 0.0))} edges/s"
    )
    bs = data.get("batch_seconds", {})
    lines.append(
        "  batch wall (s): "
        f"last={bs.get('last', 0.0):.4f} p50={bs.get('p50', 0.0):.4f} "
        f"p95={bs.get('p95', 0.0):.4f} p99={bs.get('p99', 0.0):.4f}"
    )
    stages = data.get("stages") or {}
    if stages:
        rendered = "  ".join(
            f"{name}={seconds * 1e3:.2f}ms"
            for name, seconds in sorted(stages.items())
        )
        lines.append(f"  stages (last batch): {rendered}")
    shards = data.get("shards") or {}
    if shards:
        values = [float(v) for v in shards.values()]
        mean = sum(values) / len(values)
        lines.append("  shard load (edge-directions):")
        for name in sorted(shards):
            load = float(shards[name])
            ratio = load / mean if mean else 0.0
            bar = "#" * max(1, min(40, round(20 * ratio)))
            lines.append(f"    s{name}: {load:>12.0f} {bar}")
    transport = data.get("transport") or {}
    if transport:
        parts = [f"{key}={_rate(float(value))}"
                 for key, value in sorted(transport.items())]
        lines.append(f"  transport: {'  '.join(parts)}")
    serve = data.get("serve") or {}
    if serve:
        lag = serve.get("admitted_seq", 0) - serve.get("visible_seq", 0)
        lines.append(
            f"  serve: clients={serve.get('clients', 0)} "
            f"queue={serve.get('queue_depth', 0)} "
            f"pending={serve.get('pending_edges', 0)} lag={lag} "
            f"queries={serve.get('queries_served', 0)} "
            f"p99_visible={serve.get('ingest_to_visible_p99', 0.0):.4f}s"
        )
    checkpoint = data.get("checkpoint")
    if checkpoint:
        lines.append(f"  checkpoint age: {checkpoint.get('age_s', 0.0):.1f}s")
    if data.get("ledger_dropped"):
        lines.append(
            f"  WARNING: {data['ledger_dropped']:.0f} decisions dropped "
            f"past the ledger cap"
        )
    return "\n".join(lines)
