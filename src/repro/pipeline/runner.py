"""The streaming pipeline: interleaved update and compute (Section 3.1).

A :class:`StreamingPipeline` owns a dynamic graph, an update engine, a
compute engine and (optionally) an OCA controller, and drives them batch by
batch: ingest the batch (update phase), then run the algorithm on the latest
snapshot (compute phase), unless OCA defers the round to aggregate it with
the next batch's.
"""

from __future__ import annotations

import numpy as np

from ..compute.bfs import IncrementalBFS
from ..compute.components import IncrementalConnectedComponents
from ..compute.cost_model import compute_round_time
from ..compute.oca import OCAConfig, OCAController
from ..compute.pagerank import IncrementalPageRank, StaticPageRank
from ..compute.sssp import IncrementalSSSP, StaticSSSP
from ..costs import (
    DEFAULT_COMPUTE_COSTS,
    DEFAULT_COSTS,
    ComputeCostParameters,
    CostParameters,
)
from ..datasets.profiles import DatasetProfile
from ..datasets.stream import Batch
from ..errors import ConfigurationError
from ..exec_model.machine import HOST_MACHINE, MachineConfig
from ..graph.adjacency_list import AdjacencyListGraph
from ..graph.base import DynamicGraph
from ..graph.snapshot import DeltaSnapshotter
from ..update.abr import ABRConfig
from ..update.engine import UpdateEngine, UpdatePolicy
from .metrics import BatchMetrics, RunMetrics

__all__ = ["ALGORITHMS", "StreamingPipeline"]

#: Supported algorithm labels: Section 6.1's four algorithms plus the
#: extension algorithms ("bfs" and "cc", incremental) and "none"
#: (update-phase-only runs).
ALGORITHMS = ("pr", "sssp", "pr_static", "sssp_static", "bfs", "cc", "none")



class StreamingPipeline:
    """Drives repeated update+compute over a dataset's stream.

    Args:
        profile: the dataset to stream.
        batch_size: edges per input batch.
        algorithm: one of :data:`ALGORITHMS` (``"pr"``/``"sssp"`` are the
            incremental variants; ``"none"`` runs updates only).
        policy: update strategy policy.
        use_oca: enable overlap-based compute aggregation.
        machine: machine for the software cost models.
        costs / compute_costs: cost model parameters.
        abr_config: ABR parameters.
        oca_config: OCA parameters.
        hau: accelerator simulator (required for HAU policies).
        graph: pre-built graph to reuse; defaults to a fresh adjacency list.
        seed: stream generator seed.
    """

    def __init__(
        self,
        profile: DatasetProfile,
        batch_size: int,
        algorithm: str = "pr",
        policy: UpdatePolicy = UpdatePolicy.ABR_USC,
        use_oca: bool = False,
        machine: MachineConfig = HOST_MACHINE,
        costs: CostParameters = DEFAULT_COSTS,
        compute_costs: ComputeCostParameters = DEFAULT_COMPUTE_COSTS,
        abr_config: ABRConfig | None = None,
        oca_config: OCAConfig | None = None,
        hau=None,
        graph: DynamicGraph | None = None,
        seed: int = 7,
        pr_tolerance: float = 1e-7,
        pr_max_rounds: int = 100,
        sssp_source: int | None = None,
        trace=None,
    ):
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"algorithm must be one of {ALGORITHMS}, got {algorithm!r}"
            )
        self.profile = profile
        self.batch_size = batch_size
        self.algorithm = algorithm
        self.machine = machine
        self.costs = costs
        self.compute_costs = compute_costs
        self.graph = graph or AdjacencyListGraph(profile.num_vertices)
        self.engine = UpdateEngine(
            self.graph,
            policy=policy,
            machine=machine,
            costs=costs,
            abr_config=abr_config,
            hau=hau,
        )
        self.oca = (
            OCAController(
                profile.num_vertices,
                config=oca_config,
                costs=costs,
                num_workers=machine.num_workers,
            )
            if use_oca
            else None
        )
        self.generator = profile.generator(seed=seed)
        self.pr_tolerance = pr_tolerance
        self.pr_max_rounds = pr_max_rounds
        #: Optional TraceWriter receiving one event per batch.
        self.trace = trace
        self._sssp_source: int | None = sssp_source
        self._incremental_pr: IncrementalPageRank | None = None
        self._incremental_sssp: IncrementalSSSP | None = None
        self._incremental_bfs: IncrementalBFS | None = None
        self._incremental_cc: IncrementalConnectedComponents | None = None
        self._pending_affected: np.ndarray | None = None
        self._pending_batches: list[Batch] = []
        self._snapshotter: DeltaSnapshotter | None = None
        if self.algorithm in ("pr_static", "sssp_static"):
            # Static algorithms re-snapshot every round; patch the cached
            # CSR arrays instead of rebuilding from the dicts each time.
            self._snapshotter = DeltaSnapshotter(self.graph)

    # -- compute dispatch -----------------------------------------------------
    def _ensure_compute_engine(self, first_batch: Batch) -> None:
        if self.algorithm == "pr" and self._incremental_pr is None:
            self._incremental_pr = IncrementalPageRank(
                self.graph,
                tolerance=self.pr_tolerance,
                max_rounds=self.pr_max_rounds,
            )
        elif self.algorithm == "sssp" and self._incremental_sssp is None:
            if self._sssp_source is None:
                self._sssp_source = int(first_batch.src[0])
            self._incremental_sssp = IncrementalSSSP(self.graph, self._sssp_source)
        elif self.algorithm == "sssp_static" and self._sssp_source is None:
            self._sssp_source = int(first_batch.src[0])
        elif self.algorithm == "bfs" and self._incremental_bfs is None:
            if self._sssp_source is None:
                self._sssp_source = int(first_batch.src[0])
            self._incremental_bfs = IncrementalBFS(self.graph, self._sssp_source)
        elif self.algorithm == "cc" and self._incremental_cc is None:
            self._incremental_cc = IncrementalConnectedComponents(self.graph)

    def _run_compute(
        self, batch: Batch, affected: np.ndarray, covered: list[Batch]
    ) -> float:
        """Execute one compute round; returns its modeled time."""
        if self.algorithm == "none":
            return 0.0
        if self.algorithm == "pr":
            counters = self._incremental_pr.on_batch(affected)
        elif self.algorithm == "sssp":
            counters = self._incremental_sssp.on_batches(covered)
        elif self.algorithm == "bfs":
            counters = self._incremental_bfs.on_batches(covered)
        elif self.algorithm == "cc":
            counters = None
            for b in covered:
                c = self._incremental_cc.on_batch(b)
                counters = c if counters is None else counters + c
        elif self.algorithm == "pr_static":
            __, counters = StaticPageRank(tolerance=1e-7, max_iterations=50).run(
                self._snapshotter.snapshot()
            )
        else:  # sssp_static
            __, counters = StaticSSSP(self._sssp_source).run(
                self._snapshotter.snapshot()
            )
        return compute_round_time(counters, self.compute_costs, self.machine)

    # -- main loop --------------------------------------------------------------
    def run(self, num_batches: int | None = None, seed_offset: int = 0) -> RunMetrics:
        """Stream ``num_batches`` batches through the pipeline.

        Args:
            num_batches: batches to process (defaults to all the profile's
                stream provides at this batch size).
            seed_offset: shift the stream start (used to resume streams).

        Returns:
            The run's :class:`~repro.pipeline.metrics.RunMetrics`.
        """
        if num_batches is None:
            num_batches = self.profile.num_batches(self.batch_size)
        metrics = RunMetrics(
            dataset=self.profile.name,
            batch_size=self.batch_size,
            algorithm=self.algorithm,
            mode=self.engine.policy.value,
        )
        for index in range(num_batches):
            batch = self.generator.generate_batch(index + seed_offset, self.batch_size)
            self._ensure_compute_engine(batch)
            update = self.engine.ingest(batch)
            update_time = update.time
            overlap = None
            deferred = False
            if self.oca is not None:
                observation = self.oca.observe(batch)
                update_time += observation.instrumentation
                overlap = observation.overlap
                deferred = observation.defer_compute and index < num_batches - 1
            affected = batch.unique_vertices()
            if self._pending_affected is not None:
                affected = np.union1d(affected, self._pending_affected)
            covered = self._pending_batches + [batch]
            if deferred:
                self._pending_affected = affected
                self._pending_batches = covered
                compute_time = 0.0
            else:
                compute_time = self._run_compute(batch, affected, covered)
                self._pending_affected = None
                self._pending_batches = []
            batch_metrics = BatchMetrics(
                batch_id=batch.batch_id,
                update_time=update_time,
                compute_time=compute_time,
                strategy=update.strategy,
                deferred=deferred,
                aggregated_batches=0 if deferred else len(covered),
                cad=update.cad,
                overlap=overlap,
            )
            metrics.add(batch_metrics)
            if self.trace is not None:
                from .tracing import TraceEvent

                self.trace.write(
                    TraceEvent.from_metrics(
                        batch_metrics,
                        dataset=self.profile.name,
                        batch_size=self.batch_size,
                        algorithm=self.algorithm,
                        mode=self.engine.policy.value,
                        abr_active=update.abr_active,
                    )
                )
        return metrics
