"""Fig. 20: HAU locality and NoC impact (uk-100K).

Paper: 98-99% of accessed edge-data cachelines hit in the local core tile;
HAU eliminates essentially all of the baseline's remote cache accesses; the
average packet latency increase from task traffic stays within 10%.
"""

from _harness import emit, record
from repro.analysis.report import render_kv, render_table
from repro.datasets.profiles import get_dataset
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.simulator import HAUSimulator

NUM_BATCHES = 15


def run_fig20():
    profile = get_dataset("uk")
    graph = AdjacencyListGraph(profile.num_vertices)
    sim = HAUSimulator()
    result = None
    for batch in profile.generator().batches(100_000, NUM_BATCHES):
        result = sim.simulate_batch(graph.apply_batch(batch))
    return result


def test_fig20_hau_noc(benchmark):
    result = benchmark.pedantic(run_fig20, rounds=1, iterations=1)
    rows = [
        [core, increase]
        for core, increase in sorted(result.packet_latency_increase.items())
    ]
    record(
        "fig20_hau_noc",
        {
            "local_fraction": result.local_fraction,
            "remote_reduction": result.remote_access_reduction,
            "max_latency_increase": max(result.packet_latency_increase.values()),
        },
    )
    emit(
        "fig20_hau_noc",
        render_kv(
            "Fig. 20: locality (uk-100K, mature graph)",
            {
                "% edge-data cachelines from local core tile": 100 * result.local_fraction,
                "% reduction in remote cache accesses vs software": 100
                * result.remote_access_reduction,
                "paper": "98-99% local; latency increase within 10%",
            },
        )
        + "\n\n"
        + render_table(
            ["core", "packet latency increase (%)"],
            rows,
            title="per-core average packet latency increase from task traffic",
        ),
    )
    assert result.local_fraction > 0.96
    assert result.remote_access_reduction > 0.95
    assert all(v < 10.0 for v in result.packet_latency_increase.values())
