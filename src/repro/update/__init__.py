"""Update phase: baseline, RO, USC, CAD/ABR, the strategy-selector
registry and the dispatch engine."""

from .abr import ABRConfig, ABRController, ABRDecision
from .baseline import baseline_update_timing
from .cad import CADResult, cad_from_degrees, cad_from_stats, instrumentation_time
from .engine import UpdateEngine, UpdatePolicy
from .feedback import FeedbackABRController, FeedbackConfig
from .reorder import reorder_update_timing, sort_time
from .result import (
    STRATEGY_BASELINE,
    STRATEGY_HAU,
    STRATEGY_RO,
    STRATEGY_RO_USC,
    UpdateResult,
)
from .strategies import (
    STRATEGY_REGISTRY,
    StrategySelector,
    register_strategy,
    resolve_strategy,
    strategy_names,
)
from .usc import usc_search_savings, usc_update_timing

__all__ = [
    "STRATEGY_REGISTRY",
    "StrategySelector",
    "register_strategy",
    "resolve_strategy",
    "strategy_names",
    "ABRConfig",
    "ABRController",
    "ABRDecision",
    "baseline_update_timing",
    "CADResult",
    "cad_from_degrees",
    "cad_from_stats",
    "instrumentation_time",
    "UpdateEngine",
    "UpdatePolicy",
    "FeedbackABRController",
    "FeedbackConfig",
    "reorder_update_timing",
    "sort_time",
    "STRATEGY_BASELINE",
    "STRATEGY_HAU",
    "STRATEGY_RO",
    "STRATEGY_RO_USC",
    "UpdateResult",
    "usc_search_savings",
    "usc_update_timing",
]
