"""Named execution modes used across experiments and the CLI.

A mode names an update policy; OCA is orthogonal and toggled separately on
the pipeline (the paper evaluates OCA on top of ABR+USC).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..update.engine import UpdatePolicy

__all__ = ["MODES", "resolve_mode"]

#: Mode name -> update policy.  Names follow the paper's terminology:
#: ``dynamic`` is the full input-aware SW/HW proposal, ``sw_only`` and
#: ``hw_only`` are Fig. 15's input-oblivious comparison points.
MODES: dict[str, UpdatePolicy] = {
    "baseline": UpdatePolicy.BASELINE,
    "always_ro": UpdatePolicy.ALWAYS_RO,
    "abr": UpdatePolicy.ABR,
    "abr_usc": UpdatePolicy.ABR_USC,
    "perfect_abr": UpdatePolicy.PERFECT_ABR,
    "perfect_abr_usc": UpdatePolicy.PERFECT_ABR_USC,
    "sw_only": UpdatePolicy.ALWAYS_RO_USC,
    "hw_only": UpdatePolicy.ALWAYS_HAU,
    "dynamic": UpdatePolicy.ABR_USC_HAU,
}


def resolve_mode(name: str) -> UpdatePolicy:
    """Map a mode name to its update policy.

    Raises:
        ConfigurationError: for unknown mode names.
    """
    try:
        return MODES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution mode {name!r}; known: {', '.join(sorted(MODES))}"
        ) from None
