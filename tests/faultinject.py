"""Fault-injection harness for the executor and checkpoint test suites.

Worker processes are forked, so they inherit this module and the parent's
environment; every hook below is module-level (picklable by qualname) and
reads its configuration from environment variables, which lets a test
choose *where* a fault fires without shipping closures into workers:

* ``REPRO_FAULT_MODE`` — ``raise`` | ``typeerror`` | ``exit`` | ``hang`` |
  ``unpicklable`` (what :func:`fault_cell` does at a fault site);
* ``REPRO_FAULT_CELLS`` — comma-separated item values that are fault sites;
* ``REPRO_FAULT_DELAY`` — seconds a fault site sleeps *before* faulting, so
  sibling cells already in flight can finish first (makes "the survivors
  completed" deterministic);
* ``REPRO_FAULT_HANG`` — seconds a ``hang`` fault sleeps (default 60);
* ``REPRO_FAULT_LOG`` — append-only file receiving one line per invocation
  (``O_APPEND`` writes are atomic across processes, so the parent can count
  exactly how many times each item executed);
* ``REPRO_FAULT_DATASET`` — dataset name whose cell :func:`faulty_run_cell`
  kills (for ``run_matrix`` crash tests).

The checkpoint kill tests use :func:`run_checkpointed_and_die` as a
``multiprocessing.Process`` target: it streams a configured run with
periodic checkpoints and hard-kills its own process (``os._exit``) when the
stream cursor reaches a chosen batch — the closest reproducible stand-in
for "the machine died mid-run".
"""

from __future__ import annotations

import os
import time

# Bound at import time, before any test monkeypatches
# ``repro.pipeline.executor._run_cell`` to point at the hooks below —
# otherwise the hooks would recurse into themselves.
from repro.pipeline.executor import _run_cell as _real_run_cell


def _log_invocation(tag) -> None:
    path = os.environ.get("REPRO_FAULT_LOG")
    if not path:
        return
    # One O_APPEND write per invocation: atomic even when many forked
    # workers log concurrently, so line counts are exact.
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, f"{tag}\n".encode())
    finally:
        os.close(fd)


def read_invocations(path) -> list[str]:
    """The logged invocation tags, in write order."""
    try:
        with open(path) as handle:
            return [line.strip() for line in handle if line.strip()]
    except FileNotFoundError:
        return []


def _fault_sites() -> set[str]:
    raw = os.environ.get("REPRO_FAULT_CELLS", "")
    return {site for site in raw.split(",") if site}


def fault_cell(item):
    """Worker function: double the item, unless it is a fault site.

    Fault sites first sleep ``REPRO_FAULT_DELAY`` (letting innocent cells
    drain), then act out ``REPRO_FAULT_MODE``.
    """
    _log_invocation(item)
    if str(item) in _fault_sites():
        delay = float(os.environ.get("REPRO_FAULT_DELAY", "0") or 0)
        if delay:
            time.sleep(delay)
        mode = os.environ.get("REPRO_FAULT_MODE", "raise")
        if mode == "raise":
            raise ValueError(f"injected fault at cell {item}")
        if mode == "typeerror":
            # The pre-fix executor caught TypeError from pool.map and re-ran
            # the whole item list serially; keep this mode distinct so the
            # double-execution regression test exercises exactly that type.
            raise TypeError(f"injected fault at cell {item}")
        if mode == "exit":
            os._exit(1)
        if mode == "hang":
            time.sleep(float(os.environ.get("REPRO_FAULT_HANG", "60") or 60))
        if mode == "unpicklable":
            return lambda: item  # lambdas cannot cross the process boundary
    return item * 2


def faulty_run_cell(config):
    """Stand-in for ``executor._run_cell`` that kills one dataset's worker.

    Logs every invocation by dataset name, then runs the real cell — except
    for ``REPRO_FAULT_DATASET``, whose worker process dies via ``os._exit``
    after ``REPRO_FAULT_DELAY`` seconds.
    """
    _log_invocation(config.dataset)
    if config.dataset == os.environ.get("REPRO_FAULT_DATASET"):
        delay = float(os.environ.get("REPRO_FAULT_DELAY", "0") or 0)
        if delay:
            time.sleep(delay)
        os._exit(1)
    return _real_run_cell(config)


def faulty_raise_run_cell(config):
    """Like :func:`faulty_run_cell` but raises instead of killing the process.

    Safe for ``jobs=1`` tests, where ``os._exit`` would take the test
    process down with it.
    """
    _log_invocation(config.dataset)
    if config.dataset == os.environ.get("REPRO_FAULT_DATASET"):
        raise RuntimeError(f"injected cell failure for {config.dataset}")
    return _real_run_cell(config)


def run_checkpointed_and_die(config_json, checkpoint_dir, every, die_at) -> None:
    """``multiprocessing.Process`` target: checkpointed run that dies mid-stream.

    Builds the pipeline from a JSON-encoded RunConfig and drives the public
    :meth:`StreamingPipeline.step` loop (the documented external-driver
    pattern), checkpointing every ``every`` batches into ``checkpoint_dir``.
    When the stream cursor reaches ``die_at`` the process exits with
    ``os._exit(17)`` — no Python cleanup, no atexit, exactly like a kill -9
    between batches.  Batches ``0..die_at-1`` complete; batch ``die_at``
    never happens.
    """
    from repro.pipeline.config import RunConfig

    config = RunConfig.from_json(config_json)
    pipeline = config.build_pipeline()
    num_batches = config.num_batches
    since = 0
    while pipeline._cursor < num_batches:
        if pipeline._cursor >= die_at:
            os._exit(17)
        pipeline.step(final=pipeline._cursor == num_batches - 1)
        since += 1
        if since >= every and pipeline._cursor < num_batches:
            pipeline.save_checkpoint(checkpoint_dir)
            since = 0
    os._exit(0)  # unreachable when die_at < num_batches
