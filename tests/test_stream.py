"""Batch and EdgeStream containers."""

import numpy as np
import pytest

from conftest import make_batch
from repro.datasets.stream import Batch, EdgeStream, batches_from_arrays
from repro.errors import ConfigurationError


def test_batch_length_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        Batch(0, np.array([1, 2]), np.array([3]), np.array([1.0, 1.0]))


def test_batch_negative_id_rejected():
    with pytest.raises(ConfigurationError):
        make_batch([1], [2], batch_id=-1)


def test_batch_size_and_len():
    b = make_batch([1, 2, 3], [4, 5, 6])
    assert b.size == 3
    assert len(b) == 3


def test_insertions_view_of_insert_only_batch_is_identity():
    b = make_batch([1], [2])
    assert b.insertions is b


def test_insertions_and_deletions_split():
    b = make_batch([1, 2, 3], [4, 5, 6], is_delete=[False, True, False])
    ins, dels = b.insertions, b.deletions
    assert ins.src.tolist() == [1, 3]
    assert dels.src.tolist() == [2]
    assert dels.dst.tolist() == [5]
    # Views keep the original batch id.
    assert ins.batch_id == b.batch_id == dels.batch_id


def test_deletions_of_insert_only_batch_is_empty():
    b = make_batch([1], [2])
    assert b.deletions.size == 0


def test_unique_vertices_covers_both_endpoints():
    b = make_batch([1, 1, 2], [3, 4, 4])
    assert b.unique_vertices().tolist() == [1, 2, 3, 4]


def test_degrees_per_side():
    b = make_batch([1, 1, 2], [5, 5, 5])
    out_v, out_c = b.out_degrees()
    assert dict(zip(out_v.tolist(), out_c.tolist())) == {1: 2, 2: 1}
    in_v, in_c = b.in_degrees()
    assert dict(zip(in_v.tolist(), in_c.tolist())) == {5: 3}
    assert b.max_degree() == 3


def test_max_degree_empty_batch():
    b = make_batch([], [])
    assert b.max_degree() == 0


def test_batches_from_arrays_splits_and_pads():
    src = np.arange(10)
    dst = np.arange(10) + 100
    batches = batches_from_arrays(src, dst, batch_size=4)
    assert [b.size for b in batches] == [4, 4, 2]
    assert [b.batch_id for b in batches] == [0, 1, 2]
    assert batches[2].src.tolist() == [8, 9]
    assert all((b.weight == 1.0).all() for b in batches)


def test_batches_from_arrays_validates():
    with pytest.raises(ConfigurationError):
        batches_from_arrays(np.arange(3), np.arange(2), 2)
    with pytest.raises(ConfigurationError):
        batches_from_arrays(np.arange(3), np.arange(3), 0)
    with pytest.raises(ConfigurationError):
        batches_from_arrays(np.arange(3), np.arange(3), 2, weight=np.ones(2))


def test_edge_stream_counts_and_enforces_size():
    batches = batches_from_arrays(np.arange(6), np.arange(6), 3)
    stream = EdgeStream(batches, batch_size=3, name="s")
    consumed = list(stream)
    assert len(consumed) == 2
    assert stream.batches_emitted == 2
    assert stream.edges_emitted == 6


def test_edge_stream_rejects_oversized_batch():
    big = make_batch([1, 2, 3], [4, 5, 6])
    stream = EdgeStream([big], batch_size=2)
    with pytest.raises(ConfigurationError):
        list(stream)


def test_edge_stream_rejects_bad_batch_size():
    with pytest.raises(ConfigurationError):
        EdgeStream([], batch_size=0)
