"""Single-source shortest paths: static and incremental.

* :class:`StaticSSSP` runs Dijkstra from scratch on a CSR snapshot (the GAP
  reference uses delta-stepping; Dijkstra computes the identical distances,
  and the cost model charges the same per-edge/per-vertex work, so the
  substitution is behaviour-preserving for everything we measure).
* :class:`IncrementalSSSP` keeps distances across batches.  Insertions relax
  incrementally (new edge ``u->v`` can only lower distances downstream of
  ``v``).  Deletions use a KickStarter-style invalidate-and-repair: the
  forward closure of distances that *may* have depended on a deleted edge is
  reset and re-relaxed from its intact in-frontier, guaranteeing exact
  distances after every batch.
"""

from __future__ import annotations

import heapq
import math

from ..datasets.stream import Batch
from ..errors import ConfigurationError
from ..graph.base import DynamicGraph
from ..graph.snapshot import CSRSnapshot
from .result import ComputeCounters

__all__ = ["StaticSSSP", "IncrementalSSSP"]

INF = math.inf


class StaticSSSP:
    """Dijkstra from scratch over a CSR snapshot."""

    def __init__(self, source: int):
        if source < 0:
            raise ConfigurationError(f"source must be >= 0, got {source}")
        self.source = source

    def run(self, snapshot: CSRSnapshot) -> tuple[list[float], ComputeCounters]:
        """Compute distances; returns (dist, work counters)."""
        n = snapshot.num_vertices
        if self.source >= n:
            raise ConfigurationError(
                f"source {self.source} out of range for {n} vertices"
            )
        dist = [INF] * n
        dist[self.source] = 0.0
        heap = [(0.0, self.source)]
        touched_vertices = 0
        touched_edges = 0
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            touched_vertices += 1
            targets, weights = snapshot.out_slice(v)
            touched_edges += len(targets)
            for t, w in zip(targets.tolist(), weights.tolist()):
                nd = d + w
                if nd < dist[t]:
                    dist[t] = nd
                    heapq.heappush(heap, (nd, t))
        counters = ComputeCounters(
            iterations=1,
            touched_vertices=touched_vertices,
            touched_edges=touched_edges,
        )
        return dist, counters


class IncrementalSSSP:
    """Incremental SSSP over a dynamic graph with insert and delete support."""

    def __init__(self, graph: DynamicGraph, source: int):
        if not 0 <= source < graph.num_vertices:
            raise ConfigurationError(
                f"source {source} out of range for {graph.num_vertices} vertices"
            )
        self.graph = graph
        self.source = source
        self.dist: list[float] = [INF] * graph.num_vertices
        self.dist[source] = 0.0

    # -- internals ----------------------------------------------------------
    def _relax_from(self, heap: list) -> tuple[int, int]:
        """Dijkstra main loop from a pre-seeded heap."""
        dist = self.dist
        out_adj, __ = self.graph.adjacency_views()
        empty: dict[int, float] = {}
        touched_vertices = 0
        touched_edges = 0
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            touched_vertices += 1
            out = out_adj.get(v, empty)
            touched_edges += len(out)
            for t, w in out.items():
                nd = d + w
                if nd < dist[t]:
                    dist[t] = nd
                    heapq.heappush(heap, (nd, t))
        return touched_vertices, touched_edges

    def _invalidate_closure(self, roots: set[int]) -> tuple[set[int], int]:
        """Forward closure of distances that may depend on ``roots``.

        A child ``c`` is invalidated when its current distance is explained
        by an invalidated parent (``dist[c] == dist[p] + w``) — its shortest
        path may run through the deleted region.
        """
        dist = self.dist
        invalid = {v for v in roots if dist[v] < INF and v != self.source}
        queue = list(invalid)
        touched_edges = 0
        while queue:
            v = queue.pop()
            out = self.graph.out_neighbors(v)
            touched_edges += len(out)
            for c, w in out.items():
                if c in invalid or c == self.source:
                    continue
                if dist[c] == dist[v] + w:
                    invalid.add(c)
                    queue.append(c)
        return invalid, touched_edges

    # -- public API -----------------------------------------------------------
    def on_batch(self, batch: Batch) -> ComputeCounters:
        """Update distances for one applied batch (see :meth:`on_batches`)."""
        return self.on_batches([batch])

    def on_batches(self, batches: list[Batch]) -> ComputeCounters:
        """Update distances after ``batches`` have been applied to the graph.

        Must be called after :meth:`DynamicGraph.apply_batch` so the adjacency
        reflects the batches (the paper's update-then-compute pipeline).
        Passing several batches runs a *single* aggregated relaxation pass
        over their union — the work OCA's aggregation saves when consecutive
        batches touch overlapping regions.
        """
        dist = self.dist
        touched_vertices = 0
        touched_edges = 0
        deleted_roots: set[int] = set()
        for batch in batches:
            deletions = batch.deletions
            if deletions.size:
                deleted_roots.update(deletions.dst.tolist())
        if deleted_roots:
            roots = deleted_roots
            invalid, closure_edges = self._invalidate_closure(roots)
            touched_edges += closure_edges
            for v in invalid:
                dist[v] = INF
            heap = []
            for v in invalid:
                best = INF
                in_nbrs = self.graph.in_neighbors(v)
                touched_edges += len(in_nbrs)
                for u, w in in_nbrs.items():
                    if u not in invalid and dist[u] + w < best:
                        best = dist[u] + w
                if best < INF:
                    dist[v] = best
                    heapq.heappush(heap, (best, v))
            touched_vertices += len(invalid)
            tv, te = self._relax_from(heap)
            touched_vertices += tv
            touched_edges += te
        heap = []
        for batch in batches:
            inserts = batch.insertions
            for u, v in zip(inserts.src.tolist(), inserts.dst.tolist()):
                # The applied weight may differ from this tuple's (duplicates
                # refresh), so read the authoritative weight from the graph.
                current = self.graph.out_neighbors(u).get(v)
                if current is None:
                    continue
                nd = dist[u] + current
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
            touched_edges += inserts.size
        tv, te = self._relax_from(heap)
        touched_vertices += tv
        touched_edges += te
        return ComputeCounters(
            iterations=1,
            touched_vertices=touched_vertices,
            touched_edges=touched_edges,
        )
