"""Checkpoint/resume tests: atomic persistence, validation, bit-identity.

The load-bearing property is the acceptance criterion: kill a checkpointed
run mid-stream, resume from the newest checkpoint in a fresh process-like
pipeline, and the final :class:`RunMetrics` — exact float comparisons, no
tolerance — equal the uninterrupted run's.  That holds because stream
generation is a pure function of the cursor and every piece of adaptive
state (graph, ABR, OCA, incremental compute engines, metrics) travels in
the checkpoint payload.
"""

import dataclasses
import multiprocessing

import pytest

import faultinject
from repro.errors import CheckpointError
from repro.pipeline import PipelineCheckpoint, RunConfig, latest_checkpoint
from repro.pipeline.checkpoint import checkpoint_path

pytestmark = pytest.mark.faults

CONFIG = RunConfig(
    dataset="wiki", batch_size=200, num_batches=12,
    algorithm="pr", mode="dynamic", use_oca=True,
)


def _run_uninterrupted(config=CONFIG):
    return config.build_pipeline().run(config.num_batches)


# -- file format ------------------------------------------------------------
def test_checkpoint_file_round_trip(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(5)
    checkpoint = PipelineCheckpoint.capture(pipeline)
    path = checkpoint.save(tmp_path / "one.ckpt")
    loaded = PipelineCheckpoint.load(path)
    assert loaded.cursor == 5
    assert loaded.batches_done == 5
    assert loaded.config == CONFIG.to_dict()
    assert loaded.payload == checkpoint.payload
    assert loaded.summary["dataset"] == "wiki"
    assert loaded.summary["abr"]["decisions_made"] >= 1


def test_checkpoint_summary_is_json_header(tmp_path):
    """The header line is human-readable JSON (inspectable sans unpickling)."""
    import json

    pipeline = CONFIG.build_pipeline()
    pipeline.run(3)
    path = PipelineCheckpoint.capture(pipeline).save(tmp_path / "one.ckpt")
    with open(path, "rb") as handle:
        assert handle.readline() == b"REPRO-CKPT\n"
        header = json.loads(handle.readline())
    assert header["cursor"] == 3
    assert header["config"]["dataset"] == "wiki"


def test_corrupt_payload_rejected(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(3)
    path = PipelineCheckpoint.capture(pipeline).save(tmp_path / "one.ckpt")
    blob = bytearray(path.read_bytes())
    blob[-10] ^= 0xFF  # flip a payload bit; the CRC must catch it
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError, match="checksum"):
        PipelineCheckpoint.load(path)


def test_truncated_file_rejected(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(3)
    path = PipelineCheckpoint.capture(pipeline).save(tmp_path / "one.ckpt")
    path.write_bytes(path.read_bytes()[:-40])
    with pytest.raises(CheckpointError, match="truncated"):
        PipelineCheckpoint.load(path)


def test_not_a_checkpoint_rejected(tmp_path):
    path = tmp_path / "bogus.ckpt"
    path.write_bytes(b"hello world\n" * 10)
    with pytest.raises(CheckpointError, match="magic"):
        PipelineCheckpoint.load(path)


def test_latest_checkpoint_skips_corrupt_newest(tmp_path):
    """A file corrupted (or torn) after rename falls back to the previous one."""
    pipeline = CONFIG.build_pipeline()
    pipeline.run(3)
    pipeline.save_checkpoint(tmp_path)
    pipeline.run(6, resume_from=PipelineCheckpoint.capture(pipeline))
    pipeline.save_checkpoint(tmp_path)
    newest = checkpoint_path(tmp_path, 6)
    blob = bytearray(newest.read_bytes())
    blob[-1] ^= 0xFF
    newest.write_bytes(bytes(blob))
    found = latest_checkpoint(tmp_path)
    assert found is not None
    checkpoint, path = found
    assert checkpoint.cursor == 3
    assert path == checkpoint_path(tmp_path, 3)


def test_latest_checkpoint_empty_dir(tmp_path):
    assert latest_checkpoint(tmp_path) is None
    assert latest_checkpoint(tmp_path / "missing") is None


def test_retention_prunes_old_checkpoints(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(
        10, checkpoint_dir=tmp_path, checkpoint_every=2, checkpoint_keep=2
    )
    names = sorted(p.name for p in tmp_path.glob("ckpt-*.ckpt"))
    assert names == ["ckpt-00000006.ckpt", "ckpt-00000008.ckpt"]


def _checkpoint_at_cursor(cursor):
    """A valid checkpoint object whose header claims stream ``cursor``."""
    pipeline = CONFIG.build_pipeline()
    pipeline.run(2)
    base = PipelineCheckpoint.capture(pipeline)
    return dataclasses.replace(base, cursor=cursor)


def test_latest_checkpoint_numeric_past_padding_boundary(tmp_path):
    """Cursor ordering is numeric: a 9-digit cursor sorts lexicographically
    *before* 8-digit ones (``"1..." < "9..."``), which used to make resume
    pick the stale checkpoint once a stream crossed 10**8 edges."""
    old = _checkpoint_at_cursor(99_999_999)
    new = dataclasses.replace(old, cursor=100_000_000)
    old.save_to_dir(tmp_path)
    new.save_to_dir(tmp_path)
    found = latest_checkpoint(tmp_path)
    assert found is not None
    checkpoint, path = found
    assert checkpoint.cursor == 100_000_000
    assert path.name == "ckpt-100000000.ckpt"


def test_retention_past_padding_boundary_keeps_newest(tmp_path):
    """keep-pruning must never delete the numerically newest checkpoint,
    even when its longer name sorts first textually."""
    base = _checkpoint_at_cursor(99_999_998)
    for cursor in (99_999_998, 99_999_999, 100_000_000):
        dataclasses.replace(base, cursor=cursor).save_to_dir(tmp_path, keep=2)
    names = sorted(p.name for p in tmp_path.glob("ckpt-*.ckpt"))
    assert names == ["ckpt-100000000.ckpt", "ckpt-99999999.ckpt"]


def test_retention_never_prunes_non_canonical_names(tmp_path):
    """Files matching the glob but without a parseable cursor are not ours
    to age out; they also stay loadable (after all canonical candidates)."""
    base = _checkpoint_at_cursor(4)
    foreign = tmp_path / "ckpt-manual.ckpt"
    base.save(foreign)
    for cursor in (5, 6, 7):
        dataclasses.replace(base, cursor=cursor).save_to_dir(tmp_path, keep=1)
    names = sorted(p.name for p in tmp_path.glob("ckpt-*.ckpt"))
    assert names == ["ckpt-00000007.ckpt", "ckpt-manual.ckpt"]
    checkpoint, path = latest_checkpoint(tmp_path)
    assert path.name == "ckpt-00000007.ckpt"
    for canonical in tmp_path.glob("ckpt-0*.ckpt"):
        canonical.unlink()
    checkpoint, path = latest_checkpoint(tmp_path)
    assert path == foreign and checkpoint.cursor == 4


# -- validation -------------------------------------------------------------
def test_config_mismatch_rejected(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(4)
    checkpoint = PipelineCheckpoint.capture(pipeline)
    other = dataclasses.replace(CONFIG, batch_size=500).build_pipeline()
    with pytest.raises(CheckpointError, match="different run config"):
        checkpoint.restore(other)


def test_cursor_outside_window_rejected(tmp_path):
    pipeline = CONFIG.build_pipeline()
    pipeline.run(8)
    checkpoint = PipelineCheckpoint.capture(pipeline)
    fresh = CONFIG.build_pipeline()
    with pytest.raises(CheckpointError, match="outside the requested"):
        fresh.run(4, resume_from=checkpoint)


# -- resume bit-identity ----------------------------------------------------
def test_resume_bit_identical_in_process(tmp_path):
    expected = _run_uninterrupted()
    interrupted = CONFIG.build_pipeline()
    interrupted.run(7, checkpoint_dir=tmp_path, checkpoint_every=3)
    checkpoint, _ = latest_checkpoint(tmp_path)
    assert checkpoint.cursor == 6
    resumed = CONFIG.build_pipeline()
    metrics = resumed.run(CONFIG.num_batches, resume_from=checkpoint)
    assert metrics == expected  # frozen dataclass equality: exact floats


@pytest.mark.parametrize("algorithm,mode,use_oca", [
    ("pr", "sw_only", False),
    ("sssp", "abr_usc", False),
    ("none", "dynamic", True),
])
def test_resume_bit_identical_across_cells(tmp_path, algorithm, mode, use_oca):
    config = dataclasses.replace(
        CONFIG, algorithm=algorithm, mode=mode, use_oca=use_oca, num_batches=10
    )
    expected = _run_uninterrupted(config)
    pipeline = config.build_pipeline()
    pipeline.run(5)
    checkpoint = PipelineCheckpoint.capture(pipeline)
    resumed = config.build_pipeline()
    assert resumed.run(10, resume_from=checkpoint) == expected


def test_checkpoint_telemetry_counters(tmp_path):
    config = dataclasses.replace(CONFIG, telemetry="full")
    pipeline = config.build_pipeline()
    pipeline.run(6, checkpoint_dir=tmp_path, checkpoint_every=2)
    snapshot = pipeline.telemetry.snapshot()
    assert snapshot.counters["checkpoint.saves"] == 2.0  # after batch 2 and 4
    assert snapshot.counters["checkpoint.bytes"] > 0
    resumed = config.build_pipeline()
    resumed.run(6, resume_from=latest_checkpoint(tmp_path)[0])
    snapshot = resumed.telemetry.snapshot()
    assert snapshot.counters["checkpoint.resumes"] == 1.0
    assert any(d.kind == "checkpoint" for d in snapshot.decisions)


# -- the acceptance criterion: kill, resume, compare ------------------------
@pytest.mark.parametrize("adjacency", ["dict", "hybrid"])
def test_kill_and_resume_bit_identical(tmp_path, adjacency):
    """Hard-kill a checkpointed run mid-stream (os._exit in a child
    process), resume from the newest on-disk checkpoint in a fresh
    pipeline, and the final RunMetrics equal the uninterrupted run's.
    Runs under both adjacency formats: the hybrid graph's pooled arrays
    and hub dicts must survive the pickle round trip mid-promotion."""
    config = dataclasses.replace(CONFIG, adjacency=adjacency)
    expected = _run_uninterrupted(config)

    checkpoint_dir = tmp_path / "ckpts"
    child = multiprocessing.Process(
        target=faultinject.run_checkpointed_and_die,
        args=(config.to_json(), str(checkpoint_dir), 2, 7),
    )
    child.start()
    child.join(timeout=120)
    assert child.exitcode == 17  # died at batch 7, as injected

    found = latest_checkpoint(checkpoint_dir)
    assert found is not None
    checkpoint, _ = found
    assert checkpoint.cursor == 6  # checkpoints at 2, 4, 6; died before 7

    resumed = config.build_pipeline()
    metrics = resumed.run(config.num_batches, resume_from=checkpoint)
    assert metrics == expected
    assert metrics.batches == expected.batches  # per-batch rows, exact


# -- per-cell checkpoint namespacing in run_matrix --------------------------
def test_run_matrix_namespaces_checkpoints_per_cell(tmp_path):
    """Every matrix cell checkpoints into its own subdirectory; results
    match the checkpoint-free run exactly, and no cell's retention pass
    can see (let alone prune) another cell's files."""
    from repro.pipeline.executor import run_matrix

    configs = [
        dataclasses.replace(CONFIG, num_batches=6),
        dataclasses.replace(CONFIG, batch_size=300, num_batches=6),
    ]
    plain = run_matrix(configs, jobs=1)
    root = tmp_path / "trials"
    checkpointed = run_matrix(
        configs,
        jobs=1,
        checkpoint_root=str(root),
        checkpoint_every=2,
        checkpoint_names=["trial-000000", "trial-000001"],
    )
    assert checkpointed == plain
    for name in ("trial-000000", "trial-000001"):
        found = latest_checkpoint(root / name)
        assert found is not None
        assert found[0].cursor == 6


def test_run_matrix_two_concurrent_writers_keep_pruning(tmp_path):
    """Two cells checkpointing concurrently (jobs=2, keep=1, every batch)
    under one root each end with their *own* newest checkpoint alive —
    the failure mode of a shared directory is one writer's keep-pruning
    deleting the other's live checkpoint."""
    from repro.pipeline.executor import run_matrix

    configs = [
        dataclasses.replace(CONFIG, num_batches=8),
        dataclasses.replace(CONFIG, seed=11, num_batches=8),
    ]
    root = tmp_path / "shared-root"
    results = run_matrix(
        configs,
        jobs=2,
        checkpoint_root=str(root),
        checkpoint_every=1,
        checkpoint_keep=1,
    )
    assert all(r.ok for r in results)
    for index in range(2):
        directory = root / f"cell-{index:04d}"
        files = sorted(directory.glob("ckpt-*.ckpt"))
        assert len(files) == 1  # keep=1 honoured within the namespace
        checkpoint, _ = latest_checkpoint(directory)
        assert checkpoint.cursor == 8  # the newest state survived


def test_run_matrix_auto_resumes_from_namespace(tmp_path):
    """A rerun over an already-checkpointed root restores each cell's
    final state instead of recomputing, and returns identical results."""
    from repro.pipeline.executor import run_matrix

    configs = [dataclasses.replace(CONFIG, num_batches=6)]
    root = tmp_path / "resume-root"
    first = run_matrix(
        configs, jobs=1, checkpoint_root=str(root), checkpoint_every=2
    )
    # The rerun resumes from cursor 6 == num_batches: zero batches execute,
    # and the restored metrics reproduce the first run bit-identically.
    again = run_matrix(
        configs, jobs=1, checkpoint_root=str(root), checkpoint_every=2
    )
    assert again == first


def test_run_matrix_rejects_duplicate_checkpoint_names(tmp_path):
    from repro.errors import ConfigurationError
    from repro.pipeline.executor import run_matrix

    with pytest.raises(ConfigurationError, match="unique"):
        run_matrix(
            [CONFIG, CONFIG],
            checkpoint_root=str(tmp_path),
            checkpoint_names=["same", "same"],
        )


def test_cli_checkpoint_resume(tmp_path, capsys):
    """`repro run --checkpoint DIR` resumes automatically and reproduces
    the uninterrupted run's printed totals."""
    from repro.cli import main

    args = [
        "run", "wiki", "--batch-size", "200", "--num-batches", "10",
        "--checkpoint", str(tmp_path / "ckpts"), "--every", "3",
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "resuming from" in second
    # Identical metrics block (strip the resume banner line).
    body = "\n".join(
        line for line in second.splitlines() if not line.startswith("resuming")
    )
    assert body.strip() == first.strip()
