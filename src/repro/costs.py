"""Modeled-time cost parameters for the software execution model.

Why modeled time
----------------
Every result in the paper is a *ratio of times*: update time, compute time, or
simulated cycles, measured on a 112-thread Xeon or on the Sniper simulator.
Pure-Python wall-clock cannot reproduce any of those trade-offs — a GIL-bound
runtime has no real lock contention to eliminate and no parallel sort to pay
for.  The library therefore performs the *actual* graph mutations (so results
are functionally correct) while accounting **modeled time** in abstract "time
units" (tu, roughly a nanosecond at the paper's 2.5 GHz clock).  All constants
live here, in one documented dataclass, so the model is auditable and
re-calibratable.

The model captures exactly the mechanisms Sections 3.2 and 4.1-4.4 of the
paper reason about:

* **Baseline (edge-centric, locked)** — each edge update pays dispatch, a lock
  acquisition, a duplicate-check scan over the vertex's current edge array,
  and an insert (or weight update).  When several threads update the same
  vertex, their critical sections serialize: the per-vertex chain includes
  every scan, plus a contention penalty (cache-line ping-pong, handoff) and
  wasted spin time that inflates total work.  Because updaters are different
  cores, every scan streams *cold/remote* data.
* **RO (reordered, vertex-centric)** — pays two parallel stable sorts and a
  per-vertex scheduling cost, but eliminates locks entirely, and because one
  thread repeatedly scans the same vertex's array, the second and later scans
  are *cache-warm* (cheaper per element).
* **USC** — replaces the k per-edge scans of a vertex with one hash-table
  build plus a *single* scan whose per-element cost includes the hash probe.
* **ABR instrumentation** — cheap per-edge counting when the batch is already
  reordered, an expensive concurrent-hash-map walk when it is not
  (Fig. 16(a): ~0.90x vs ~0.54x slowdown of the instrumented batch).

Makespan on a machine with ``W`` worker threads is::

    makespan = spawn + serial_prefix + max(total_work / (W * eff), critical_path)

where the critical path is the longest per-vertex serialized chain.  See
:mod:`repro.exec_model.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .errors import ConfigurationError

__all__ = ["CostParameters", "ComputeCostParameters"]


@dataclass(frozen=True)
class CostParameters:
    """Constants of the software update-phase cost model (time units).

    The default values were calibrated (see ``tests/test_calibration.py`` and
    EXPERIMENTS.md) so that the reorder-friendly / reorder-adverse crossover
    sits where the paper's ABR parameters (lambda=256, TH=465) put it, and so
    that headline ratios land in the paper's bands (wiki-100K RO ~2.7x,
    uk/lj-style RO ~0.7x, ABR+USC up to ~20x on the most clusterable inputs).
    """

    #: Per-edge loop/dispatch overhead: reading the tuple, locating the vertex
    #: record, bounds checks.
    dispatch: float = 6.0

    #: Uncontended lock acquire+release fast path (single CAS pair).
    lock_base: float = 18.0

    #: Extra handoff cost paid by every *contended* acquisition (the lock
    #: cache line ping-pongs between the previous and next owner).
    lock_handoff: float = 55.0

    #: Fraction of the previous holder's critical section that a contended
    #: acquirer additionally wastes on the critical path (imperfect handoff,
    #: back-off).  Applied per contended acquisition.
    contention_cp_factor: float = 0.6

    #: Fraction of the previous holder's critical section burned as wasted
    #: spin *work* by a blocked thread (inflates total work, not only the
    #: critical path).
    contention_work_factor: float = 0.9

    #: Duplicate-check scan cost per element when the scanning thread is cold
    #: (baseline: the vertex's edge array was last touched by another core,
    #: so the scan streams remote/invalidated lines).
    scan_cold: float = 2.2

    #: Scan cost per element when cache-warm (RO: the same thread re-scans an
    #: array it just touched).
    scan_warm_factor: float = 0.45

    #: Appending a new edge entry (amortized realloc included).
    insert: float = 12.0

    #: Updating the weight of an existing (duplicate) edge.
    weight_update: float = 8.0

    #: Deleting one edge from one direction's adjacency: locating the entry
    #: (deletions only target existing edges, so the scan finds it ~halfway)
    #: and unlinking it.  Deletions run after all insertions (§4.4.3).
    delete_op: float = 45.0

    #: Parallel stable sort: cost per element per log2 level, already
    #: including the parallel efficiency loss of merge phases.
    sort_per_elem_level: float = 1.9

    #: One-time setup of a reordering pass (buffer allocation, task lists).
    reorder_setup: float = 4000.0

    #: Dynamic-scheduling cost per vertex task in the reordered update
    #: (OpenMP dynamic chunk dispatch, task-list pointer chasing).
    task_sched: float = 21.0

    #: USC: inserting one <target, weight> pair into the small per-vertex
    #: hash table (Fig. 8 step 1).
    usc_hash_insert: float = 7.0

    #: USC: per-element cost of the single coalesced scan, *including* the
    #: hash-table probe for each neighbor id (Fig. 8 step 2).
    usc_scan_elem: float = 2.9

    #: ABR instrumentation per edge when the batch is reordered (plain
    #: counters piggybacked on the update walk; Fig. 16(a) "reordered").
    abr_instr_reordered: float = 15.0

    #: ABR instrumentation per edge when the batch is *not* reordered
    #: (concurrent hash map population; Fig. 16(a) "non-reordered").
    abr_instr_hashmap: float = 66.0

    #: OCA bookkeeping per edge (latest_bid read/write + two counter
    #: increments on ABR-active batches); Fig. 16(b).
    oca_instr_per_edge: float = 0.35

    #: Fixed cost of spawning/joining the worker team for an update phase.
    phase_spawn: float = 9000.0

    #: Parallel efficiency of the worker pool (memory-bandwidth sharing,
    #: dynamic-scheduling imbalance).
    parallel_efficiency: float = 0.72

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not value > 0:
                raise ConfigurationError(
                    f"cost parameter {f.name!r} must be positive, got {value!r}"
                )
        if not 0 < self.parallel_efficiency <= 1:
            raise ConfigurationError(
                "parallel_efficiency must be in (0, 1], got "
                f"{self.parallel_efficiency!r}"
            )
        if not 0 < self.scan_warm_factor <= 1:
            raise ConfigurationError(
                "scan_warm_factor must be in (0, 1], got "
                f"{self.scan_warm_factor!r}"
            )

    @property
    def scan_warm(self) -> float:
        """Per-element scan cost when cache-warm."""
        return self.scan_cold * self.scan_warm_factor


@dataclass(frozen=True)
class ComputeCostParameters:
    """Constants of the compute-phase (analytics) cost model (time units).

    The compute engines run the real algorithms (incremental/static PR and
    SSSP); these constants convert their observed work counters (rounds,
    touched vertices, traversed edges) into modeled time.  Calibrated so that
    updates take ~19% of total time under the baseline across the workload
    matrix (Fig. 6) and OCA aggregation saves round-scheduling plus redundant
    touched-region work (Fig. 12/14).
    """

    #: Fixed cost of scheduling one computation round: launching the worker
    #: team, building the frontier, barrier synchronization.
    round_sched: float = 60000.0

    #: Per-iteration barrier/bookkeeping inside an algorithm.
    iteration_overhead: float = 2500.0

    #: Processing one active vertex (read state, write state).
    per_vertex: float = 14.0

    #: Traversing one edge (gather or scatter).
    per_edge: float = 7.0

    #: Parallel efficiency of the compute worker pool.
    parallel_efficiency: float = 0.80

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not value > 0:
                raise ConfigurationError(
                    f"compute cost parameter {f.name!r} must be positive, got {value!r}"
                )
        if not 0 < self.parallel_efficiency <= 1:
            raise ConfigurationError(
                "parallel_efficiency must be in (0, 1], got "
                f"{self.parallel_efficiency!r}"
            )


DEFAULT_COSTS = CostParameters()
DEFAULT_COMPUTE_COSTS = ComputeCostParameters()
