"""Fig. 3: RO update/overall speedup and max batch degree, full matrix.

Paper: topcats/talk/berkstan/yt/superuser/wiki gain up to ~3x at 100K/500K
(talk/yt/wiki also at 10K); everything else — and every dataset at 100/1K —
degrades.  The right axis correlates the speedups with max in/out degree.
"""

from _harness import CellRun, emit, num_batches
from repro.analysis.report import render_table
from repro.datasets.profiles import BATCH_SIZES, DATASETS


def run_fig03():
    rows = []
    cells = {}
    for name, profile in DATASETS.items():
        for batch_size in BATCH_SIZES:
            cell = CellRun(profile, batch_size, with_compute=(batch_size >= 10_000))
            cells[(name, batch_size)] = cell
            overall = (
                cell.overall(cell.baseline_update) / cell.overall(cell.ro_update)
                if cell.compute
                else float("nan")
            )
            rows.append(
                [
                    name,
                    batch_size,
                    cell.baseline_update / cell.ro_update,
                    overall,
                    cell.max_degree,
                    "friendly" if profile.is_friendly(batch_size) else "adverse",
                ]
            )
    return rows, cells


def test_fig03_ro_characterization(benchmark):
    rows, cells = benchmark.pedantic(run_fig03, rounds=1, iterations=1)
    emit(
        "fig03_ro_characterization",
        render_table(
            ["dataset", "batch size", "RO update speedup",
             "RO overall speedup", "max in/out degree", "paper category"],
            rows,
            title="Fig. 3: input sensitivity of batch reordering (RO)",
        ),
    )
    by_cell = {(r[0], r[1]): r for r in rows}
    # Friendly cells gain, adverse cells lose — the paper's headline split.
    for (name, size), row in by_cell.items():
        if DATASETS[name].is_friendly(size):
            assert row[2] > 1.0, (name, size)
        elif size in (100, 1_000):
            assert row[2] < 1.0, (name, size)
    # Degree correlation (right axis): friendly@100K degrees dwarf adverse.
    friendly_degrees = [
        row[4] for (n, s), row in by_cell.items()
        if s == 100_000 and DATASETS[n].is_friendly(s)
    ]
    adverse_degrees = [
        row[4] for (n, s), row in by_cell.items()
        if s == 100_000 and not DATASETS[n].is_friendly(s)
    ]
    assert min(friendly_degrees) > max(adverse_degrees)
