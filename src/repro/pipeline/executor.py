"""Parallel execution of workload-matrix cells.

The evaluation matrix (``pipeline.workloads``) is embarrassingly parallel:
every cell builds its own graph from its own seeded stream, so cells can run
in worker processes with no shared state.  :func:`run_matrix` fans cells out
over a ``ProcessPoolExecutor`` while guaranteeing:

* **determinism** — each cell derives its stream from its spec's seed, and
  results are returned in submission order (``Executor.map`` preserves
  ordering), so ``jobs=N`` output is byte-identical to ``jobs=1``;
* **graceful degradation** — ``jobs=1`` never creates a pool, and any pool
  failure (unpicklable payloads, a broken worker, a sandbox that forbids
  forking) falls back to in-process serial execution of the remaining work.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from ..telemetry.core import TelemetrySnapshot, merge_snapshots

__all__ = [
    "CellSpec",
    "CellResult",
    "run_matrix",
    "map_cells",
    "default_jobs",
    "merged_telemetry",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class CellSpec:
    """Everything needed to run one pipeline cell in any process.

    Plain strings/ints only, so specs pickle cheaply into workers.

    Attributes:
        dataset: dataset profile name.
        batch_size: edges per batch.
        algorithm: one of :data:`~repro.pipeline.runner.ALGORITHMS`.
        mode: update-policy mode name (see :data:`~repro.pipeline.modes.MODES`).
        use_oca: enable overlap-based compute aggregation.
        num_batches: batches to stream (None = the profile's full stream).
        seed: stream generator seed (per-cell, so every cell is
            reproducible in isolation).
    """

    dataset: str
    batch_size: int
    algorithm: str = "pr"
    mode: str = "abr_usc"
    use_oca: bool = False
    num_batches: int | None = None
    seed: int = 7


@dataclass(frozen=True)
class CellResult:
    """Summary of one executed cell (picklable, plain values only).

    Attributes:
        telemetry: the cell pipeline's telemetry snapshot, when the run was
            instrumented (``telemetry != "off"``); None otherwise.  Frozen
            plain data, so it ships back from worker processes unchanged.
    """

    spec: CellSpec
    num_batches: int
    update_time: float
    compute_time: float
    strategies: tuple[tuple[str, int], ...]
    telemetry: TelemetrySnapshot | None = field(default=None, compare=False)

    @property
    def total_time(self) -> float:
        return self.update_time + self.compute_time


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` (all cores)."""
    return os.cpu_count() or 1


def _run_cell(config) -> CellResult:
    """Execute one configured run start to finish (inside a worker process).

    Workers receive a pickled :class:`~repro.pipeline.config.RunConfig` and
    construct their pipeline through its factory, so the worker-side build
    is exactly the serial one.
    """
    pipeline = config.build_pipeline()
    metrics = pipeline.run(config.num_batches)
    return CellResult(
        spec=config.to_cell_spec(),
        num_batches=metrics.num_batches,
        update_time=metrics.total_update_time,
        compute_time=metrics.total_compute_time,
        strategies=tuple(sorted(metrics.strategies_used().items())),
        telemetry=(
            pipeline.telemetry.snapshot() if pipeline.telemetry.enabled else None
        ),
    )


def map_cells(fn: Callable[[T], R], items: Sequence[T], jobs: int = 1) -> list[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``fn`` must be a module-level callable and items/results picklable when
    ``jobs > 1``.  Results always come back in input order.  Any pool-level
    failure (fork refused, worker died, pickling error) degrades to running
    the whole batch serially in-process — correctness over speed.
    """
    items = list(items)
    if jobs <= 0:
        jobs = default_jobs()
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(fn, items, chunksize=1))
    except (BrokenProcessPool, OSError, pickle.PicklingError, TypeError, AttributeError):
        # The pool failed (worker died, fork refused by the sandbox, or the
        # payload would not pickle); the serial path computes the same
        # results.  Genuine errors raised by ``fn`` itself propagate from
        # the retry exactly as they would have serially.
        return [fn(item) for item in items]


def run_matrix(specs: Sequence[CellSpec], jobs: int = 1) -> list[CellResult]:
    """Run workload cells, ``jobs`` at a time; results in spec order.

    Accepts :class:`CellSpec` rows (lifted into
    :class:`~repro.pipeline.config.RunConfig` for the workers) or
    ready-made ``RunConfig`` objects.  ``jobs=1`` runs serially in-process;
    ``jobs=0`` uses every core.  Each cell is self-seeded via its config,
    so the result list is identical regardless of ``jobs``.
    """
    from .config import RunConfig

    configs = [
        spec if isinstance(spec, RunConfig) else RunConfig.from_cell_spec(spec)
        for spec in specs
    ]
    return map_cells(_run_cell, configs, jobs=jobs)


def merged_telemetry(results: Sequence[CellResult]) -> TelemetrySnapshot | None:
    """Deterministically merge the cells' telemetry snapshots.

    Snapshots merge in result (= submission) order — counters sum, spans
    and histograms pool, decision ledgers concatenate — so the aggregate
    is identical for ``jobs=1`` and ``jobs=N``.  Returns None when no cell
    was instrumented.
    """
    snapshots = [r.telemetry for r in results if r.telemetry is not None]
    return merge_snapshots(snapshots) if snapshots else None
