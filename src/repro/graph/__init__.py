"""Dynamic graph data structures and batch statistics."""

from .base import BatchUpdateStats, DirectionStats, DynamicGraph
from .adjacency_list import AdjacencyListGraph
from .degree_aware_hash import DegreeAwareHashGraph
from .edge_log import EdgeLogGraph
from .snapshot import CSRSnapshot, take_snapshot
from .stats import (
    FIG5_BUCKETS,
    DegreeMix,
    degree_counts,
    degree_histogram,
    degree_mix,
    top_degrees,
)

__all__ = [
    "BatchUpdateStats",
    "DirectionStats",
    "DynamicGraph",
    "AdjacencyListGraph",
    "DegreeAwareHashGraph",
    "EdgeLogGraph",
    "CSRSnapshot",
    "take_snapshot",
    "FIG5_BUCKETS",
    "DegreeMix",
    "degree_counts",
    "degree_histogram",
    "degree_mix",
    "top_degrees",
]
