"""Batch degree statistics (Figs. 3/4/5 inputs)."""

import numpy as np
import pytest

from conftest import make_batch
from repro.errors import AnalysisError
from repro.graph.stats import (
    FIG5_BUCKETS,
    degree_counts,
    degree_histogram,
    degree_mix,
    top_degrees,
)


def test_degree_counts_sides():
    b = make_batch([1, 1, 2], [5, 5, 6])
    assert sorted(degree_counts(b, "out").tolist()) == [1, 2]
    assert sorted(degree_counts(b, "in").tolist()) == [1, 2]
    assert sorted(degree_counts(b, "both").tolist()) == [1, 1, 2, 2]


def test_degree_counts_bad_side():
    with pytest.raises(AnalysisError):
        degree_counts(make_batch([1], [2]), "sideways")


def test_degree_histogram():
    b = make_batch([1, 1, 2, 3], [9, 9, 9, 9])
    degrees, counts = degree_histogram(b, "out")
    assert degrees.tolist() == [1, 2]
    assert counts.tolist() == [2, 1]
    degrees, counts = degree_histogram(b, "in")
    assert degrees.tolist() == [4]
    assert counts.tolist() == [1]


def test_top_degrees_sorted_descending():
    b = make_batch([1] * 5 + [2] * 3 + [3], [0] * 9)
    top = top_degrees(b, n=2, side="out")
    assert top.tolist() == [5, 3]


def test_top_degrees_empty():
    assert len(top_degrees(make_batch([], []), 5)) == 0


def test_degree_mix_percentages_sum_to_100():
    b = make_batch(list(range(10)) + [0] * 5, [20] * 15)
    mix = degree_mix(b, side="out")
    assert sum(mix.edge_percentages) == pytest.approx(100.0)
    assert len(mix.bucket_labels) == len(FIG5_BUCKETS) + 1  # plus overflow


def test_degree_mix_buckets_attribute_edges():
    # Vertex 0 emits 6 edges (bucket 5-10), vertices 1..3 emit 1 each.
    b = make_batch([0] * 6 + [1, 2, 3], [9] * 9)
    mix = degree_mix(b, side="out")
    by_label = dict(zip(mix.bucket_labels, mix.edge_percentages))
    assert by_label["1"] == pytest.approx(100.0 * 3 / 9)
    assert by_label["5-10"] == pytest.approx(100.0 * 6 / 9)


def test_degree_mix_overflow_bucket():
    b = make_batch([0] * 60, (np.arange(60) % 7 + 1).tolist())
    mix = degree_mix(b, side="out")
    assert mix.edge_percentages[-1] == pytest.approx(100.0)  # degree 60 > 50


def test_degree_mix_stability_on_stationary_stream(small_generator):
    """Fig. 5's premise: stationary streams keep a stable degree mix."""
    mixes = [
        degree_mix(small_generator.generate_batch(i, 2_000), side="in")
        for i in range(6)
    ]
    first = np.array(mixes[0].edge_percentages)
    for mix in mixes[1:]:
        drift = np.abs(np.array(mix.edge_percentages) - first).max()
        assert drift < 15.0  # percentage points
