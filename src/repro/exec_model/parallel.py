"""Makespan model for parallel phases.

A phase consists of a bag of independent work items (optionally with
per-vertex serialized chains) executed by ``W`` workers under dynamic
scheduling.  Dynamic scheduling balances load well, so the makespan is the
classic greedy-scheduling bound::

    makespan = serial_prefix + max(total_work / (W * efficiency), critical_path)

``critical_path`` is the longest chain that cannot be split across workers —
in the baseline update it is the longest per-vertex lock-serialized chain, in
the reordered update the heaviest per-vertex task, in HAU the busiest core's
queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .machine import MachineConfig

__all__ = ["PhaseTiming", "makespan"]


@dataclass(frozen=True)
class PhaseTiming:
    """Timing decomposition of one modeled parallel phase.

    Attributes:
        total_work: sum of all work items (thread-seconds worth of tu).
        critical_path: longest unsplittable chain.
        serial_prefix: work done before the parallel region opens (e.g. the
            reorder sort's final merge, phase spawn).
        makespan: resulting modeled elapsed time.
        limiter: ``"work"`` if throughput-bound, ``"chain"`` if bound by the
            critical path — useful in reports to show *why* a configuration
            is slow.
    """

    total_work: float
    critical_path: float
    serial_prefix: float
    makespan: float
    limiter: str


def makespan(
    total_work: float,
    critical_path: float,
    machine: MachineConfig,
    efficiency: float,
    serial_prefix: float = 0.0,
) -> PhaseTiming:
    """Compute the modeled elapsed time of a parallel phase.

    Args:
        total_work: sum of all per-item costs, in time units.
        critical_path: longest serialized chain, in time units.
        machine: machine providing the worker pool.
        efficiency: parallel efficiency in (0, 1].
        serial_prefix: additional serial time before/after the region.

    Returns:
        A :class:`PhaseTiming` with the greedy-scheduling makespan.
    """
    if total_work < 0 or critical_path < 0 or serial_prefix < 0:
        raise ConfigurationError("phase times must be non-negative")
    if not 0 < efficiency <= 1:
        raise ConfigurationError(f"efficiency must be in (0, 1], got {efficiency!r}")
    throughput_bound = total_work / (machine.num_workers * efficiency)
    parallel_time = max(throughput_bound, critical_path)
    limiter = "work" if throughput_bound >= critical_path else "chain"
    return PhaseTiming(
        total_work=total_work,
        critical_path=critical_path,
        serial_prefix=serial_prefix,
        makespan=serial_prefix + parallel_time,
        limiter=limiter,
    )
