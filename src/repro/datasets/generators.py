"""Synthetic edge-stream generators.

The paper's 14 datasets (Table 2, up to 5.5 B edges) are not redistributable
and would not fit a Python heap; every phenomenon the paper measures, however,
is driven by *local* stream properties:

* the **intra-batch degree distribution** (Fig. 3/4) — whether a batch
  contains top-degree vertices with hundreds/thousands of edges
  (reorder-friendly) or only small degrees (reorder-adverse);
* its **temporal stability** (Fig. 5); and
* the **inter-batch vertex overlap** (Section 5, Fig. 14).

We therefore model each dataset as a stationary *hub/tail mixture* per edge
endpoint: a fraction ``hub_mass`` of endpoints is drawn from ``hub_count``
hub vertices with Zipf(``hub_alpha``) popularity, the rest uniformly from a
large tail universe.  The top batch degree at batch size ``b`` is then
``~ b * hub_mass * zipf_top_share``, which is exactly the knob Fig. 3's right
axis (max in/out degree per batch) turns.  Timestamped datasets additionally
get a *warm-up ramp* (early batches are low-degree, like wiki-500K's first two
batches in Fig. 17) and *hub drift* (the hot set churns over time, bounding
inter-batch locality).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from ..errors import ConfigurationError
from .stream import Batch

__all__ = ["GENERATOR_VERSION", "SideProfile", "StreamGenerator"]

#: Version of the batch-generation algorithm.  Part of the on-disk stream
#: cache key (``datasets.stream_cache``): bump whenever a change to this
#: module alters the edges any (profile, seed, batch size) produces, so
#: stale cached streams are regenerated instead of silently replayed.
GENERATOR_VERSION = 1


@dataclass(frozen=True)
class SideProfile:
    """Degree-distribution profile of one edge endpoint (src or dst side).

    Attributes:
        hub_mass: fraction of endpoints drawn from the hub set (0 disables
            hubs, producing a near-uniform low-degree side).
        hub_count: number of hub vertices.
        hub_alpha: Zipf exponent of hub popularity; larger means a heavier
            head (a few extremely popular hubs).
        tail_size: size of the uniform tail universe.
        hot_mass / hot_count: an optional second tier of "hot hosts" —
            ``hot_count`` vertices sharing ``hot_mass`` uniformly.  Used for
            web-graph profiles (uk) where a handful of hosts accumulate very
            long adjacencies over the stream while their *per-batch* degree
            stays low-degree/reorder-adverse; this is what produces Fig. 19's
            skewed per-core cacheline counts under near-uniform task counts.
    """

    hub_mass: float
    hub_count: int
    hub_alpha: float
    tail_size: int
    hot_mass: float = 0.0
    hot_count: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.hub_mass <= 1:
            raise ConfigurationError(f"hub_mass must be in [0,1], got {self.hub_mass}")
        if self.hub_mass > 0 and self.hub_count < 1:
            raise ConfigurationError("hub_count must be >= 1 when hub_mass > 0")
        if self.tail_size < 1:
            raise ConfigurationError(f"tail_size must be >= 1, got {self.tail_size}")
        if self.hub_alpha < 0:
            raise ConfigurationError(f"hub_alpha must be >= 0, got {self.hub_alpha}")
        if not 0 <= self.hot_mass <= 1 or self.hub_mass + self.hot_mass > 1:
            raise ConfigurationError(
                "hot_mass must be in [0,1] and hub_mass + hot_mass <= 1"
            )
        if self.hot_mass > 0 and self.hot_count < 1:
            raise ConfigurationError("hot_count must be >= 1 when hot_mass > 0")

    @property
    def num_vertices(self) -> int:
        """Total vertex universe of this side (hubs + tail)."""
        return self.hub_count + self.tail_size if self.hub_mass > 0 else self.tail_size

    def hub_probabilities(self) -> np.ndarray:
        """Zipf popularity vector over the hub set (sums to 1)."""
        if self.hub_mass == 0:
            return np.empty(0)
        ranks = np.arange(1, self.hub_count + 1, dtype=np.float64)
        weights = ranks ** (-self.hub_alpha)
        return weights / weights.sum()

    def expected_top_degree(self, batch_size: int) -> float:
        """Expected batch degree of the most popular hub at ``batch_size``.

        This is the calibration handle for Fig. 3's right axis.
        """
        if self.hub_mass == 0:
            # Balls-into-bins expectation for the uniform tail: mean count
            # plus a small fluctuation term.
            mean = batch_size / self.tail_size
            return mean + 3.0 * np.sqrt(max(mean, 1e-12))
        return batch_size * self.hub_mass * float(self.hub_probabilities()[0])


class StreamGenerator:
    """Generates a reproducible synthetic edge stream for one dataset.

    Args:
        src_profile: endpoint profile for edge sources.
        dst_profile: endpoint profile for edge destinations.
        num_vertices: vertex universe of the dataset (ids are drawn modulo
            this, so both sides share one id space).
        seed: RNG seed; streams are fully deterministic given the seed.
        warmup_edges: number of initial edges generated with hubs disabled
            (timestamped datasets start low-degree while the graph is small).
        drift_period: if > 0, the hub identity mapping is re-permuted every
            ``drift_period`` edges, churning the hot set and capping
            inter-batch locality.
        weighted: draw integer weights in [1, 16] instead of all-ones.
        delete_fraction: fraction of updates emitted as deletions of
            previously inserted edges (0 for the paper's insert-only runs).
        hub_in_pool: if > 0, edges destined to a hub draw their source from
            that hub's dedicated pool of ``hub_in_pool`` vertices.  This
            models repeat interlocutors (a popular talk page is messaged by
            the same bounded community over and over), which bounds a hub's
            accumulated in-adjacency length while leaving the *batch* degree
            distribution untouched — without it, hub adjacencies grow
            linearly with stream position and the baseline's modeled scan
            chains diverge far beyond the regimes the paper reports.
        hub_ramp: hub-activity saturation scale, in edges.  The effective hub
            mass of a batch of ``b`` edges is ``hub_mass * b / (b + hub_ramp)``,
            making batch top degrees grow *sub-linearly* with batch size: a
            user's burst of activity spans more wall-clock time than a small
            batch covers, so small batches catch only a sliver of any hub's
            edges (the paper: "a smaller batch size naturally leads to a
            low-degree input batch").  0 disables the ramp (pure linear
            scaling).
    """

    def __init__(
        self,
        src_profile: SideProfile,
        dst_profile: SideProfile,
        num_vertices: int,
        seed: int,
        warmup_edges: int = 0,
        drift_period: int = 0,
        weighted: bool = True,
        delete_fraction: float = 0.0,
        hub_in_pool: int = 0,
        hub_ramp: int = 0,
    ):
        if num_vertices < 2:
            raise ConfigurationError(f"num_vertices must be >= 2, got {num_vertices}")
        if not 0 <= delete_fraction < 1:
            raise ConfigurationError(
                f"delete_fraction must be in [0,1), got {delete_fraction}"
            )
        if warmup_edges < 0 or drift_period < 0 or hub_in_pool < 0 or hub_ramp < 0:
            raise ConfigurationError(
                "warmup_edges/drift_period/hub_in_pool/hub_ramp must be >= 0"
            )
        self.src_profile = src_profile
        self.dst_profile = dst_profile
        self.num_vertices = num_vertices
        self.seed = seed
        self.warmup_edges = warmup_edges
        self.drift_period = drift_period
        self.weighted = weighted
        self.delete_fraction = delete_fraction
        self.hub_in_pool = hub_in_pool
        self.hub_ramp = hub_ramp

    def _sample_side(
        self,
        profile: SideProfile,
        count: int,
        rng: np.random.Generator,
        hub_ids: np.ndarray | None,
        hubs_enabled: bool,
        mass_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` endpoint ids for one side.

        Returns:
            ``(ids, hub_ranks)`` where ``hub_ranks[i]`` is the hub rank of
            draw ``i`` or -1 for tail draws.
        """
        tail_lo = profile.hub_count + profile.hot_count if profile.hub_mass > 0 else 0
        tail = rng.integers(tail_lo, tail_lo + profile.tail_size, size=count)
        ranks = np.full(count, -1, dtype=np.int64)
        if profile.hub_mass == 0 or not hubs_enabled:
            ids = tail
        else:
            probs = profile.hub_probabilities()
            draw = rng.random(count)
            from_hub = draw < profile.hub_mass * mass_scale
            n_hub = int(from_hub.sum())
            hub_ranks = rng.choice(profile.hub_count, size=n_hub, p=probs)
            ids = tail
            ids[from_hub] = hub_ids[hub_ranks] if hub_ids is not None else hub_ranks
            ranks[from_hub] = hub_ranks
            if profile.hot_mass > 0:
                threshold = profile.hub_mass * mass_scale
                from_hot = (draw >= threshold) & (
                    draw < threshold + profile.hot_mass
                )
                n_hot = int(from_hot.sum())
                if n_hot:
                    ids[from_hot] = profile.hub_count + rng.integers(
                        0, profile.hot_count, size=n_hot
                    )
        return np.mod(ids, self.num_vertices).astype(np.int64), ranks

    def _hub_identities(
        self, profile: SideProfile, epoch: int, side_tag: int
    ) -> np.ndarray | None:
        """Hub rank -> vertex id mapping for the given drift epoch."""
        if profile.hub_mass == 0:
            return None
        if self.drift_period == 0 or epoch == 0:
            return np.arange(profile.hub_count, dtype=np.int64)
        rng = np.random.default_rng((self.seed, side_tag, epoch))
        return rng.permutation(self.num_vertices)[: profile.hub_count].astype(np.int64)

    def generate_batch(self, batch_id: int, batch_size: int) -> Batch:
        """Generate one batch deterministically from (seed, batch_id)."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        rng = np.random.default_rng((self.seed, batch_id, batch_size))
        start_edge = batch_id * batch_size
        hubs_enabled = start_edge >= self.warmup_edges
        epoch = 0 if self.drift_period == 0 else start_edge // self.drift_period
        mass_scale = 1.0
        if self.hub_ramp > 0:
            mass_scale = batch_size / (batch_size + self.hub_ramp)
        src, __ = self._sample_side(
            self.src_profile,
            batch_size,
            rng,
            self._hub_identities(self.src_profile, epoch, side_tag=1),
            hubs_enabled,
            mass_scale,
        )
        dst, dst_ranks = self._sample_side(
            self.dst_profile,
            batch_size,
            rng,
            self._hub_identities(self.dst_profile, epoch, side_tag=2),
            hubs_enabled,
            mass_scale,
        )
        if self.hub_in_pool > 0:
            # Edges destined to a hub draw their source from that hub's
            # bounded community pool (see class docstring).
            to_hub = dst_ranks >= 0
            if to_hub.any():
                pool_base = (dst_ranks[to_hub] * 131071) % self.num_vertices
                src[to_hub] = (pool_base + src[to_hub] % self.hub_in_pool) % (
                    self.num_vertices
                )
        # Remove self-loops by nudging the destination; keeps degree shape.
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % self.num_vertices
        if self.weighted:
            # Weight is a deterministic property of the (src, dst) pair so a
            # duplicate re-insertion carries the same weight it had before —
            # the structure's "refresh the weight" is then a no-op and the
            # incremental algorithms stay exactly consistent with recompute.
            weight = (
                ((src * 2654435761) ^ (dst * 40503)) % 16 + 1
            ).astype(np.float64)
        else:
            weight = np.ones(batch_size, dtype=np.float64)
        is_delete = None
        if self.delete_fraction > 0 and batch_id > 0:
            is_delete = rng.random(batch_size) < self.delete_fraction
        return Batch(
            batch_id=batch_id, src=src, dst=dst, weight=weight, is_delete=is_delete
        )

    def batches(self, batch_size: int, num_batches: int) -> Iterator[Batch]:
        """Yield ``num_batches`` consecutive batches of ``batch_size`` edges."""
        if num_batches < 0:
            raise ConfigurationError(f"num_batches must be >= 0, got {num_batches}")
        for batch_id in range(num_batches):
            yield self.generate_batch(batch_id, batch_size)
