"""Update tasks and their production/assignment (Section 4.4).

An update task for an incoming edge ``<src, target>`` is
``<src's edge-data start address, src's current degree, target[, weight]>``.
Tasks route to core ``vertex mod N`` (N = task-consuming cores), so all of a
vertex's updates land on one core — race-safety by construction, which is
what lets HAU drop software locks.

The simulator works at vertex-cluster granularity: a
:class:`VertexTaskCluster` carries one vertex's ``k`` tasks for one batch
direction, with the statistics the controller model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.base import BatchUpdateStats, DirectionStats
from .config import HAUConfig

__all__ = ["VertexTaskCluster", "clusters_from_stats", "consumer_core", "producer_core"]


@dataclass(frozen=True)
class VertexTaskCluster:
    """All of one vertex's update tasks for one direction of one batch.

    Attributes:
        vertex: the vertex whose adjacency is updated.
        tasks: number of update tasks (the vertex's batch degree).
        length_before: adjacency length before the batch.
        new_edges: inserts performed (the rest are weight refreshes).
        consumer: core executing the tasks (``vertex mod N`` mapping).
    """

    vertex: int
    tasks: int
    length_before: int
    new_edges: int
    consumer: int


def consumer_core(vertex: int, config: HAUConfig) -> int:
    """The task-consuming core for ``vertex`` (hash assignment, §4.4.3)."""
    workers = config.worker_cores
    return workers[vertex % len(workers)]


def producer_core(index: int, config: HAUConfig) -> int:
    """Task-producing core for the ``index``-th cluster (round-robin).

    Worker threads walking the input batch produce tasks; clusters are
    scattered round-robin across the worker cores.
    """
    workers = config.worker_cores
    return workers[index % len(workers)]


def clusters_from_stats(
    stats: BatchUpdateStats,
    config: HAUConfig,
    assignment: str = "vertex_mod",
) -> list[VertexTaskCluster]:
    """Build the batch's task clusters (both directions) from update stats.

    Args:
        assignment: ``"vertex_mod"`` is the paper's hash assignment (same
            vertex -> same core forever: race-safe and locality-preserving).
            ``"scatter"`` re-randomizes the vertex-to-core mapping every
            batch — an *ablation only*: it destroys cross-batch cache
            residency, and real hardware would additionally need locks
            (clusters still serialize within a batch here, so the modeled
            cost is a lower bound on the real penalty).
    """
    clusters: list[VertexTaskCluster] = []
    for direction in stats.directions:
        clusters.extend(
            _direction_clusters(direction, config, assignment, stats.batch_id)
        )
    return clusters


def _direction_clusters(
    direction: DirectionStats,
    config: HAUConfig,
    assignment: str,
    batch_id: int,
) -> list[VertexTaskCluster]:
    if direction.num_vertices == 0:
        return []
    workers = np.asarray(config.worker_cores, dtype=np.int64)
    if assignment == "vertex_mod":
        consumers = workers[direction.vertices % len(workers)]
    elif assignment == "scatter":
        mixed = (direction.vertices * 2654435761 + batch_id * 7919) % 2**31
        consumers = workers[mixed % len(workers)]
    else:
        raise ValueError(f"unknown assignment {assignment!r}")
    return [
        VertexTaskCluster(
            vertex=int(v),
            tasks=int(k),
            length_before=int(length),
            new_edges=int(new),
            consumer=int(core),
        )
        for v, k, length, new, core in zip(
            direction.vertices.tolist(),
            direction.batch_degree.tolist(),
            direction.length_before.tolist(),
            direction.new_edges.tolist(),
            consumers.tolist(),
        )
    ]
