"""Batch reordering (RO): vertex-centric, lock-free updates (Section 3.2).

RO sorts the input batch twice (by source and by destination, to cover out-
and in-edges) with a parallel stable sort, then assigns each vertex's whole
edge cluster to a single thread under dynamic scheduling.  Benefits: no locks,
and after the first (cold) duplicate-check scan the owning thread re-scans a
cache-warm array.  Costs: the two sorts, a per-vertex scheduling overhead,
and a critical path equal to the heaviest single vertex task (a top-degree
vertex's whole cluster runs on one thread).
"""

from __future__ import annotations

import math

import numpy as np

from ..costs import CostParameters
from ..exec_model.machine import MachineConfig
from ..exec_model.parallel import PhaseTiming, makespan
from ..graph.base import BatchUpdateStats, DirectionStats, DynamicGraph

__all__ = [
    "sort_time",
    "reorder_direction_costs",
    "reorder_update_timing",
    "reorder_cluster_counts",
]


def reorder_cluster_counts(stats: BatchUpdateStats) -> dict[str, float]:
    """Vertex-cluster shape of one reordered batch (telemetry feed).

    Returns the number of per-vertex clusters the sort produced across both
    directions and the heaviest single cluster's batch degree — the task
    that bounds RO's critical path (a top-degree vertex's whole edge
    cluster runs on one thread).
    """
    clusters = 0.0
    max_cluster = 0.0
    for direction in stats.directions:
        if direction.num_vertices == 0:
            continue
        clusters += float(direction.num_vertices)
        max_cluster = max(max_cluster, float(direction.batch_degree.max()))
    return {"clusters": clusters, "max_cluster": max_cluster}


def sort_time(batch_size: int, costs: CostParameters, machine: MachineConfig) -> float:
    """Modeled time of the two parallel stable sorts plus setup.

    Both reordered copies (by source and by destination) must be produced, so
    the sort work is ``2 * b * log2(b)`` element-levels; the sort is a
    barrier phase preceding the parallel update.
    """
    if batch_size == 0:
        return 0.0
    levels = max(1.0, math.log2(batch_size))
    work = 2.0 * batch_size * levels * costs.sort_per_elem_level
    return costs.reorder_setup + work / (
        machine.num_workers * costs.parallel_efficiency
    )


def reorder_direction_costs(
    direction: DirectionStats,
    graph: DynamicGraph,
    costs: CostParameters,
) -> tuple[float, float]:
    """(total_work, critical_path) of one direction's reordered update.

    The owning thread's first scan of a vertex's array is cold; subsequent
    scans within the cluster are cache-warm.
    """
    if direction.num_vertices == 0:
        return 0.0, 0.0
    k = direction.batch_degree.astype(np.float64)
    length = direction.length_before.astype(np.float64)
    warm_search = graph.sum_search_cost(
        direction.batch_degree,
        direction.length_before,
        direction.new_edges,
        costs.scan_warm,
    )
    # Promote the first scan of each vertex back to the cold rate.
    search = warm_search + (costs.scan_cold - costs.scan_warm) * length
    new = direction.new_edges.astype(np.float64)
    dup = direction.duplicates.astype(np.float64)
    task = (
        costs.task_sched
        + k * costs.dispatch
        + search
        + new * costs.insert
        + dup * costs.weight_update
    )
    return float(task.sum()), float(task.max())


def reorder_update_timing(
    stats: BatchUpdateStats,
    graph: DynamicGraph,
    costs: CostParameters,
    machine: MachineConfig,
) -> PhaseTiming:
    """Modeled makespan of the reordered (lock-free, vertex-centric) update."""
    total_work = 0.0
    critical_path = 0.0
    for direction in stats.directions:
        work, chain = reorder_direction_costs(direction, graph, costs)
        total_work += work
        critical_path = max(critical_path, chain)
    # Deletions run after all insertions (§4.4.3); reordered clusters need no
    # lock for them either.
    total_work += stats.deleted_edges * 2.0 * (costs.dispatch + costs.delete_op)
    prefix = costs.phase_spawn + sort_time(stats.batch_size, costs, machine)
    return makespan(
        total_work=total_work,
        critical_path=critical_path,
        machine=machine,
        efficiency=costs.parallel_efficiency,
        serial_prefix=prefix,
    )
