"""The HAU accelerator simulator (Section 4.4, Figs. 9-11, 19-20).

Simulates one batch's hardware-accelerated update on the Table 1 CMP:

1. worker cores *produce* update tasks from the input batch
   (``supply_task`` per edge) and inject TaskReq packets into the mesh;
2. each task routes to its consumer core (``vertex mod N``), transits the
   task MSHR and the 32-entry FIFO;
3. the consumer's cache controller fetches and scans the vertex's edge-data
   cachelines with dedicated logic and hands inserts back to the core.

The simulator keeps per-tile cache state *across batches* (vertex pinning is
what makes edge data settle locally) and reports the per-core work
distribution (Fig. 19), local/remote access mix and packet-latency impact
(Fig. 20) alongside the batch's cycle count.

Cycle accounting is deterministic (work aggregation per core plus queueing
estimates) rather than event-by-event — see DESIGN.md §2 on why a
Sniper-fidelity simulation is substituted with this model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..exec_model.parallel import PhaseTiming
from ..graph.base import BatchUpdateStats
from .cache import AccessProfile, TileCache
from .config import DEFAULT_HAU_CONFIG, HAUConfig
from .controller import process_cluster
from .fifo import FIFOModel
from .mshr import MSHRModel
from .noc import MeshNoC
from .tasks import clusters_from_stats, producer_core

__all__ = ["HAUBatchResult", "HAUSimulator"]

#: Tiles hosting the four memory controllers (mesh corners).
_MEMORY_CONTROLLER_TILES = (0, 3, 12, 15)


@dataclass(frozen=True)
class HAUBatchResult:
    """Outcome of simulating one batch on HAU.

    Attributes:
        batch_id: the simulated batch.
        cycles: modeled makespan in core cycles.
        time: same value in the software model's time units (1 tu = 1 cycle
            at the shared 2.5 GHz clock).
        timing: makespan decomposition compatible with the software engines.
        tasks_per_core: update tasks consumed per worker core (Fig. 19).
        lines_per_core: edge-data cachelines accessed per core (Fig. 19).
        local_fraction: fraction of edge-data lines served by the local tile
            (Fig. 20; the paper reports 98-99%).
        remote_lines: boundary lines forwarded from other tiles.
        software_remote_lines: lines the software baseline would have
            fetched remotely for the same batch (every scan hits data last
            touched by a random other core).
        packet_latency_increase: per-core % increase in average packet
            latency caused by task traffic (Fig. 20; within ~10%).
        mshr_peak_occupancy: worst per-core task-MSHR occupancy observed.
        fifo_peak_fill: worst per-core FIFO fill observed.
    """

    batch_id: int
    cycles: float
    time: float
    timing: PhaseTiming
    tasks_per_core: dict[int, int]
    lines_per_core: dict[int, float]
    local_fraction: float
    remote_lines: float
    software_remote_lines: float
    packet_latency_increase: dict[int, float]
    mshr_peak_occupancy: float
    fifo_peak_fill: float

    @property
    def remote_access_reduction(self) -> float:
        """Fractional reduction in remote cache accesses vs software."""
        if self.software_remote_lines == 0:
            return 0.0
        return 1.0 - self.remote_lines / self.software_remote_lines


@dataclass
class HAUSimulator:
    """Persistent accelerator simulator driven batch by batch.

    Pass one instance to an :class:`~repro.update.engine.UpdateEngine` (or a
    pipeline) so tile-cache state accumulates across batches, as on real
    hardware.
    """

    config: HAUConfig = field(default_factory=lambda: DEFAULT_HAU_CONFIG)
    #: Task-to-core assignment policy (see
    #: :func:`~repro.hau.tasks.clusters_from_stats`); "scatter" exists for
    #: the locality ablation only.
    assignment: str = "vertex_mod"
    #: Optional telemetry backend; per-batch task/line/NoC-hop counters land
    #: there (the pipeline's update engine attaches its own when enabled).
    telemetry: object = None
    #: Software-side cost of triggering the accelerator for a batch (cycles).
    #: Far below the software phase-spawn cost: triggering HAU is a stream of
    #: supply_task instructions from already-running threads, not an OpenMP
    #: team fork/join — which is why HAU's advantage is largest on small
    #: batches (Table 3's 100/1K columns).
    trigger_cycles: float = 1500.0

    def __post_init__(self) -> None:
        self.noc = MeshNoC(self.config)
        self.caches = {core: TileCache(self.config) for core in self.config.worker_cores}
        self.mshrs = {core: MSHRModel(self.config) for core in self.config.worker_cores}
        self.fifos = {core: FIFOModel(self.config) for core in self.config.worker_cores}
        self._graph_lines = 0.0
        self.results: list[HAUBatchResult] = []

    # -- helpers --------------------------------------------------------------
    def _l3_hit_probability(self) -> float:
        l3_lines = self.config.l3_lines_per_slice * self.config.num_cores
        if self._graph_lines <= l3_lines:
            return 1.0
        return l3_lines / self._graph_lines

    # -- main entry ---------------------------------------------------------
    def simulate_batch(self, stats: BatchUpdateStats) -> HAUBatchResult:
        """Simulate one batch; returns cycles and per-core statistics."""
        config = self.config
        clusters = clusters_from_stats(stats, config, assignment=self.assignment)
        if not clusters:
            timing = PhaseTiming(0.0, 0.0, self.trigger_cycles, self.trigger_cycles, "work")
            result = HAUBatchResult(
                batch_id=stats.batch_id,
                cycles=self.trigger_cycles,
                time=self.trigger_cycles,
                timing=timing,
                tasks_per_core={c: 0 for c in config.worker_cores},
                lines_per_core={c: 0.0 for c in config.worker_cores},
                local_fraction=1.0,
                remote_lines=0.0,
                software_remote_lines=0.0,
                packet_latency_increase={c: 0.0 for c in config.worker_cores},
                mshr_peak_occupancy=0.0,
                fifo_peak_fill=0.0,
            )
            tel = self.telemetry
            if tel is not None and getattr(tel, "enabled", False):
                tel.count("hau.batches")
            self.results.append(result)
            return result
        l3_prob = self._l3_hit_probability()

        consumer_cycles = {core: 0.0 for core in config.worker_cores}
        producer_cycles = {core: 0.0 for core in config.worker_cores}
        tasks_per_core = {core: 0 for core in config.worker_cores}
        lines_per_core = {core: 0.0 for core in config.worker_cores}
        access_total = AccessProfile()
        pair_tasks: dict[tuple[int, int], float] = {}
        mean_hop_cycles = 2.0 * config.hop_latency  # typical one-way boundary forward

        task_hops = 0.0
        workers = config.worker_cores
        for index, cluster in enumerate(clusters):
            producer = producer_core(index, config)
            # The vertex's pages are NUCA-homed at its pinned tile; under the
            # scatter ablation the consumer usually is not that tile.
            home = workers[cluster.vertex % len(workers)]
            cost = process_cluster(
                cluster,
                self.caches[cluster.consumer],
                config,
                l3_prob,
                remote_hops_cycles=mean_hop_cycles,
                home_is_local=(home == cluster.consumer),
            )
            consumer_cycles[cluster.consumer] += cost.cycles
            tasks_per_core[cluster.consumer] += cluster.tasks
            lines_per_core[cluster.consumer] += cost.access.lines
            access_total.merge(cost.access)
            producer_cycles[producer] += cluster.tasks * config.supply_task_cycles
            task_hops += cluster.tasks * config.hops(producer, cluster.consumer)
            key = (producer, cluster.consumer)
            pair_tasks[key] = pair_tasks.get(key, 0.0) + cluster.tasks

        # Deletion tasks run after all insertions (§4.4.3): one task per
        # direction per deleted edge, a short locate-and-unlink at the home
        # core.  Without per-vertex deletion stats they spread round-robin.
        if stats.deleted_edges:
            per_delete = (
                config.fetch_task_cycles
                + config.controller_overhead_cycles
                + config.l2_stream_cycles
                + config.core_insert_cycles
            )
            share = stats.deleted_edges * 2.0 / len(config.worker_cores)
            for core in config.worker_cores:
                consumer_cycles[core] += share * per_delete
                tasks_per_core[core] += int(round(share))
                producer_cycles[core] += share * config.supply_task_cycles

        busy = {
            core: consumer_cycles[core] + producer_cycles[core]
            for core in config.worker_cores
        }
        duration = max(busy.values())
        if duration <= 0:
            raise SimulationError("batch produced no work")

        # MSHR / FIFO accounting against the batch duration.
        mshr_peak = 0.0
        fifo_peak = 0.0
        stall_overhead = 0.0
        for core in config.worker_cores:
            tasks = float(tasks_per_core[core])
            if tasks == 0:
                continue
            drain = consumer_cycles[core] / tasks
            stall_overhead = max(
                stall_overhead,
                self.mshrs[core].account(tasks, duration),
            )
            stall_overhead = max(
                stall_overhead,
                self.fifos[core].account(tasks, drain, duration),
            )
            mshr_peak = max(mshr_peak, self.mshrs[core].peak_occupancy)
            fifo_peak = max(fifo_peak, self.fifos[core].peak_fill)

        # NoC traffic: tasks (producer -> consumer), DRAM fills (controller
        # tile -> consumer), boundary forwards (neighbor tile -> consumer).
        task_loads = self.noc.new_loads()
        data_loads = self.noc.new_loads()
        for (producer, consumer), tasks in pair_tasks.items():
            self.noc.add_traffic(
                task_loads, producer, consumer, tasks, config.task_packet_flits
            )
        dram_lines_per_core = access_total.dram / len(config.worker_cores)
        remote_lines_per_core = access_total.remote / len(config.worker_cores)
        for core in config.worker_cores:
            controller_tile = _MEMORY_CONTROLLER_TILES[
                core % len(_MEMORY_CONTROLLER_TILES)
            ]
            self.noc.add_traffic(
                data_loads, controller_tile, core,
                dram_lines_per_core, config.data_packet_flits,
            )
            neighbor = config.worker_cores[(core + 1) % len(config.worker_cores)]
            self.noc.add_traffic(
                data_loads, neighbor, core,
                remote_lines_per_core, config.data_packet_flits,
            )

        combined = self.noc.new_loads()
        combined.flits = task_loads.flits + data_loads.flits
        packet_increase: dict[int, float] = {}
        for core in config.worker_cores:
            weights = 0.0
            with_tasks = 0.0
            data_only = 0.0
            for (producer, consumer), tasks in pair_tasks.items():
                if consumer != core:
                    continue
                with_tasks += tasks * self.noc.average_packet_latency(
                    combined, duration, producer, consumer, config.data_packet_flits
                )
                data_only += tasks * self.noc.average_packet_latency(
                    data_loads, duration, producer, consumer, config.data_packet_flits
                )
                weights += tasks
            if weights > 0 and data_only > 0:
                packet_increase[core] = 100.0 * (with_tasks - data_only) / data_only
            else:
                packet_increase[core] = 0.0

        cycles = self.trigger_cycles + duration + stall_overhead
        timing = PhaseTiming(
            total_work=sum(busy.values()),
            critical_path=duration,
            serial_prefix=self.trigger_cycles + stall_overhead,
            makespan=cycles,
            limiter="chain",
        )
        new_edges = sum(
            int(direction.new_edges.sum()) for direction in stats.directions
            if direction.num_vertices
        )
        self._graph_lines += new_edges / config.elems_per_line
        tel = self.telemetry
        if tel is not None and getattr(tel, "enabled", False):
            tel.count("hau.batches")
            tel.count("hau.tasks", float(sum(tasks_per_core.values())))
            tel.count("hau.clusters", float(len(clusters)))
            tel.count("hau.noc_task_hops", task_hops)
            tel.count("hau.noc_task_flits", task_loads.total_flits())
            tel.count("hau.noc_data_flits", data_loads.total_flits())
            tel.count("hau.edge_lines", access_total.lines)
            tel.count("hau.remote_lines", access_total.remote)
            tel.count("hau.dram_lines", access_total.dram)
            tel.gauge("hau.local_fraction", access_total.local_fraction)
            for tasks in tasks_per_core.values():
                tel.observe("hau.core_tasks", float(tasks))
        result = HAUBatchResult(
            batch_id=stats.batch_id,
            cycles=cycles,
            time=cycles,
            timing=timing,
            tasks_per_core=tasks_per_core,
            lines_per_core=lines_per_core,
            local_fraction=access_total.local_fraction,
            remote_lines=access_total.remote,
            software_remote_lines=access_total.lines
            * (config.num_workers - 1)
            / config.num_workers,
            packet_latency_increase=packet_increase,
            mshr_peak_occupancy=mshr_peak,
            fifo_peak_fill=fifo_peak,
        )
        self.results.append(result)
        return result
