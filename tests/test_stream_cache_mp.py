"""Stream-cache concurrency: parallel processes sharing one cache directory.

The cache's write path is mkstemp + ``os.replace`` (atomic on POSIX), so N
processes racing to populate the same entry must each observe either a
fully formed ``.npz`` or a miss they repair themselves — never a torn read,
never a corrupted entry.  These tests run *real* worker processes (the
executor's ``mp_context``) against one shared ``REPRO_CACHE_DIR`` and
assert the streams every worker saw are bit-identical to the generator's.
"""

import os

import numpy as np
import pytest

from repro.datasets.profiles import get_dataset
from repro.datasets.stream_cache import cached_batches
from repro.pipeline.executor import map_cells

pytestmark = pytest.mark.faults

PROFILE_NAME = "fb"
BATCH_SIZE = 400
NUM_BATCHES = 5
SEED = 11


def _batch_fingerprints(batches) -> list[tuple]:
    """Hashable content digest of every batch (order-sensitive)."""
    out = []
    for batch in batches:
        out.append((
            batch.batch_id,
            batch.size,
            int(np.asarray(batch.src, dtype=np.int64).sum()),
            int(np.asarray(batch.dst, dtype=np.int64).sum()),
            float(np.asarray(batch.weight, dtype=np.float64).sum()),
            None if batch.is_delete is None else int(batch.is_delete.sum()),
        ))
    return out


def _read_stream_through_cache(spec) -> list[tuple]:
    """Worker: point the cache at the shared dir, read the stream, digest it.

    ``cache_dir()`` consults ``REPRO_CACHE_DIR`` at call time, so setting
    it in the worker works under fork and spawn alike.
    """
    cache_root, worker_seed = spec
    os.environ["REPRO_CACHE_DIR"] = cache_root
    os.environ["REPRO_STREAM_CACHE"] = "1"
    profile = get_dataset(PROFILE_NAME)
    batches = list(
        cached_batches(profile, BATCH_SIZE, NUM_BATCHES, seed=worker_seed)
    )
    return _batch_fingerprints(batches)


def test_parallel_populate_same_entry_is_torn_free(tmp_path, monkeypatch):
    """Eight processes race to materialize the *same* stream entry."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_STREAM_CACHE", "1")
    specs = [(str(tmp_path), SEED)] * 8
    results = map_cells(_read_stream_through_cache, specs, jobs=4)

    # Every worker — whether it generated, raced the rename, or read the
    # winner's file — saw the exact generator stream.
    profile = get_dataset(PROFILE_NAME)
    expected = _batch_fingerprints(
        list(profile.generator(seed=SEED).batches(BATCH_SIZE, NUM_BATCHES))
    )
    for result in results:
        assert result == expected

    # The race settles into exactly one well-formed entry: no duplicate
    # entries, no leaked mkstemp temporaries, and the survivor replays.
    entries = list((tmp_path / "streams").glob("*.npz"))
    assert len(entries) == 1
    assert not list((tmp_path / "streams").glob("*.tmp"))
    replay = list(
        cached_batches(profile, BATCH_SIZE, NUM_BATCHES, seed=SEED)
    )
    assert _batch_fingerprints(replay) == expected


def test_parallel_distinct_entries_do_not_collide(tmp_path, monkeypatch):
    """Workers writing *different* entries under one dir stay independent."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_STREAM_CACHE", "1")
    seeds = [20, 21, 22, 23]
    specs = [(str(tmp_path), seed) for seed in seeds]
    results = map_cells(_read_stream_through_cache, specs, jobs=4)

    profile = get_dataset(PROFILE_NAME)
    for seed, result in zip(seeds, results):
        expected = _batch_fingerprints(
            list(profile.generator(seed=seed).batches(BATCH_SIZE, NUM_BATCHES))
        )
        assert result == expected
    entries = list((tmp_path / "streams").glob("*.npz"))
    assert len(entries) == len(seeds)
    assert not list((tmp_path / "streams").glob("*.tmp"))


def test_cache_hit_after_parallel_populate_serves_from_disk(
    tmp_path, monkeypatch
):
    """A later in-process read hits the entry the worker race produced."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_STREAM_CACHE", "1")
    map_cells(
        _read_stream_through_cache, [(str(tmp_path), SEED)] * 2, jobs=2
    )
    entry = list((tmp_path / "streams").glob("*.npz"))
    assert len(entry) == 1
    written = entry[0].stat().st_mtime_ns
    profile = get_dataset(PROFILE_NAME)
    again = list(cached_batches(profile, BATCH_SIZE, NUM_BATCHES, seed=SEED))
    assert len(again) == NUM_BATCHES
    # Served from disk: the entry was not regenerated/rewritten.
    assert entry[0].stat().st_mtime_ns == written


def test_shorter_prefix_is_served_without_rewrite(tmp_path, monkeypatch):
    """Prefix reads across processes reuse the longer cached run."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_STREAM_CACHE", "1")
    map_cells(_read_stream_through_cache, [(str(tmp_path), SEED)], jobs=1)
    [entry] = list((tmp_path / "streams").glob("*.npz"))
    written = entry.stat().st_mtime_ns
    profile = get_dataset(PROFILE_NAME)
    prefix = list(cached_batches(profile, BATCH_SIZE, 2, seed=SEED))
    expected = _batch_fingerprints(
        list(profile.generator(seed=SEED).batches(BATCH_SIZE, 2))
    )
    assert _batch_fingerprints(prefix) == expected
    assert entry.stat().st_mtime_ns == written
