"""Flight-recorder timeline: cross-process event tracing for live runs.

The aggregate :class:`~repro.telemetry.core.TelemetrySnapshot` answers *how
much* time each span consumed; it cannot answer *when* — which shard was
busy while the coordinator waited, whether batch 17's update stage started
before shard 1 finished batch 16, where a straggler sat.  This module adds
the missing axis: a bounded ring-buffer :class:`TimelineRecorder` of
timestamped events that every ``full``-level telemetry backend carries
automatically, and a Chrome trace-event exporter so merged timelines open
directly in Perfetto (https://ui.perfetto.dev).

Design constraints, in order:

* **Off the metrics path.** The recorder only observes completed spans and
  instants; nothing reads it during a run, so RunMetrics stay bit-identical
  with the recorder on (the golden-parity suite asserts this).
* **Bounded.** Events land in a ``deque(maxlen=capacity)``; overflow evicts
  the oldest event and increments ``dropped`` — a run can never grow the
  recorder past ``capacity`` events (default 65536, override with
  ``REPRO_TIMELINE_CAP``).
* **Mergeable across clocks.** Events are stamped with the local
  :func:`time.perf_counter`; each process's snapshot carries a
  ``clock_offset`` so a coordinator-side handshake (see
  ``ShardedGraph._harvest_worker_timelines``) can express every timestamp
  on the coordinator's clock: ``aligned = ts + clock_offset``.

Event tuples are ``(kind, name, ts, dur, batch_id)`` with ``kind`` already
in Chrome trace-event phase vocabulary: ``"X"`` for complete spans (``ts``
is the start, ``dur`` the duration, both in seconds), ``"i"`` for instant
events (``dur`` is 0).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, replace

__all__ = [
    "DEFAULT_TIMELINE_CAPACITY",
    "TimelineRecorder",
    "TimelineSnapshot",
    "merge_timeline_snapshots",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: Ring-buffer slots per recorder unless ``REPRO_TIMELINE_CAP`` overrides.
DEFAULT_TIMELINE_CAPACITY = 65_536


def _capacity_from_env() -> int:
    raw = os.environ.get("REPRO_TIMELINE_CAP")
    if not raw:
        return DEFAULT_TIMELINE_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_TIMELINE_CAPACITY
    return max(1, value)


@dataclass(frozen=True)
class TimelineSnapshot:
    """Frozen, picklable timeline of one process (or one drain of it).

    Attributes:
        run_id: identifier shared by every process of one run.
        process: human label for the track ("coordinator", "shard-1", ...).
        shard: owning shard id, or ``None`` for the coordinator.
        pid: OS process id the events were recorded in.
        clock_offset: seconds to add to every ``ts`` to express it on the
            coordinator's clock (0.0 until a handshake assigns one).
        captured_at: local ``perf_counter`` at snapshot time.
        recorded: events ever pushed into the recorder (including dropped).
        dropped: events evicted by the ring bound.
        events: ``(kind, name, ts, dur, batch_id)`` tuples, oldest first.
    """

    run_id: str = ""
    process: str = ""
    shard: int | None = None
    pid: int = 0
    clock_offset: float = 0.0
    captured_at: float = 0.0
    recorded: int = 0
    dropped: int = 0
    events: tuple = ()

    def shifted(self, offset: float) -> "TimelineSnapshot":
        """This snapshot with ``offset`` seconds added to its clock offset."""
        return replace(self, clock_offset=self.clock_offset + offset)

    def to_dict(self) -> dict:
        """Plain-JSON form (the trace ``timeline`` record's payload)."""
        return {
            "run_id": self.run_id,
            "process": self.process,
            "shard": self.shard,
            "pid": self.pid,
            "clock_offset": self.clock_offset,
            "captured_at": self.captured_at,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": [list(ev) for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimelineSnapshot":
        return cls(
            run_id=data.get("run_id", ""),
            process=data.get("process", ""),
            shard=data.get("shard"),
            pid=int(data.get("pid", 0)),
            clock_offset=float(data.get("clock_offset", 0.0)),
            captured_at=float(data.get("captured_at", 0.0)),
            recorded=int(data.get("recorded", 0)),
            dropped=int(data.get("dropped", 0)),
            events=tuple(
                (ev[0], ev[1], float(ev[2]), float(ev[3]), ev[4])
                for ev in data.get("events", [])
            ),
        )

    def spans_named(self, name: str) -> list[tuple[float, float, object]]:
        """Clock-aligned ``(start, end, batch_id)`` of every ``name`` span."""
        out = []
        for kind, ev_name, ts, dur, batch_id in self.events:
            if kind == "X" and ev_name == name:
                start = ts + self.clock_offset
                out.append((start, start + dur, batch_id))
        return out


class TimelineRecorder:
    """Bounded ring buffer of timestamped events for one process.

    One recorder rides on each ``full``-level :class:`Telemetry` backend;
    spans feed it on exit and subsystems may add instants directly.  All
    methods are O(1); overflow evicts the oldest event (flight-recorder
    semantics: the end of a run is always retained).
    """

    __slots__ = (
        "capacity", "run_id", "process", "shard", "pid",
        "recorded", "dropped", "_events",
    )

    def __init__(self, capacity: int | None = None, *, run_id: str = "",
                 process: str = "", shard: int | None = None):
        self.capacity = _capacity_from_env() if capacity is None else max(1, capacity)
        self.run_id = run_id
        self.process = process
        self.shard = shard
        self.pid = os.getpid()
        self.recorded = 0
        self.dropped = 0
        self._events: deque = deque(maxlen=self.capacity)

    def configure(self, *, run_id: str | None = None,
                  process: str | None = None,
                  shard: int | None = None) -> None:
        """Assign run/track identity (owners label recorders they adopt)."""
        if run_id is not None:
            self.run_id = run_id
        if process is not None:
            self.process = process
        if shard is not None:
            self.shard = shard

    def __len__(self) -> int:
        return len(self._events)

    def _push(self, event: tuple) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self.recorded += 1

    def span(self, name: str, start: float, duration: float,
             batch_id: int | None = None) -> None:
        """Record one completed span (``start`` from ``perf_counter``)."""
        self._push(("X", name, start, duration, batch_id))

    def instant(self, name: str, batch_id: int | None = None,
                ts: float | None = None) -> None:
        """Record one instant event at ``ts`` (default: now)."""
        self._push(("i", name, time.perf_counter() if ts is None else ts,
                    0.0, batch_id))

    def snapshot(self) -> TimelineSnapshot:
        """Freeze the buffered events (non-destructive)."""
        return TimelineSnapshot(
            run_id=self.run_id,
            process=self.process or f"pid-{self.pid}",
            shard=self.shard,
            pid=self.pid,
            captured_at=time.perf_counter(),
            recorded=self.recorded,
            dropped=self.dropped,
            events=tuple(self._events),
        )


def merge_timeline_snapshots(snapshots) -> list[TimelineSnapshot]:
    """Coalesce snapshots of the same process into one timeline each.

    A trace file may hold several ``timeline`` records for one process
    (periodic drains plus the close-time flush); group them by identity
    ``(run_id, pid, process, shard)``, concatenate events in time order,
    and keep the latest capture's offset/progress counters.  The result is
    ordered coordinator-first, then by shard id.
    """
    groups: dict[tuple, list[TimelineSnapshot]] = {}
    for snap in snapshots:
        if snap is None:
            continue
        groups.setdefault(
            (snap.run_id, snap.pid, snap.process, snap.shard), []
        ).append(snap)
    merged = []
    for parts in groups.values():
        parts.sort(key=lambda s: s.captured_at)
        last = parts[-1]
        seen = set()
        events = []
        for part in parts:
            for ev in part.events:
                if ev not in seen:
                    seen.add(ev)
                    events.append(ev)
        events.sort(key=lambda ev: ev[2])
        merged.append(replace(last, events=tuple(events)))
    merged.sort(key=lambda s: (s.shard is not None, s.shard or 0, s.pid))
    return merged


# -- Chrome trace-event export ------------------------------------------------

def _track(snapshot: TimelineSnapshot) -> tuple[int, int, str]:
    """(pid, tid, label) placing one snapshot on its own Perfetto track."""
    tid = 0 if snapshot.shard is None else snapshot.shard + 1
    label = snapshot.process or f"pid-{snapshot.pid}"
    return snapshot.pid, tid, label


def to_chrome_trace(snapshots, *, origin: float | None = None) -> dict:
    """Render snapshots as a Chrome trace-event JSON document.

    Timestamps are clock-aligned (``ts + clock_offset``), shifted so the
    earliest event sits at 0, and expressed in microseconds as the format
    requires.  Each snapshot becomes one track: the coordinator as tid 0,
    shard workers as tid ``shard + 1`` (distinct pids already separate
    multi-process runs).  Open the result at https://ui.perfetto.dev or
    ``chrome://tracing``.
    """
    snaps = merge_timeline_snapshots(snapshots)
    if origin is None:
        starts = [
            ev[2] + snap.clock_offset for snap in snaps for ev in snap.events
        ]
        origin = min(starts) if starts else 0.0
    trace_events: list[dict] = []
    run_ids = sorted({s.run_id for s in snaps if s.run_id})
    for sort_index, snap in enumerate(snaps):
        pid, tid, label = _track(snap)
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": tid,
            "args": {"name": label},
        })
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": label},
        })
        trace_events.append({
            "ph": "M", "name": "thread_sort_index", "pid": pid, "tid": tid,
            "args": {"sort_index": sort_index},
        })
        for kind, name, ts, dur, batch_id in snap.events:
            event = {
                "name": name,
                "cat": "timeline",
                "ph": "X" if kind == "X" else "i",
                "ts": (ts + snap.clock_offset - origin) * 1e6,
                "pid": pid,
                "tid": tid,
            }
            if kind == "X":
                event["dur"] = dur * 1e6
            else:
                event["s"] = "t"
            if batch_id is not None:
                event["args"] = {"batch": batch_id}
            trace_events.append(event)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"run_ids": run_ids},
    }


def write_chrome_trace(path, snapshots) -> dict:
    """Atomically write the Chrome trace JSON for ``snapshots`` to ``path``.

    Written via a temp file + ``os.replace`` so a reader (or a crash) never
    observes a torn document.  Returns the document written.
    """
    document = to_chrome_trace(snapshots)
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    os.replace(tmp, path)
    return document
