"""Auto-tuning of the streaming-pipeline policy space.

The paper fixes its design parameters (ABR's TH/lambda/n, OCA's overlap
threshold, USC's hash structure) by hand per Section 6.2.3; this package
searches them automatically.  A :class:`~repro.tune.space.SearchSpace`
declares the tunable region over :class:`~repro.pipeline.config.RunConfig`,
a registered optimizer (:mod:`~repro.tune.optimizers`) proposes trials, and
the fault-tolerant :class:`~repro.tune.driver.TuneDriver` evaluates them
through the parallel executor, journaling every trial so a killed search
resumes where it left off.  Exposed on the CLI as ``repro tune``.
"""

from .driver import TrialRecord, TuneDriver, TuneResult
from .objectives import OBJECTIVES, Objective, get_objective, register_objective
from .optimizers import (
    OPTIMIZERS,
    GridSearch,
    Optimizer,
    RandomSearch,
    TPELite,
    make_optimizer,
    register_optimizer,
)
from .space import BUILTIN_SPACES, Dimension, SearchSpace, load_space

__all__ = [
    "Dimension",
    "SearchSpace",
    "BUILTIN_SPACES",
    "load_space",
    "Optimizer",
    "RandomSearch",
    "GridSearch",
    "TPELite",
    "OPTIMIZERS",
    "register_optimizer",
    "make_optimizer",
    "Objective",
    "OBJECTIVES",
    "register_objective",
    "get_objective",
    "TrialRecord",
    "TuneResult",
    "TuneDriver",
]
