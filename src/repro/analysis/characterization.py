"""RO characterization study (Section 4.1 / Figs. 3, 6) and speedup helpers.

These runners execute a workload cell once under the baseline policy and
read every alternative strategy's modeled time from the engine's per-batch
results — a batch is never applied twice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..costs import DEFAULT_COSTS, CostParameters
from ..datasets.profiles import DatasetProfile
from ..exec_model.machine import HOST_MACHINE, MachineConfig
from ..graph.adjacency_list import AdjacencyListGraph
from ..update.engine import UpdateEngine, UpdatePolicy
from ..update.result import STRATEGY_BASELINE, STRATEGY_RO, STRATEGY_RO_USC

__all__ = [
    "CellCharacterization",
    "characterize_cell",
    "characterize_cell_spec",
    "geomean",
]


@dataclass(frozen=True)
class CellCharacterization:
    """Per-(dataset, batch size) RO trade-off measurements.

    Attributes:
        dataset / batch_size: the cell.
        num_batches: batches measured.
        baseline_update: total baseline update time.
        ro_update: total always-RO update time.
        usc_update: total always-RO+USC update time.
        max_degree: maximum in/out batch degree, averaged across batches
            (Fig. 3's right axis).
        per_batch_ro_beneficial: per-batch ground truth (RO faster than
            baseline), used as the oracle for ABR accuracy (Fig. 18).
        per_batch_cads: CAD_lambda value of each batch at lambda=256.
    """

    dataset: str
    batch_size: int
    num_batches: int
    baseline_update: float
    ro_update: float
    usc_update: float
    max_degree: float
    per_batch_ro_beneficial: tuple[bool, ...]
    per_batch_cads: tuple[float, ...]

    @property
    def ro_speedup(self) -> float:
        """Update speedup of always-RO over the baseline (Fig. 3 left axis)."""
        return self.baseline_update / self.ro_update

    @property
    def usc_speedup(self) -> float:
        """Update speedup of always-RO+USC over the baseline."""
        return self.baseline_update / self.usc_update

    @property
    def ro_friendly(self) -> bool:
        """Measured ground truth for the whole cell."""
        return self.ro_speedup > 1.0


def characterize_cell(
    profile: DatasetProfile,
    batch_size: int,
    num_batches: int,
    machine: MachineConfig = HOST_MACHINE,
    costs: CostParameters = DEFAULT_COSTS,
    cad_lambda: int = 256,
    seed: int = 7,
) -> CellCharacterization:
    """Measure one cell's RO trade-offs across ``num_batches`` batches."""
    from ..update.cad import cad_from_stats  # local to avoid cycle at import

    graph = AdjacencyListGraph(profile.num_vertices)
    engine = UpdateEngine(graph, UpdatePolicy.BASELINE, machine=machine, costs=costs)
    generator = profile.generator(seed=seed)
    baseline_total = 0.0
    ro_total = 0.0
    usc_total = 0.0
    max_degrees = []
    beneficial = []
    cads = []
    for batch in generator.batches(batch_size, num_batches):
        result = engine.ingest(batch)
        baseline = result.time
        reorder = result.alternatives[STRATEGY_RO]
        usc = result.alternatives[STRATEGY_RO_USC]
        baseline_total += baseline
        ro_total += reorder
        usc_total += usc
        max_degrees.append(batch.max_degree())
        beneficial.append(reorder < baseline)
        # Recompute CAD from the engine's last stats-free path: the batch's
        # degree profile is cheap to re-derive from the batch itself.
        cads.append(_batch_cad(batch, cad_lambda))
    return CellCharacterization(
        dataset=profile.name,
        batch_size=batch_size,
        num_batches=num_batches,
        baseline_update=baseline_total,
        ro_update=ro_total,
        usc_update=usc_total,
        max_degree=float(np.mean(max_degrees)) if max_degrees else 0.0,
        per_batch_ro_beneficial=tuple(beneficial),
        per_batch_cads=tuple(cads),
    )


def characterize_cell_spec(
    spec: tuple[str, int, int, int],
) -> CellCharacterization:
    """:func:`characterize_cell` from a picklable ``(dataset, batch_size,
    num_batches, seed)`` tuple — the worker-process entry point used by
    ``repro characterize --jobs N`` (see ``pipeline.executor.map_cells``)."""
    from ..datasets.profiles import get_dataset

    name, batch_size, num_batches, seed = spec
    return characterize_cell(get_dataset(name), batch_size, num_batches, seed=seed)


def _batch_cad(batch, lam: int) -> float:
    """CAD_lambda straight from a batch (max over both endpoint sides)."""
    from ..update.cad import cad_from_degrees

    best = 0.0
    for counts in (batch.in_degrees()[1], batch.out_degrees()[1]):
        best = max(best, cad_from_degrees(counts, batch.size, lam))
    return best


def geomean(values) -> float:
    """Geometric mean (the paper's summary statistic for speedups)."""
    array = np.asarray(list(values), dtype=np.float64)
    if len(array) == 0 or (array <= 0).any():
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.log(array).mean()))
