"""Partition-policy micro-benchmark: cut edges, balance, ingest wall-clock.

The partitioning policy moves exactly one cost: how often one edge's two
directions land on two different shard workers (the cut-edge fraction — a
direct proxy for cross-shard communication in a distributed runtime).  Two
regimes bracket it:

* **uniform** — endpoints spread evenly over the id space; ``mod`` is close
  to optimal-oblivious here and any policy's cut sits near ``1 - 1/N``;
* **hub-heavy** — ~90% of edges leave ~1K hot sources; ``greedy`` co-locates
  each hub with its early neighbors, so its cut drops well below ``mod``'s
  while the balance slack keeps vertex loads within 10% of fair share.

Placement quality (cut fraction, balance) is deterministic, so those
assertions run everywhere; the ingest wall-clock comparison (same batches
through a ``ShardedGraph``, ``mod`` vs ``greedy`` placement) is gated behind
``REPRO_BENCH_ENFORCE=1`` like every other wall-clock gate.  The summary
lands in ``results/BENCH_partition.json``; ``make bench-partition`` (wired
into ``make bench-smoke``) compares against the committed
``benchmarks/BENCH_partition.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from _harness import RESULTS_DIR, emit
from repro.analysis.report import render_table
from repro.datasets.stream import Batch
from repro.pipeline.partition import (
    PARTITION_POLICIES,
    build_owner_map,
    cut_edge_fraction,
)
from repro.pipeline.sharding import ShardedGraph

NUM_VERTICES = 100_000
BATCH_SIZE = 25_000
NUM_BATCHES = 4
NUM_HUBS = 1_000
HUB_FRACTION = 0.9
NUM_SHARDS = 4
ROUNDS = 3  # best-of to shave scheduler noise
POLICIES = ("mod", "greedy")

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_partition.json"


def _uniform_batches() -> list[Batch]:
    rng = np.random.default_rng(7)
    return [
        Batch(
            batch_id=i,
            src=rng.integers(0, NUM_VERTICES, size=BATCH_SIZE),
            dst=rng.integers(0, NUM_VERTICES, size=BATCH_SIZE),
            weight=rng.random(BATCH_SIZE),
        )
        for i in range(NUM_BATCHES)
    ]


def _hub_batches() -> list[Batch]:
    rng = np.random.default_rng(11)
    hubs = rng.choice(NUM_VERTICES, size=NUM_HUBS, replace=False)
    batches = []
    for i in range(NUM_BATCHES):
        src = rng.integers(0, NUM_VERTICES, size=BATCH_SIZE)
        from_hub = rng.random(BATCH_SIZE) < HUB_FRACTION
        src[from_hub] = hubs[rng.integers(0, NUM_HUBS, size=int(from_hub.sum()))]
        batches.append(
            Batch(
                batch_id=i,
                src=src,
                dst=rng.integers(0, NUM_VERTICES, size=BATCH_SIZE),
                weight=rng.random(BATCH_SIZE),
            )
        )
    return batches


def _all_edges(batches) -> tuple[np.ndarray, np.ndarray]:
    return (
        np.concatenate([b.insertions.src for b in batches]),
        np.concatenate([b.insertions.dst for b in batches]),
    )


def _ingest_once(policy: str, owner_map, batches) -> float:
    graph = ShardedGraph(
        NUM_VERTICES, NUM_SHARDS, transport="inproc",
        policy=policy, owner_map=owner_map,
    )
    try:
        start = time.perf_counter()
        for batch in batches:
            graph.apply_batch(batch)
        return time.perf_counter() - start
    finally:
        graph.close()


def run_partition() -> dict:
    workloads = {"uniform": _uniform_batches(), "hub": _hub_batches()}
    result: dict = {
        "num_vertices": NUM_VERTICES,
        "batch_size": BATCH_SIZE,
        "num_batches": NUM_BATCHES,
        "num_hubs": NUM_HUBS,
        "hub_fraction": HUB_FRACTION,
        "num_shards": NUM_SHARDS,
    }
    maps: dict[tuple[str, str], np.ndarray] = {}
    for workload, batches in workloads.items():
        edges = _all_edges(batches)
        for policy in POLICIES:
            owners = build_owner_map(
                policy, NUM_VERTICES, NUM_SHARDS, edges=edges
            )
            maps[(workload, policy)] = owners
            result[f"cut_{workload}_{policy}"] = cut_edge_fraction(
                owners, *edges
            )
            # Balance over owned vertices (what the slack bounds) and over
            # routed edge-directions (what the workers actually chew on).
            vertex_loads = np.bincount(owners, minlength=NUM_SHARDS)
            edge_loads = np.bincount(
                owners[edges[0]], minlength=NUM_SHARDS
            ) + np.bincount(owners[edges[1]], minlength=NUM_SHARDS)
            result[f"vertex_imbalance_{workload}_{policy}"] = float(
                vertex_loads.max() / vertex_loads.mean()
            )
            result[f"edge_imbalance_{workload}_{policy}"] = float(
                edge_loads.max() / edge_loads.mean()
            )
    times: dict[tuple[str, str], float] = {
        key: float("inf") for key in maps
    }
    # Interleave policy rounds inside each workload so machine-load drift
    # biases neither side of the mod/greedy ratio.
    for workload, batches in workloads.items():
        for __ in range(ROUNDS):
            for policy in POLICIES:
                key = (workload, policy)
                times[key] = min(
                    times[key], _ingest_once(policy, maps[key], batches)
                )
    for (workload, policy), seconds in times.items():
        result[f"ingest_{workload}_{policy}_s"] = seconds
    return result


def test_perf_partition(benchmark):
    result = benchmark.pedantic(run_partition, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_partition.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    rows = []
    for workload in ("uniform", "hub"):
        for policy in POLICIES:
            rows.append([
                f"{workload} ({policy})",
                result[f"cut_{workload}_{policy}"],
                result[f"vertex_imbalance_{workload}_{policy}"],
                result[f"edge_imbalance_{workload}_{policy}"],
                result[f"ingest_{workload}_{policy}_s"],
            ])
    emit(
        "perf_partition",
        render_table(
            ["workload", "cut fraction", "vertex max/mean",
             "edge max/mean", "ingest (s)"],
            rows,
            title=f"Partition-policy micro-benchmark ({NUM_SHARDS} shards)",
        ),
    )
    # Deterministic placement-quality gates (no wall-clock involved):
    # greedy must cut fewer edges than the paper's mod mapping in the
    # hub-heavy regime it exists for — the PR's acceptance criterion.
    assert result["cut_hub_greedy"] < result["cut_hub_mod"]
    # ...while staying within the balance slack on owned vertices.
    slack = PARTITION_POLICIES["greedy"].slack
    for workload in ("uniform", "hub"):
        assert result[f"vertex_imbalance_{workload}_greedy"] <= (
            1.0 + slack
        ) * 1.05 + 1e-9
    if os.environ.get("REPRO_BENCH_ENFORCE") == "1" and BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        for workload in ("uniform", "hub"):
            key = f"cut_{workload}_greedy"
            assert result[key] <= baseline[key] * 1.1 + 0.01, (
                f"{key} regressed vs committed baseline: "
                f"{result[key]:.4f} vs {baseline[key]:.4f}"
            )
            key = f"ingest_{workload}_greedy_s"
            assert result[key] <= baseline[key] * 2.0, (
                f"{key} regressed >2x vs committed baseline: "
                f"{result[key]:.3f}s vs {baseline[key]:.3f}s"
            )
