"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one of the paper's evaluation artifacts and
writes its rendered rows to ``results/<name>.txt`` (in addition to printing),
so ``pytest benchmarks/ --benchmark-only`` leaves a complete, diffable record
behind.  Set ``REPRO_BENCH_FULL=1`` to use the full batch-count caps instead
of the quick defaults, and ``REPRO_BENCH_JOBS=N`` to fan multi-cell
benchmarks out over N worker processes (results are ordering-identical to
the serial run).  Streams are served from the on-disk cache
(``.cache/streams/``) after first generation; ``REPRO_STREAM_CACHE=0``
disables that.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.characterization import geomean
from repro.costs import DEFAULT_COSTS
from repro.datasets.profiles import DatasetProfile
from repro.datasets.stream_cache import cached_batches
from repro.pipeline.config import RunConfig
from repro.pipeline.executor import map_cells
from repro.exec_model.machine import HOST_MACHINE, MachineConfig
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.compute.pagerank import IncrementalPageRank
from repro.compute.cost_model import compute_round_time
from repro.update.cad import cad_from_degrees, instrumentation_time
from repro.update.engine import UpdateEngine, UpdatePolicy
from repro.update.result import STRATEGY_RO, STRATEGY_RO_USC

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Quick-mode batch caps: small enough for a laptop run of the whole bench
#: suite, large enough to reach the steady-state regime per cell.
QUICK_CAPS = {100: 6, 1_000: 6, 10_000: 5, 100_000: 4, 500_000: 2}
FULL_CAPS = {100: 24, 1_000: 24, 10_000: 12, 100_000: 8, 500_000: 4}


def caps() -> dict[int, int]:
    return FULL_CAPS if os.environ.get("REPRO_BENCH_FULL") == "1" else QUICK_CAPS


def bench_jobs() -> int:
    """Worker processes for multi-cell benchmarks (``REPRO_BENCH_JOBS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    except ValueError:
        return 1


def run_cells(fn, items):
    """Map a cell function over items, honouring ``REPRO_BENCH_JOBS``.

    ``fn`` must be module-level and picklable; results keep item order, so
    benchmark artifacts are byte-identical at any job count.
    """
    return map_cells(fn, items, jobs=bench_jobs())


def num_batches(profile: DatasetProfile, batch_size: int) -> int:
    return profile.num_batches(batch_size, cap=caps()[batch_size])


def run_pipeline(dataset: str, batch_size: int, num_batches=None, **overrides):
    """Run one pipeline cell described as data.

    ``overrides`` are :class:`repro.pipeline.config.RunConfig` fields
    (``algorithm``, ``mode``, ``use_oca``, ``oca=OCAConfig(...)``,
    ``pr_tolerance`` ...); returns the run's ``RunMetrics``.
    """
    return RunConfig(
        dataset=dataset,
        batch_size=batch_size,
        num_batches=num_batches,
        **overrides,
    ).run()


def emit(name: str, text: str) -> None:
    """Print a report and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def record(name: str, payload: dict) -> None:
    """Persist a machine-readable summary (joined against the paper targets
    by ``repro fidelity``)."""
    from repro.analysis.experiments import ExperimentStore

    ExperimentStore(RESULTS_DIR).record(name, payload)


class CellRun:
    """One stream pass through a cell, with every strategy's per-batch time.

    The batch is applied once; baseline/RO/RO+USC times come from the
    engine's alternatives, CAD from the batch's degree profile, and
    (optionally) a policy-independent compute time from incremental PR.
    """

    def __init__(
        self,
        profile: DatasetProfile,
        batch_size: int,
        nb: int | None = None,
        machine: MachineConfig = HOST_MACHINE,
        with_compute: bool = False,
        seed: int = 7,
    ):
        self.profile = profile
        self.batch_size = batch_size
        self.machine = machine
        nb = nb if nb is not None else num_batches(profile, batch_size)
        graph = AdjacencyListGraph(profile.num_vertices)
        engine = UpdateEngine(graph, UpdatePolicy.BASELINE, machine=machine)
        pagerank = IncrementalPageRank(graph, tolerance=1e-5, max_rounds=12)
        self.baseline: list[float] = []
        self.reorder: list[float] = []
        self.usc: list[float] = []
        self.cads: list[float] = []
        self.compute: list[float] = []
        self.max_degree = 0
        for batch in cached_batches(profile, batch_size, nb, seed=seed):
            result = engine.ingest(batch)
            self.baseline.append(result.time)
            self.reorder.append(result.alternatives[STRATEGY_RO])
            self.usc.append(result.alternatives[STRATEGY_RO_USC])
            cad = 0.0
            for counts in (batch.in_degrees()[1], batch.out_degrees()[1]):
                cad = max(cad, cad_from_degrees(counts, batch.size, 256))
            self.cads.append(cad)
            self.max_degree = max(self.max_degree, batch.max_degree())
            if with_compute:
                counters = pagerank.on_batch(batch.unique_vertices())
                self.compute.append(
                    compute_round_time(counters, machine=machine)
                )

    # -- totals ---------------------------------------------------------------
    @property
    def baseline_update(self) -> float:
        return sum(self.baseline)

    @property
    def ro_update(self) -> float:
        return sum(self.reorder)

    @property
    def usc_update(self) -> float:
        return sum(self.usc)

    @property
    def compute_total(self) -> float:
        return sum(self.compute)

    def perfect_abr_update(self, usc: bool = False) -> float:
        alt = self.usc if usc else self.reorder
        return sum(min(b, r) for b, r in zip(self.baseline, alt))

    def abr_update(
        self, usc: bool = False, n: int = 10, threshold: float = 465.0
    ) -> float:
        """Replay the ABR controller over the recorded per-batch times."""
        reordering = True
        total = 0.0
        alt = self.usc if usc else self.reorder
        workers = self.machine.num_workers
        for index, (t_base, t_alt, cad) in enumerate(
            zip(self.baseline, alt, self.cads)
        ):
            active = index % n == 0
            if active:
                total += instrumentation_time(
                    self.batch_size, reordering, DEFAULT_COSTS, workers
                )
            total += t_alt if reordering else t_base
            if active:
                reordering = cad >= threshold
        return total

    def overall(self, update_times: list[float] | float) -> float:
        """Overall (update + compute) total for a given update-time series."""
        if isinstance(update_times, float):
            return update_times + self.compute_total
        return sum(update_times) + self.compute_total


def fmt_speedup(value: float) -> str:
    return f"{value:.2f}x"


__all__ = [
    "CellRun",
    "QUICK_CAPS",
    "FULL_CAPS",
    "bench_jobs",
    "caps",
    "num_batches",
    "emit",
    "fmt_speedup",
    "geomean",
    "run_cells",
    "run_pipeline",
]
