"""Task FIFO buffer accounting (Fig. 11's core/controller FIFOs).

Each core tile has two 32-entry FIFOs: controller-bound (incoming tasks) and
core-bound (write operations handed back to the core).  When a consumer
core's drain rate falls behind the producers' injection rate, the FIFO fills
and producers back-pressure — the model charges those stalls to the
producing side, which matters exactly for the hot-vertex cores of enforced-
HAU-on-friendly-batches runs (Fig. 15 right)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .config import HAUConfig

__all__ = ["FIFOModel"]


@dataclass
class FIFOModel:
    """Fill model of one core's incoming-task FIFO over a batch."""

    config: HAUConfig
    peak_fill: float = 0.0
    backpressure_cycles: float = 0.0

    def account(
        self, arriving_tasks: float, drain_cycles_per_task: float, interval_cycles: float
    ) -> float:
        """Account a batch's arrivals against the core's drain rate.

        Returns:
            Back-pressure cycles pushed onto producers when the arrival rate
            exceeds the drain rate for longer than the FIFO can absorb.
        """
        if interval_cycles <= 0:
            raise SimulationError("interval_cycles must be positive")
        arrival_rate = arriving_tasks / interval_cycles
        drain_rate = (
            1.0 / drain_cycles_per_task if drain_cycles_per_task > 0 else float("inf")
        )
        if arrival_rate <= drain_rate:
            self.peak_fill = max(self.peak_fill, arrival_rate * drain_cycles_per_task)
            return 0.0
        # Excess work beyond what the FIFO hides becomes producer stalls.
        excess_tasks = (arrival_rate - drain_rate) * interval_cycles
        absorbed = min(excess_tasks, float(self.config.fifo_entries))
        stalled_tasks = excess_tasks - absorbed
        self.peak_fill = float(self.config.fifo_entries)
        stall = stalled_tasks * drain_cycles_per_task
        self.backpressure_cycles += stall
        return stall
