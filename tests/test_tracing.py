"""Per-batch JSONL tracing."""

import pytest

from repro.errors import AnalysisError
from repro.pipeline.runner import StreamingPipeline
from repro.pipeline.tracing import TraceEvent, TraceWriter, read_trace
from repro.update.engine import UpdatePolicy


def test_trace_roundtrip(tmp_path, flat_profile):
    path = tmp_path / "run.jsonl"
    with TraceWriter(path) as trace:
        StreamingPipeline(
            flat_profile, 200, "none", UpdatePolicy.ABR, trace=trace
        ).run(4)
    events = read_trace(path)
    assert len(events) == 4
    assert [e.batch_id for e in events] == [0, 1, 2, 3]
    assert all(isinstance(e, TraceEvent) for e in events)
    assert events[0].abr_active  # batch 0 is ABR-active
    assert not events[1].abr_active
    assert all(e.dataset == flat_profile.name for e in events)
    assert all(e.update_time > 0 for e in events)


def test_trace_records_oca_fields(tmp_path, skewed_profile):
    from repro.compute.oca import OCAConfig

    path = tmp_path / "run.jsonl"
    with TraceWriter(path) as trace:
        StreamingPipeline(
            skewed_profile, 500, "none", UpdatePolicy.BASELINE,
            use_oca=True, oca_config=OCAConfig(overlap_threshold=0.01, n=2),
            trace=trace,
        ).run(4)
    events = read_trace(path)
    assert any(e.deferred for e in events)
    assert any(e.overlap is not None for e in events)


def test_read_trace_missing_file(tmp_path):
    with pytest.raises(AnalysisError, match="no trace file"):
        read_trace(tmp_path / "nope.jsonl")


def test_read_trace_malformed_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"not": "a trace event"}\n')
    with pytest.raises(AnalysisError, match="malformed"):
        read_trace(path)


def test_writer_counts_events(tmp_path):
    path = tmp_path / "t.jsonl"
    writer = TraceWriter(path)
    assert writer.events_written == 0
    writer.close()
    assert read_trace(path) == []


def test_schema_v2_header_and_summary(tmp_path, flat_profile):
    from repro.pipeline.tracing import SCHEMA_VERSION, read_trace_document
    from repro.telemetry.core import Telemetry

    path = tmp_path / "v2.jsonl"
    tel = Telemetry("full")
    with TraceWriter(path, telemetry=tel) as trace:
        StreamingPipeline(
            flat_profile, 200, "none", UpdatePolicy.ABR,
            trace=trace, telemetry=tel,
        ).run(3)
    doc = read_trace_document(path)
    assert doc.schema_version == SCHEMA_VERSION == 2
    assert len(doc.events) == 3
    assert doc.summary is not None
    assert doc.summary.counter("pipeline.batches") == 3
    assert doc.summary.spans["stage.update"].count == 3
    # First and last physical lines are typed header/summary records.
    import json

    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["type"] == "header"
    assert json.loads(lines[-1])["type"] == "summary"


def test_v1_bare_event_lines_stay_readable(tmp_path, flat_profile):
    import dataclasses
    import json

    path = tmp_path / "v2.jsonl"
    with TraceWriter(path) as trace:
        StreamingPipeline(
            flat_profile, 200, "none", UpdatePolicy.ABR, trace=trace
        ).run(2)
    events = read_trace(path)
    # Rewrite as a legacy v1 file: bare event objects, no type/header.
    v1 = tmp_path / "v1.jsonl"
    v1.write_text(
        "".join(json.dumps(dataclasses.asdict(e)) + "\n" for e in events)
    )
    from repro.pipeline.tracing import read_trace_document

    doc = read_trace_document(v1)
    assert doc.schema_version == 1
    assert doc.events == events
    assert doc.summary is None


def test_unknown_line_types_and_fields_are_skipped(tmp_path, flat_profile):
    import json

    path = tmp_path / "fwd.jsonl"
    with TraceWriter(path) as trace:
        StreamingPipeline(
            flat_profile, 200, "none", UpdatePolicy.ABR, trace=trace
        ).run(1)
    lines = path.read_text().splitlines()
    batch = json.loads(lines[1])
    batch["field_from_the_future"] = 42
    doctored = [
        lines[0],
        json.dumps({"type": "record_from_the_future", "x": 1}),
        json.dumps(batch),
    ]
    path.write_text("".join(line + "\n" for line in doctored))
    events = read_trace(path)
    assert len(events) == 1
    assert not hasattr(events[0], "field_from_the_future")


def test_trailing_partial_line_warns_but_reads(tmp_path, flat_profile):
    path = tmp_path / "crashed.jsonl"
    with TraceWriter(path) as trace:
        StreamingPipeline(
            flat_profile, 200, "none", UpdatePolicy.ABR, trace=trace
        ).run(3)
    # Simulate a crash mid-write: truncate the last line in half.
    text = path.read_text()
    path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
    with pytest.warns(UserWarning, match="partially-written"):
        events = read_trace(path)
    assert len(events) == 2


def test_malformed_middle_line_still_raises(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "header", "schema_version": 2}\nnot json\n{}\n')
    with pytest.raises(AnalysisError, match="malformed"):
        read_trace(path)


def test_close_is_idempotent_and_fsyncs(tmp_path):
    from repro.telemetry.core import Telemetry

    tel = Telemetry("basic")
    tel.count("x")
    writer = TraceWriter(tmp_path / "t.jsonl", telemetry=tel)
    writer.close()
    writer.close()  # second close must be a no-op, not a ValueError
    from repro.pipeline.tracing import read_trace_document

    doc = read_trace_document(tmp_path / "t.jsonl")
    assert doc.summary is not None
    assert doc.summary.counter("x") == 1


def test_cli_run_with_trace(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "cli.jsonl"
    code = main([
        "run", "fb", "--batch-size", "300", "--num-batches", "2",
        "--algorithm", "none", "--mode", "abr", "--trace", str(path),
    ])
    assert code == 0
    assert "trace: 2 events" in capsys.readouterr().out
    assert len(read_trace(path)) == 2
