"""Ablation: robustness of the reproduction to cost-model constants.

Every figure in this repository rests on the modeled-time substitution
(DESIGN.md §2).  This benchmark scales each load-bearing constant from 0.5x
to 2x and verifies the reorder-friendly/adverse classification of
representative cells survives — i.e. the paper's qualitative conclusions are
a property of the *mechanisms*, not of the chosen numbers.
"""

from _harness import emit
from repro.analysis.report import render_table
from repro.analysis.sensitivity import classification_robustness, sweep_parameter
from repro.datasets.profiles import get_dataset

PARAMETERS = (
    "lock_base",
    "lock_handoff",
    "scan_cold",
    "scan_warm_factor",
    "sort_per_elem_level",
    "task_sched",
    "insert",
    "contention_cp_factor",
)
SCALES = (0.5, 0.75, 1.0, 1.5, 2.0)
CELLS = [
    (get_dataset("lj"), 100_000, 4),       # adverse
    (get_dataset("fb"), 10_000, 5),        # adverse
    (get_dataset("wiki"), 100_000, 4),     # friendly
    (get_dataset("talk"), 10_000, 5),      # friendly
]
EXPECTED = {
    ("lj", 100_000): False,
    ("fb", 10_000): False,
    ("wiki", 100_000): True,
    ("talk", 10_000): True,
}


def run_sensitivity():
    rows = []
    for parameter in PARAMETERS:
        points = sweep_parameter(parameter, SCALES, CELLS)
        robustness = classification_robustness(points, EXPECTED)
        spread = max(p.ro_speedup for p in points) / min(
            p.ro_speedup for p in points
        )
        rows.append([parameter, robustness, spread])
    return rows


def test_ablation_cost_sensitivity(benchmark):
    rows = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    emit(
        "ablation_cost_sensitivity",
        render_table(
            ["parameter", "classification robustness (0.5x-2x)",
             "speedup spread (max/min)"],
            rows,
            title="Ablation: cost-constant sensitivity of the friendly/adverse split",
        ),
    )
    for parameter, robustness, spread in rows:
        # The classification must survive every 2x perturbation...
        assert robustness == 1.0, parameter
        # ...while the constants still matter quantitatively.
        assert spread > 1.0, parameter
