"""Pipeline wiring of the extension algorithms and compute options."""

import pytest

from repro.compute.oca import OCAConfig
from repro.pipeline.runner import ALGORITHMS, StreamingPipeline
from repro.update.engine import UpdatePolicy


def test_algorithm_list_includes_extensions():
    assert "bfs" in ALGORITHMS and "cc" in ALGORITHMS


def test_bfs_pipeline_runs(flat_profile):
    metrics = StreamingPipeline(flat_profile, 200, "bfs", UpdatePolicy.ABR).run(3)
    assert metrics.total_compute_time > 0
    assert metrics.algorithm == "bfs"


def test_cc_pipeline_runs(flat_profile):
    pipeline = StreamingPipeline(flat_profile, 200, "cc", UpdatePolicy.ABR)
    metrics = pipeline.run(3)
    assert metrics.total_compute_time > 0
    # The CC engine tracked every applied edge's endpoints.
    cc = pipeline._incremental_cc
    batch = flat_profile.generator(seed=7).generate_batch(0, 200)
    u, v = int(batch.src[0]), int(batch.dst[0])
    assert cc.same_component(u, v)


def test_cc_with_oca_aggregation(skewed_profile):
    pipeline = StreamingPipeline(
        skewed_profile, 1_000, "cc", UpdatePolicy.BASELINE,
        use_oca=True, oca_config=OCAConfig(overlap_threshold=0.01, n=2),
    )
    metrics = pipeline.run(5)
    assert any(b.deferred for b in metrics.batches)
    assert metrics.batches[-1].compute_time > 0


def test_pr_tolerance_forwarded(flat_profile):
    pipeline = StreamingPipeline(
        flat_profile, 200, "pr", UpdatePolicy.BASELINE,
        pr_tolerance=1e-3, pr_max_rounds=7,
    )
    pipeline.run(1)
    assert pipeline._incremental_pr.tolerance == 1e-3
    assert pipeline._incremental_pr.max_rounds == 7


def test_sssp_source_override(flat_profile):
    pipeline = StreamingPipeline(
        flat_profile, 200, "sssp", UpdatePolicy.BASELINE, sssp_source=5
    )
    pipeline.run(1)
    assert pipeline._incremental_sssp.source == 5


def test_bfs_levels_consistent_with_static(flat_profile):
    from repro.compute.bfs import StaticBFS
    from repro.graph.snapshot import take_snapshot

    pipeline = StreamingPipeline(
        flat_profile, 300, "bfs", UpdatePolicy.BASELINE
    )
    pipeline.run(3)
    source = pipeline._incremental_bfs.source
    static, __ = StaticBFS(source).run(take_snapshot(pipeline.graph))
    assert pipeline._incremental_bfs.levels() == static.tolist()


def test_triangles_pipeline_runs(skewed_profile):
    pipeline = StreamingPipeline(
        skewed_profile, 500, "triangles", UpdatePolicy.BASELINE
    )
    metrics = pipeline.run(3)
    assert metrics.algorithm == "triangles"
    assert metrics.total_compute_time > 0
    # The adapter's count is exact: a fresh static count over the final
    # graph agrees.
    from repro.compute.triangles import StaticTriangleCount
    from repro.graph.snapshot import take_snapshot

    expected, __ = StaticTriangleCount().run(take_snapshot(pipeline.graph))
    assert pipeline.compute.count == expected
    assert expected > 0


def test_pr_static_honours_convergence_settings(skewed_profile):
    """Regression: pr_static once hard-coded tolerance=1e-7/max_iterations=50,
    silently ignoring the pipeline's pr_tolerance/pr_max_rounds."""

    def run(**kwargs):
        return StreamingPipeline(
            skewed_profile, 500, "pr_static", UpdatePolicy.BASELINE, **kwargs
        ).run(2)

    capped = run(pr_tolerance=1e-12, pr_max_rounds=1)
    free = run(pr_tolerance=1e-12, pr_max_rounds=100)
    # At an unreachable tolerance the rounds cap is what stops iteration, so
    # it must change the modeled compute work.
    assert capped.total_compute_time < free.total_compute_time

    loose = run(pr_tolerance=1e-1, pr_max_rounds=100)
    assert loose.total_compute_time < free.total_compute_time
