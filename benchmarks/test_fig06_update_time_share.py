"""Fig. 6: time spent in graph updates, baseline vs always-RO.

Paper: geomean across the matrix, updates take 19% of total time under the
baseline and 33% under input-oblivious RO (RO inflates the update share on
the many reorder-adverse cells).
"""

from _harness import CellRun, emit, geomean, record
from repro.analysis.report import render_kv, render_table
from repro.datasets.profiles import DATASETS

SIZES = (1_000, 10_000, 100_000)


def run_fig06():
    rows = []
    baseline_shares = []
    ro_shares = []
    for name, profile in DATASETS.items():
        for batch_size in SIZES:
            cell = CellRun(profile, batch_size, with_compute=True)
            compute = cell.compute_total
            b_share = cell.baseline_update / (cell.baseline_update + compute)
            r_share = cell.ro_update / (cell.ro_update + compute)
            baseline_shares.append(b_share)
            ro_shares.append(r_share)
            rows.append(
                [name, batch_size, 100 * b_share, 100 * r_share,
                 cell.baseline_update, cell.ro_update]
            )
    return rows, baseline_shares, ro_shares


def test_fig06_update_time_share(benchmark):
    rows, baseline_shares, ro_shares = benchmark.pedantic(
        run_fig06, rounds=1, iterations=1
    )
    summary = {
        "geomean baseline update share (%)": 100 * geomean(baseline_shares),
        "geomean RO update share (%)": 100 * geomean(ro_shares),
        "paper": "baseline 19%, RO 33%",
    }
    emit(
        "fig06_update_time_share",
        render_table(
            ["dataset", "batch size", "baseline update %", "RO update %",
             "baseline update (tu)", "RO update (tu)"],
            rows,
            title="Fig. 6: total time spent in updates",
        )
        + "\n\n"
        + render_kv("summary (geomean)", summary),
    )
    gb = geomean(baseline_shares)
    gr = geomean(ro_shares)
    record(
        "fig06_update_time_share",
        {"baseline_share": gb, "ro_share": gr, "ro_minus_baseline": gr - gb},
    )
    # The reproduced property: RO inflates the update share, and the
    # baseline share sits in the tens of percent.
    assert gr > gb
    assert 0.05 < gb < 0.60
