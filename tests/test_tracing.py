"""Per-batch JSONL tracing."""

import pytest

from repro.errors import AnalysisError
from repro.pipeline.runner import StreamingPipeline
from repro.pipeline.tracing import TraceEvent, TraceWriter, read_trace
from repro.update.engine import UpdatePolicy


def test_trace_roundtrip(tmp_path, flat_profile):
    path = tmp_path / "run.jsonl"
    with TraceWriter(path) as trace:
        StreamingPipeline(
            flat_profile, 200, "none", UpdatePolicy.ABR, trace=trace
        ).run(4)
    events = read_trace(path)
    assert len(events) == 4
    assert [e.batch_id for e in events] == [0, 1, 2, 3]
    assert all(isinstance(e, TraceEvent) for e in events)
    assert events[0].abr_active  # batch 0 is ABR-active
    assert not events[1].abr_active
    assert all(e.dataset == flat_profile.name for e in events)
    assert all(e.update_time > 0 for e in events)


def test_trace_records_oca_fields(tmp_path, skewed_profile):
    from repro.compute.oca import OCAConfig

    path = tmp_path / "run.jsonl"
    with TraceWriter(path) as trace:
        StreamingPipeline(
            skewed_profile, 500, "none", UpdatePolicy.BASELINE,
            use_oca=True, oca_config=OCAConfig(overlap_threshold=0.01, n=2),
            trace=trace,
        ).run(4)
    events = read_trace(path)
    assert any(e.deferred for e in events)
    assert any(e.overlap is not None for e in events)


def test_read_trace_missing_file(tmp_path):
    with pytest.raises(AnalysisError, match="no trace file"):
        read_trace(tmp_path / "nope.jsonl")


def test_read_trace_malformed_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"not": "a trace event"}\n')
    with pytest.raises(AnalysisError, match="malformed"):
        read_trace(path)


def test_writer_counts_events(tmp_path):
    path = tmp_path / "t.jsonl"
    writer = TraceWriter(path)
    assert writer.events_written == 0
    writer.close()
    assert read_trace(path) == []


def test_cli_run_with_trace(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "cli.jsonl"
    code = main([
        "run", "fb", "--batch-size", "300", "--num-batches", "2",
        "--algorithm", "none", "--mode", "abr", "--trace", str(path),
    ])
    assert code == 0
    assert "trace: 2 events" in capsys.readouterr().out
    assert len(read_trace(path)) == 2
