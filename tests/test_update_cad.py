"""CAD_lambda metric (Section 4.2)."""

import numpy as np
import pytest

from conftest import make_batch
from repro.costs import CostParameters
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.update.cad import cad_from_degrees, cad_from_stats, instrumentation_time


def test_formula_matches_paper_definition():
    # b = 100; degrees: one vertex 60, one 30, ten of 1.
    degrees = np.array([60, 30] + [1] * 10)
    # lambda = 20: y = edges from deg <= 20 vertices = 10; x = 2.
    assert cad_from_degrees(degrees, batch_size=100, lam=20) == pytest.approx(
        (100 - 10) / 2
    )


def test_no_top_vertices_gives_zero():
    degrees = np.array([3, 2, 1])
    assert cad_from_degrees(degrees, batch_size=6, lam=10) == 0.0


def test_empty_degrees():
    assert cad_from_degrees(np.array([]), 100, 10) == 0.0


def test_lambda_validation():
    with pytest.raises(ConfigurationError):
        cad_from_degrees(np.array([1]), 1, lam=0)


def test_cad_is_average_degree_of_top_vertices():
    degrees = np.array([500, 400, 1, 1])
    value = cad_from_degrees(degrees, batch_size=902, lam=256)
    assert value == pytest.approx((500 + 400) / 2)


def test_cad_from_stats_takes_max_side(tiny_graph):
    # 5 edges into vertex 9 (in-degree 5), sources distinct (out-degree 1).
    stats = tiny_graph.apply_batch(make_batch([1, 2, 3, 4, 5], [9] * 5))
    result = cad_from_stats(stats, lam=3)
    assert result.value == pytest.approx(5.0)  # the in-side top vertex
    assert result.x == 1
    assert result.lam == 3


def test_cad_from_stats_zero_when_flat(tiny_graph):
    stats = tiny_graph.apply_batch(make_batch([1, 2], [3, 4]))
    assert cad_from_stats(stats, lam=3).value == 0.0


def test_instrumentation_hashmap_costlier_than_reordered():
    costs = CostParameters()
    reordered = instrumentation_time(10_000, True, costs, num_workers=8)
    hashmap = instrumentation_time(10_000, False, costs, num_workers=8)
    assert hashmap > reordered
    assert reordered > 0


def test_instrumentation_scales_with_batch_and_workers():
    costs = CostParameters()
    assert instrumentation_time(20_000, True, costs, 8) == pytest.approx(
        2 * instrumentation_time(10_000, True, costs, 8)
    )
    assert instrumentation_time(10_000, True, costs, 16) == pytest.approx(
        instrumentation_time(10_000, True, costs, 8) / 2
    )
