"""Every script under examples/ runs clean (quick profiles).

Each example is executed as a real subprocess — exactly how a reader runs
it — with ``REPRO_EXAMPLE_QUICK=1`` selecting the reduced stream lengths
the examples define for CI.  The examples carry their own internal
assertions (exactness cross-checks, ABR/OCA behavioral claims), so a zero
exit status is a meaningful end-to-end check of the public API.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def test_examples_present():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_QUICK"] = "1"
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip()  # every example narrates its result
