"""Event-driven HAU simulation — a cross-check for the analytical model.

The production :class:`~repro.hau.simulator.HAUSimulator` aggregates work
per core deterministically.  This module simulates the same batch at
*per-task event* granularity: producers issue ``supply_task`` instructions
serially, TaskReq packets transit the mesh with their routed latency,
consumer FIFOs fill and drain with real occupancy, and each core's cache
controller is busy for the task's modeled cycles.  It is O(tasks log tasks)
and meant for small batches; ``tests/test_hau_events.py`` and the
``test_ablation_event_model`` benchmark cross-validate the two backends.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..graph.base import BatchUpdateStats
from .cache import TileCache
from .config import DEFAULT_HAU_CONFIG, HAUConfig
from .controller import process_cluster
from .noc import MeshNoC
from .tasks import clusters_from_stats, producer_core

__all__ = ["EventDrivenResult", "EventDrivenHAU"]


@dataclass(frozen=True)
class EventDrivenResult:
    """Outcome of one event-driven batch simulation.

    Attributes:
        cycles: makespan (last task completion).
        tasks_per_core: tasks consumed per worker core.
        fifo_peak_per_core: maximum FIFO occupancy observed per core.
        backpressured_tasks: arrivals that found the FIFO full and stalled
            in the network until space drained.
    """

    cycles: float
    tasks_per_core: dict[int, int]
    fifo_peak_per_core: dict[int, int]
    backpressured_tasks: int


@dataclass
class _CoreState:
    """Mutable per-core simulation state."""

    fifo: list = field(default_factory=list)  # (ready_time, cost) min-heap
    busy_until: float = 0.0
    fifo_peak: int = 0
    tasks_done: int = 0


class EventDrivenHAU:
    """Per-task event simulator for one or more batches.

    Keeps persistent per-tile caches like the analytical backend so the two
    can be compared batch for batch.
    """

    def __init__(self, config: HAUConfig | None = None, trigger_cycles: float = 1500.0):
        self.config = config or DEFAULT_HAU_CONFIG
        self.noc = MeshNoC(self.config)
        self.caches = {
            core: TileCache(self.config) for core in self.config.worker_cores
        }
        self.trigger_cycles = trigger_cycles

    def simulate_batch(self, stats: BatchUpdateStats) -> EventDrivenResult:
        """Run one batch task by task; returns the observed makespan."""
        config = self.config
        clusters = clusters_from_stats(stats, config)
        if not clusters:
            return EventDrivenResult(
                cycles=self.trigger_cycles,
                tasks_per_core={c: 0 for c in config.worker_cores},
                fifo_peak_per_core={c: 0 for c in config.worker_cores},
                backpressured_tasks=0,
            )

        # Per-task costs: a cluster's modeled cycles split evenly over its
        # tasks (residency is charged once per cluster, as in the
        # analytical backend).
        per_task_cost: list[tuple[int, int, float]] = []  # (producer, consumer, cost)
        for index, cluster in enumerate(clusters):
            cost = process_cluster(
                cluster,
                self.caches[cluster.consumer],
                config,
                l3_hit_probability=1.0,
                remote_hops_cycles=2.0 * config.hop_latency,
            )
            share = cost.cycles / cluster.tasks
            producer = producer_core(index, config)
            per_task_cost.extend(
                (producer, cluster.consumer, share) for __ in range(cluster.tasks)
            )

        # Producers issue their tasks serially from t = trigger.
        producer_clock = {core: self.trigger_cycles for core in config.worker_cores}
        events: list[tuple[float, int, int, float]] = []  # (arrival, seq, consumer, cost)
        for seq, (producer, consumer, cost) in enumerate(per_task_cost):
            producer_clock[producer] += config.supply_task_cycles
            arrival = producer_clock[producer] + self.noc.base_latency(
                producer, consumer
            )
            heapq.heappush(events, (arrival, seq, consumer, cost))

        cores = {core: _CoreState() for core in config.worker_cores}
        backpressured = 0
        makespan = self.trigger_cycles
        while events:
            arrival, seq, consumer, cost = heapq.heappop(events)
            state = cores[consumer]
            # Drain completed work from the FIFO model: tasks whose start
            # time has passed are no longer queued.
            queued = [t for t in state.fifo if t > arrival]
            state.fifo = queued
            if len(queued) >= config.fifo_entries:
                # FIFO full: the packet waits in the network until the
                # earliest queued task starts.
                backpressured += 1
                retry = min(queued) + 1.0
                if retry <= arrival:
                    raise SimulationError("backpressure retry does not advance")
                heapq.heappush(events, (retry, seq, consumer, cost))
                continue
            start = max(arrival, state.busy_until)
            state.fifo.append(start)
            state.fifo_peak = max(state.fifo_peak, len(state.fifo))
            state.busy_until = start + cost
            state.tasks_done += 1
            makespan = max(makespan, state.busy_until)
        return EventDrivenResult(
            cycles=makespan,
            tasks_per_core={c: cores[c].tasks_done for c in config.worker_cores},
            fifo_peak_per_core={c: cores[c].fifo_peak for c in config.worker_cores},
            backpressured_tasks=backpressured,
        )
