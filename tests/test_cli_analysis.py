"""CLI analysis subcommands (oca / accuracy / sensitivity)."""

import pytest

from repro.cli import main


def test_oca_command(capsys):
    assert main(["oca", "amazon", "--num-batches", "4"]) == 0
    out = capsys.readouterr().out
    assert "OCA behaviour" in out
    assert "compute speedup" in out


def test_accuracy_command(capsys):
    assert main(["accuracy", "fb", "--num-batches", "3"]) == 0
    out = capsys.readouterr().out
    assert "decision accuracy" in out
    assert "465" in out  # the paper's TH appears in the grid


def test_sensitivity_command(capsys):
    assert main(["sensitivity", "lock_base", "--num-batches", "2"]) == 0
    out = capsys.readouterr().out
    assert "lock_base" in out
    assert "friendly" in out and "adverse" in out


def test_sensitivity_unknown_parameter():
    from repro.errors import AnalysisError

    with pytest.raises(AnalysisError):
        main(["sensitivity", "warp_core", "--num-batches", "2"])
