"""Built-in pipeline algorithms, registered with the compute registry.

Each class adapts one analytics engine (Section 6.1's four algorithms plus
the extension algorithms) to the :class:`~repro.compute.registry.ComputeAlgorithm`
protocol the pipeline drives.  ``"none"`` runs the update phase only.

The adapters hold the per-stream engine state that used to live as
``StreamingPipeline._incremental_*`` attributes; the pipeline still exposes
those names (as properties) for backwards compatibility.
"""

from __future__ import annotations

from ..graph.snapshot import DeltaSnapshotter
from .bfs import IncrementalBFS
from .components import IncrementalConnectedComponents
from .pagerank import IncrementalPageRank, StaticPageRank
from .registry import ComputeAlgorithm, register_algorithm
from .sssp import IncrementalSSSP, StaticSSSP

__all__ = [
    "PageRankAlgorithm",
    "SSSPAlgorithm",
    "StaticPageRankAlgorithm",
    "StaticSSSPAlgorithm",
    "BFSAlgorithm",
    "ConnectedComponentsAlgorithm",
    "NoComputeAlgorithm",
]


class _SourceMixin:
    """Resolves the SSSP/BFS source vertex from the first batch."""

    def resolve_source(self, first_batch) -> int:
        if self.ctx.sssp_source is None:
            self.ctx.sssp_source = int(first_batch.src[0])
        return self.ctx.sssp_source


@register_algorithm("pr")
class PageRankAlgorithm(ComputeAlgorithm):
    """Incremental PageRank over the affected-vertex frontier."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.engine: IncrementalPageRank | None = None

    def ensure(self, graph, first_batch):
        if self.engine is None:
            self.engine = IncrementalPageRank(
                graph,
                tolerance=self.ctx.pr_tolerance,
                max_rounds=self.ctx.pr_max_rounds,
            )

    def on_round(self, batch, affected, covered):
        return self.engine.on_batch(affected)


@register_algorithm("sssp")
class SSSPAlgorithm(_SourceMixin, ComputeAlgorithm):
    """Incremental SSSP (KickStarter-style invalidate-and-repair)."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.engine: IncrementalSSSP | None = None

    def ensure(self, graph, first_batch):
        if self.engine is None:
            self.engine = IncrementalSSSP(graph, self.resolve_source(first_batch))

    def on_round(self, batch, affected, covered):
        return self.engine.on_batches(covered)


@register_algorithm("pr_static")
class StaticPageRankAlgorithm(ComputeAlgorithm):
    """From-scratch PageRank on a (delta-patched) CSR snapshot per round."""

    def __init__(self, ctx):
        super().__init__(ctx)
        # Static algorithms re-snapshot every round; patch the cached CSR
        # arrays instead of rebuilding from the dicts each time.
        self.snapshotter = DeltaSnapshotter(ctx.graph, telemetry=ctx.telemetry)

    def on_round(self, batch, affected, covered):
        __, counters = StaticPageRank(
            tolerance=self.ctx.pr_tolerance,
            max_iterations=self.ctx.pr_max_rounds,
        ).run(self.snapshotter.snapshot())
        return counters


@register_algorithm("sssp_static")
class StaticSSSPAlgorithm(_SourceMixin, ComputeAlgorithm):
    """From-scratch SSSP on a (delta-patched) CSR snapshot per round."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.snapshotter = DeltaSnapshotter(ctx.graph, telemetry=ctx.telemetry)

    def ensure(self, graph, first_batch):
        self.resolve_source(first_batch)

    def on_round(self, batch, affected, covered):
        __, counters = StaticSSSP(self.ctx.sssp_source).run(
            self.snapshotter.snapshot()
        )
        return counters


@register_algorithm("bfs")
class BFSAlgorithm(_SourceMixin, ComputeAlgorithm):
    """Incremental BFS levels from a fixed source."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.engine: IncrementalBFS | None = None

    def ensure(self, graph, first_batch):
        if self.engine is None:
            self.engine = IncrementalBFS(graph, self.resolve_source(first_batch))

    def on_round(self, batch, affected, covered):
        return self.engine.on_batches(covered)


@register_algorithm("cc")
class ConnectedComponentsAlgorithm(ComputeAlgorithm):
    """Incremental connected components (union-find over applied edges)."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.engine: IncrementalConnectedComponents | None = None

    def ensure(self, graph, first_batch):
        if self.engine is None:
            self.engine = IncrementalConnectedComponents(graph)

    def on_round(self, batch, affected, covered):
        counters = None
        for b in covered:
            c = self.engine.on_batch(b)
            counters = c if counters is None else counters + c
        return counters


@register_algorithm("none")
class NoComputeAlgorithm(ComputeAlgorithm):
    """Update-phase-only runs: every compute round is free."""

    def on_round(self, batch, affected, covered):
        return None
