"""Triangle counting: static exactness and incremental maintenance."""

import networkx as nx
import pytest

from conftest import make_batch
from repro.compute.triangles import IncrementalTriangleCounter, StaticTriangleCount
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.snapshot import take_snapshot


def _nx_triangles(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for u in graph.vertices_with_edges():
        for v in graph.out_neighbors(u):
            if u != v:
                g.add_edge(u, v)
    return sum(nx.triangles(g).values()) // 3


def test_static_single_triangle():
    graph = AdjacencyListGraph(4)
    graph.apply_batch(make_batch([0, 1, 2], [1, 2, 0]))
    count, counters = StaticTriangleCount().run(take_snapshot(graph))
    assert count == 1
    assert counters.touched_edges > 0


def test_static_matches_networkx(small_generator):
    graph = AdjacencyListGraph(500)
    for batch in small_generator.batches(800, 2):
        graph.apply_batch(batch)
    count, __ = StaticTriangleCount().run(take_snapshot(graph))
    assert count == _nx_triangles(graph)


def test_incremental_counts_new_triangles():
    graph = AdjacencyListGraph(4)
    tc = IncrementalTriangleCounter(graph)
    tc.ingest(make_batch([0, 1], [1, 2]))
    assert tc.count == 0
    tc.ingest(make_batch([2], [0], batch_id=1))
    assert tc.count == 1


def test_reverse_arc_does_not_double_count():
    graph = AdjacencyListGraph(3)
    tc = IncrementalTriangleCounter(graph)
    tc.ingest(make_batch([0, 1, 2, 1, 2, 0], [1, 2, 0, 0, 1, 2]))
    # Both arcs of every pair exist, still one undirected triangle.
    assert tc.count == 1


def test_intra_batch_triangle_counted_once():
    graph = AdjacencyListGraph(3)
    tc = IncrementalTriangleCounter(graph)
    tc.ingest(make_batch([0, 1, 2, 0], [1, 2, 0, 1]))  # duplicate 0->1 too
    assert tc.count == 1


def test_deletion_removes_triangles():
    graph = AdjacencyListGraph(4)
    tc = IncrementalTriangleCounter(graph)
    tc.ingest(make_batch([0, 1, 2, 0], [1, 2, 0, 3]))
    assert tc.count == 1
    tc.ingest(make_batch([1], [2], batch_id=1, is_delete=[True]))
    assert tc.count == 0
    assert not graph.has_edge(1, 2)


def test_incremental_matches_static_on_stream(small_generator):
    graph = AdjacencyListGraph(500)
    tc = IncrementalTriangleCounter(graph)
    for batch in small_generator.batches(400, 4):
        tc.ingest(batch)
        static, __ = StaticTriangleCount().run(take_snapshot(graph))
        assert tc.count == static == _nx_triangles(graph)


def test_incremental_with_random_deletions_matches_static():
    import numpy as np

    rng = np.random.default_rng(9)
    graph = AdjacencyListGraph(40)
    tc = IncrementalTriangleCounter(graph)
    for batch_id in range(5):
        size = 60
        src = rng.integers(0, 40, size)
        dst = (src + rng.integers(1, 39, size)) % 40
        is_delete = rng.random(size) < 0.3 if batch_id else None
        batch = make_batch(src.tolist(), dst.tolist(), batch_id=batch_id,
                           is_delete=is_delete)
        tc.ingest(batch)
        static, __ = StaticTriangleCount().run(take_snapshot(graph))
        assert tc.count == static


def test_graph_bookkeeping_maintained():
    graph = AdjacencyListGraph(8)
    tc = IncrementalTriangleCounter(graph)
    tc.ingest(make_batch([0, 1, 0], [1, 2, 1]))  # duplicate 0->1
    assert graph.num_edges == 2
    assert graph.batches_applied == 1
    assert graph.edge_weight(0, 1) == 1.0
