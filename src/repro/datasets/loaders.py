"""Loading real edge-list files as streams.

The paper's static datasets are plain SNAP-style edge lists, randomly
shuffled to break the source-id ordering of the input files ("not the likely
scenario of edge appearance for real-world streaming graphs"); timestamped
datasets are replayed in file order.  These loaders let a user feed their own
data through the same pipeline the synthetic profiles use.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import ConfigurationError
from .stream import Batch, batches_from_arrays

__all__ = ["read_edge_list", "write_edge_list", "stream_from_file"]


def read_edge_list(
    path: str | Path,
    comment: str = "#",
    weighted: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parse a whitespace-separated edge-list file.

    Args:
        path: file with one ``src dst [weight]`` tuple per line.
        comment: lines starting with this prefix are skipped.
        weighted: expect (and require) a third weight column.

    Returns:
        ``(src, dst, weight)`` arrays; weight is all-ones when unweighted.
    """
    src: list[int] = []
    dst: list[int] = []
    weight: list[float] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2 or (weighted and len(parts) < 3):
                raise ConfigurationError(
                    f"{path}:{line_number}: expected "
                    f"{'src dst weight' if weighted else 'src dst'}, got {line!r}"
                )
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            weight.append(float(parts[2]) if weighted else 1.0)
    if not src:
        raise ConfigurationError(f"{path}: no edges found")
    return (
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(weight, dtype=np.float64),
    )


def write_edge_list(
    path: str | Path,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray | None = None,
) -> None:
    """Write edges as a whitespace-separated file (weights if given)."""
    with open(path, "w") as handle:
        if weight is None:
            for u, v in zip(src.tolist(), dst.tolist()):
                handle.write(f"{u} {v}\n")
        else:
            for u, v, w in zip(src.tolist(), dst.tolist(), weight.tolist()):
                handle.write(f"{u} {v} {w}\n")


def stream_from_file(
    path: str | Path,
    batch_size: int,
    shuffle: bool = False,
    seed: int = 7,
    weighted: bool = False,
) -> tuple[list[Batch], int]:
    """Load a file into batches, optionally shuffling arrival order.

    Args:
        path: edge-list file.
        batch_size: edges per batch.
        shuffle: permute the edges first (the paper's treatment of static
            datasets); leave False for timestamped data.
        seed: shuffle RNG seed.
        weighted: parse a weight column.

    Returns:
        ``(batches, num_vertices)`` where ``num_vertices`` is one past the
        largest vertex id seen (the universe a graph needs).
    """
    src, dst, weight = read_edge_list(path, weighted=weighted)
    if shuffle:
        order = np.random.default_rng(seed).permutation(len(src))
        src, dst, weight = src[order], dst[order], weight[order]
    num_vertices = int(max(src.max(), dst.max())) + 1
    return batches_from_arrays(src, dst, batch_size, weight), num_vertices
