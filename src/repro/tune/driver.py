"""Fault-tolerant auto-tuning over the run-config policy space.

:class:`TuneDriver` searches a :class:`~repro.tune.space.SearchSpace` for
the config maximizing a registered objective, evaluating trials through the
fault-isolating executor (:func:`~repro.pipeline.executor.run_matrix`):

* **per-trial crash attribution** — a trial whose worker raises, dies, or
  times out is recorded as a failed trial with its error string; every
  other trial's result is kept and the search continues;
* **determinism** — proposals come from per-trial RNGs keyed on
  ``(seed, trial_id)`` and trial streams reuse the base config's seed, so
  two searches over the same space/seed evaluate identical configs and
  scores at any ``jobs`` count;
* **resume** — every finished trial is appended to ``journal.jsonl``
  (fsynced, torn-tail tolerant).  Re-running the same search over the same
  output directory replays the journal (optimizers re-observe past scores)
  and evaluates only the remaining trial ids, so a killed search continues
  exactly where it stopped;
* **fairness** — trial 0 always evaluates the unmodified base config (the
  incumbent), so the reported best is never worse than the default; when a
  trial moves ``batch_size``, its ``num_batches`` is recomputed to hold
  the total edge budget constant, keeping per-edge objectives comparable.

Outputs (under ``out_dir``): ``journal.jsonl`` (append-only trial log),
``trajectory.csv`` (score and best-so-far per trial), and
``best_config.json`` (the winning config; round-trips through
``RunConfig.from_dict``).
"""

from __future__ import annotations

import csv
import dataclasses
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path

from ..errors import TuneError
from ..pipeline.config import RunConfig
from ..pipeline.executor import run_matrix
from ..telemetry.core import make_telemetry
from .objectives import get_objective
from .optimizers import make_optimizer
from .space import SearchSpace

__all__ = ["TrialRecord", "TuneResult", "TuneDriver"]

_JOURNAL_VERSION = 1

#: Fault-injection hook for the resume smoke test: when set to N, the
#: driver hard-exits (``os._exit``) immediately after the N-th trial line
#: exists in the journal — mid-search, before any summary output — so a
#: rerun must recover purely from the journal.
_KILL_ENV = "REPRO_TUNE_KILL_AFTER"
_KILL_EXIT_CODE = 73


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated (or failed) trial, as journaled.

    Attributes:
        trial_id: position in the search (0 = the baseline incumbent).
        assignment: the searched values (empty for the baseline trial).
        score: objective value (None when the trial failed).
        error: failure description (None when the trial succeeded).
        config: the full evaluated ``RunConfig`` as a dict (round-trips
            through ``RunConfig.from_dict``).
    """

    trial_id: int
    assignment: dict
    score: float | None
    error: str | None
    update_time: float
    compute_time: float
    num_batches: int
    config: dict

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_journal_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["type"] = "trial"
        return out

    @classmethod
    def from_journal_dict(cls, data: dict) -> "TrialRecord":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one search.

    Attributes:
        trials: every trial in id order (journaled + fresh).
        best: the highest-scoring successful trial.
        best_config: ``best``'s config, lifted back into ``RunConfig``.
        resumed: trials recovered from a pre-existing journal.
        telemetry: the driver's ``tune.*`` counters, when instrumented.
    """

    trials: tuple[TrialRecord, ...]
    best: TrialRecord
    best_config: RunConfig
    objective: str
    resumed: int
    telemetry: object | None = None


class TuneDriver:
    """Run one auto-tuning search end to end.

    Args:
        space: the search space.
        base: the incumbent config trials derive from (also trial 0).
        out_dir: journal/trajectory/best-config directory (created).
        objective: registered objective name (higher is better).
        optimizer: registered optimizer name.
        trials: total trial budget, including the baseline trial.
        jobs: worker processes for trial evaluation (1 = serial).
        seed: search seed (proposal randomness only — trial runs keep the
            base config's stream seed so every trial sees the same edges).
        telemetry: driver instrumentation level for ``tune.*`` counters.
        checkpoint_every: when > 0, each trial run checkpoints its pipeline
            every that many batches into a per-trial subdirectory of
            ``out_dir/checkpoints`` (namespaced per trial id — see
            ``run_matrix(checkpoint_root=...)``) and auto-resumes from it.
    """

    def __init__(
        self,
        space: SearchSpace,
        base: RunConfig,
        *,
        out_dir: str | Path,
        objective: str = "ingest_throughput",
        optimizer: str = "random",
        trials: int = 8,
        jobs: int = 1,
        seed: int = 0,
        telemetry: str = "basic",
        checkpoint_every: int = 0,
    ):
        if trials < 1:
            raise TuneError(f"trials must be >= 1, got {trials}")
        if base.num_batches is None:
            raise TuneError(
                "tuning needs a bounded workload: set base.num_batches"
            )
        self.space = space
        self.base = base
        self.out_dir = Path(out_dir)
        self.objective = get_objective(objective)
        self.optimizer_name = optimizer
        self.trials = trials
        self.jobs = jobs
        self.seed = seed
        self.checkpoint_every = checkpoint_every
        self.telemetry = make_telemetry(telemetry)
        self.journal_path = self.out_dir / "journal.jsonl"
        self.trajectory_path = self.out_dir / "trajectory.csv"
        self.best_path = self.out_dir / "best_config.json"

    # -- journal --------------------------------------------------------------
    def _meta(self) -> dict:
        """The search identity a journal must match to be resumable.

        The trial budget is deliberately excluded: re-running with a higher
        ``--trials`` extends a finished search instead of invalidating it.
        """
        return {
            "type": "meta",
            "version": _JOURNAL_VERSION,
            "space": self.space.to_dict(),
            "base": self.base.to_dict(),
            "objective": self.objective.name,
            "optimizer": self.optimizer_name,
            "seed": self.seed,
        }

    def _load_journal(self) -> dict[int, TrialRecord]:
        """Parse an existing journal; {} when none exists.

        The final line may be torn (the writer was killed mid-append) and
        is then ignored; corruption anywhere else — or a meta line naming a
        different search — raises :class:`TuneError` rather than silently
        mixing two searches' trials.
        """
        if not self.journal_path.exists():
            return {}
        lines = self.journal_path.read_text().splitlines()
        records: dict[int, TrialRecord] = {}
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    break  # torn tail from a mid-append kill
                raise TuneError(
                    f"corrupt tune journal {self.journal_path} "
                    f"(line {index + 1}): {exc}"
                ) from exc
            if data.get("type") == "meta":
                expected = self._meta()
                if data != expected:
                    raise TuneError(
                        f"journal {self.journal_path} records a different "
                        f"search (space/base/objective/optimizer/seed "
                        f"mismatch); point --out at a fresh directory"
                    )
                continue
            if data.get("type") == "trial":
                record = TrialRecord.from_journal_dict(data)
                records[record.trial_id] = record
        return records

    def _append_journal(self, payload: dict) -> None:
        with open(self.journal_path, "a") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _maybe_die(self, recorded_trials: int) -> None:
        kill_after = int(os.environ.get(_KILL_ENV, "0") or "0")
        if kill_after > 0 and recorded_trials >= kill_after:
            os._exit(_KILL_EXIT_CODE)

    # -- trial construction ---------------------------------------------------
    def _trial_config(self, assignment: dict) -> RunConfig:
        """Materialize one trial's config with fairness normalizations.

        * **edge budget** — when the assignment moves ``batch_size``, the
          trial's ``num_batches`` is recomputed so every trial ingests (as
          close as integer arithmetic allows) the same total edges as the
          base run, keeping per-edge objectives comparable;
        * **instrumentation** — uninstrumented bases are bumped to
          ``basic`` telemetry so objectives can read exact edge counts and
          the ``update.alt.*`` counterfactual counters.
        """
        config = self.space.apply(self.base, assignment)
        updates: dict = {}
        if config.batch_size != self.base.batch_size:
            edge_budget = self.base.batch_size * self.base.num_batches
            updates["num_batches"] = max(
                1, round(edge_budget / config.batch_size)
            )
        if config.telemetry == "off":
            updates["telemetry"] = "basic"
        return dataclasses.replace(config, **updates) if updates else config

    # -- the search loop ------------------------------------------------------
    def run(self) -> TuneResult:
        tel = self.telemetry
        self.out_dir.mkdir(parents=True, exist_ok=True)
        records = self._load_journal()
        resumed = len(records)
        if not self.journal_path.exists() or not resumed:
            # (Re)state the search identity at the head of a fresh journal.
            self.journal_path.write_text("")
            self._append_journal(self._meta())
        optimizer = make_optimizer(
            self.optimizer_name, self.space,
            seed=self.seed, trials=self.trials,
        )
        for trial_id in sorted(records):
            record = records[trial_id]
            optimizer.tell(trial_id, record.assignment, record.score)
        if tel.enabled and resumed:
            tel.count("tune.trials.resumed", resumed)

        wave_size = max(1, self.jobs) if self.jobs else os.cpu_count() or 1
        next_id = 0
        exhausted = False
        while next_id < self.trials and not exhausted:
            wave: list[tuple[int, dict, RunConfig]] = []
            while len(wave) < wave_size and next_id < self.trials:
                trial_id = next_id
                next_id += 1
                if trial_id in records:
                    continue
                if trial_id == 0:
                    assignment: dict | None = {}
                else:
                    assignment = optimizer.ask(trial_id)
                    if assignment is None:
                        exhausted = True
                        if tel.enabled:
                            tel.count("tune.exhausted")
                        break
                try:
                    config = self._trial_config(assignment)
                except TuneError:
                    raise
                except Exception as exc:  # invalid proposal → failed trial
                    record = TrialRecord(
                        trial_id=trial_id,
                        assignment=assignment,
                        score=None,
                        error=f"{type(exc).__name__}: {exc}",
                        update_time=0.0,
                        compute_time=0.0,
                        num_batches=0,
                        config={},
                    )
                    self._record(records, optimizer, record, tel)
                    continue
                wave.append((trial_id, assignment, config))
            if not wave:
                continue
            checkpoint_kwargs = {}
            if self.checkpoint_every > 0:
                checkpoint_kwargs = {
                    "checkpoint_root": str(self.out_dir / "checkpoints"),
                    "checkpoint_every": self.checkpoint_every,
                    "checkpoint_names": [
                        f"trial-{trial_id:06d}" for trial_id, _, _ in wave
                    ],
                }
            results = run_matrix(
                [config for _, _, config in wave],
                jobs=self.jobs,
                **checkpoint_kwargs,
            )
            for (trial_id, assignment, config), result in zip(wave, results):
                record = self._score_trial(trial_id, assignment, config, result)
                self._record(records, optimizer, record, tel)

        trials = tuple(records[i] for i in sorted(records))
        successes = [t for t in trials if t.ok and t.score is not None]
        if not successes:
            raise TuneError(
                f"all {len(trials)} trials failed; see {self.journal_path}"
            )
        best = max(successes, key=lambda t: t.score)
        best_config = RunConfig.from_dict(best.config)
        if tel.enabled:
            tel.gauge("tune.best_score", best.score)
            tel.gauge("tune.best_trial", best.trial_id)
        self._write_trajectory(trials)
        self._write_best(best)
        return TuneResult(
            trials=trials,
            best=best,
            best_config=best_config,
            objective=self.objective.name,
            resumed=resumed,
            telemetry=tel.snapshot() if tel.enabled else None,
        )

    def _score_trial(self, trial_id: int, assignment: dict,
                     config: RunConfig, result) -> TrialRecord:
        if result is None or not result.ok:
            error = result.error if result is not None else "trial lost"
        else:
            try:
                score = self.objective.score(result, config)
                if not math.isfinite(score):
                    raise TuneError(f"objective returned {score}")
                return TrialRecord(
                    trial_id=trial_id,
                    assignment=assignment,
                    score=score,
                    error=None,
                    update_time=result.update_time,
                    compute_time=result.compute_time,
                    num_batches=result.num_batches,
                    config=config.to_dict(),
                )
            except TuneError as exc:
                error = str(exc)
        return TrialRecord(
            trial_id=trial_id,
            assignment=assignment,
            score=None,
            error=error,
            update_time=0.0,
            compute_time=0.0,
            num_batches=0,
            config=config.to_dict(),
        )

    def _record(self, records: dict, optimizer, record: TrialRecord,
                tel) -> None:
        records[record.trial_id] = record
        self._append_journal(record.to_journal_dict())
        optimizer.tell(record.trial_id, record.assignment, record.score)
        if tel.enabled:
            tel.count("tune.trials")
            if not record.ok:
                tel.count("tune.trials.failed")
        self._maybe_die(len(records))

    # -- outputs --------------------------------------------------------------
    def _write_trajectory(self, trials: tuple[TrialRecord, ...]) -> None:
        best_so_far = -math.inf
        with open(self.trajectory_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["trial_id", "ok", "score", "best_so_far", "assignment"]
            )
            for trial in trials:
                if trial.ok and trial.score is not None:
                    best_so_far = max(best_so_far, trial.score)
                writer.writerow([
                    trial.trial_id,
                    int(trial.ok),
                    "" if trial.score is None else repr(trial.score),
                    "" if best_so_far == -math.inf else repr(best_so_far),
                    json.dumps(trial.assignment, sort_keys=True),
                ])

    def _write_best(self, best: TrialRecord) -> None:
        # Round-trip before writing: the artifact must rebuild the run.
        RunConfig.from_dict(best.config)
        payload = {
            "objective": self.objective.name,
            "score": best.score,
            "trial_id": best.trial_id,
            "assignment": best.assignment,
            "config": best.config,
        }
        self.best_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
