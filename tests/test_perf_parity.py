"""Parity tests for the wall-clock perf layer.

The optimized substrate paths (vectorized ingest, delta CSR snapshots, the
parallel workload executor, the on-disk stream cache) must be *invisible*
semantically: every test here pins an optimized path against its reference
implementation and requires bit-identical results — same dtypes, same
values, same ordering.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_batch
from repro.datasets.profiles import get_dataset
from repro.datasets.stream_cache import cached_batches, cache_stats, clear_cache
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.reference import ReferenceAdjacencyListGraph
from repro.graph.snapshot import CSRSnapshot, DeltaSnapshotter, take_snapshot
from repro.pipeline.executor import CellSpec, run_matrix

N_VERTICES = 24

# A batch: edges with weight-salt (so repeats can change the stored weight)
# and a deletion flag.  Self-loops stay in: the graph accepts them.
batch_strategy = st.lists(
    st.tuples(
        st.integers(0, N_VERTICES - 1),  # src
        st.integers(0, N_VERTICES - 1),  # dst
        st.integers(0, 2),               # weight salt
        st.booleans(),                   # is_delete
    ),
    min_size=1,
    max_size=40,
)
sequence_strategy = st.lists(batch_strategy, min_size=1, max_size=6)


def _to_batch(edge_list, batch_id):
    src = [e[0] for e in edge_list]
    dst = [e[1] for e in edge_list]
    weight = [float((u * 31 + v * 7 + salt) % 9 + 1) for u, v, salt, __ in edge_list]
    deletes = [d for __, __, __, d in edge_list]
    return make_batch(src, dst, weight, batch_id=batch_id, is_delete=deletes)


def _assert_snapshots_identical(a: CSRSnapshot, b: CSRSnapshot):
    assert a.num_vertices == b.num_vertices
    for field in (
        "out_offsets", "out_targets", "out_weights",
        "in_offsets", "in_sources", "in_weights",
    ):
        left, right = getattr(a, field), getattr(b, field)
        assert left.dtype == right.dtype, field
        assert np.array_equal(left, right), field


# -- delta snapshots vs full rebuilds -----------------------------------------


@given(sequence_strategy)
@settings(max_examples=50, deadline=None)
def test_delta_snapshot_matches_full_rebuild(sequence):
    """Patched snapshots are bit-identical to full rebuilds after every batch
    of a randomized insert/delete/duplicate-heavy stream."""
    graph = AdjacencyListGraph(N_VERTICES)
    # rebuild_fraction=1.0 forces the patch path whenever a previous
    # snapshot exists, so the delta machinery is actually exercised.
    snapper = DeltaSnapshotter(graph, rebuild_fraction=1.0)
    for batch_id, edge_list in enumerate(sequence):
        graph.apply_batch(_to_batch(edge_list, batch_id))
        _assert_snapshots_identical(snapper.snapshot(), take_snapshot(graph))
    if len(sequence) > 1:
        assert snapper.delta_patches >= len(sequence) - 1


@given(sequence_strategy)
@settings(max_examples=25, deadline=None)
def test_delta_snapshot_with_skipped_batches(sequence):
    """Journals accumulated over several batches patch correctly too."""
    graph = AdjacencyListGraph(N_VERTICES)
    snapper = DeltaSnapshotter(graph, rebuild_fraction=1.0)
    for batch_id, edge_list in enumerate(sequence):
        graph.apply_batch(_to_batch(edge_list, batch_id))
        if batch_id % 2 == 1:  # snapshot every other batch
            _assert_snapshots_identical(snapper.snapshot(), take_snapshot(graph))
    _assert_snapshots_identical(snapper.snapshot(), take_snapshot(graph))


# -- vectorized ingest vs the seed loop ---------------------------------------


def _assert_stats_identical(mine, ref):
    for field in ("vertices", "batch_degree", "length_before", "new_edges"):
        left, right = getattr(mine, field), getattr(ref, field)
        assert left.dtype == right.dtype, field
        assert np.array_equal(left, right), field


@given(sequence_strategy)
@settings(max_examples=50, deadline=None)
def test_vectorized_ingest_matches_reference(sequence):
    """The vectorized `_apply_direction` reproduces the seed loop exactly:
    DirectionStats arrays (dtype and values), adjacency content *and*
    dict insertion order, degree caches, and edge counts."""
    vec = AdjacencyListGraph(N_VERTICES)
    ref = ReferenceAdjacencyListGraph(N_VERTICES)
    for batch_id, edge_list in enumerate(sequence):
        batch = _to_batch(edge_list, batch_id)
        stats_vec = vec.apply_batch(batch)
        stats_ref = ref.apply_batch(batch)
        _assert_stats_identical(stats_vec.out, stats_ref.out)
        _assert_stats_identical(stats_vec.inn, stats_ref.inn)
        assert stats_vec.deleted_edges == stats_ref.deleted_edges
    assert vec.num_edges == ref.num_edges
    out_vec, in_vec = vec.adjacency_views()
    out_ref, in_ref = ref.adjacency_views()
    assert out_vec == out_ref and in_vec == in_ref
    for v, entry in out_vec.items():
        assert list(entry) == list(out_ref[v])
    assert vec.vertices_with_edges() == ref.vertices_with_edges()


@given(sequence_strategy)
@settings(max_examples=25, deadline=None)
def test_tracked_ingest_matches_reference_stats(sequence):
    """Delta tracking must not perturb the DirectionStats contract."""
    vec = AdjacencyListGraph(N_VERTICES)
    vec.track_deltas(True)
    ref = ReferenceAdjacencyListGraph(N_VERTICES)
    for batch_id, edge_list in enumerate(sequence):
        batch = _to_batch(edge_list, batch_id)
        stats_vec = vec.apply_batch(batch)
        stats_ref = ref.apply_batch(batch)
        _assert_stats_identical(stats_vec.out, stats_ref.out)
        _assert_stats_identical(stats_vec.inn, stats_ref.inn)
    out_vec, __ = vec.adjacency_views()
    out_ref, __ = ref.adjacency_views()
    assert out_vec == out_ref
    assert vec.num_edges == ref.num_edges


def test_notify_external_mutation_resyncs_caches():
    """Direct adjacency mutation + notify leaves all caches consistent."""
    graph = AdjacencyListGraph(8)
    graph.track_deltas(True)
    graph.apply_batch(make_batch([0, 1], [1, 2]))
    out, inn = graph.adjacency_views()
    out.setdefault(5, {})[6] = 1.0  # bypasses apply_batch entirely
    inn.setdefault(6, {})[5] = 1.0
    graph.notify_external_mutation()
    assert graph.num_edges == 3
    assert 5 in graph.vertices_with_edges() and 6 in graph.vertices_with_edges()
    # The delta journal can no longer vouch for the mutation: one None
    # hand-back forces the snapshotter to rebuild from scratch.
    assert graph.consume_delta() is None
    _assert_snapshots_identical(
        DeltaSnapshotter(graph).snapshot(), take_snapshot(graph)
    )


# -- workload executor ---------------------------------------------------------


def test_run_matrix_parallel_matches_serial():
    specs = [
        CellSpec(dataset="fb", batch_size=1_000, algorithm=alg, num_batches=2)
        for alg in ("pr", "sssp")
    ]
    serial = run_matrix(specs, jobs=1)
    parallel = run_matrix(specs, jobs=2)
    assert serial == parallel  # frozen dataclasses: full-value equality


@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_run_matrix_start_method_parity(monkeypatch, method):
    """Merged matrix results must not depend on the worker start method —
    the executor pins one explicitly instead of trusting the platform
    default (which Python changes across versions and OSes)."""
    import multiprocessing

    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{method} unavailable on this platform")
    specs = [
        CellSpec(dataset="fb", batch_size=1_000, algorithm=alg, num_batches=2)
        for alg in ("pr", "sssp")
    ]
    serial = run_matrix(specs, jobs=1)
    monkeypatch.setenv("REPRO_MP_START", method)
    assert run_matrix(specs, jobs=2) == serial


# -- stream cache --------------------------------------------------------------


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_STREAM_CACHE", raising=False)
    return tmp_path


def _batch_fields_equal(a, b):
    assert a.batch_id == b.batch_id
    assert np.array_equal(a.src, b.src)
    assert np.array_equal(a.dst, b.dst)
    assert np.array_equal(a.weight, b.weight)
    if a.is_delete is None or b.is_delete is None:
        da = a.is_delete if a.is_delete is not None else np.zeros(len(a.src), bool)
        db = b.is_delete if b.is_delete is not None else np.zeros(len(b.src), bool)
        assert np.array_equal(da, db)
    else:
        assert np.array_equal(a.is_delete, b.is_delete)


def test_stream_cache_round_trip(tmp_cache):
    profile = get_dataset("fb")
    fresh = list(profile.generator(seed=7).batches(500, 3))
    first = list(cached_batches(profile, 500, 3, seed=7))   # miss: generates
    second = list(cached_batches(profile, 500, 3, seed=7))  # hit: loads
    for a, b, c in zip(fresh, first, second):
        _batch_fields_equal(a, b)
        _batch_fields_equal(a, c)
    stats = cache_stats()
    assert stats["entries"] == 1


def test_stream_cache_prefix_and_extension(tmp_cache):
    profile = get_dataset("fb")
    list(cached_batches(profile, 500, 4, seed=7))
    # Prefix of a longer cached stream is served from it.
    prefix = list(cached_batches(profile, 500, 2, seed=7))
    fresh = list(profile.generator(seed=7).batches(500, 2))
    for a, b in zip(fresh, prefix):
        _batch_fields_equal(a, b)
    # Asking for more re-generates and re-caches the longer stream.
    longer = list(cached_batches(profile, 500, 6, seed=7))
    fresh6 = list(profile.generator(seed=7).batches(500, 6))
    for a, b in zip(fresh6, longer):
        _batch_fields_equal(a, b)
    assert clear_cache() >= 1


def test_stream_cache_disabled_env(tmp_cache, monkeypatch):
    monkeypatch.setenv("REPRO_STREAM_CACHE", "0")
    profile = get_dataset("fb")
    list(cached_batches(profile, 500, 2, seed=7))
    assert cache_stats()["entries"] == 0


def test_stream_cache_mid_stream_short_batch(tmp_cache):
    """Per-batch sizes survive the round trip even for short batches.

    The pre-fix loader sliced a flat ``num_batches * batch_size`` prefix,
    which silently misaligned every batch after a short one; the sizes
    array must reproduce the exact boundaries instead.
    """
    from repro.datasets.stream import Batch
    from repro.datasets.stream_cache import _load, _save, cache_dir

    rng = np.random.default_rng(3)
    sizes = [500, 120, 500]
    saved = []
    for i, size in enumerate(sizes):
        saved.append(
            Batch(
                batch_id=i,
                src=rng.integers(0, 100, size).astype(np.int64),
                dst=rng.integers(0, 100, size).astype(np.int64),
                weight=rng.random(size),
                is_delete=(rng.random(size) < 0.25) if i == 1 else None,
            )
        )
    path = cache_dir() / "short-batches.npz"
    _save(path, saved, 500)
    loaded = _load(path, 500, 3)
    assert loaded is not None
    assert [b.size for b in loaded] == sizes
    for a, b in zip(saved, loaded):
        _batch_fields_equal(a, b)


def test_stream_cache_length_mismatch_is_miss(tmp_cache):
    """Arrays inconsistent with the sizes metadata are rejected, not served."""
    from repro.datasets.stream_cache import _entry_path, _load

    profile = get_dataset("fb")
    list(cached_batches(profile, 500, 3, seed=7))
    path = _entry_path(profile, 500, 7)
    data = dict(np.load(path))
    data["src"] = data["src"][:-7]  # torn entry: flat array too short
    np.savez(path, **data)
    assert _load(path, 500, 3) is None
    # cached_batches regenerates the real stream instead of misaligning.
    fresh = list(profile.generator(seed=7).batches(500, 3))
    again = list(cached_batches(profile, 500, 3, seed=7))
    for a, b in zip(fresh, again):
        _batch_fields_equal(a, b)


def test_stream_cache_old_format_is_miss(tmp_cache):
    """A v1 entry (3-element meta, no sizes array) loads as a cache miss."""
    from repro.datasets.generators import GENERATOR_VERSION
    from repro.datasets.stream_cache import _entry_path, _load

    profile = get_dataset("fb")
    fresh = list(profile.generator(seed=7).batches(500, 2))
    path = _entry_path(profile, 500, 7)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(
        path,
        meta=np.array([2, 500, GENERATOR_VERSION], dtype=np.int64),
        src=np.concatenate([b.src for b in fresh]),
        dst=np.concatenate([b.dst for b in fresh]),
        weight=np.concatenate([b.weight for b in fresh]),
        has_delete=np.zeros(2, dtype=bool),
        is_delete=np.zeros(1000, dtype=bool),
    )
    assert _load(path, 500, 2) is None


def test_stream_cache_mutated_profile_misses_old_entry(tmp_cache):
    """Editing a profile's generator parameters must invalidate the cache.

    The pre-fix key was ``{name}-b{batch_size}-s{seed}-v{version}``: a
    profile edited in place (without a GENERATOR_VERSION bump) silently
    replayed the stale stream.  The fingerprint keys the entry to every
    generator input.
    """
    import dataclasses

    profile = get_dataset("fb")
    list(cached_batches(profile, 500, 2, seed=7))
    assert cache_stats()["entries"] == 1
    mutated = dataclasses.replace(profile, num_vertices=profile.num_vertices * 2)
    served = list(cached_batches(mutated, 500, 2, seed=7))
    # The mutated profile generated (and cached) its own stream...
    assert cache_stats()["entries"] == 2
    # ...and it is the *mutated* generator's stream, not the stale one.
    fresh = list(mutated.generator(seed=7).batches(500, 2))
    for a, b in zip(fresh, served):
        _batch_fields_equal(a, b)
