"""Feedback-tuned ABR — the paper's stated future work (Section 6.2.3).

The paper fixes (lambda, TH) offline from a large example suite and notes:
"In future work, ABR could be extended with an online feedback tuning
method."  This module implements that extension: on every ABR-active batch
the engine reports the modeled baseline and reordered update times alongside
the measured CAD, and the controller nudges its threshold whenever the
CAD rule's decision disagrees with the observed ground truth:

* rule said *reorder* but reordering was slower  -> raise TH just above the
  batch's CAD;
* rule said *don't* but reordering would have won -> lower TH just below it.

Geometric nudging keeps the threshold stable under noise while converging in
a handful of active batches when the initial TH is badly calibrated for the
deployment's input distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..costs import CostParameters
from ..errors import ConfigurationError
from ..graph.base import BatchUpdateStats
from .abr import ABRConfig, ABRController

__all__ = ["FeedbackConfig", "FeedbackABRController"]


@dataclass(frozen=True)
class FeedbackConfig:
    """Tuning parameters for the feedback loop.

    Attributes:
        margin: relative step placed between the observed CAD and the new
            threshold (0.1 = 10% above/below the misclassified CAD).
        min_threshold / max_threshold: clamp range for TH.
    """

    margin: float = 0.10
    min_threshold: float = 10.0
    max_threshold: float = 100_000.0

    def __post_init__(self) -> None:
        if not 0 < self.margin < 1:
            raise ConfigurationError(f"margin must be in (0,1), got {self.margin}")
        if not 0 < self.min_threshold < self.max_threshold:
            raise ConfigurationError("threshold clamp range is invalid")


class FeedbackABRController(ABRController):
    """ABR controller that self-tunes TH from observed strategy times."""

    def __init__(
        self,
        config: ABRConfig,
        costs: CostParameters,
        num_workers: int,
        feedback: FeedbackConfig | None = None,
    ):
        super().__init__(config, costs, num_workers)
        self.feedback = feedback or FeedbackConfig()
        self._last_active_cad: float | None = None
        self.adjustments: list[tuple[int, float]] = []

    def step(self, stats: BatchUpdateStats):
        decision = super().step(stats)
        if decision.active and decision.cad is not None:
            self._last_active_cad = decision.cad.value
        return decision

    def observe_times(
        self, stats: BatchUpdateStats, baseline_time: float, reorder_time: float
    ) -> None:
        """Feed back the modeled times of the batch just executed.

        Only active batches adjust the threshold — they are the ones whose
        CAD was measured.
        """
        if stats.batch_id % self.config.n != 0 or self._last_active_cad is None:
            return
        cad = self._last_active_cad
        truth = reorder_time < baseline_time
        decision = cad >= self.threshold
        if decision == truth:
            return
        fb = self.feedback
        if decision and not truth:
            new_threshold = cad * (1.0 + fb.margin)
        else:
            new_threshold = cad * (1.0 - fb.margin)
        self.threshold = min(max(new_threshold, fb.min_threshold), fb.max_threshold)
        self.reordering = cad >= self.threshold
        self.adjustments.append((stats.batch_id, self.threshold))
