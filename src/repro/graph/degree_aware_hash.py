"""Degree-aware hashing (DAH) — the alternative structure of Section 6.2.3.

DAH keeps low-degree vertices in small flat arrays (cheap to scan, cache
friendly) and promotes high-degree vertices to hash sets once their adjacency
exceeds a threshold, making duplicate checks O(1) for exactly the vertices
where the adjacency list's linear scan hurts.  The paper observes that DAH
beats the plain adjacency list's *baseline* on reorder-friendly inputs, but
the adjacency list *with batch reordering* is on par with DAH, and RO+USC
beats it — motivating keeping one structure plus ABR instead of switching
structures.

Functionally the storage is identical to :class:`AdjacencyListGraph`; only
the modeled duplicate-check cost differs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .adjacency_list import AdjacencyListGraph

__all__ = ["DegreeAwareHashGraph"]


class DegreeAwareHashGraph(AdjacencyListGraph):
    """Adjacency storage with hash-based duplicate checks above a threshold.

    Args:
        num_vertices: vertex id universe.
        promote_threshold: adjacency length at which a vertex's array is
            promoted to a hash set.
        hash_probe_cost: modeled cost of one hash probe.  For a promoted
            (high-degree) vertex the hash set spans many cachelines, so a
            probe is two dependent random accesses (bucket, then entry) that
            both miss — far costlier than one element comparison, but O(1).
    """

    def __init__(
        self,
        num_vertices: int,
        promote_threshold: int = 16,
        hash_probe_cost: float = 60.0,
    ):
        super().__init__(num_vertices)
        if promote_threshold < 1:
            raise ConfigurationError(
                f"promote_threshold must be >= 1, got {promote_threshold}"
            )
        if hash_probe_cost <= 0:
            raise ConfigurationError(
                f"hash_probe_cost must be positive, got {hash_probe_cost}"
            )
        self.promote_threshold = promote_threshold
        self.hash_probe_cost = hash_probe_cost

    def sum_search_cost(
        self,
        batch_degree: np.ndarray,
        length_before: np.ndarray,
        new_edges: np.ndarray,
        per_element: float,
    ) -> np.ndarray:
        """Linear scans while the vertex is flat, hash probes once promoted.

        A vertex whose adjacency already exceeds the promote threshold pays a
        constant probe per search.  A vertex that stays below the threshold
        for the whole batch pays the adjacency list's linear cost.  A vertex
        that crosses the threshold mid-batch pays linear scans until the
        crossing, probes afterwards (approximated by splitting the searches
        at the crossing point).
        """
        k = batch_degree.astype(np.float64)
        length = length_before.astype(np.float64)
        new = new_edges.astype(np.float64)
        thr = float(self.promote_threshold)
        probes = self.hash_probe_cost * k
        linear = per_element * (k * length + np.maximum(k - 1.0, 0.0) * new / 2.0)
        # Searches performed while still flat for the crossing case: the
        # adjacency grows ~linearly with the new inserts, so the fraction of
        # searches before the crossing is (thr - L) / new.
        with np.errstate(divide="ignore", invalid="ignore"):
            flat_fraction = np.clip(
                np.where(new > 0, (thr - length) / new, 1.0), 0.0, 1.0
            )
        k_flat = k * flat_fraction
        mixed = (
            per_element * k_flat * (length + thr) / 2.0
            + self.hash_probe_cost * (k - k_flat)
        )
        promoted_before = length > thr
        stays_flat = length + new <= thr
        return np.where(promoted_before, probes, np.where(stays_flat, linear, mixed))
