"""Multi-tenant admission control and input-knowledge micro-batching.

Two concerns, deliberately separated from the network layer so both are
unit-testable with an injected clock:

* :class:`AdmissionController` decides whether an ``edges`` submission may
  enter the ingest buffer *right now*.  Three gates apply, in order:
  a per-tenant token bucket (rate limiting — waiting longer than
  ``max_delay`` converts into an explicit ``rate_limited`` rejection with a
  ``retry_after`` hint), a per-tenant fairness cap (no tenant may occupy
  more than ``fair_share`` of the pending window, so one hot client cannot
  starve the rest), and a global pending cap (classic backpressure: the
  submission waits until the pipeline has made earlier edges visible).
  "Pending" is measured end to end — admitted but not yet visible in a
  completed pipeline step — so backpressure reflects real ingest lag, not
  just buffer occupancy.

* :class:`MicroBatcher` accumulates admitted edges and chooses batch
  boundaries online.  This is the paper's input-knowledge story (§4.2,
  Fig. 18) applied to batch *sizing*: while the buffered edges look
  degree-flat (low CAD) the batcher keeps growing the batch toward
  ``target_edges`` for throughput; when the buffered input develops the
  hub concentration ABR looks for (CAD ≥ TH, computed with the same
  :func:`~repro.update.cad.cad_from_degrees` the update engine uses), it
  cuts early — the batch is already RO-friendly, and a prompt cut keeps
  ingest-to-visible latency low while handing the update engine a batch
  whose reordering pays.  A ``flush_interval`` bounds the linger of a
  slow trickle, and a drain cut flushes the partial tail on shutdown.

All waiting is the *caller's* job: :meth:`AdmissionController.admit`
never sleeps, it returns a decision with a suggested delay, so an asyncio
handler can ``await asyncio.sleep(delay)`` without blocking the loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..update.cad import cad_from_degrees

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "MicroBatcher",
    "PendingBatch",
    "TokenBucket",
]

#: Suggested re-poll delay for wait-style (non-rejecting) admission gates.
_POLL_DELAY = 0.01


class TokenBucket:
    """A standard token bucket; ``rate <= 0`` means unlimited.

    Args:
        rate: tokens (edges) replenished per second.
        burst: bucket capacity (maximum instantaneous debt).
    """

    def __init__(self, rate: float, burst: float):
        if rate > 0 and burst <= 0:
            raise ConfigurationError(
                f"token bucket burst must be positive, got {burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp: float | None = None

    def _refill(self, now: float) -> None:
        if self._stamp is not None and now > self._stamp:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now

    def delay(self, n: int, now: float) -> float:
        """Seconds until ``n`` tokens are available (0.0 = available now)."""
        if self.rate <= 0:
            return 0.0
        self._refill(now)
        if self._tokens >= n:
            return 0.0
        return (n - self._tokens) / self.rate

    def take(self, n: int, now: float) -> None:
        """Consume ``n`` tokens (may go negative only via oversized bursts)."""
        if self.rate <= 0:
            return
        self._refill(now)
        self._tokens -= n


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict.

    Attributes:
        admitted: the edges may enter the buffer now.
        delay: when not admitted and not rejected: suggested seconds to
            wait before asking again (the gate is transient backpressure).
        reject: the submission should be refused outright; ``reason`` is
            the protocol error code and ``delay`` the ``retry_after`` hint.
        reason: ``""`` (admitted), ``"backpressure"``, ``"fairness"``,
            ``"rate_limited"`` or ``"draining"``.
    """

    admitted: bool
    delay: float = 0.0
    reject: bool = False
    reason: str = ""


@dataclass
class _Tenant:
    bucket: TokenBucket
    pending: int = 0
    admitted_edges: int = 0
    rejected: int = 0


class AdmissionController:
    """Thread-safe multi-tenant admission over a shared pending window.

    The asyncio side calls :meth:`admit` (event loop thread); the pipeline
    driver calls :meth:`release` as batches become visible (driver
    thread), hence the lock.

    Args:
        max_pending: global cap on admitted-but-not-yet-visible edges.
        fair_share: fraction of ``max_pending`` one tenant may occupy.
        rate: per-tenant token-bucket rate in edges/second (0 = unlimited).
        burst: per-tenant bucket capacity (defaults to one second of rate).
        max_delay: longest rate-limit wait tolerated before converting the
            wait into an explicit ``rate_limited`` rejection.
        clock: monotonic clock, injectable for tests.
    """

    def __init__(
        self,
        max_pending: int = 200_000,
        fair_share: float = 0.5,
        rate: float = 0.0,
        burst: float | None = None,
        max_delay: float = 5.0,
        clock=time.monotonic,
    ):
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if not 0.0 < fair_share <= 1.0:
            raise ConfigurationError(
                f"fair_share must be in (0, 1], got {fair_share}"
            )
        self.max_pending = int(max_pending)
        self.fair_share = float(fair_share)
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(rate, 1.0)
        self.max_delay = float(max_delay)
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, _Tenant] = {}
        self.pending_total = 0
        self.draining = False

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = _Tenant(TokenBucket(self.rate, self.burst))
            self._tenants[name] = tenant
        return tenant

    def admit(self, tenant_name: str, n: int, now: float | None = None) -> AdmissionDecision:
        """Decide whether ``n`` edges from ``tenant_name`` may enter now."""
        if n < 1:
            raise ConfigurationError(f"edge count must be >= 1, got {n}")
        now = self._clock() if now is None else now
        with self._lock:
            if self.draining:
                return AdmissionDecision(
                    admitted=False, reject=True, reason="draining"
                )
            tenant = self._tenant(tenant_name)
            if n > self.max_pending:
                tenant.rejected += 1
                return AdmissionDecision(
                    admitted=False, reject=True, reason="too_large"
                )
            delay = tenant.bucket.delay(n, now)
            if delay > 0.0:
                if delay > self.max_delay:
                    tenant.rejected += 1
                    return AdmissionDecision(
                        admitted=False, delay=delay, reject=True,
                        reason="rate_limited",
                    )
                return AdmissionDecision(
                    admitted=False, delay=delay, reason="rate_limited"
                )
            fair_cap = max(1, int(self.max_pending * self.fair_share))
            if tenant.pending + n > fair_cap and any(
                other.pending for name, other in self._tenants.items()
                if name != tenant_name
            ):
                # Fairness only bites while others hold window space: a
                # lone tenant may use the whole window (the global gate
                # below still bounds it).
                return AdmissionDecision(
                    admitted=False, delay=_POLL_DELAY, reason="fairness"
                )
            if self.pending_total + n > self.max_pending:
                return AdmissionDecision(
                    admitted=False, delay=_POLL_DELAY, reason="backpressure"
                )
            tenant.bucket.take(n, now)
            tenant.pending += n
            tenant.admitted_edges += n
            self.pending_total += n
            return AdmissionDecision(admitted=True)

    def release(self, counts: dict[str, int]) -> None:
        """Mark per-tenant edge counts visible (frees pending window)."""
        with self._lock:
            for name, n in counts.items():
                tenant = self._tenants.get(name)
                if tenant is not None:
                    tenant.pending = max(0, tenant.pending - n)
            self.pending_total = max(
                0, self.pending_total - sum(counts.values())
            )

    def start_drain(self) -> None:
        """Refuse all future submissions (graceful-shutdown mode)."""
        with self._lock:
            self.draining = True

    def stats(self) -> dict:
        """Per-tenant and global admission statistics (for ``stats`` ops)."""
        with self._lock:
            return {
                "pending_edges": self.pending_total,
                "max_pending": self.max_pending,
                "draining": self.draining,
                "tenants": {
                    name: {
                        "pending": tenant.pending,
                        "admitted_edges": tenant.admitted_edges,
                        "rejected": tenant.rejected,
                    }
                    for name, tenant in sorted(self._tenants.items())
                },
            }


@dataclass
class PendingBatch:
    """One cut micro-batch queued for the pipeline driver.

    Attributes:
        src / dst / weight / is_delete: the batch arrays (``is_delete`` is
            None for insert-only batches, matching
            :class:`~repro.datasets.stream.Batch`).
        tenant_counts: edges per tenant, released to admission when the
            batch becomes visible.
        seq_end: global sequence number of the batch's last edge (the
            visibility watermark advances to this after the step).
        markers: ``(seq, admit_monotonic)`` pairs for ingest-to-visible
            latency sampling (one per submission, not per edge).
        cut_reason: why the boundary fell here — ``"target"``, ``"cad"``,
            ``"flush"`` or ``"drain"``.
    """

    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    is_delete: np.ndarray | None
    tenant_counts: dict[str, int]
    seq_end: int
    markers: list[tuple[int, float]]
    cut_reason: str

    @property
    def size(self) -> int:
        return len(self.src)


class MicroBatcher:
    """Accumulates admitted edges and picks batch boundaries online.

    Single-threaded by design (owned by the server's event loop); only the
    cut boundary decision consults input knowledge.

    Args:
        target_edges: throughput-oriented batch size cap (a cut happens at
            this size regardless of shape).
        min_edges: smallest batch the CAD early-cut may produce (degree
            statistics below this are too noisy to act on).
        flush_interval: maximum seconds the oldest buffered edge may
            linger before a time-based cut.
        adaptive: enable the CAD early-cut (False = fixed-size batching).
        lam / threshold: the ABR parameters (§6.2.3 defaults) used for the
            CAD measurement.
        clock: monotonic clock, injectable for tests.
    """

    def __init__(
        self,
        target_edges: int = 10_000,
        min_edges: int = 512,
        flush_interval: float = 0.25,
        adaptive: bool = True,
        lam: int = 256,
        threshold: float = 465.0,
        clock=time.monotonic,
    ):
        if target_edges < 1:
            raise ConfigurationError(
                f"target_edges must be >= 1, got {target_edges}"
            )
        if min_edges < 1 or min_edges > target_edges:
            raise ConfigurationError(
                f"min_edges must be in [1, target_edges], got {min_edges}"
            )
        self.target_edges = target_edges
        self.min_edges = min_edges
        self.flush_interval = flush_interval
        self.adaptive = adaptive
        self.lam = lam
        self.threshold = threshold
        self._clock = clock
        self._reset()
        #: Global edge sequence number of the last admitted edge.
        self.seq = 0
        #: Cut counts by reason (telemetry / stats).
        self.cut_reasons: dict[str, int] = {}

    def _reset(self) -> None:
        self._src: list[int] = []
        self._dst: list[int] = []
        self._weight: list[float] = []
        self._delete: list[bool] = []
        self._has_delete = False
        self._tenant_counts: dict[str, int] = {}
        self._markers: list[tuple[int, float]] = []
        self._first_append: float | None = None
        self._cad = 0.0

    @property
    def size(self) -> int:
        return len(self._src)

    @property
    def cad(self) -> float:
        """CAD of the current buffer as of the last append."""
        return self._cad

    def append(
        self,
        tenant: str,
        src,
        dst,
        weight=None,
        is_delete=None,
        now: float | None = None,
    ) -> int:
        """Buffer one admitted submission; returns its ``seq_end``.

        Arguments are parallel sequences (plain lists or arrays).  The
        caller must have passed admission first — the batcher never
        refuses edges.
        """
        now = self._clock() if now is None else now
        n = len(src)
        if self._first_append is None:
            self._first_append = now
        self._src.extend(int(v) for v in src)
        self._dst.extend(int(v) for v in dst)
        if weight is None:
            self._weight.extend([1.0] * n)
        else:
            self._weight.extend(float(w) for w in weight)
        if is_delete is None:
            self._delete.extend([False] * n)
        else:
            flags = [bool(f) for f in is_delete]
            self._delete.extend(flags)
            self._has_delete = self._has_delete or any(flags)
        self._tenant_counts[tenant] = self._tenant_counts.get(tenant, 0) + n
        self.seq += n
        self._markers.append((self.seq, now))
        if self.adaptive and self.size >= self.min_edges:
            self._cad = self._measure_cad()
        return self.seq

    def _measure_cad(self) -> float:
        """CAD over the buffered edges (max of the two endpoint sides)."""
        size = self.size
        __, in_counts = np.unique(
            np.asarray(self._dst, dtype=np.int64), return_counts=True
        )
        __, out_counts = np.unique(
            np.asarray(self._src, dtype=np.int64), return_counts=True
        )
        return max(
            cad_from_degrees(in_counts, size, self.lam),
            cad_from_degrees(out_counts, size, self.lam),
        )

    def cut_due(self, now: float | None = None) -> str | None:
        """The reason a cut is due now, or None.

        Checked after appends and by the periodic flusher:
        ``"target"`` (size cap), ``"cad"`` (the buffer became
        RO-friendly), ``"flush"`` (oldest edge lingered past the flush
        interval).
        """
        if self.size == 0:
            return None
        if self.size >= self.target_edges:
            return "target"
        if (
            self.adaptive
            and self.size >= self.min_edges
            and self._cad >= self.threshold
        ):
            return "cad"
        now = self._clock() if now is None else now
        if (
            self._first_append is not None
            and now - self._first_append >= self.flush_interval
        ):
            return "flush"
        return None

    def cut(self, reason: str) -> PendingBatch:
        """Materialize the buffer as a :class:`PendingBatch` and reset."""
        if self.size == 0:
            raise ConfigurationError("cannot cut an empty buffer")
        batch = PendingBatch(
            src=np.asarray(self._src, dtype=np.int64),
            dst=np.asarray(self._dst, dtype=np.int64),
            weight=np.asarray(self._weight, dtype=np.float64),
            is_delete=(
                np.asarray(self._delete, dtype=bool)
                if self._has_delete
                else None
            ),
            tenant_counts=dict(self._tenant_counts),
            seq_end=self.seq,
            markers=list(self._markers),
            cut_reason=reason,
        )
        self.cut_reasons[reason] = self.cut_reasons.get(reason, 0) + 1
        self._reset()
        return batch
