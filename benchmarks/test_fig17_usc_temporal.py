"""Fig. 17: temporal USC speedup for superuser-100K vs wiki-500K.

Paper: wiki-500K predominantly achieves larger per-batch USC speedups than
superuser-100K because its batches are higher-degree (more coalescing);
early batches gain less because the graph is still small (little edge data
to scan); USC never degrades a batch (negligible overhead).
"""

from _harness import CellRun, emit
from repro.analysis.report import render_table
from repro.datasets.profiles import get_dataset

NUM_BATCHES = 8


def run_fig17():
    superuser = CellRun(get_dataset("superuser"), 100_000, nb=NUM_BATCHES)
    wiki = CellRun(get_dataset("wiki"), 500_000, nb=min(NUM_BATCHES, 4))
    def series(cell):
        return [b / u for b, u in zip(cell.baseline, cell.usc)]
    return series(superuser), series(wiki)


def test_fig17_usc_temporal(benchmark):
    superuser, wiki = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    rows = []
    for i in range(max(len(superuser), len(wiki))):
        rows.append(
            [
                i + 1,
                superuser[i] if i < len(superuser) else "-",
                wiki[i] if i < len(wiki) else "-",
            ]
        )
    emit(
        "fig17_usc_temporal",
        render_table(
            ["batch id", "superuser-100K", "wiki-500K"],
            rows,
            title="Fig. 17: per-batch update speedup from batch reordering + USC",
        ),
    )
    # wiki-500K (higher CAD / max degree) predominantly beats superuser-100K.
    wins = sum(w > s for w, s in zip(wiki, superuser))
    assert wins >= len(wiki) - 1
    # Speedup grows as the graph accumulates edge data to coalesce over.
    assert superuser[-1] > superuser[0]
    # USC never degrades a batch.
    assert min(superuser) > 0.95 and min(wiki) > 0.95
