"""Wall-clock adjacency-format micro-benchmark: hub-heavy vs uniform ingest.

The degree-adaptive hybrid format exists for exactly two regimes:

* **uniform** — every vertex stays low-degree, so the hybrid format lives
  entirely in its pooled array slices and the win is pure vectorization;
* **hub-heavy** — ~90% of edges leave ~1K hot sources, so hot vertices
  cross the promotion threshold and the win depends on the hash-dict hub
  class (array slices alone would pay per-append relocation on every hub).

Each workload is ingested by every registered adjacency format, timing
best-of-ROUNDS interleaved (load drift biases neither format) and taking a
separate tracemalloc pass for peak heap (instrumented runs are slower, so
memory is never measured inside the timed region).  The summary lands in
``results/BENCH_adjacency.json``; ``make bench-smoke`` compares against the
committed ``benchmarks/BENCH_adjacency.json`` and fails on gross
regression.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np

from _harness import RESULTS_DIR, emit
from repro.analysis.report import render_table
from repro.datasets.stream import Batch
from repro.graph.formats import ADJACENCY_FORMATS, make_adjacency_graph

NUM_VERTICES = 200_000
BATCH_SIZE = 50_000
NUM_BATCHES = 8
NUM_HUBS = 1_000
HUB_FRACTION = 0.9
ROUNDS = 3  # best-of to shave scheduler noise

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_adjacency.json"


def _uniform_batches() -> list[Batch]:
    rng = np.random.default_rng(7)
    return [
        Batch(
            batch_id=i,
            src=rng.integers(0, NUM_VERTICES, size=BATCH_SIZE),
            dst=rng.integers(0, NUM_VERTICES, size=BATCH_SIZE),
            weight=rng.random(BATCH_SIZE),
        )
        for i in range(NUM_BATCHES)
    ]


def _hub_batches() -> list[Batch]:
    rng = np.random.default_rng(11)
    hubs = rng.choice(NUM_VERTICES, size=NUM_HUBS, replace=False)
    batches = []
    for i in range(NUM_BATCHES):
        src = rng.integers(0, NUM_VERTICES, size=BATCH_SIZE)
        from_hub = rng.random(BATCH_SIZE) < HUB_FRACTION
        src[from_hub] = hubs[rng.integers(0, NUM_HUBS, size=int(from_hub.sum()))]
        batches.append(
            Batch(
                batch_id=i,
                src=src,
                dst=rng.integers(0, NUM_VERTICES, size=BATCH_SIZE),
                weight=rng.random(BATCH_SIZE),
            )
        )
    return batches


def _ingest_once(fmt: str, batches) -> float:
    graph = make_adjacency_graph(fmt, NUM_VERTICES)
    start = time.perf_counter()
    for batch in batches:
        graph.apply_batch(batch)
    return time.perf_counter() - start


def _peak_memory_mb(fmt: str, batches) -> float:
    """Peak traced heap over one full ingest, in MiB."""
    tracemalloc.start()
    try:
        graph = make_adjacency_graph(fmt, NUM_VERTICES)
        for batch in batches:
            graph.apply_batch(batch)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


def run_adjacency() -> dict:
    workloads = {"uniform": _uniform_batches(), "hub": _hub_batches()}
    formats = sorted(ADJACENCY_FORMATS)
    times: dict[str, dict[str, float]] = {
        w: {f: float("inf") for f in formats} for w in workloads
    }
    # Interleave format rounds inside each workload so machine-load drift
    # biases neither side of any ratio.
    for workload, batches in workloads.items():
        for __ in range(ROUNDS):
            for fmt in formats:
                times[workload][fmt] = min(
                    times[workload][fmt], _ingest_once(fmt, batches)
                )
    result: dict = {
        "num_vertices": NUM_VERTICES,
        "batch_size": BATCH_SIZE,
        "num_batches": NUM_BATCHES,
        "num_hubs": NUM_HUBS,
        "hub_fraction": HUB_FRACTION,
    }
    for workload, batches in workloads.items():
        for fmt in formats:
            result[f"ingest_{workload}_{fmt}_s"] = times[workload][fmt]
            result[f"peak_mem_{workload}_{fmt}_mb"] = _peak_memory_mb(
                fmt, batches
            )
        result[f"speedup_{workload}_hybrid"] = (
            times[workload]["dict"] / times[workload]["hybrid"]
        )
    return result


def test_perf_adjacency(benchmark):
    result = benchmark.pedantic(run_adjacency, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_adjacency.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    rows = []
    for workload in ("uniform", "hub"):
        for fmt in sorted(ADJACENCY_FORMATS):
            rows.append([
                f"{workload} ingest ({fmt})",
                result[f"ingest_{workload}_{fmt}_s"],
                result[f"peak_mem_{workload}_{fmt}_mb"],
            ])
    emit(
        "perf_adjacency",
        render_table(
            ["workload", "seconds", "peak MiB"],
            rows,
            title="Adjacency-format ingest micro-benchmark",
        ),
    )
    # The hybrid format must beat per-vertex dicts outright in the hub
    # regime it was built for, on any machine.
    assert result["speedup_hub_hybrid"] > 1.0
    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        # ...and must not lose the uniform (all-array-class) regime either.
        assert result["speedup_uniform_hybrid"] > 1.0
        if BASELINE_PATH.exists():
            baseline = json.loads(BASELINE_PATH.read_text())
            for workload in ("uniform", "hub"):
                key = f"speedup_{workload}_hybrid"
                assert result[key] >= baseline[key] * 0.8, (
                    f"{key} regressed >20% vs committed baseline: "
                    f"{result[key]:.2f}x vs {baseline[key]:.2f}x"
                )
                key = f"ingest_{workload}_hybrid_s"
                assert result[key] <= baseline[key] * 2.0, (
                    f"{key} regressed >2x vs committed baseline: "
                    f"{result[key]:.3f}s vs {baseline[key]:.3f}s"
                )
