"""Checkpoint/resume for long-running streaming pipelines.

A :class:`PipelineCheckpoint` freezes *everything* a
:class:`~repro.pipeline.runner.StreamingPipeline` needs to continue a run
bit-identically after a crash: the graph (adjacency dicts, degree arrays,
delta journal), the update engine's ABR cadence/decision state and per-batch
results, the OCA controller's ``latest_bid`` overlap state and pending
deferral, the compute algorithm's incremental engine (ranks/distances/CSR
snapshot cache), the stream cursor, the accumulated
:class:`~repro.pipeline.metrics.RunMetrics`, and the live telemetry backend.
All of it is captured in **one** pickle so shared references (the graph the
engine, snapshotter, and algorithm context all point at) stay shared after
restore.

Stream generation is a pure function of ``(seed, batch_id)`` (see
:class:`~repro.datasets.generators.StreamGenerator`), so no RNG state needs
saving: a restored pipeline regenerates batch ``k`` exactly as the crashed
process would have.

On-disk format (version 1)::

    REPRO-CKPT\\n
    {json header: version, cursor, batches_done, config, summary,
     payload_bytes, payload_crc32}\\n
    <pickle payload>

Files are written to a temporary name and atomically renamed into place
(write-then-rename with fsync), so a crash mid-write never leaves a torn
checkpoint under the final name; the header's CRC32 rejects torn or
bit-rotted payloads at load time, and :func:`latest_checkpoint` falls back
to the newest *loadable* file in a directory.  The JSON header doubles as a
human-readable manifest (``head -2 ckpt-*.ckpt``).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import StreamingPipeline

__all__ = [
    "CHECKPOINT_VERSION",
    "PipelineCheckpoint",
    "checkpoint_path",
    "checkpoint_cursor",
    "latest_checkpoint",
]

#: Bump when the on-disk layout or the captured state set changes shape.
CHECKPOINT_VERSION = 1

_MAGIC = b"REPRO-CKPT\n"

#: Pipeline attributes never captured: the trace writer holds an open file
#: handle (the resuming process keeps its own), and ``run_config`` is the
#: *identity* of the run — it lives in the header for validation instead.
_EXCLUDED_STATE = frozenset({"trace", "run_config"})


def _check_shard_placement(current_graph, restored_graph) -> None:
    """Reject a resume whose shard placement differs from the checkpoint's.

    The config comparison already catches ``num_shards``/``shard_policy``
    mismatches for config-built pipelines; this guard also covers
    hand-built pipelines and custom owner maps, where only the materialized
    map itself is the truth.  The restored graph routes every batch through
    the owner map it was checkpointed with, so resuming "under" a different
    placement would silently ignore the requested one at best.
    """
    current = getattr(current_graph, "owner_map", None)
    restored = getattr(restored_graph, "owner_map", None)
    if current is None and restored is None:
        return
    if current is None or restored is None:
        raise CheckpointError(
            "checkpointed and current pipelines disagree on sharding: one "
            "is sharded and the other is not"
        )
    if current_graph.num_shards != restored_graph.num_shards:
        raise CheckpointError(
            f"checkpoint was taken with num_shards="
            f"{restored_graph.num_shards}, current pipeline has "
            f"num_shards={current_graph.num_shards}"
        )
    import numpy as np

    if not np.array_equal(current, restored):
        from .partition import owner_map_checksum

        raise CheckpointError(
            "checkpoint was taken under a different shard placement "
            f"(owner map crc32 {owner_map_checksum(restored)} != current "
            f"{owner_map_checksum(current)}); resume with the same "
            "shard_policy / owner map"
        )


def checkpoint_path(directory: str | Path, cursor: int) -> Path:
    """Canonical file name for a checkpoint taken at stream ``cursor``."""
    return Path(directory) / f"ckpt-{cursor:08d}.ckpt"


def checkpoint_cursor(path: str | Path) -> int | None:
    """The stream cursor encoded in a canonical checkpoint file name.

    Returns None for names that do not carry a decimal cursor.  Recency
    ordering must use this parsed value, never the raw file name: the
    canonical name pads cursors to 8 digits, so a cursor >= 10**8 produces
    a 9-digit name that sorts lexicographically *before* older 8-digit
    ones (``"1..." < "9..."``) — a purely textual sort would resume from a
    stale checkpoint and prune the newest.
    """
    stem = Path(path).name
    if not (stem.startswith("ckpt-") and stem.endswith(".ckpt")):
        return None
    digits = stem[len("ckpt-"):-len(".ckpt")]
    return int(digits) if digits.isdigit() else None


def _by_cursor(directory: Path) -> list[Path]:
    """``ckpt-*.ckpt`` entries ordered oldest-cursor-first (numeric)."""
    entries = [
        (cursor, path)
        for path in directory.glob("ckpt-*.ckpt")
        if (cursor := checkpoint_cursor(path)) is not None
    ]
    return [path for _, path in sorted(entries, key=lambda e: (e[0], e[1].name))]


@dataclass(frozen=True)
class PipelineCheckpoint:
    """One frozen pipeline state, loadable in any process.

    Attributes:
        cursor: the stream position the pipeline will consume next.
        batches_done: batches recorded in the captured ``RunMetrics``.
        config: the originating :class:`~repro.pipeline.config.RunConfig`
            as a plain dict (None when the pipeline was built by hand).
        summary: small human-readable state digest (graph size, ABR/OCA
            state) written into the file header for inspection.
        payload: the pickled pipeline state.
        version: checkpoint format version.
    """

    cursor: int
    batches_done: int
    config: dict | None
    summary: dict
    payload: bytes
    version: int = CHECKPOINT_VERSION

    # -- capture / restore ---------------------------------------------------
    @classmethod
    def capture(cls, pipeline: "StreamingPipeline") -> "PipelineCheckpoint":
        """Freeze the pipeline's current state.

        Call between batches (the :meth:`~StreamingPipeline.run` loop does,
        every ``checkpoint_every`` batches) — mid-stage state is never
        captured because :meth:`~StreamingPipeline.step` is atomic from the
        caller's perspective.
        """
        state = {
            name: value
            for name, value in pipeline.__dict__.items()
            if name not in _EXCLUDED_STATE
        }
        try:
            payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise CheckpointError(
                f"pipeline state is not picklable: {exc}"
            ) from exc
        config = pipeline.run_config
        engine = pipeline.engine
        summary = {
            "dataset": pipeline.profile.name,
            "batch_size": pipeline.batch_size,
            "algorithm": pipeline.algorithm,
            "mode": engine.policy_name,
            "num_edges": pipeline.graph.num_edges,
            "batches_applied": pipeline.graph.batches_applied,
            "abr": engine.abr.describe_state(),
            "oca": pipeline.oca.describe_state() if pipeline.oca else None,
        }
        describe_shards = getattr(pipeline.graph, "describe_shards", None)
        if describe_shards is not None:
            # Placement identity (shard count, transport, policy, owner-map
            # crc32) rides in the header so a resume under a different
            # placement is diagnosable from `head -2` alone.
            summary["shards"] = describe_shards()
        return cls(
            cursor=pipeline._cursor,
            batches_done=pipeline.metrics.num_batches,
            config=config.to_dict() if config is not None else None,
            summary=summary,
            payload=payload,
        )

    def restore(self, pipeline: "StreamingPipeline") -> "StreamingPipeline":
        """Apply this checkpoint's state onto ``pipeline`` (in place).

        The pipeline must have been built the same way as the captured one
        (same config); when both sides carry a
        :class:`~repro.pipeline.config.RunConfig` the dicts are compared
        and a mismatch raises, because silently continuing a stream under
        different parameters is exactly the corruption checkpoints exist
        to prevent.

        Returns:
            The same ``pipeline`` object, for chaining.
        """
        current = pipeline.run_config
        if current is not None and self.config is not None:
            if current.to_dict() != self.config:
                raise CheckpointError(
                    "checkpoint was taken under a different run config; "
                    f"checkpointed={self.config!r} current={current.to_dict()!r}"
                )
        try:
            state = pickle.loads(self.payload)
        except Exception as exc:  # unpickling raises wildly varied types
            raise CheckpointError(
                f"checkpoint payload is corrupt or unreadable: {exc}"
            ) from exc
        _check_shard_placement(pipeline.graph, state.get("graph"))
        trace = pipeline.trace
        pipeline.__dict__.update(state)
        pipeline.trace = trace
        if trace is not None:
            # The writer snapshots the run's telemetry on close; point it at
            # the restored backend, not the pre-restore one.
            trace.telemetry = pipeline.telemetry
        return pipeline

    # -- serialization -------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Atomically write this checkpoint to ``path``.

        Write-then-rename with fsync: concurrent readers and crashed
        writers never observe a torn file under the final name.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps(
            {
                "version": self.version,
                "cursor": self.cursor,
                "batches_done": self.batches_done,
                "config": self.config,
                "summary": self.summary,
                "payload_bytes": len(self.payload),
                "payload_crc32": zlib.crc32(self.payload),
            },
            sort_keys=True,
        ).encode()
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(header)
                handle.write(b"\n")
                handle.write(self.payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def save_to_dir(self, directory: str | Path, keep: int = 0) -> Path:
        """Write under the canonical per-cursor name; prune old files.

        Args:
            directory: checkpoint directory (created if missing).
            keep: if > 0, retain only the ``keep`` newest checkpoints after
                this write (older ones are deleted best-effort).
        """
        path = self.save(checkpoint_path(directory, self.cursor))
        if keep > 0:
            # Numeric cursor order, not file-name order: past the 8-digit
            # padding boundary the newest checkpoint sorts first textually,
            # and pruning "oldest" entries would delete it.  Files without a
            # parseable cursor are never pruned (they are not ours to age).
            entries = _by_cursor(Path(directory))
            for stale in entries[:-keep]:
                try:
                    stale.unlink()
                except OSError:
                    pass
        return path

    @classmethod
    def load(cls, path: str | Path) -> "PipelineCheckpoint":
        """Read and validate one checkpoint file.

        Raises:
            CheckpointError: missing/torn/corrupt file, bad magic, an
                unsupported version, or a payload failing its checksum.
        """
        path = Path(path)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        if not blob.startswith(_MAGIC):
            raise CheckpointError(f"{path} is not a repro checkpoint (bad magic)")
        try:
            header_end = blob.index(b"\n", len(_MAGIC))
            header = json.loads(blob[len(_MAGIC):header_end])
        except (ValueError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"{path} has a corrupt header: {exc}") from exc
        version = header.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path} is checkpoint version {version}; this build reads "
                f"version {CHECKPOINT_VERSION}"
            )
        payload = blob[header_end + 1:]
        if len(payload) != header.get("payload_bytes"):
            raise CheckpointError(
                f"{path} is truncated: expected {header.get('payload_bytes')} "
                f"payload bytes, found {len(payload)}"
            )
        if zlib.crc32(payload) != header.get("payload_crc32"):
            raise CheckpointError(f"{path} failed its payload checksum")
        return cls(
            cursor=int(header["cursor"]),
            batches_done=int(header["batches_done"]),
            config=header.get("config"),
            summary=header.get("summary", {}),
            payload=payload,
            version=version,
        )


def latest_checkpoint(
    directory: str | Path,
) -> tuple[PipelineCheckpoint, Path] | None:
    """The newest loadable checkpoint in ``directory``, or None.

    Scans ``ckpt-*.ckpt`` newest-cursor-first and skips files that fail
    validation — a run killed *while* writing (before the atomic rename) or
    a corrupted file silently falls back to the previous good checkpoint
    instead of wedging the restart.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = list(reversed(_by_cursor(directory)))
    # Non-canonical names (no parseable cursor) are still attempted, after
    # every cursor-ordered file, so a hand-saved checkpoint remains usable.
    candidates += sorted(
        (
            path
            for path in directory.glob("ckpt-*.ckpt")
            if checkpoint_cursor(path) is None
        ),
        reverse=True,
    )
    for path in candidates:
        try:
            return PipelineCheckpoint.load(path), path
        except CheckpointError:
            continue
    return None
