"""Sharded single-run execution: the bit-identical invariant and lifecycle.

A run at any ``num_shards`` must produce algorithm results, adjacency state
and ``RunMetrics`` bit-identical to ``num_shards=1`` — across every
registered algorithm, every batch transport, every multiprocessing start
method, and through a kill-and-resume cycle.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import pickle

import numpy as np
import pytest

from conftest import make_batch
from repro.compute.registry import ALGORITHMS
from repro.errors import ConfigurationError, GraphError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.graph.snapshot import take_snapshot
from repro.pipeline.checkpoint import latest_checkpoint
from repro.pipeline.config import RunConfig
from repro.pipeline.executor import CellExecutionError, mp_context
from repro.pipeline.sharding import ShardedGraph, ShardedPipeline, shard_owner

N_VERTICES = 32


def _serialize(metrics) -> list[dict]:
    """Per-batch metrics as plain data; JSON round-tripped so float
    comparison is repr-exact on both sides."""
    return json.loads(
        json.dumps([dataclasses.asdict(b) for b in metrics.batches])
    )


def _config(algorithm="pr", num_shards=1, **overrides) -> RunConfig:
    base = dict(
        dataset="fb", batch_size=500, algorithm=algorithm, mode="abr_usc",
        num_batches=3, num_shards=num_shards,
    )
    base.update(overrides)
    return RunConfig(**base)


def _run_cell(config: RunConfig):
    """Run one config; return (serialized metrics, final CSR snapshot)."""
    pipeline = config.build_pipeline()
    try:
        metrics = pipeline.run(config.num_batches)
        snapshot = take_snapshot(pipeline.graph)
    finally:
        close = getattr(pipeline, "close", None)
        if close is not None:
            close()
    return _serialize(metrics), snapshot


def _assert_snapshots_identical(a, b):
    assert a.num_vertices == b.num_vertices
    for field in (
        "out_offsets", "out_targets", "out_weights",
        "in_offsets", "in_sources", "in_weights",
    ):
        left, right = getattr(a, field), getattr(b, field)
        assert left.dtype == right.dtype, field
        assert np.array_equal(left, right), field


# -- graph-level parity --------------------------------------------------------


def _mixed_batches():
    """Insertions, in-batch repeats, deletions, self-loops, re-inserts."""
    return [
        make_batch(
            [0, 1, 2, 3, 1, 0, 5, 5], [1, 2, 3, 0, 2, 1, 5, 6],
            [1.0, 2.0, 3.0, 4.0, 9.0, 5.0, 6.0, 7.0], batch_id=0,
        ),
        make_batch(
            [1, 2, 0, 7, 0, 1], [2, 3, 1, 8, 9, 2],
            [8.0, 3.5, 1.5, 2.5, 4.5, 8.0], batch_id=1,
            is_delete=[False, True, False, False, False, True],
        ),
        make_batch(
            [2, 3, 5, 0, 2], [3, 0, 6, 9, 3],
            [6.5, 1.0, 2.0, 3.0, 7.5], batch_id=2,
            is_delete=[False, False, True, True, False],
        ),
    ]


def _apply_all(graph, batches):
    return [graph.apply_batch(batch) for batch in batches]


def _assert_stats_identical(a, b):
    assert a.batch_id == b.batch_id
    assert a.batch_size == b.batch_size
    assert a.deleted_edges == b.deleted_edges
    for direction in ("out", "inn"):
        left, right = getattr(a, direction), getattr(b, direction)
        for field in ("vertices", "batch_degree", "length_before", "new_edges"):
            assert np.array_equal(
                getattr(left, field), getattr(right, field)
            ), (direction, field)


def _assert_graphs_identical(serial: AdjacencyListGraph, sharded: ShardedGraph):
    assert sharded.num_edges == serial.num_edges
    assert sharded.batches_applied == serial.batches_applied
    assert sharded.touched_count() == serial.touched_count()
    assert sharded.vertices_with_edges() == serial.vertices_with_edges()
    serial_out, serial_in = serial.adjacency_views()
    shard_out, shard_in = sharded.adjacency_views()
    # Outer iteration order and inner dict order must both match: CC's
    # rebuild and the CSR snapshots depend on them.
    assert list(shard_out) == list(serial_out)
    assert list(shard_in) == list(serial_in)
    for v in serial_out:
        assert list(shard_out[v].items()) == list(serial_out[v].items())
    for v in serial_in:
        assert list(shard_in[v].items()) == list(serial_in[v].items())
    _assert_snapshots_identical(take_snapshot(sharded), take_snapshot(serial))


@pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 5])
def test_graph_parity_with_deletions(num_shards):
    serial = AdjacencyListGraph(N_VERTICES)
    sharded = ShardedGraph(N_VERTICES, num_shards)
    try:
        serial_stats = _apply_all(serial, _mixed_batches())
        sharded_stats = _apply_all(sharded, _mixed_batches())
        for a, b in zip(sharded_stats, serial_stats):
            _assert_stats_identical(a, b)
        _assert_graphs_identical(serial, sharded)
    finally:
        sharded.close()


def test_interleaved_reads_keep_cache_coherent():
    """Reading between batches (the compute stages do) must never observe
    stale adjacency: apply replies refresh the mirrored dicts."""
    serial = AdjacencyListGraph(N_VERTICES)
    sharded = ShardedGraph(N_VERTICES, 2)
    try:
        for batch in _mixed_batches():
            serial.apply_batch(batch)
            sharded.apply_batch(batch)
            for v in serial.vertices_with_edges():
                assert sharded.out_neighbors(v) == serial.out_neighbors(v)
                assert sharded.in_neighbors(v) == serial.in_neighbors(v)
        assert sharded.has_edge(0, 1) == serial.has_edge(0, 1)
        assert sharded.edge_weight(0, 1) == serial.edge_weight(0, 1)
        assert sharded.has_edge(30, 31) is False
        assert sharded.out_neighbors(31) == {}
    finally:
        sharded.close()


def test_tracked_graph_parity_with_deletions():
    """track_deltas() must flip the workers onto the tracked apply path —
    its per-vertex dict insertion order (composite-sort dedup) differs from
    the untracked fast path's, and the static-recompute algorithms attach a
    DeltaSnapshotter that tracks the serial graph."""
    serial = AdjacencyListGraph(N_VERTICES)
    serial.track_deltas(True)
    sharded = ShardedGraph(N_VERTICES, 2)
    sharded.track_deltas(True)
    try:
        for a, b in zip(
            _apply_all(sharded, _mixed_batches()),
            _apply_all(serial, _mixed_batches()),
        ):
            _assert_stats_identical(a, b)
        assert sharded.consume_delta() is None
        _assert_graphs_identical(serial, sharded)
        restored = pickle.loads(pickle.dumps(sharded))
        try:
            extra = make_batch([1, 1, 1], [9, 3, 7], [1.0, 2.0, 3.0], batch_id=3)
            serial.apply_batch(extra)
            restored.apply_batch(extra)
            assert restored.out_neighbors(1) == serial.out_neighbors(1)
            assert list(restored.out_neighbors(1)) == list(serial.out_neighbors(1))
        finally:
            restored.close()
    finally:
        sharded.close()


def test_owner_mapping_is_vertex_mod_shards():
    vertices = np.arange(17, dtype=np.int64)
    assert np.array_equal(shard_owner(vertices, 4), vertices % 4)


def test_notify_external_mutation_rejected():
    sharded = ShardedGraph(N_VERTICES, 2)
    try:
        with pytest.raises(GraphError):
            sharded.notify_external_mutation()
    finally:
        sharded.close()


# -- transports and start methods ---------------------------------------------


def test_inline_transport_parity(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_SHM", "0")
    serial = AdjacencyListGraph(N_VERTICES)
    sharded = ShardedGraph(N_VERTICES, 2)
    try:
        for a, b in zip(
            _apply_all(sharded, _mixed_batches()),
            _apply_all(serial, _mixed_batches()),
        ):
            _assert_stats_identical(a, b)
        _assert_graphs_identical(serial, sharded)
    finally:
        sharded.close()


@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_start_method_parity(monkeypatch, method):
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{method} unavailable on this platform")
    monkeypatch.setenv("REPRO_MP_START", method)
    assert mp_context().get_start_method() == method
    serial = AdjacencyListGraph(N_VERTICES)
    sharded = ShardedGraph(N_VERTICES, 2)
    try:
        for a, b in zip(
            _apply_all(sharded, _mixed_batches()),
            _apply_all(serial, _mixed_batches()),
        ):
            _assert_stats_identical(a, b)
        _assert_graphs_identical(serial, sharded)
    finally:
        sharded.close()


def test_mp_start_override_validated(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START", "sideways")
    with pytest.raises(ConfigurationError):
        mp_context()


# -- pipeline parity across every registered algorithm ------------------------


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_sharded_pipeline_parity_all_algorithms(algorithm):
    serial_metrics, serial_snapshot = _run_cell(_config(algorithm, 1))
    sharded_metrics, sharded_snapshot = _run_cell(_config(algorithm, 2))
    assert sharded_metrics == serial_metrics
    _assert_snapshots_identical(sharded_snapshot, serial_snapshot)


def test_sharded_pipeline_parity_four_shards():
    """The acceptance shard count: --shards 4 vs --shards 1."""
    serial_metrics, serial_snapshot = _run_cell(_config("pr", 1))
    sharded_metrics, sharded_snapshot = _run_cell(_config("pr", 4))
    assert sharded_metrics == serial_metrics
    _assert_snapshots_identical(sharded_snapshot, serial_snapshot)


def test_sharded_pipeline_parity_with_oca_and_telemetry():
    overrides = dict(use_oca=True, telemetry="basic", num_batches=4)
    serial_metrics, _ = _run_cell(_config("pr", 1, **overrides))
    sharded_metrics, _ = _run_cell(_config("pr", 3, **overrides))
    assert sharded_metrics == serial_metrics


def test_sharded_pipeline_builds_via_config():
    pipeline = _config("none", 2).build_pipeline()
    try:
        assert isinstance(pipeline, ShardedPipeline)
        assert isinstance(pipeline.graph, ShardedGraph)
        assert pipeline.num_shards == 2
    finally:
        pipeline.close()
    serial = _config("none", 1).build_pipeline()
    assert not isinstance(serial, ShardedPipeline)


def test_sharded_pipeline_context_manager():
    with _config("none", 2).build_pipeline() as pipeline:
        pipeline.run(2)
        graph = pipeline.graph
        assert graph._conns is not None
    assert graph._conns is None


def test_shard_telemetry_merges_worker_counters():
    with _config("none", 2, telemetry="basic", num_batches=3).build_pipeline() as p:
        p.run(3)
        snapshot = p.shard_telemetry()
    assert snapshot.counter("shard.coordinator_batches") == 3
    assert snapshot.counter("shard.batches") == 6  # 3 batches x 2 workers
    assert snapshot.counter("shard.out_edges") == snapshot.counter("shard.in_edges")
    # Shard instrumentation stays out of the pipeline's own stream.
    assert "shard.batches" not in p.telemetry.snapshot().counters


# -- checkpoint / resume -------------------------------------------------------


def test_sharded_graph_pickle_round_trip():
    original = ShardedGraph(N_VERTICES, 2)
    restored = None
    try:
        batches = _mixed_batches()
        for batch in batches[:2]:
            original.apply_batch(batch)
        restored = pickle.loads(pickle.dumps(original))
        original.apply_batch(batches[2])
        restored.apply_batch(batches[2])
        serial = AdjacencyListGraph(N_VERTICES)
        _apply_all(serial, batches)
        _assert_graphs_identical(serial, restored)
        _assert_graphs_identical(serial, original)
    finally:
        original.close()
        if restored is not None:
            restored.close()


@pytest.mark.parametrize("transport", ["shm", "tcp"])
@pytest.mark.parametrize("policy", ["mod", "greedy"])
def test_kill_and_resume_matches_uninterrupted(tmp_path, transport, policy):
    config = _config(
        "pr", 2, num_batches=6, shard_transport=transport, shard_policy=policy
    )
    uninterrupted, _ = _run_cell(config)

    pipeline = config.build_pipeline()
    for index in range(4):
        pipeline.step(final=False)
        if (index + 1) % 2 == 0:
            pipeline.save_checkpoint(tmp_path)
    # Hard-kill the shard workers mid-run: the next batch must fail loudly
    # (partition state is gone), not silently continue.
    for proc in pipeline.graph._procs:
        proc.kill()
    with pytest.raises(CellExecutionError):
        pipeline.step(final=False)
    pipeline.close()

    found = latest_checkpoint(tmp_path)
    assert found is not None
    checkpoint, _path = found
    resumed = config.build_pipeline()
    try:
        metrics = resumed.run(config.num_batches, resume_from=checkpoint)
    finally:
        resumed.close()
    assert _serialize(metrics) == uninterrupted


def test_resume_rejects_different_shard_count(tmp_path):
    from repro.errors import CheckpointError

    config = _config("none", 2, num_batches=4)
    pipeline = config.build_pipeline()
    pipeline.step(final=False)
    pipeline.save_checkpoint(tmp_path)
    pipeline.close()
    checkpoint, _path = latest_checkpoint(tmp_path)
    other = _config("none", 1, num_batches=4)
    with pytest.raises(CheckpointError):
        other.build_pipeline().run(4, resume_from=checkpoint)


def test_resume_rejects_different_placement(tmp_path):
    """The checkpoint carries the owner map; a resume whose fresh pipeline
    materialized a different placement must be rejected, not silently run
    under the checkpointed one."""
    from repro.errors import CheckpointError

    config = _config("none", 2, num_batches=4, shard_policy="mod")
    pipeline = config.build_pipeline()
    pipeline.step(final=False)
    pipeline.save_checkpoint(tmp_path)
    pipeline.close()
    checkpoint, _path = latest_checkpoint(tmp_path)
    other = _config("none", 2, num_batches=4, shard_policy="hash")
    resumed = other.build_pipeline()
    try:
        with pytest.raises(CheckpointError):
            resumed.run(4, resume_from=checkpoint)
    finally:
        resumed.close()
    # The header carries the placement identity for offline inspection.
    assert checkpoint.summary["shards"]["policy"] == "mod"
    assert checkpoint.summary["shards"]["num_shards"] == 2
    assert isinstance(checkpoint.summary["shards"]["owner_map_crc32"], int)


# -- validation and failure surfacing -----------------------------------------


def test_num_shards_validated_at_construction():
    with pytest.raises(ConfigurationError):
        ShardedGraph(N_VERTICES, 0)
    with pytest.raises(ConfigurationError):
        RunConfig(dataset="fb", batch_size=500, num_shards=0)


def test_num_shards_round_trips():
    config = _config("pr", 4)
    assert RunConfig.from_json(config.to_json()) == config
    assert pickle.loads(pickle.dumps(config)).num_shards == 4


def test_closed_graph_refuses_work():
    sharded = ShardedGraph(N_VERTICES, 2)
    sharded.apply_batch(_mixed_batches()[0])
    sharded.close()
    with pytest.raises(GraphError):
        sharded.apply_batch(_mixed_batches()[0])


def test_dead_worker_surfaces_as_cell_execution_error():
    sharded = ShardedGraph(N_VERTICES, 2)
    try:
        sharded.apply_batch(_mixed_batches()[0])
        for proc in sharded._procs:
            proc.kill()
        with pytest.raises(CellExecutionError):
            sharded.apply_batch(_mixed_batches()[1])
    finally:
        # close() tolerates already-dead workers and reaps them regardless.
        sharded.close()
        assert sharded._conns is None
        assert sharded._procs is None
