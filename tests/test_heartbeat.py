"""Live-run heartbeat: atomic beats, the `repro top` renderer, anomaly
math, and crash durability (a SIGKILLed run leaves readable artifacts).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.telemetry.anomaly import AnomalyFlag, rolling_mad_flags
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.heartbeat import (
    HEARTBEAT_FILENAME,
    HeartbeatMonitor,
    read_heartbeat,
    render_heartbeat,
)


# -- the beat ------------------------------------------------------------------

def _instrumented_telemetry() -> Telemetry:
    tel = Telemetry("full")
    with tel.span("stage.update"):
        pass
    with tel.span("stage.compute"):
        pass
    tel.count("partition.load.s00", 90)
    tel.count("partition.load.s01", 110)
    tel.count("transport.bytes_sent", 1000)
    tel.count("transport.bytes_received", 2000)
    tel.count("transport.round_trips", 4)
    return tel


def test_beat_writes_atomic_payload(tmp_path):
    path = tmp_path / "hb.json"
    monitor = HeartbeatMonitor(
        path, run_id="r1", label="fb @ 500", total_batches=4
    )
    tel = _instrumented_telemetry()
    monitor.note_checkpoint()
    payload = monitor.beat(
        tel, batch_id=0, batch_edges=500, wall_seconds=0.25
    )
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert not list(tmp_path.glob("*.tmp"))
    assert payload["schema"] == 1
    assert payload["run_id"] == "r1"
    assert payload["batches_done"] == 1
    assert payload["total_batches"] == 4
    assert payload["throughput_eps"] == pytest.approx(500 / 0.25)
    assert payload["batch_seconds"]["last"] == 0.25
    assert set(payload["stages"]) == {"update", "compute"}
    assert payload["shards"] == {"00": 90, "01": 110}
    assert payload["transport"]["bytes_sent"] == 1000
    assert payload["checkpoint"]["age_s"] >= 0.0


def test_stage_deltas_are_per_beat_not_cumulative(tmp_path):
    monitor = HeartbeatMonitor(tmp_path / "hb.json")
    tel = Telemetry("full")
    with tel.span("stage.update"):
        time.sleep(0.002)
    first = monitor.beat(tel, batch_id=0, batch_edges=10, wall_seconds=0.01)
    # No new stage work: the next beat reports no stage deltas.
    second = monitor.beat(tel, batch_id=1, batch_edges=10, wall_seconds=0.01)
    assert first["stages"]["update"] > 0.0
    assert "update" not in second["stages"]
    with tel.span("stage.update"):
        time.sleep(0.002)
    third = monitor.beat(tel, batch_id=2, batch_edges=10, wall_seconds=0.01)
    assert third["stages"]["update"] < tel.snapshot().spans["stage.update"].total


def test_null_telemetry_degrades_to_throughput_only(tmp_path):
    monitor = HeartbeatMonitor(tmp_path / "hb.json")
    payload = monitor.beat(
        NULL_TELEMETRY, batch_id=0, batch_edges=100, wall_seconds=0.5
    )
    assert payload["throughput_eps"] == pytest.approx(200.0)
    assert payload["stages"] == {}
    assert "shards" not in payload and "transport" not in payload


def test_beat_refreshes_prometheus_textfile_in_run(tmp_path):
    prom = tmp_path / "metrics.prom"
    monitor = HeartbeatMonitor(
        None, prom_path=prom, prom_labels={"dataset": "fb"}
    )
    tel = Telemetry("full")
    tel.count("pipeline.batches", 1)
    monitor.beat(tel, batch_id=0, batch_edges=10, wall_seconds=0.01)
    text = prom.read_text()
    assert 'repro_pipeline_batches_total{dataset="fb"} 1' in text
    tel.count("pipeline.batches", 1)
    monitor.beat(tel, batch_id=1, batch_edges=10, wall_seconds=0.01)
    assert 'repro_pipeline_batches_total{dataset="fb"} 2' in prom.read_text()


def test_directory_path_resolves_to_heartbeat_json(tmp_path):
    monitor = HeartbeatMonitor(tmp_path)
    monitor.beat(NULL_TELEMETRY, batch_id=0, batch_edges=1, wall_seconds=0.1)
    assert (tmp_path / HEARTBEAT_FILENAME).exists()
    assert read_heartbeat(tmp_path)["batch_id"] == 0


def test_checkpoint_age_survives_wall_clock_step(tmp_path, monkeypatch):
    """An NTP/DST step between checkpoint and beat must not corrupt the
    reported checkpoint age: the arithmetic runs on the monotonic clock,
    the wall stamp is display-only."""
    import repro.telemetry.heartbeat as hb_mod

    clock = {"wall": 1_000_000.0, "mono": 500.0}
    monkeypatch.setattr(hb_mod.time, "time", lambda: clock["wall"])
    monkeypatch.setattr(hb_mod.time, "monotonic", lambda: clock["mono"])
    monitor = HeartbeatMonitor(tmp_path / "hb.json")
    monitor.note_checkpoint()
    # The wall clock steps back a whole hour while 5 real seconds pass.
    clock["wall"] -= 3600.0
    clock["mono"] += 5.0
    payload = monitor.beat(
        NULL_TELEMETRY, batch_id=0, batch_edges=10, wall_seconds=0.01
    )
    assert payload["checkpoint"]["age_s"] == pytest.approx(5.0)
    assert payload["ts"] == clock["wall"]
    assert payload["mono"] == clock["mono"]
    # With a forward step the age still tracks real elapsed time.
    clock["wall"] += 7200.0
    clock["mono"] += 1.0
    again = monitor.beat(
        NULL_TELEMETRY, batch_id=1, batch_edges=10, wall_seconds=0.01
    )
    assert again["checkpoint"]["age_s"] == pytest.approx(6.0)


def test_render_ages_from_monotonic_stamp(tmp_path, monkeypatch):
    """`repro top` (no explicit now) ages the frame from the payload's
    monotonic stamp, so a wall-clock step can't flag a live run STALLED."""
    import repro.telemetry.heartbeat as hb_mod

    clock = {"wall": 1_000_000.0, "mono": 500.0}
    monkeypatch.setattr(hb_mod.time, "time", lambda: clock["wall"])
    monkeypatch.setattr(hb_mod.time, "monotonic", lambda: clock["mono"])
    monitor = HeartbeatMonitor(tmp_path / "hb.json")
    monitor.beat(NULL_TELEMETRY, batch_id=0, batch_edges=10, wall_seconds=0.01)
    data = read_heartbeat(tmp_path / "hb.json")
    # Wall clock jumps an hour ahead; only 2 real seconds pass.
    clock["wall"] += 3600.0
    clock["mono"] += 2.0
    frame = render_heartbeat(data, max_age=30.0)
    assert "heartbeat 2.0s old" in frame
    assert "STALLED" not in frame
    # Explicit `now` keeps wall semantics for archived heartbeats.
    archived = render_heartbeat(data, now=data["ts"] + 120.0, max_age=30.0)
    assert "STALLED" in archived


# -- reading + rendering -------------------------------------------------------

def test_read_heartbeat_returns_none_when_absent_or_invalid(tmp_path):
    assert read_heartbeat(tmp_path / "missing.json") is None
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert read_heartbeat(bad) is None


def test_read_heartbeat_tolerates_garbage_and_non_objects(tmp_path):
    binary = tmp_path / "binary.json"
    binary.write_bytes(b"\xff\xfe\x00garbage\x00\x80")
    assert read_heartbeat(binary) is None
    truncated = tmp_path / "truncated.json"
    truncated.write_text('{"schema": 1, "ts": 123')
    assert read_heartbeat(truncated) is None
    empty = tmp_path / "empty.json"
    empty.write_text("")
    assert read_heartbeat(empty) is None
    # Valid JSON that isn't an object is just as unusable for a renderer.
    scalar = tmp_path / "scalar.json"
    scalar.write_text("42")
    assert read_heartbeat(scalar) is None
    listdoc = tmp_path / "list.json"
    listdoc.write_text("[1, 2, 3]")
    assert read_heartbeat(listdoc) is None


def test_render_heartbeat_frame(tmp_path):
    monitor = HeartbeatMonitor(
        tmp_path / "hb.json", run_id="r1", label="fb @ 500 [pr, abr_usc]",
        total_batches=8,
    )
    tel = _instrumented_telemetry()
    monitor.beat(tel, batch_id=2, batch_edges=500, wall_seconds=0.1)
    data = read_heartbeat(tmp_path / "hb.json")
    frame = render_heartbeat(data, now=data["ts"] + 1.0)
    assert "fb @ 500 [pr, abr_usc]" in frame
    assert "heartbeat 1.0s old" in frame
    assert "batches: 1/8" in frame
    assert "throughput: 5.00k edges/s" in frame
    assert "s00:" in frame and "s01:" in frame
    assert "STALLED" not in frame
    stale = render_heartbeat(data, now=data["ts"] + 120.0, max_age=30.0)
    assert "STALLED" in stale


def test_top_once_via_cli(tmp_path, capsys):
    from repro.cli import main

    monitor = HeartbeatMonitor(tmp_path / "hb.json", label="fb run")
    monitor.beat(NULL_TELEMETRY, batch_id=3, batch_edges=100, wall_seconds=0.1)
    assert main(["top", str(tmp_path / "hb.json"), "--once"]) == 0
    out = capsys.readouterr().out
    assert "fb run" in out and "last batch id: 3" in out
    assert main(["top", str(tmp_path / "nope.json"), "--once"]) == 1


def test_top_loop_waits_on_corrupt_heartbeat_and_restores_screen(
    tmp_path, monkeypatch, capsys
):
    """The watch loop renders "waiting" (not a crash) over a torn or
    corrupt heartbeat, and Ctrl-C leaves the terminal on the primary
    screen buffer with exit 0."""
    import time as time_mod

    from repro.cli import main

    torn = tmp_path / "hb.json"
    torn.write_text('{"schema": 1, "ts":')
    ticks = {"n": 0}

    def interrupt_on_second_tick(_interval):
        ticks["n"] += 1
        if ticks["n"] >= 2:
            raise KeyboardInterrupt

    monkeypatch.setattr(time_mod, "sleep", interrupt_on_second_tick)
    assert main(["top", str(torn), "--interval", "0.01"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("\x1b[?1049h")   # alternate screen entered...
    assert out.endswith("\x1b[?1049l")     # ...and restored on the way out
    assert "waiting for heartbeat" in out


# -- anomaly math --------------------------------------------------------------

def test_rolling_mad_flags_spike_not_trend():
    steady = [1.0, 1.05, 0.95, 1.0, 1.02, 0.98, 1.01, 1.0]
    assert rolling_mad_flags(steady) == []
    spiked = steady[:5] + [9.0] + steady[5:]
    flags = rolling_mad_flags(spiked)
    assert [f.index for f in flags] == [5]
    flag = flags[0]
    assert isinstance(flag, AnomalyFlag)
    assert flag.value == 9.0
    assert flag.baseline == pytest.approx(1.0, abs=0.05)
    assert flag.z > 3.5
    assert flag.ratio == pytest.approx(9.0 / flag.baseline)
    # A gradual ramp is a level shift, not an anomaly.
    ramp = [1.0 * 1.08 ** i for i in range(16)]
    assert rolling_mad_flags(ramp) == []


def test_rolling_mad_needs_history_and_handles_flat_series():
    # Too little history: nothing can be flagged.
    assert rolling_mad_flags([1.0, 100.0]) == []
    # A perfectly flat series has MAD 0; the relative floor keeps a true
    # spike flaggable without dividing by zero.
    flat = [2.0] * 8 + [20.0]
    flags = rolling_mad_flags(flat)
    assert [f.index for f in flags] == [8]
    assert rolling_mad_flags([2.0] * 10) == []
    assert rolling_mad_flags([]) == []


# -- crash durability ----------------------------------------------------------

def test_killed_run_leaves_readable_heartbeat_and_trace(tmp_path):
    """SIGKILL mid-run: the heartbeat and trace stay parseable (atomic
    replace + line-oriented trace with torn-tail tolerance)."""
    from repro.pipeline.tracing import read_trace_document

    hb = tmp_path / "hb.json"
    trace = tmp_path / "trace.jsonl"
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "run", "fb",
            "--batch-size", "200", "--num-batches", "500",
            "--algorithm", "pr", "--trace", str(trace),
            "--heartbeat", str(hb),
        ],
        env=env, cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 60.0
        while time.time() < deadline:
            data = read_heartbeat(hb)
            if data is not None and data["batches_done"] >= 2:
                break
            if proc.poll() is not None:
                pytest.fail("run finished before it could be killed")
            time.sleep(0.05)
        else:
            pytest.fail("no heartbeat appeared within 60s")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    data = read_heartbeat(hb)
    assert data is not None
    assert data["batches_done"] >= 2
    assert data["run_id"]
    rendered = render_heartbeat(data, max_age=0.0)
    assert "STALLED" in rendered
    doc = read_trace_document(trace)
    assert len(doc.events) >= 1  # whatever was flushed before the kill
    assert doc.summary is None  # close() never ran


def test_sigint_sharded_run_checkpoints_and_exits_130(tmp_path):
    """Ctrl-C on `repro run --shards N`: the run stops at a batch
    boundary, writes a checkpoint (even though --every would not have
    fired yet), closes the shard runtime, and exits with 130."""
    hb = tmp_path / "hb.json"
    ckpt = tmp_path / "ckpt"
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "run", "fb",
            "--batch-size", "200", "--num-batches", "500",
            "--algorithm", "pr", "--shards", "2",
            "--shard-transport", "inproc",
            "--checkpoint", str(ckpt), "--every", "1000",
            "--heartbeat", str(hb),
        ],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )
    try:
        deadline = time.time() + 60.0
        while time.time() < deadline:
            data = read_heartbeat(hb)
            if data is not None and data["batches_done"] >= 2:
                break
            if proc.poll() is not None:
                pytest.fail("run finished before it could be interrupted")
            time.sleep(0.05)
        else:
            pytest.fail("no heartbeat appeared within 60s")
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    assert proc.returncode == 130
    assert "interrupted" in stderr.decode()
    assert "progress checkpointed" in stderr.decode()
    # --every 1000 never fired on its own: only the interrupt path wrote.
    written = sorted(ckpt.glob("ckpt-*.ckpt"))
    assert len(written) >= 1
