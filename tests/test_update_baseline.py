"""Baseline (locked, edge-centric) update cost model."""

import numpy as np
import pytest

from conftest import make_batch
from repro.costs import CostParameters
from repro.exec_model.machine import MachineConfig
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.update.baseline import baseline_update_timing

MACHINE = MachineConfig(name="t", num_workers=8)
COSTS = CostParameters()


def _timing(graph, batch):
    stats = graph.apply_batch(batch)
    return baseline_update_timing(stats, graph, COSTS, MACHINE)


def test_empty_batch_costs_only_spawn(tiny_graph):
    timing = _timing(tiny_graph, make_batch([], []))
    assert timing.makespan == pytest.approx(COSTS.phase_spawn)


def test_more_edges_cost_more(tiny_graph):
    small = _timing(tiny_graph, make_batch([1, 2], [3, 4]))
    other = AdjacencyListGraph(32)
    big = _timing(other, make_batch(list(range(10)), [v + 10 for v in range(10)]))
    assert big.makespan > small.makespan


def test_longer_adjacency_costs_more_scan():
    g1 = AdjacencyListGraph(64)
    g1.apply_batch(make_batch([1] * 30, list(range(2, 32))))
    cold = _timing(g1, make_batch([1], [40], batch_id=1))
    g2 = AdjacencyListGraph(64)
    warm = _timing(g2, make_batch([1], [40]))
    assert cold.makespan > warm.makespan


def test_low_degree_batch_has_no_contention_chain():
    graph = AdjacencyListGraph(4096)
    # 512 distinct vertices, degree 1 each: holds are tiny fractions of the
    # batch duration, so phi ~ 0 and the critical path stays near a single
    # update's cost.
    batch = make_batch(list(range(512)), [(v + 1) % 4096 for v in range(512)])
    timing = _timing(graph, batch)
    assert timing.limiter == "work"
    assert timing.critical_path < 0.05 * timing.total_work


def test_hot_vertex_serializes_into_chain():
    graph = AdjacencyListGraph(4096)
    graph.apply_batch(make_batch([7] * 600, [(i + 10) % 4096 for i in range(600)]))
    # 400 more updates to the now-long vertex 7 dominate the batch: full
    # contention, chain-bound makespan.
    batch = make_batch([7] * 400, [(i + 700) % 4096 for i in range(400)], batch_id=1)
    timing = _timing(graph, batch)
    assert timing.limiter == "chain"
    assert timing.critical_path > 0.5 * timing.total_work


def test_contention_increases_total_work():
    flat_graph = AdjacencyListGraph(4096)
    flat = _timing(flat_graph, make_batch(list(range(400)), [v + 400 for v in range(400)]))
    hot_graph = AdjacencyListGraph(4096)
    hot = _timing(hot_graph, make_batch([7] * 400, [v + 400 for v in range(400)]))
    # Same edge count; the hot batch burns extra handoff/spin work.
    assert hot.total_work > flat.total_work


def test_more_workers_reduce_work_bound_makespan(tiny_graph):
    stats = tiny_graph.apply_batch(make_batch([1, 2, 3], [4, 5, 6]))
    small = baseline_update_timing(stats, tiny_graph, COSTS, MachineConfig(name="s", num_workers=2))
    big = baseline_update_timing(stats, tiny_graph, COSTS, MachineConfig(name="b", num_workers=32))
    assert big.makespan <= small.makespan
