"""Insert+delete streams: exact incremental analytics under edge removal.

Streaming graphs are not append-only: friendships end, routes go down,
transactions are reversed.  The paper's update ordering (Section 4.4.3:
"software triggers ... all insertions first before performing deletions")
and the incremental algorithms' invalidate-and-repair machinery keep results
exact.  This example streams a deleting workload and cross-checks the
incremental SSSP distances against a from-scratch recomputation after every
batch.

Run:  python examples/streaming_deletions.py
"""

import os

from repro import IncrementalSSSP, StaticSSSP, get_dataset, take_snapshot
from repro.datasets.generators import StreamGenerator
from repro.graph import AdjacencyListGraph

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
BATCH_SIZE = 2_000
NUM_BATCHES = 4 if QUICK else 8
DELETE_FRACTION = 0.15


def main() -> None:
    base = get_dataset("fb")
    generator = StreamGenerator(
        src_profile=base.src_profile,
        dst_profile=base.dst_profile,
        num_vertices=base.num_vertices,
        seed=11,
        delete_fraction=DELETE_FRACTION,
        hub_in_pool=base.hub_in_pool,
    )
    graph = AdjacencyListGraph(base.num_vertices)
    first = generator.generate_batch(0, BATCH_SIZE)
    # Use the batch's most active source so the reachable region is rich.
    sources, counts = first.out_degrees()
    source = int(sources[counts.argmax()])
    sssp = IncrementalSSSP(graph, source)

    print(f"streaming {base.full_name}-like workload with "
          f"{DELETE_FRACTION:.0%} deletions, source vertex {source}\n")
    print(f"{'batch':>6s}{'inserts':>9s}{'deletes':>9s}{'edges':>9s}"
          f"{'reachable':>11s}{'exact?':>8s}")
    for i in range(NUM_BATCHES):
        batch = generator.generate_batch(i, BATCH_SIZE)
        graph.apply_batch(batch)
        sssp.on_batch(batch)
        reference, __ = StaticSSSP(source).run(take_snapshot(graph))
        exact = all(
            (a == b) or (a != a and b != b)  # NaN-free inf comparison
            for a, b in zip(sssp.dist, reference)
        ) and sssp.dist == reference
        reachable = sum(d != float("inf") for d in sssp.dist)
        print(f"{i:>6d}{batch.insertions.size:>9d}{batch.deletions.size:>9d}"
              f"{graph.num_edges:>9d}{reachable:>11d}{str(exact):>8s}")
        assert exact, "incremental distances diverged from recompute"

    print("\nincremental SSSP stayed exact through every deleting batch "
          "(KickStarter-style invalidate-and-repair).")


if __name__ == "__main__":
    main()
