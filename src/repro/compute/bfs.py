"""Breadth-first search: static and incremental (extension algorithms).

The paper's evaluation uses PR and SSSP; BFS is the standard third member of
streaming-graph suites (SAGA-Bench ships it too) and exercises the same
incremental computation model with unit weights: levels only decrease under
insertions, and deletions invalidate-and-repair exactly like SSSP.
"""

from __future__ import annotations

import math

import numpy as np

from ..datasets.stream import Batch
from ..errors import ConfigurationError
from ..graph.base import DynamicGraph
from ..graph.snapshot import CSRSnapshot
from .result import ComputeCounters
from .sssp import IncrementalSSSP

__all__ = ["StaticBFS", "IncrementalBFS"]

INF = math.inf


class StaticBFS:
    """Frontier-based BFS over a CSR snapshot."""

    def __init__(self, source: int):
        if source < 0:
            raise ConfigurationError(f"source must be >= 0, got {source}")
        self.source = source

    def run(self, snapshot: CSRSnapshot) -> tuple[np.ndarray, ComputeCounters]:
        """Compute hop distances; unreachable vertices get -1."""
        n = snapshot.num_vertices
        if self.source >= n:
            raise ConfigurationError(
                f"source {self.source} out of range for {n} vertices"
            )
        levels = np.full(n, -1, dtype=np.int64)
        levels[self.source] = 0
        frontier = np.array([self.source], dtype=np.int64)
        touched_vertices = 0
        touched_edges = 0
        iterations = 0
        while len(frontier):
            iterations += 1
            touched_vertices += len(frontier)
            neighbors = []
            for v in frontier.tolist():
                targets, __ = snapshot.out_slice(v)
                touched_edges += len(targets)
                neighbors.append(targets)
            if neighbors:
                candidates = np.unique(np.concatenate(neighbors))
                fresh = candidates[levels[candidates] < 0]
            else:
                fresh = np.empty(0, dtype=np.int64)
            levels[fresh] = iterations
            frontier = fresh
        counters = ComputeCounters(
            iterations=iterations,
            touched_vertices=touched_vertices,
            touched_edges=touched_edges,
        )
        return levels, counters


class IncrementalBFS(IncrementalSSSP):
    """Incremental BFS = incremental SSSP with unit edge weights.

    Shares the insert-relaxation and delete-invalidate/repair machinery; the
    only difference is that every edge counts as one hop regardless of the
    stored weight.
    """

    def _relax_from(self, heap):
        # Same algorithm; unit weights are enforced at seed time and here by
        # flattening weights during neighbor expansion.
        import heapq

        dist = self.dist
        out_adj, __ = self.graph.adjacency_views()
        empty: dict[int, float] = {}
        touched_vertices = 0
        touched_edges = 0
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            touched_vertices += 1
            out = out_adj.get(v, empty)
            touched_edges += len(out)
            nd = d + 1.0
            for t in out:
                if nd < dist[t]:
                    dist[t] = nd
                    heapq.heappush(heap, (nd, t))
        return touched_vertices, touched_edges

    def on_batches(self, batches: list[Batch]) -> ComputeCounters:
        import heapq

        dist = self.dist
        touched_vertices = 0
        touched_edges = 0
        deleted_roots: set[int] = set()
        for batch in batches:
            deletions = batch.deletions
            if deletions.size:
                deleted_roots.update(deletions.dst.tolist())
        if deleted_roots:
            invalid, closure_edges = self._invalidate_closure_unit(deleted_roots)
            touched_edges += closure_edges
            for v in invalid:
                dist[v] = INF
            heap = []
            for v in invalid:
                best = INF
                in_nbrs = self.graph.in_neighbors(v)
                touched_edges += len(in_nbrs)
                for u in in_nbrs:
                    if u not in invalid and dist[u] + 1.0 < best:
                        best = dist[u] + 1.0
                if best < INF:
                    dist[v] = best
                    heapq.heappush(heap, (best, v))
            touched_vertices += len(invalid)
            tv, te = self._relax_from(heap)
            touched_vertices += tv
            touched_edges += te
        heap = []
        for batch in batches:
            inserts = batch.insertions
            for u, v in zip(inserts.src.tolist(), inserts.dst.tolist()):
                if not self.graph.has_edge(u, v):
                    continue
                nd = dist[u] + 1.0
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
            touched_edges += inserts.size
        tv, te = self._relax_from(heap)
        touched_vertices += tv
        touched_edges += te
        return ComputeCounters(
            iterations=1,
            touched_vertices=touched_vertices,
            touched_edges=touched_edges,
        )

    def _invalidate_closure_unit(self, roots: set[int]) -> tuple[set[int], int]:
        """Unit-weight forward closure (dist[c] == dist[v] + 1)."""
        dist = self.dist
        invalid = {v for v in roots if dist[v] < INF and v != self.source}
        queue = list(invalid)
        touched_edges = 0
        while queue:
            v = queue.pop()
            out = self.graph.out_neighbors(v)
            touched_edges += len(out)
            for c in out:
                if c in invalid or c == self.source:
                    continue
                if dist[c] == dist[v] + 1.0:
                    invalid.add(c)
                    queue.append(c)
        return invalid, touched_edges

    def levels(self) -> list[int]:
        """Hop distances as ints (-1 for unreachable)."""
        return [int(d) if d < INF else -1 for d in self.dist]
