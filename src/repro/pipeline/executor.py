"""Parallel execution of workload-matrix cells, with per-cell fault isolation.

The evaluation matrix (``pipeline.workloads``) is embarrassingly parallel:
every cell builds its own graph from its own seeded stream, so cells can run
in worker processes with no shared state.  :func:`run_matrix` fans cells out
over a ``ProcessPoolExecutor`` while guaranteeing:

* **determinism** — each cell derives its stream from its spec's seed, and
  results are returned in input order, so ``jobs=N`` output is byte-identical
  to ``jobs=1``;
* **failure isolation** — cells run as *individual* futures.  A cell whose
  function raises reports that cell's error (or, with ``on_error``, a
  substitute result) without discarding or re-running any other cell's work.
  Pool-level failures (a worker killed mid-cell, a sandbox that forbids
  forking) are retried with bounded backoff for the *unfinished* cells only;
  a cell that repeatedly breaks the pool is finally attempted in an isolated
  single-worker pool so the crash attributes to it definitively;
* **bounded stalls** — an optional per-cell timeout (``timeout=`` or
  ``REPRO_CELL_TIMEOUT``) marks a hung cell failed, terminates the stuck
  workers, and continues the remaining cells in a fresh pool.

Environment knobs (all overridable per call):

* ``REPRO_CELL_TIMEOUT`` — per-cell wall-clock timeout in seconds
  (unset/0 = wait forever);
* ``REPRO_EXECUTOR_RETRIES`` — pool-rebuild rounds after a pool-level
  failure before the isolation pass (default 1);
* ``REPRO_EXECUTOR_BACKOFF`` — base sleep in seconds between pool-rebuild
  rounds (default 0.1, scaled linearly with the attempt number);
* ``REPRO_MP_START`` — multiprocessing start method (``fork``,
  ``forkserver`` or ``spawn``); see :func:`mp_context` for the default.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from ..errors import ConfigurationError
from ..telemetry.core import Decision, TelemetrySnapshot, merge_snapshots

__all__ = [
    "CellSpec",
    "CellResult",
    "CellExecutionError",
    "run_matrix",
    "map_cells",
    "default_jobs",
    "mp_context",
    "merged_telemetry",
    "merged_timelines",
    "executor_telemetry",
]

_START_METHODS = ("fork", "forkserver", "spawn")


def mp_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every repro worker process is spawned from.

    The platform default start method differs by OS (fork on Linux, spawn on
    macOS/Windows), which makes worker behaviour and fault semantics
    platform-dependent — and fork is unsafe once the parent holds threads
    (POSIX only promises the forking thread survives; any lock another
    thread held stays locked forever in the child).  So the method is pinned
    explicitly:

    * ``REPRO_MP_START`` (``fork``/``forkserver``/``spawn``) wins when set —
      an unknown value raises :class:`~repro.errors.ConfigurationError`;
    * otherwise ``fork`` where available *and* the process is still
      single-threaded (cheap, inherits warm imports), else ``spawn``
      (slow but always safe).  ``forkserver`` is never the default: its
      long-lived server process would not observe environment variables set
      after it starts, which the fault-injection hooks rely on.

    Every worker process in the library — matrix-cell pool workers and
    shard workers alike — must come from this context so a run's process
    semantics are uniform and testable under both methods.
    """
    name = os.environ.get("REPRO_MP_START", "").strip().lower()
    if name:
        if name not in _START_METHODS:
            raise ConfigurationError(
                f"REPRO_MP_START must be one of {_START_METHODS}, got {name!r}"
            )
        if name not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"REPRO_MP_START={name!r} is not available on this platform "
                f"(available: {multiprocessing.get_all_start_methods()})"
            )
        return multiprocessing.get_context(name)
    if (
        "fork" in multiprocessing.get_all_start_methods()
        and threading.active_count() == 1
    ):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class CellSpec:
    """Everything needed to run one pipeline cell in any process.

    Plain strings/ints only, so specs pickle cheaply into workers.

    Attributes:
        dataset: dataset profile name.
        batch_size: edges per batch.
        algorithm: one of :data:`~repro.pipeline.runner.ALGORITHMS`.
        mode: update-policy mode name (see :data:`~repro.pipeline.modes.MODES`).
        use_oca: enable overlap-based compute aggregation.
        num_batches: batches to stream (None = the profile's full stream).
        seed: stream generator seed (per-cell, so every cell is
            reproducible in isolation).
    """

    dataset: str
    batch_size: int
    algorithm: str = "pr"
    mode: str = "abr_usc"
    use_oca: bool = False
    num_batches: int | None = None
    seed: int = 7


@dataclass(frozen=True)
class CellResult:
    """Summary of one executed cell (picklable, plain values only).

    Attributes:
        telemetry: the cell pipeline's telemetry snapshot, when the run was
            instrumented (``telemetry != "off"``); None otherwise.  Frozen
            plain data, so it ships back from worker processes unchanged.
        timelines: the cell's flight-recorder timeline snapshots (one per
            process of the cell run; empty below telemetry ``full``).
            Like ``telemetry``, excluded from comparison so jobs=N parity
            on the metric fields is unaffected.
        error: None for a successful cell; otherwise a short
            ``"ExceptionType: message"`` string describing why the cell
            failed (its metric fields are all zero in that case).
    """

    spec: CellSpec
    num_batches: int
    update_time: float
    compute_time: float
    strategies: tuple[tuple[str, int], ...]
    telemetry: TelemetrySnapshot | None = field(default=None, compare=False)
    timelines: tuple = field(default=(), compare=False)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def total_time(self) -> float:
        return self.update_time + self.compute_time

    @classmethod
    def failed(cls, spec: CellSpec, error: str) -> "CellResult":
        """The error outcome of a cell that did not complete."""
        return cls(
            spec=spec,
            num_batches=0,
            update_time=0.0,
            compute_time=0.0,
            strategies=(),
            error=error,
        )


class CellExecutionError(RuntimeError):
    """A cell failed inside a worker in a way that has no exception object.

    Raised (or wrapped into an error outcome) when the worker process died
    (e.g. ``os._exit``, OOM-kill, segfault) or exceeded the per-cell
    timeout — there is no traceback to propagate, only a diagnosis.
    """


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` (all cores)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class _CellJob:
    """One cell plus its private checkpoint namespace (picklable).

    ``run_matrix`` wraps configs in jobs when ``checkpoint_root`` is set:
    every cell checkpoints into (and auto-resumes from) its *own*
    subdirectory.  Cells sharing one directory would be corrupted by
    ``save_to_dir``'s keep-pruning — trial A's retention pass would count
    trial B's checkpoints as "old" and delete B's newest live state.
    """

    config: object
    checkpoint_dir: str
    checkpoint_every: int
    checkpoint_keep: int


def _run_cell(item) -> CellResult:
    """Execute one configured run start to finish (inside a worker process).

    Workers receive a pickled :class:`~repro.pipeline.config.RunConfig`
    (or a :class:`_CellJob` carrying one plus a private checkpoint
    namespace) and construct their pipeline through its factory, so the
    worker-side build is exactly the serial one.
    """
    run_kwargs = {}
    if isinstance(item, _CellJob):
        from .checkpoint import latest_checkpoint

        config = item.config
        found = latest_checkpoint(item.checkpoint_dir)
        if found is not None:
            run_kwargs["resume_from"] = found[0]
        run_kwargs["checkpoint_dir"] = item.checkpoint_dir
        run_kwargs["checkpoint_every"] = item.checkpoint_every
        run_kwargs["checkpoint_keep"] = item.checkpoint_keep
    else:
        config = item
    pipeline = config.build_pipeline()
    metrics = pipeline.run(config.num_batches, **run_kwargs)
    if isinstance(item, _CellJob):
        # The runner only checkpoints *between* batches (crash recovery);
        # a finished cell additionally persists its final state so a matrix
        # rerun over the same root restores it without recomputing batches.
        pipeline.save_checkpoint(item.checkpoint_dir, keep=item.checkpoint_keep)
    timelines = tuple(pipeline.timeline_snapshots())
    close = getattr(pipeline, "close", None)
    if close is not None:
        close()
    return CellResult(
        spec=config.to_cell_spec(),
        num_batches=metrics.num_batches,
        update_time=metrics.total_update_time,
        compute_time=metrics.total_compute_time,
        strategies=tuple(sorted(metrics.strategies_used().items())),
        telemetry=(
            pipeline.telemetry.snapshot() if pipeline.telemetry.enabled else None
        ),
        timelines=timelines,
    )


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "") or default)
    except ValueError:
        return default


@dataclass
class _Failure:
    """Per-item failure marker threaded through the result slots."""

    error: BaseException


_PENDING = object()  # result-slot sentinel: item not finished yet


class _PoolRound:
    """One pool lifetime: submit pending items, harvest until done or broken."""

    def __init__(self, fn, items, results, pending, jobs, timeout, stats):
        self.fn = fn
        self.items = items
        self.results = results
        self.queue = deque(pending)
        self.unfinished = set(pending)
        self.jobs = min(jobs, len(pending))
        self.timeout = timeout
        self.stats = stats
        self.inflight: dict = {}  # future -> item index
        self.deadlines: dict = {}  # future -> monotonic deadline
        self.broke = False  # pool died or was torn down mid-round
        self.unusable = False  # pool could not run at all (fork refused)

    def _submit_next(self, pool) -> None:
        index = self.queue.popleft()
        future = pool.submit(self.fn, self.items[index])
        self.inflight[future] = index
        if self.timeout:
            self.deadlines[future] = time.monotonic() + self.timeout

    def _fail(self, index: int, error: BaseException) -> None:
        self.results[index] = _Failure(error)
        self.unfinished.discard(index)

    def _harvest(self, future) -> None:
        index = self.inflight.pop(future)
        self.deadlines.pop(future, None)
        try:
            self.results[index] = future.result()
            self.unfinished.discard(index)
        except BrokenProcessPool:
            # The worker died; this item (and everything still inflight)
            # stays unfinished for the retry round.
            self.broke = True
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            # A genuine error raised by ``fn`` (or its result failed to
            # pickle): the *cell's* outcome, never retried.
            self.stats["errors"] = self.stats.get("errors", 0) + 1
            self._fail(index, exc)

    def _expire_overdue(self) -> bool:
        """Mark futures past their deadline failed; True if any expired."""
        now = time.monotonic()
        overdue = [
            future
            for future, deadline in self.deadlines.items()
            if deadline <= now and not future.done()
        ]
        for future in overdue:
            index = self.inflight.pop(future)
            self.deadlines.pop(future, None)
            self.stats["timeouts"] = self.stats.get("timeouts", 0) + 1
            self._fail(
                index,
                CellExecutionError(
                    f"cell timed out after {self.timeout:g}s in a worker process"
                ),
            )
        return bool(overdue)

    def run(self) -> list[int]:
        """Execute the round; returns the still-unfinished indices, sorted."""
        try:
            pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=mp_context())
        except (OSError, ValueError):
            self.unusable = True
            return sorted(self.unfinished)
        kill = False
        try:
            try:
                while self.queue and len(self.inflight) < self.jobs:
                    self._submit_next(pool)
                while self.inflight and not self.broke:
                    if self.deadlines:
                        budget = min(self.deadlines.values()) - time.monotonic()
                        done, _ = wait(
                            list(self.inflight),
                            timeout=max(budget, 0.0),
                            return_when=FIRST_COMPLETED,
                        )
                    else:
                        done, _ = wait(
                            list(self.inflight), return_when=FIRST_COMPLETED
                        )
                    if not done:
                        if self._expire_overdue():
                            # The stuck worker cannot be reclaimed; tear the
                            # pool down and let the caller rebuild for the
                            # remaining cells.
                            kill = True
                            self.broke = True
                        continue
                    for future in done:
                        self._harvest(future)
                        if self.broke:
                            break
                        if self.queue:
                            self._submit_next(pool)
            except BrokenProcessPool:
                self.broke = True
            except OSError:
                # Forking refused mid-round (sandbox): whatever is left runs
                # serially in the caller.
                self.unusable = True
        finally:
            if kill:
                for process in list((getattr(pool, "_processes", None) or {}).values()):
                    try:
                        process.terminate()
                    except OSError:
                        pass
            pool.shutdown(wait=True, cancel_futures=True)
        return sorted(self.unfinished)


def _run_isolated(fn, item, timeout, stats):
    """Run one item in its own single-worker pool; returns result slot value.

    Used as the last resort for items that survived the retry rounds: a
    crash here attributes to this item definitively, so it gets an error
    outcome while every other cell's result is preserved.
    """
    stats["isolated"] = stats.get("isolated", 0) + 1
    try:
        pool = ProcessPoolExecutor(max_workers=1, mp_context=mp_context())
    except (OSError, ValueError):
        return _Failure(
            CellExecutionError("worker pool unavailable for isolated retry")
        )
    kill = False
    try:
        future = pool.submit(fn, item)
        try:
            return future.result(timeout=timeout or None)
        except BrokenProcessPool:
            return _Failure(
                CellExecutionError(
                    "worker process died while executing this cell"
                )
            )
        except TimeoutError:
            kill = True
            stats["timeouts"] = stats.get("timeouts", 0) + 1
            return _Failure(
                CellExecutionError(
                    f"cell timed out after {timeout:g}s in a worker process"
                )
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            stats["errors"] = stats.get("errors", 0) + 1
            return _Failure(exc)
    finally:
        if kill:
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    process.terminate()
                except OSError:
                    pass
        pool.shutdown(wait=True, cancel_futures=True)


def _map_serial(fn, items, indices, results, on_error, stats) -> None:
    for index in indices:
        try:
            results[index] = fn(items[index])
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            stats["errors"] = stats.get("errors", 0) + 1
            results[index] = _Failure(exc)
            if on_error is None:
                # Preserve fail-fast semantics serially: nothing after this
                # item has started, so stopping loses no completed work.
                break


def map_cells(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    *,
    timeout: float | None = None,
    retries: int | None = None,
    backoff: float | None = None,
    on_error: Callable[[T, BaseException], R] | None = None,
    stats: dict | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``fn`` must be a module-level callable and items/results picklable when
    ``jobs > 1``.  Results always come back in input order.

    Every item runs as its own future, so failures are isolated per item:

    * an exception raised by ``fn`` (or an unpicklable result) fails *that
      item only* — with ``on_error`` the substitute ``on_error(item, exc)``
      takes its slot; without it the first error re-raises after the
      already-running items finish.  Either way no completed item is ever
      re-executed (the old implementation re-ran the whole list serially);
    * a pool-level failure (worker killed, fork refused) retries only the
      unfinished items, up to ``retries`` pool rebuilds with linear
      ``backoff``; stubborn items get one final attempt in an isolated
      single-worker pool so a crash attributes to the guilty item;
    * with ``timeout`` (or ``REPRO_CELL_TIMEOUT``), an item stuck in a
      worker longer than ``timeout`` seconds fails with
      :class:`CellExecutionError` and its worker is terminated.

    Args:
        fn: module-level callable applied to each item.
        items: the work list.
        jobs: worker processes (1 = serial in-process, 0 = all cores).
        timeout: per-item wall-clock seconds (None = ``REPRO_CELL_TIMEOUT``,
            0 = no limit).
        retries: pool-rebuild rounds after pool-level failures
            (None = ``REPRO_EXECUTOR_RETRIES``, default 1).
        backoff: base seconds slept between pool rebuilds
            (None = ``REPRO_EXECUTOR_BACKOFF``, default 0.1).
        on_error: optional ``(item, exception) -> result`` hook supplying a
            substitute result for failed items instead of raising.
        stats: optional dict accumulating executor counters
            (``errors``, ``timeouts``, ``pool_breaks``, ``pool_retries``,
            ``isolated``, ``serial_fallback``).
    """
    items = list(items)
    if stats is None:
        stats = {}
    if jobs <= 0:
        jobs = default_jobs()
    if timeout is None:
        timeout = _env_float("REPRO_CELL_TIMEOUT", 0.0)
    timeout = timeout or 0.0
    if retries is None:
        retries = int(_env_float("REPRO_EXECUTOR_RETRIES", 1.0))
    if backoff is None:
        backoff = _env_float("REPRO_EXECUTOR_BACKOFF", 0.1)

    results: list = [_PENDING] * len(items)
    pending = list(range(len(items)))
    if jobs == 1 or len(items) <= 1:
        _map_serial(fn, items, pending, results, on_error, stats)
    else:
        attempt = 0
        while pending:
            round_ = _PoolRound(fn, items, results, pending, jobs, timeout, stats)
            pending = round_.run()
            if round_.unusable:
                # The environment cannot run worker processes at all;
                # serial in-process execution computes the same results.
                stats["serial_fallback"] = stats.get("serial_fallback", 0) + 1
                _map_serial(fn, items, pending, results, on_error, stats)
                pending = []
                break
            if not pending:
                break
            stats["pool_breaks"] = stats.get("pool_breaks", 0) + 1
            attempt += 1
            if attempt > retries:
                break
            stats["pool_retries"] = stats.get("pool_retries", 0) + 1
            if backoff > 0:
                time.sleep(backoff * attempt)
        for index in pending:
            results[index] = _run_isolated(fn, items[index], timeout, stats)

    out: list = []
    first_error: BaseException | None = None
    for index, slot in enumerate(results):
        if slot is _PENDING:  # serial fail-fast stopped before this item
            slot = _Failure(
                CellExecutionError("not executed: an earlier cell failed")
            )
        if isinstance(slot, _Failure):
            if on_error is not None:
                out.append(on_error(items[index], slot.error))
            elif first_error is None:
                first_error = slot.error
        else:
            out.append(slot)
    if first_error is not None:
        raise first_error
    return out


def run_matrix(
    specs: Sequence[CellSpec],
    jobs: int = 1,
    *,
    timeout: float | None = None,
    stats: dict | None = None,
    checkpoint_root: str | None = None,
    checkpoint_every: int = 5,
    checkpoint_keep: int = 3,
    checkpoint_names: Sequence[str] | None = None,
) -> list[CellResult]:
    """Run workload cells, ``jobs`` at a time; results in spec order.

    Accepts :class:`CellSpec` rows (lifted into
    :class:`~repro.pipeline.config.RunConfig` for the workers) or
    ready-made ``RunConfig`` objects.  ``jobs=1`` runs serially in-process;
    ``jobs=0`` uses every core.  Each cell is self-seeded via its config,
    so the result list is identical regardless of ``jobs``.

    Failures never discard completed work: a cell whose worker raises,
    dies, or times out comes back as :meth:`CellResult.failed` (inspect
    :attr:`CellResult.error`) while every other cell's result is returned
    normally.  Pass ``stats`` to collect the executor's retry/timeout
    counters (see :func:`executor_telemetry`).

    Args:
        checkpoint_root: when set, every cell checkpoints its pipeline
            state every ``checkpoint_every`` batches into its **own**
            subdirectory of this root — ``checkpoint_names[i]`` when given,
            else ``cell-<i>`` — and auto-resumes from the newest checkpoint
            found there.  The per-cell namespace is load-bearing for
            correctness, not just hygiene: concurrent cells sharing one
            directory would have ``save_to_dir``'s keep-pruning delete each
            other's newest live checkpoints.
        checkpoint_every: batches between checkpoints (with
            ``checkpoint_root``).
        checkpoint_keep: newest checkpoints retained per cell.
        checkpoint_names: per-cell subdirectory names (must match ``specs``
            in length); names must be unique.
    """
    from .config import RunConfig

    configs = [
        spec if isinstance(spec, RunConfig) else RunConfig.from_cell_spec(spec)
        for spec in specs
    ]
    items: list = configs
    if checkpoint_root is not None:
        if checkpoint_names is None:
            checkpoint_names = [f"cell-{i:04d}" for i in range(len(configs))]
        if len(checkpoint_names) != len(configs):
            raise ConfigurationError(
                f"checkpoint_names has {len(checkpoint_names)} entries for "
                f"{len(configs)} cells"
            )
        if len(set(checkpoint_names)) != len(checkpoint_names):
            raise ConfigurationError(
                "checkpoint_names must be unique: two cells writing into "
                "one directory would keep-prune each other's checkpoints"
            )
        items = [
            _CellJob(
                config=config,
                checkpoint_dir=os.path.join(checkpoint_root, name),
                checkpoint_every=checkpoint_every,
                checkpoint_keep=checkpoint_keep,
            )
            for config, name in zip(configs, checkpoint_names)
        ]

    def cell_error(item, exc: BaseException) -> CellResult:
        config = item.config if isinstance(item, _CellJob) else item
        return CellResult.failed(
            config.to_cell_spec(), f"{type(exc).__name__}: {exc}"
        )

    return map_cells(
        _run_cell,
        items,
        jobs=jobs,
        timeout=timeout,
        on_error=cell_error,
        stats=stats,
    )


def merged_telemetry(results: Sequence[CellResult]) -> TelemetrySnapshot | None:
    """Deterministically merge the cells' telemetry snapshots.

    Snapshots merge in result (= submission) order — counters sum, spans
    and histograms pool, decision ledgers concatenate — so the aggregate
    is identical for ``jobs=1`` and ``jobs=N``.  Returns None when no cell
    was instrumented.  Failed cells carry no snapshot and merge as nothing.
    """
    snapshots = [r.telemetry for r in results if r.telemetry is not None]
    return merge_snapshots(snapshots) if snapshots else None


def merged_timelines(results: Sequence[CellResult]) -> list:
    """Every cell's timeline snapshots, in result (= submission) order.

    Executor workers stamp events with the machine-wide monotonic clock
    (``perf_counter`` is CLOCK_MONOTONIC on Linux), so cross-process
    snapshots from one host are already clock-aligned; each keeps its own
    (run_id, pid) track in the Chrome trace export.  Empty below
    telemetry level ``full``.
    """
    return [snap for r in results for snap in r.timelines]


def executor_telemetry(
    results: Sequence[CellResult], stats: dict | None = None
) -> TelemetrySnapshot:
    """The executor's own health counters and failure ledger as a snapshot.

    Separate from :func:`merged_telemetry` (which aggregates what ran
    *inside* the cells) so serial/parallel cell aggregation stays
    bit-identical; merge the two when exporting.  Counters:

    * ``executor.cells`` / ``executor.cells_failed`` — outcome totals;
    * ``executor.errors`` / ``executor.timeouts`` — per-cell failures seen;
    * ``executor.pool_breaks`` / ``executor.pool_retries`` /
      ``executor.isolated`` / ``executor.serial_fallback`` — pool-level
      recovery activity (from the ``stats`` dict of
      :func:`map_cells`/:func:`run_matrix`).

    Each failed cell also appends a ``kind="cell"`` :class:`Decision` with
    the spec coordinates and the error string, so ``repro report`` can show
    *which* cells failed and why.
    """
    failed = [r for r in results if r.error is not None]
    counters: dict[str, float] = {
        "executor.cells": float(len(results)),
        "executor.cells_failed": float(len(failed)),
    }
    for key, value in (stats or {}).items():
        counters[f"executor.{key}"] = float(value)
    decisions = tuple(
        Decision(
            kind="cell",
            choice="error",
            batch_id=None,
            inputs=(
                ("batch_size", r.spec.batch_size),
                ("dataset", r.spec.dataset),
                ("error", r.error),
                ("mode", r.spec.mode),
            ),
        )
        for r in failed
    )
    return TelemetrySnapshot(level="basic", counters=counters, decisions=decisions)
