"""repro — input-aware streaming graph processing.

A production-quality Python reproduction of *"Improving Streaming Graph
Processing Performance using Input Knowledge"* (Basak et al., MICRO 2021):
adaptive batch reordering (ABR) with the CAD_lambda metric, update search
coalescing (USC), the HAU hardware accelerator on a simulated 16-core CMP,
overlap-based compute aggregation (OCA), and the full input-aware SW/HW
dynamic execution pipeline — plus every substrate they need (synthetic
calibrated dataset streams, dynamic graph structures, incremental/static
PageRank and SSSP, a modeled-time multicore execution model).

Quickstart::

    from repro import StreamingPipeline, UpdatePolicy, get_dataset

    pipeline = StreamingPipeline(
        get_dataset("wiki"), batch_size=10_000,
        algorithm="pr", policy=UpdatePolicy.ABR_USC, use_oca=True,
    )
    metrics = pipeline.run(num_batches=12)
    print(metrics.total_update_time, metrics.total_compute_time)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .costs import ComputeCostParameters, CostParameters
from .datasets import (
    BATCH_SIZES,
    DATASETS,
    Batch,
    DatasetProfile,
    EdgeStream,
    SideProfile,
    StreamGenerator,
    dataset_names,
    get_dataset,
)
from .errors import (
    AnalysisError,
    ConfigurationError,
    GraphError,
    ReproError,
    SimulationError,
    StreamExhaustedError,
    UnknownDatasetError,
    VertexOutOfRangeError,
)
from .exec_model import HOST_MACHINE, SIMULATED_MACHINE, MachineConfig
from .graph import (
    AdjacencyListGraph,
    CSRSnapshot,
    DegreeAwareHashGraph,
    DeltaSnapshotter,
    DynamicGraph,
    EdgeLogGraph,
    ReferenceAdjacencyListGraph,
    take_snapshot,
)
from .compute import (
    ALGORITHMS,
    ComputeAlgorithm,
    IncrementalPageRank,
    IncrementalSSSP,
    OCAConfig,
    OCAController,
    StaticPageRank,
    StaticSSSP,
    register_algorithm,
)
from .hau import HAUConfig, HAUSimulator
from .pipeline import (
    CellResult,
    CellSpec,
    MODES,
    RunConfig,
    RunMetrics,
    StreamingPipeline,
    Workload,
    run_matrix,
    workload_matrix,
)
from .telemetry import (
    NULL_TELEMETRY,
    TELEMETRY_LEVELS,
    Telemetry,
    TelemetrySnapshot,
    make_telemetry,
    merge_snapshots,
)
from .update import (
    ABRConfig,
    ABRController,
    StrategySelector,
    UpdateEngine,
    UpdatePolicy,
    register_strategy,
)

__version__ = "1.0.0"

__all__ = [
    "ComputeCostParameters",
    "CostParameters",
    "BATCH_SIZES",
    "DATASETS",
    "Batch",
    "DatasetProfile",
    "EdgeStream",
    "SideProfile",
    "StreamGenerator",
    "dataset_names",
    "get_dataset",
    "AnalysisError",
    "ConfigurationError",
    "GraphError",
    "ReproError",
    "SimulationError",
    "StreamExhaustedError",
    "UnknownDatasetError",
    "VertexOutOfRangeError",
    "HOST_MACHINE",
    "SIMULATED_MACHINE",
    "MachineConfig",
    "AdjacencyListGraph",
    "CSRSnapshot",
    "DegreeAwareHashGraph",
    "DeltaSnapshotter",
    "DynamicGraph",
    "EdgeLogGraph",
    "ReferenceAdjacencyListGraph",
    "take_snapshot",
    "IncrementalPageRank",
    "IncrementalSSSP",
    "OCAConfig",
    "OCAController",
    "StaticPageRank",
    "StaticSSSP",
    "HAUConfig",
    "HAUSimulator",
    "ALGORITHMS",
    "ComputeAlgorithm",
    "register_algorithm",
    "CellResult",
    "CellSpec",
    "MODES",
    "RunConfig",
    "RunMetrics",
    "StreamingPipeline",
    "Workload",
    "run_matrix",
    "workload_matrix",
    "NULL_TELEMETRY",
    "TELEMETRY_LEVELS",
    "Telemetry",
    "TelemetrySnapshot",
    "make_telemetry",
    "merge_snapshots",
    "ABRConfig",
    "ABRController",
    "StrategySelector",
    "UpdateEngine",
    "UpdatePolicy",
    "register_strategy",
    "__version__",
]
