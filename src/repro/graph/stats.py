"""Batch degree-distribution statistics (inputs of Figs. 3, 4 and 5).

The paper extends static-graph notions (vertex degree, degree distribution
``N(k)``) to single input batches: the degree of ``v`` in a batch is the
number of batch edges incident to ``v`` on the measured side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.stream import Batch
from ..errors import AnalysisError

__all__ = [
    "degree_counts",
    "degree_histogram",
    "top_degrees",
    "DegreeMix",
    "degree_mix",
    "FIG5_BUCKETS",
]


def degree_counts(batch: Batch, side: str = "in") -> np.ndarray:
    """Per-vertex batch degrees on one side.

    Args:
        batch: the input batch.
        side: ``"in"`` (degree = incoming batch edges, the paper's default),
            ``"out"``, or ``"both"`` (sum of both endpoints' incidences).

    Returns:
        Array of degrees, one entry per unique vertex on that side.
    """
    if side == "in":
        __, counts = batch.in_degrees()
    elif side == "out":
        __, counts = batch.out_degrees()
    elif side == "both":
        __, counts = np.unique(
            np.concatenate([batch.src, batch.dst]), return_counts=True
        )
    else:
        raise AnalysisError(f"side must be in|out|both, got {side!r}")
    return counts


def degree_histogram(batch: Batch, side: str = "in") -> tuple[np.ndarray, np.ndarray]:
    """``N(k)``: number of vertices with batch degree k (Fig. 4's axes).

    Returns:
        ``(degrees, vertex_counts)`` sorted by degree ascending.
    """
    counts = degree_counts(batch, side)
    return np.unique(counts, return_counts=True)


def top_degrees(batch: Batch, n: int = 10, side: str = "in") -> np.ndarray:
    """The ``n`` largest batch degrees, descending (Fig. 4's annotations)."""
    counts = degree_counts(batch, side)
    if len(counts) == 0:
        return counts
    return np.sort(counts)[::-1][:n]


#: Degree buckets of Fig. 5's stacked distribution-over-time chart.
FIG5_BUCKETS: tuple[tuple[int, int], ...] = (
    (1, 1),
    (2, 2),
    (3, 3),
    (4, 4),
    (5, 10),
    (11, 20),
    (21, 30),
    (31, 40),
    (41, 50),
)


@dataclass(frozen=True)
class DegreeMix:
    """Fig. 5 row: the % of batch edges originating from each degree bucket."""

    batch_id: int
    bucket_labels: tuple[str, ...]
    edge_percentages: tuple[float, ...]


def degree_mix(
    batch: Batch,
    side: str = "out",
    buckets: tuple[tuple[int, int], ...] = FIG5_BUCKETS,
) -> DegreeMix:
    """Share of edges originating from vertices of each degree bucket.

    Fig. 5 plots, per batch, the percentage of edges contributed by vertices
    of degree 1, 2, 3, ... — a stable mix over time demonstrates the temporal
    stability ABR's inert periods rely on.
    """
    counts = degree_counts(batch, side)
    total_edges = counts.sum()
    labels = []
    percentages = []
    for lo, hi in buckets:
        labels.append(str(lo) if lo == hi else f"{lo}-{hi}")
        mask = (counts >= lo) & (counts <= hi)
        edges = counts[mask].sum()
        percentages.append(100.0 * edges / total_edges if total_edges else 0.0)
    labels.append(f">{buckets[-1][1]}")
    mask = counts > buckets[-1][1]
    percentages.append(100.0 * counts[mask].sum() / total_edges if total_edges else 0.0)
    return DegreeMix(
        batch_id=batch.batch_id,
        bucket_labels=tuple(labels),
        edge_percentages=tuple(percentages),
    )
