"""Ablation: HAU's vertex-pinned task assignment (Section 4.4.3).

The hash assignment "ensures that all incoming edges for vertex v are
updated at the same core where v's edge data resides".  Scattering the
mapping per batch keeps the same load balance but destroys the cross-batch
cache residency (and, on real hardware, would reintroduce locks): cycles go
up and the local-tile hit fraction collapses toward the cold-fill rate.
"""

from _harness import emit, num_batches
from repro.analysis.report import render_table
from repro.datasets.profiles import get_dataset
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.simulator import HAUSimulator

CELLS = (("lj", 10_000), ("fb", 10_000), ("uk", 100_000))


def _run(name, batch_size, assignment):
    profile = get_dataset(name)
    nb = max(num_batches(profile, batch_size), 6)
    graph = AdjacencyListGraph(profile.num_vertices)
    sim = HAUSimulator(assignment=assignment)
    total = 0.0
    last = None
    for batch in profile.generator().batches(batch_size, nb):
        last = sim.simulate_batch(graph.apply_batch(batch))
        total += last.cycles
    return total, last.local_fraction


def run_ablation():
    rows = []
    for name, batch_size in CELLS:
        pinned_cycles, pinned_local = _run(name, batch_size, "vertex_mod")
        scatter_cycles, scatter_local = _run(name, batch_size, "scatter")
        rows.append(
            [
                f"{name}-{batch_size}",
                pinned_cycles,
                scatter_cycles,
                scatter_cycles / pinned_cycles,
                pinned_local,
                scatter_local,
            ]
        )
    return rows


def test_ablation_hau_assignment(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        "ablation_hau_assignment",
        render_table(
            ["cell", "pinned cycles", "scattered cycles", "slowdown",
             "pinned local frac", "scattered local frac"],
            rows,
            title="Ablation: HAU task assignment (vertex-pinned vs per-batch scatter)",
            float_format="{:.3g}",
        ),
    )
    for row in rows:
        assert row[3] > 1.0          # scattering always costs cycles
        assert row[5] <= row[4]      # and never improves locality
