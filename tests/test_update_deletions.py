"""Deletion costs in the update engines (§4.4.3 ordering)."""

import pytest

from conftest import make_batch
from repro.costs import CostParameters
from repro.exec_model.machine import MachineConfig
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.hau.simulator import HAUSimulator
from repro.update.baseline import baseline_update_timing
from repro.update.reorder import reorder_update_timing
from repro.update.usc import usc_update_timing

COSTS = CostParameters()
MACHINE = MachineConfig(name="t", num_workers=8)


def _graph_with_edges():
    graph = AdjacencyListGraph(64)
    graph.apply_batch(make_batch(list(range(10)), [v + 10 for v in range(10)]))
    return graph


def test_deleting_batch_costs_more_than_empty_work():
    graph = _graph_with_edges()
    delete_batch = make_batch(
        [0, 1, 2], [10, 11, 12], batch_id=1, is_delete=[True] * 3
    )
    stats = graph.apply_batch(delete_batch)
    assert stats.deleted_edges == 3
    for timing_fn in (baseline_update_timing, reorder_update_timing, usc_update_timing):
        timing = timing_fn(stats, graph, COSTS, MACHINE)
        assert timing.total_work >= 3 * 2 * COSTS.delete_op


def test_baseline_deletions_also_pay_locks():
    graph_a = _graph_with_edges()
    stats = graph_a.apply_batch(
        make_batch([0, 1], [10, 11], batch_id=1, is_delete=[True, True])
    )
    baseline = baseline_update_timing(stats, graph_a, COSTS, MACHINE)
    reorder = reorder_update_timing(stats, graph_a, COSTS, MACHINE)
    # RO saves exactly the per-deletion locks in this delete-only batch
    # (it still pays the sort prefix, which is not part of total_work).
    assert baseline.total_work - reorder.total_work == pytest.approx(
        2 * 2 * COSTS.lock_base
    )


def test_hau_charges_deletion_tasks():
    graph_a = _graph_with_edges()
    clean = HAUSimulator().simulate_batch(
        graph_a.apply_batch(make_batch([5], [20], batch_id=1))
    )
    graph_b = _graph_with_edges()
    deleting = HAUSimulator().simulate_batch(
        graph_b.apply_batch(
            make_batch(
                [5] + list(range(5)),
                [20] + [v + 10 for v in range(5)],
                batch_id=1,
                is_delete=[False] + [True] * 5,
            )
        )
    )
    assert deleting.timing.total_work > clean.timing.total_work


def test_insert_only_batch_unaffected():
    graph = _graph_with_edges()
    stats = graph.apply_batch(make_batch([30], [31], batch_id=1))
    assert stats.deleted_edges == 0
    timing = baseline_update_timing(stats, graph, COSTS, MACHINE)
    # No deletion term: work is just the one edge's two direction updates.
    assert timing.total_work < 10 * COSTS.delete_op
