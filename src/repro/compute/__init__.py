"""Compute phase: PageRank/SSSP (static + incremental), cost model, OCA,
and the pluggable pipeline-algorithm registry."""

from .bfs import IncrementalBFS, StaticBFS
from .components import IncrementalConnectedComponents, StaticConnectedComponents
from .cost_model import compute_round_time
from .oca import OCAConfig, OCAController, OCAObservation
from .pagerank import IncrementalPageRank, StaticPageRank
from .registry import (
    ALGORITHM_REGISTRY,
    ALGORITHMS,
    AlgorithmContext,
    ComputeAlgorithm,
    algorithm_names,
    get_algorithm,
    register_algorithm,
)
from .result import ComputeCounters, ComputeResult
from .sssp import IncrementalSSSP, StaticSSSP

# Registration order defines the ALGORITHMS/CLI ordering: the paper's four
# algorithms and the extensions first, then the triangles extension.
from . import algorithms as _builtin_algorithms  # noqa: F401  (registers)
from .triangles import (
    IncrementalTriangleCounter,
    StaticTriangleCount,
    TriangleCountAlgorithm,
)

__all__ = [
    "IncrementalBFS",
    "StaticBFS",
    "IncrementalConnectedComponents",
    "StaticConnectedComponents",
    "compute_round_time",
    "OCAConfig",
    "OCAController",
    "OCAObservation",
    "IncrementalPageRank",
    "StaticPageRank",
    "ALGORITHM_REGISTRY",
    "ALGORITHMS",
    "AlgorithmContext",
    "ComputeAlgorithm",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "ComputeCounters",
    "ComputeResult",
    "IncrementalSSSP",
    "StaticSSSP",
    "IncrementalTriangleCounter",
    "StaticTriangleCount",
    "TriangleCountAlgorithm",
]
