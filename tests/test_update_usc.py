"""USC (update search coalescing) cost model."""

import pytest

from conftest import make_batch
from repro.costs import CostParameters
from repro.exec_model.machine import MachineConfig
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.update.reorder import reorder_update_timing
from repro.update.usc import usc_search_savings, usc_update_timing

MACHINE = MachineConfig(name="t", num_workers=8)
COSTS = CostParameters()


def _hot_vertex_stats(extra_degree=300):
    graph = AdjacencyListGraph(4096)
    graph.apply_batch(make_batch([7] * 600, [(i + 10) % 4096 for i in range(600)]))
    stats = graph.apply_batch(
        make_batch(
            [7] * extra_degree,
            [(i + 700) % 4096 for i in range(extra_degree)],
            batch_id=1,
        )
    )
    return graph, stats


def test_usc_beats_plain_reorder_on_clusterable_batch():
    graph, stats = _hot_vertex_stats()
    reorder = reorder_update_timing(stats, graph, COSTS, MACHINE)
    usc = usc_update_timing(stats, graph, COSTS, MACHINE)
    assert usc.makespan < reorder.makespan


def test_usc_saving_grows_with_clusterability():
    graph_small, small_stats = _hot_vertex_stats(extra_degree=50)
    graph_big, big_stats = _hot_vertex_stats(extra_degree=400)
    small_ratio = (
        reorder_update_timing(small_stats, graph_small, COSTS, MACHINE).makespan
        / usc_update_timing(small_stats, graph_small, COSTS, MACHINE).makespan
    )
    big_ratio = (
        reorder_update_timing(big_stats, graph_big, COSTS, MACHINE).makespan
        / usc_update_timing(big_stats, graph_big, COSTS, MACHINE).makespan
    )
    assert big_ratio > small_ratio


def test_usc_negligible_overhead_on_degree_one_batches():
    """Section 6.2.3: USC never meaningfully degrades low-clusterability
    batches — it only adds the small hash-table prep."""
    graph = AdjacencyListGraph(4096)
    stats = graph.apply_batch(make_batch(list(range(200)), [v + 200 for v in range(200)]))
    reorder = reorder_update_timing(stats, graph, COSTS, MACHINE)
    usc = usc_update_timing(stats, graph, COSTS, MACHINE)
    assert usc.makespan <= 1.10 * reorder.makespan


def test_usc_search_savings_formula():
    graph = AdjacencyListGraph(64)
    graph.apply_batch(make_batch([1] * 10, list(range(2, 12))))
    stats = graph.apply_batch(make_batch([1, 1, 1], [20, 21, 22], batch_id=1))
    # Out direction: k=3, L=10 -> (3-1)*10 = 20 elements saved; the three
    # in-direction vertices have k=1, L=0 -> no savings.
    assert usc_search_savings(stats) == pytest.approx(20.0)


def test_usc_cluster_growth_cheaper_than_reorder_growth():
    """Growing a hot cluster's k adds hash inserts under USC but whole extra
    scans under plain RO — USC's marginal cost must be far smaller."""
    graph = AdjacencyListGraph(4096)
    graph.apply_batch(make_batch([7] * 500, [(i + 10) % 4096 for i in range(500)]))
    stats_k100 = graph.apply_batch(
        make_batch([7] * 100, [(i + 600) % 4096 for i in range(100)], batch_id=1)
    )
    stats_k200 = graph.apply_batch(
        make_batch([7] * 200, [(i + 800) % 4096 for i in range(200)], batch_id=2)
    )
    usc_delta = (
        usc_update_timing(stats_k200, graph, COSTS, MACHINE).makespan
        - usc_update_timing(stats_k100, graph, COSTS, MACHINE).makespan
    )
    reorder_delta = (
        reorder_update_timing(stats_k200, graph, COSTS, MACHINE).makespan
        - reorder_update_timing(stats_k100, graph, COSTS, MACHINE).makespan
    )
    assert usc_delta < 0.25 * reorder_delta
