"""Hardware/software co-design: dynamic SW/HW updates on the simulated CMP.

Reproduces the paper's Section 4.5 story on one adverse and one friendly
dataset: the input-aware pipeline offloads reorder-adverse batches to the
HAU accelerator (simulated 16-core CMP of Table 1) and keeps reorder-friendly
batches in the RO+USC software mode — beating both a SW-only and a HW-only
build.  Also prints the accelerator's per-core work distribution and
locality, the Fig. 19/20 views.

Run:  python examples/hardware_codesign.py
"""

import os

from repro import HAUSimulator, RunConfig, get_dataset

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK") == "1"
BATCH_SIZE = 10_000
NUM_BATCHES = 4 if QUICK else 10


def run_mode(dataset, mode, hau=None):
    # mode aliases ("sw_only"/"hw_only"/"dynamic") resolve via MODES; the
    # simulated CMP is forced for all three so the comparison is apples-to-
    # apples even for the software-only build.
    config = RunConfig(
        dataset, BATCH_SIZE, algorithm="none", mode=mode,
        machine="simulated", num_batches=NUM_BATCHES,
    )
    return config.build_pipeline(hau=hau).run(NUM_BATCHES)


def main() -> None:
    totals = {"sw_only": 0.0, "hw_only": 0.0, "dynamic": 0.0}
    for name in ("lj", "wiki"):
        profile = get_dataset(name)
        category = "friendly" if profile.is_friendly(BATCH_SIZE) else "adverse"
        print(f"\n=== {name} @ {BATCH_SIZE} (reorder-{category}) ===")
        sw_only = run_mode(name, "sw_only")
        hw_only = run_mode(name, "hw_only")
        dynamic_hau = HAUSimulator()
        dynamic = run_mode(name, "dynamic", hau=dynamic_hau)
        print(f"  SW-only (RO+USC) : {sw_only.total_update_time:12.0f} tu")
        print(f"  HW-only (HAU)    : {hw_only.total_update_time:12.0f} tu")
        print(f"  dynamic SW/HW    : {dynamic.total_update_time:12.0f} tu"
              f"   strategies={dynamic.strategies_used()}")
        totals["sw_only"] += sw_only.total_update_time
        totals["hw_only"] += hw_only.total_update_time
        totals["dynamic"] += dynamic.total_update_time

        if dynamic_hau.results:
            last = dynamic_hau.results[-1]
            tasks = last.tasks_per_core
            print(f"  HAU last batch: {sum(tasks.values())} tasks over "
                  f"{sum(1 for t in tasks.values() if t)} cores, "
                  f"local-tile hit fraction {last.local_fraction:.3f}, "
                  f"remote-access reduction {last.remote_access_reduction:.3f}")

    print("\n=== across the mixed workload (both datasets) ===")
    for mode, total in totals.items():
        print(f"  {mode:8s}: {total:12.0f} tu"
              + ("   <- input-aware dynamic execution wins"
                 if total == min(totals.values()) else ""))


if __name__ == "__main__":
    main()
