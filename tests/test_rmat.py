"""RMAT generator: validity, determinism, skew behaviour."""

import numpy as np
import pytest

from repro.datasets.rmat import RMATGenerator
from repro.errors import ConfigurationError
from repro.graph.adjacency_list import AdjacencyListGraph
from repro.update.engine import UpdateEngine, UpdatePolicy


def test_validation():
    with pytest.raises(ConfigurationError):
        RMATGenerator(scale=0)
    with pytest.raises(ConfigurationError):
        RMATGenerator(a=0.9, b=0.2, c=0.2)  # sums past 1
    with pytest.raises(ConfigurationError):
        RMATGenerator().generate_batch(0, 0)
    with pytest.raises(ConfigurationError):
        list(RMATGenerator().batches(10, -1))


def test_batch_validity():
    gen = RMATGenerator(scale=10, seed=3)
    batch = gen.generate_batch(0, 2_000)
    assert batch.size == 2_000
    assert (batch.src != batch.dst).all()
    assert batch.src.max() < 1024 and batch.dst.max() < 1024
    assert batch.src.min() >= 0


def test_determinism():
    a = RMATGenerator(scale=10, seed=5).generate_batch(2, 500)
    b = RMATGenerator(scale=10, seed=5).generate_batch(2, 500)
    np.testing.assert_array_equal(a.src, b.src)
    np.testing.assert_array_equal(a.dst, b.dst)


def test_graph500_parameters_are_skewed():
    skewed = RMATGenerator(scale=12, seed=1).generate_batch(0, 20_000)
    uniform = RMATGenerator(scale=12, a=0.25, b=0.25, c=0.25, seed=1).generate_batch(
        0, 20_000
    )
    assert skewed.max_degree() > 3 * uniform.max_degree()


def test_weights_deterministic_per_pair():
    batch = RMATGenerator(scale=10, seed=2).generate_batch(0, 3_000)
    seen = {}
    for u, v, w in zip(batch.src.tolist(), batch.dst.tolist(), batch.weight.tolist()):
        assert seen.setdefault((u, v), w) == w


def test_unweighted():
    batch = RMATGenerator(scale=8, weighted=False).generate_batch(0, 100)
    assert (batch.weight == 1.0).all()


def test_plugs_into_update_engine():
    gen = RMATGenerator(scale=12, seed=4)
    engine = UpdateEngine(AdjacencyListGraph(gen.num_vertices), UpdatePolicy.ABR)
    for batch in gen.batches(2_000, 4):
        result = engine.ingest(batch)
        assert result.time > 0
    assert engine.graph.num_edges > 0


def test_skew_makes_reordering_attractive_at_scale():
    """Graph500 RMAT produces hub vertices like the paper's friendly sets."""
    gen = RMATGenerator(scale=12, seed=4, a=0.65, b=0.15, c=0.15)
    engine = UpdateEngine(AdjacencyListGraph(gen.num_vertices), UpdatePolicy.BASELINE)
    baseline = reorder = 0.0
    for batch in gen.batches(20_000, 4):
        result = engine.ingest(batch)
        baseline += result.time
        reorder += result.alternatives["reorder"]
    assert baseline / reorder > 1.0
