"""Long-running ingest service: ``repro serve`` (see docs/SERVE.md).

The batch CLI replays a pre-materialized stream; this package accepts the
stream *live*.  An asyncio TCP server (:mod:`repro.serve.server`) takes
line-JSON edge submissions from many concurrent clients, runs them through
multi-tenant admission control (:mod:`repro.serve.admission`: token-bucket
rate limiting, a per-tenant fairness cap, and global backpressure), cuts
them into micro-batches sized by the paper's input knowledge (CAD, §4.2),
and drives the existing :class:`~repro.pipeline.runner.StreamingPipeline`
one :meth:`~repro.pipeline.runner.StreamingPipeline.step` at a time on a
dedicated thread.  Queries (PageRank top-k, triangle count, vertex degree)
are answered between steps from the latest completed snapshot, stamped
with an ingest-to-visible watermark.

:mod:`repro.serve.client` provides the protocol client and the load
generator behind ``repro loadgen``; :mod:`repro.serve.smoke` is the
end-to-end smoke (``make serve-smoke``).
"""

from .admission import AdmissionController, MicroBatcher, TokenBucket
from .client import ServeClient, run_loadgen
from .server import ServeServer, ServeSettings, start_server_thread

__all__ = [
    "AdmissionController",
    "MicroBatcher",
    "ServeClient",
    "ServeServer",
    "ServeSettings",
    "TokenBucket",
    "run_loadgen",
    "start_server_thread",
]
