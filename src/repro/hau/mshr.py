"""Task-MSHR accounting (Section 4.4.3, "MSHR management").

HAU reserves ten MSHR entries per core for outgoing/incoming tasks.  Task
MSHRs are proactively freed — a *task pending* entry as soon as the message
enters the network, a *task received* entry as soon as the FIFO is populated
— so they occupy an entry only for the few cycles of the transmit/receive
handshake.  The model tracks occupancy as (task rate x residency cycles) and
reports whether the ten entries ever become the bottleneck (they should not;
that is the design's point)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .config import HAUConfig

__all__ = ["MSHRModel"]


@dataclass
class MSHRModel:
    """Occupancy model of one core's task-reserved MSHR entries."""

    config: HAUConfig
    #: Cycles a task-pending entry lives before the message transmit unit
    #: frees it (allocate -> format -> inject).
    residency_cycles: float = 6.0
    peak_occupancy: float = 0.0
    stall_cycles: float = 0.0

    def account(self, tasks: float, interval_cycles: float) -> float:
        """Account ``tasks`` handled over ``interval_cycles``.

        Returns:
            Stall cycles incurred because the entries saturated (Little's
            law: occupancy = rate x residency; beyond capacity the excess
            tasks wait one residency each).
        """
        if interval_cycles <= 0:
            raise SimulationError("interval_cycles must be positive")
        occupancy = tasks * self.residency_cycles / interval_cycles
        self.peak_occupancy = max(self.peak_occupancy, occupancy)
        if occupancy <= self.config.task_mshr_entries:
            return 0.0
        excess_rate = occupancy - self.config.task_mshr_entries
        stall = excess_rate / occupancy * tasks * self.residency_cycles
        self.stall_cycles += stall
        return stall
