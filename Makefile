# Convenience targets for the repro library.

.PHONY: install test bench bench-full fidelity examples clean

install:
	pip install -e '.[test]'

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only

fidelity:
	python -m repro fidelity

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f || exit 1; done

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
