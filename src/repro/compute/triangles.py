"""Triangle counting: static and incremental (extension algorithm).

Triangle counts drive the anomaly/fraud-detection applications the paper's
introduction motivates (dense local structure appearing suddenly is a
signal).  Streaming triangle maintenance is the classic example of an
algorithm whose incremental form is dramatically cheaper than recomputation:
an inserted edge ``u-v`` only creates triangles among the *common neighbors*
of ``u`` and ``v``, and a deleted edge only destroys those.

Triangles are counted in the *undirected* view of the graph (each unordered
vertex triple with all three connections counts once), the convention of the
streaming literature.  Because exact maintenance must see the graph evolve
edge by edge, :class:`IncrementalTriangleCounter` *owns* batch application:
call :meth:`ingest` instead of ``graph.apply_batch`` for the batches it
tracks.
"""

from __future__ import annotations

from ..datasets.stream import Batch
from ..graph.base import DynamicGraph
from ..graph.snapshot import CSRSnapshot, DeltaSnapshotter
from .registry import ComputeAlgorithm, register_algorithm
from .result import ComputeCounters

__all__ = [
    "StaticTriangleCount",
    "IncrementalTriangleCounter",
    "TriangleCountAlgorithm",
]


def _undirected_neighbors(out_adj, in_adj, v, empty) -> set[int]:
    """The undirected neighbor set of ``v``."""
    nbrs = set(out_adj.get(v, empty))
    nbrs.update(in_adj.get(v, empty))
    nbrs.discard(v)
    return nbrs


class StaticTriangleCount:
    """Exact triangle count over a CSR snapshot (undirected view)."""

    def run(self, snapshot: CSRSnapshot) -> tuple[int, ComputeCounters]:
        n = snapshot.num_vertices
        neighbors: list[set[int]] = [set() for __ in range(n)]
        for v in range(n):
            targets, __ = snapshot.out_slice(v)
            for t in targets.tolist():
                if t != v:
                    neighbors[v].add(t)
                    neighbors[t].add(v)
        count = 0
        touched_edges = 0
        for v in range(n):
            for u in neighbors[v]:
                if u <= v:
                    continue
                smaller, larger = (
                    (neighbors[v], neighbors[u])
                    if len(neighbors[v]) < len(neighbors[u])
                    else (neighbors[u], neighbors[v])
                )
                touched_edges += len(smaller)
                for w in smaller:
                    if w > u and w in larger:
                        count += 1
        counters = ComputeCounters(
            iterations=1, touched_vertices=n, touched_edges=touched_edges
        )
        return count, counters


class IncrementalTriangleCounter:
    """Maintains the exact undirected triangle count across batches."""

    def __init__(self, graph: DynamicGraph):
        self.graph = graph
        self.count = 0

    def ingest(self, batch: Batch) -> ComputeCounters:
        """Apply ``batch`` to the graph while maintaining the count.

        Insertions are processed (then applied) edge by edge so intra-batch
        edges see each other; deletions follow, per the §4.4.3 ordering.
        """
        out_adj, in_adj = self.graph.adjacency_views()
        empty: dict[int, float] = {}
        touched_edges = 0
        touched_vertices = 0
        inserts = batch.insertions
        for u, v, w in zip(
            inserts.src.tolist(), inserts.dst.tolist(), inserts.weight.tolist()
        ):
            if u == v:
                continue
            u_nbrs = _undirected_neighbors(out_adj, in_adj, u, empty)
            if v not in u_nbrs:
                # A structurally new undirected edge: count new triangles.
                v_nbrs = _undirected_neighbors(out_adj, in_adj, v, empty)
                self.count += len(u_nbrs & v_nbrs)
                touched_edges += len(u_nbrs) + len(v_nbrs)
                touched_vertices += 2
            out_adj.setdefault(u, {})[v] = w
            in_adj.setdefault(v, {})[u] = w
        deletions = batch.deletions
        for u, v in zip(deletions.src.tolist(), deletions.dst.tolist()):
            entry = out_adj.get(u)
            if entry is None or v not in entry:
                continue
            del entry[v]
            in_adj.get(v, {}).pop(u, None)
            if u in out_adj.get(v, empty):
                # The reverse arc keeps the undirected edge alive.
                continue
            u_nbrs = _undirected_neighbors(out_adj, in_adj, u, empty)
            v_nbrs = _undirected_neighbors(out_adj, in_adj, v, empty)
            self.count -= len(u_nbrs & v_nbrs)
            touched_edges += len(u_nbrs) + len(v_nbrs)
            touched_vertices += 2
        # The direct adjacency mutations above bypass apply_batch, so the
        # graph must recompute its derived state (edge count, degree caches,
        # snapshot journals).
        self.graph.notify_external_mutation()
        self.graph.batches_applied += 1
        return ComputeCounters(
            iterations=1,
            touched_vertices=touched_vertices,
            touched_edges=touched_edges,
        )


@register_algorithm("triangles")
class TriangleCountAlgorithm(ComputeAlgorithm):
    """Exact triangle count per compute round, as a pipeline algorithm.

    Registered here — not in the pipeline — to demonstrate that adding an
    algorithm is a registration, not a core edit.  Because the pipeline's
    update engine owns batch application, this adapter uses the *static*
    counter over delta-patched CSR snapshots (the exact incremental
    counter, which must see the graph evolve edge by edge, stays available
    as :class:`IncrementalTriangleCounter` for drivers that let it own
    ingestion).  The latest count is exposed as :attr:`count`.
    """

    def __init__(self, ctx):
        super().__init__(ctx)
        self.snapshotter = DeltaSnapshotter(ctx.graph, telemetry=ctx.telemetry)
        #: Triangle count as of the last compute round.
        self.count: int | None = None

    def on_round(self, batch, affected, covered):
        self.count, counters = StaticTriangleCount().run(
            self.snapshotter.snapshot()
        )
        return counters
