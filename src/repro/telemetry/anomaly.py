"""Rolling-median / MAD anomaly flags for per-batch series.

``repro report`` uses this to call out batches whose stage latency or
throughput deviates from the recent trend, instead of leaving regressions
and stragglers to be eyeballed out of totals.  The detector is the robust
z-score: for each point, take the median and the median absolute deviation
(MAD) of the preceding ``window`` points and flag when

    |value - median| / (1.4826 * MAD)  >  z_threshold

1.4826 scales the MAD to the standard deviation of a normal distribution,
so ``z_threshold`` reads like a sigma count.  Unlike mean/stddev, the
median/MAD baseline is itself immune to the outliers it is hunting.  Two
practical guards:

* the first ``min_history`` points are never flagged (no baseline yet);
* the MAD is floored at 5% of the median so a perfectly flat history
  (MAD = 0) doesn't flag measurement noise as infinite-z anomalies.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AnomalyFlag", "rolling_mad_flags"]

#: Normal-consistency constant: MAD * 1.4826 estimates one sigma.
MAD_SCALE = 1.4826

#: MAD floor as a fraction of the rolling median (flat-history guard).
RELATIVE_FLOOR = 0.05


@dataclass(frozen=True)
class AnomalyFlag:
    """One flagged point of a per-batch series.

    Attributes:
        index: position in the series (the batch number).
        value: the offending observation.
        baseline: rolling median of the preceding window.
        z: robust z-score (sigmas from the baseline).
    """

    index: int
    value: float
    baseline: float
    z: float

    @property
    def ratio(self) -> float:
        """value / baseline (1.0 = on trend)."""
        return self.value / self.baseline if self.baseline else float("inf")


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def rolling_mad_flags(values, *, window: int = 9, z_threshold: float = 3.5,
                      min_history: int = 4) -> list[AnomalyFlag]:
    """Flag points deviating from their trailing rolling-median baseline.

    Args:
        values: the per-batch series, in stream order.
        window: trailing points forming each baseline.
        z_threshold: robust z-score above which a point is flagged.
        min_history: points required before flagging starts.

    Returns flags in series order (empty list for short/clean series).
    """
    series = [float(v) for v in values]
    flags: list[AnomalyFlag] = []
    for index in range(len(series)):
        history = series[max(0, index - window):index]
        if len(history) < min_history:
            continue
        baseline = _median(history)
        mad = _median([abs(v - baseline) for v in history])
        scale = max(MAD_SCALE * mad, RELATIVE_FLOOR * abs(baseline), 1e-12)
        z = abs(series[index] - baseline) / scale
        if z > z_threshold:
            flags.append(
                AnomalyFlag(
                    index=index, value=series[index],
                    baseline=baseline, z=z,
                )
            )
    return flags
