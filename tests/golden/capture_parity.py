"""Capture the pipeline-parity golden record.

Runs a fixed-seed mini-matrix (every execution mode on two dataset
profiles, plus OCA / static-algorithm / SSSP cells) and records each run's
per-batch ``RunMetrics`` exactly.  ``tests/test_pipeline_parity.py`` pins
the live pipeline against this record, so any refactor of the dispatch or
staging layers that perturbs modeled results — even in the last float bit —
is caught.

Regenerate (only when an intentional model change lands)::

    PYTHONPATH=src:tests python tests/golden/capture_parity.py
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent / "pipeline_parity.json"

#: (dataset, batch_size, num_batches, algorithm, mode, use_oca) cells.
#: Every mode runs with "pr"; extra cells cover OCA deferral, the static
#: algorithms (with their tolerance/rounds settings pinned explicitly) and
#: incremental SSSP.
MODE_LIST = (
    "baseline",
    "always_ro",
    "abr",
    "abr_usc",
    "perfect_abr",
    "perfect_abr_usc",
    "sw_only",
    "hw_only",
    "dynamic",
)

PROFILES = (("fb", 500, 4), ("wiki", 1_000, 3))


def cell_definitions() -> list[dict]:
    cells = []
    for dataset, batch_size, num_batches in PROFILES:
        base = {
            "dataset": dataset,
            "batch_size": batch_size,
            "num_batches": num_batches,
        }
        for mode in MODE_LIST:
            cells.append({**base, "algorithm": "pr", "mode": mode})
        cells.append(
            {**base, "algorithm": "pr", "mode": "abr_usc", "use_oca": True}
        )
        cells.append(
            {
                **base,
                "algorithm": "pr_static",
                "mode": "baseline",
                "pr_tolerance": 1e-7,
                "pr_max_rounds": 50,
            }
        )
        cells.append({**base, "algorithm": "sssp", "mode": "baseline"})
    return cells


def cell_key(cell: dict) -> str:
    return (
        f"{cell['dataset']}:{cell['batch_size']}:{cell['num_batches']}:"
        f"{cell['algorithm']}:{cell['mode']}:oca={cell.get('use_oca', False)}"
    )


def run_cell(cell: dict) -> dict:
    """Run one cell with a fresh pipeline and serialize its RunMetrics."""
    from repro.compute.oca import OCAConfig
    from repro.datasets.profiles import get_dataset
    from repro.exec_model.machine import SIMULATED_MACHINE
    from repro.pipeline.modes import resolve_mode
    from repro.pipeline.runner import StreamingPipeline

    policy = resolve_mode(cell["mode"])
    needs_hau = cell["mode"] in ("hw_only", "dynamic")
    kwargs = {}
    if needs_hau:
        from repro.hau.simulator import HAUSimulator

        kwargs["hau"] = HAUSimulator()
        kwargs["machine"] = SIMULATED_MACHINE
    if cell.get("use_oca"):
        kwargs["use_oca"] = True
        kwargs["oca_config"] = OCAConfig(overlap_threshold=0.01, n=2)
    if "pr_tolerance" in cell:
        kwargs["pr_tolerance"] = cell["pr_tolerance"]
    if "pr_max_rounds" in cell:
        kwargs["pr_max_rounds"] = cell["pr_max_rounds"]
    pipeline = StreamingPipeline(
        get_dataset(cell["dataset"]),
        cell["batch_size"],
        algorithm=cell["algorithm"],
        policy=policy,
        **kwargs,
    )
    metrics = pipeline.run(cell["num_batches"])
    return {
        "mode": metrics.mode,
        "batches": [
            {
                "batch_id": b.batch_id,
                "update_time": b.update_time,
                "compute_time": b.compute_time,
                "strategy": b.strategy,
                "deferred": b.deferred,
                "aggregated_batches": b.aggregated_batches,
                "cad": b.cad,
                "overlap": b.overlap,
            }
            for b in metrics.batches
        ],
    }


def capture() -> dict:
    return {cell_key(cell): run_cell(cell) for cell in cell_definitions()}


if __name__ == "__main__":
    GOLDEN_PATH.write_text(json.dumps(capture(), indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
