"""Golden parity: the staged/registry pipeline reproduces the pre-refactor
record bit-for-bit.

``tests/golden/pipeline_parity.json`` was captured from the pipeline
*before* the RunConfig / registry / staged-runner refactor.  Every cell of
the fixed-seed mini-matrix (all execution modes on two dataset profiles,
plus OCA, static-algorithm and SSSP cells) must still serialize to exactly
the recorded floats — any refactor of the dispatch or staging layers that
perturbs modeled results, even in the last bit, fails here.

Regenerate the record only when an intentional model change lands::

    PYTHONPATH=src:tests python tests/golden/capture_parity.py
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.compute.oca import OCAConfig
from repro.pipeline.config import RunConfig

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "capture_parity", GOLDEN_DIR / "capture_parity.py"
)
capture_parity = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(capture_parity)

GOLDEN = json.loads((GOLDEN_DIR / "pipeline_parity.json").read_text())
CELLS = capture_parity.cell_definitions()


def config_for(cell: dict) -> RunConfig:
    """The RunConfig equivalent of one golden cell definition."""
    kwargs = {
        key: cell[key]
        for key in ("pr_tolerance", "pr_max_rounds")
        if key in cell
    }
    if cell.get("use_oca"):
        kwargs["use_oca"] = True
        kwargs["oca"] = OCAConfig(overlap_threshold=0.01, n=2)
    return RunConfig(
        dataset=cell["dataset"],
        batch_size=cell["batch_size"],
        algorithm=cell["algorithm"],
        mode=cell["mode"],
        num_batches=cell["num_batches"],
        **kwargs,
    )


def serialize(metrics) -> dict:
    """RunMetrics in the golden record's exact shape."""
    return {
        "mode": metrics.mode,
        "batches": [
            {
                "batch_id": b.batch_id,
                "update_time": b.update_time,
                "compute_time": b.compute_time,
                "strategy": b.strategy,
                "deferred": b.deferred,
                "aggregated_batches": b.aggregated_batches,
                "cad": b.cad,
                "overlap": b.overlap,
            }
            for b in metrics.batches
        ],
    }


def test_golden_covers_every_cell():
    assert set(GOLDEN) == {capture_parity.cell_key(cell) for cell in CELLS}


@pytest.mark.parametrize("adjacency", ["dict", "hybrid"])
@pytest.mark.parametrize(
    "cell", CELLS, ids=[capture_parity.cell_key(c) for c in CELLS]
)
def test_cell_matches_golden(cell, adjacency):
    """The golden record is adjacency-format-invariant: the hybrid format
    must serialize to the exact floats recorded with per-vertex dicts —
    the format is a wall-clock lever, never a modeled-results change."""
    import dataclasses

    config = dataclasses.replace(config_for(cell), adjacency=adjacency)
    metrics = config.run()
    expected = GOLDEN[capture_parity.cell_key(cell)]
    # JSON round-trip our side too so float comparison is repr-exact on
    # both: identical modeled results serialize to identical documents.
    assert json.loads(json.dumps(serialize(metrics))) == expected


_FB_CELLS = [c for c in CELLS if c["dataset"] == "fb"]


@pytest.mark.parametrize("adjacency", ["dict", "hybrid"])
@pytest.mark.parametrize(
    "cell", _FB_CELLS,
    ids=[capture_parity.cell_key(c) for c in _FB_CELLS],
)
def test_cell_matches_golden_sharded(cell, adjacency):
    """The golden record is shard-count-invariant: vertex-partitioned
    execution (num_shards=2) must serialize to the exact same floats as
    the recorded serial runs — sharding is a wall-clock lever, never a
    modeled-results change.  Parametrized over the worker-side adjacency
    format too: shard workers must be format-invariant as well."""
    import dataclasses

    config = dataclasses.replace(
        config_for(cell), num_shards=2, adjacency=adjacency
    )
    metrics = config.run()
    expected = GOLDEN[capture_parity.cell_key(cell)]
    assert json.loads(json.dumps(serialize(metrics))) == expected


_TRANSPORTS = ["inproc", "shm", "tcp"]
_POLICIES = ["mod", "hash", "greedy"]


@pytest.mark.parametrize("policy", _POLICIES)
@pytest.mark.parametrize("transport", _TRANSPORTS)
@pytest.mark.parametrize("adjacency", ["dict", "hybrid"])
def test_matrix_gate_transport_policy_two_shards(transport, policy, adjacency):
    """The standing matrix gate: every (transport x policy x adjacency)
    combination serializes to the exact golden floats at num_shards=2.
    Transports move bytes and policies move vertices; neither may move a
    modeled result by even the last bit."""
    import dataclasses

    cell = CELLS[3]  # fb / abr_usc — the representative acceptance cell
    config = dataclasses.replace(
        config_for(cell), num_shards=2, adjacency=adjacency,
        shard_transport=transport, shard_policy=policy,
    )
    metrics = config.run()
    expected = GOLDEN[capture_parity.cell_key(cell)]
    assert json.loads(json.dumps(serialize(metrics))) == expected


@pytest.mark.parametrize("policy", _POLICIES)
@pytest.mark.parametrize("transport", _TRANSPORTS)
def test_matrix_gate_transport_policy_four_shards(transport, policy):
    """The acceptance shard count: the same gate at num_shards=4."""
    import dataclasses

    cell = CELLS[3]
    config = dataclasses.replace(
        config_for(cell), num_shards=4,
        shard_transport=transport, shard_policy=policy,
    )
    metrics = config.run()
    expected = GOLDEN[capture_parity.cell_key(cell)]
    assert json.loads(json.dumps(serialize(metrics))) == expected


@pytest.mark.parametrize(
    "cell",
    [CELLS[3], CELLS[9]],  # fb/abr_usc and fb/abr_usc+OCA
    ids=["abr_usc_telemetry", "abr_usc_oca_telemetry"],
)
def test_full_telemetry_never_perturbs_modeled_results(cell):
    """Instrumentation is observation-only: a fully-instrumented run must
    serialize to the exact golden floats of the uninstrumented record."""
    import dataclasses

    config = dataclasses.replace(config_for(cell), telemetry="full")
    metrics = config.run()
    expected = GOLDEN[capture_parity.cell_key(cell)]
    assert json.loads(json.dumps(serialize(metrics))) == expected


@pytest.mark.parametrize(
    "cell",
    [CELLS[3], CELLS[9]],  # fb/abr_usc and fb/abr_usc+OCA
    ids=["abr_usc", "abr_usc_oca"],
)
def test_step_loop_matches_run(cell):
    """Driving the public step() API by hand reproduces run() exactly."""
    config = config_for(cell)
    via_run = serialize(config.run())
    pipeline = config.build_pipeline()
    nb = cell["num_batches"]
    for index in range(nb):
        pipeline.step(final=index == nb - 1)
    assert serialize(pipeline.metrics) == via_run
