"""Cost-model sensitivity sweeps and the experiment store."""

import pytest

from repro.analysis.experiments import ExperimentStore
from repro.analysis.sensitivity import (
    classification_robustness,
    sweep_parameter,
)
from repro.errors import AnalysisError


def test_unknown_parameter_rejected(flat_profile):
    with pytest.raises(AnalysisError):
        sweep_parameter("warp_factor", (1.0,), [(flat_profile, 500, 2)])


def test_sweep_produces_grid(flat_profile, skewed_profile):
    points = sweep_parameter(
        "lock_base", (0.5, 1.0, 2.0),
        [(flat_profile, 500, 2), (skewed_profile, 5_000, 2)],
    )
    assert len(points) == 6
    scales = {p.scale for p in points}
    assert scales == {0.5, 1.0, 2.0}


def test_classification_survives_moderate_scaling(flat_profile, skewed_profile):
    """The friendly/adverse split must not hinge on exact constants."""
    expected = {
        (flat_profile.name, 500): False,
        (skewed_profile.name, 5_000): True,
    }
    for parameter in ("lock_base", "scan_cold", "sort_per_elem_level"):
        points = sweep_parameter(
            parameter, (0.6, 1.0, 1.6),
            [(flat_profile, 500, 3), (skewed_profile, 5_000, 3)],
        )
        assert classification_robustness(points, expected) == 1.0, parameter


def test_extreme_sort_cost_flips_friendly_cell(skewed_profile):
    """Sanity: the model is not insensitive — an absurd sort cost kills RO
    even where the lock-elimination win is large."""
    points = sweep_parameter(
        "sort_per_elem_level", (5_000.0,), [(skewed_profile, 5_000, 3)]
    )
    assert not points[0].friendly


def test_robustness_requires_points():
    with pytest.raises(AnalysisError):
        classification_robustness([], {})


def test_sweep_parallel_identical_to_serial(flat_profile, skewed_profile):
    """The executor-routed sweep must be bit-identical to the serial path:
    same points, same order, at any job count."""
    cells = [(flat_profile, 500, 2), (skewed_profile, 5_000, 2)]
    serial = sweep_parameter("lock_base", (0.5, 1.0, 2.0), cells, jobs=1)
    parallel = sweep_parameter("lock_base", (0.5, 1.0, 2.0), cells, jobs=2)
    assert parallel == serial


def test_sweep_isolates_crashing_cell(flat_profile, monkeypatch):
    """One cell failing yields an error point; the others still measure."""
    import repro.analysis.sensitivity as sensitivity_mod

    real = sensitivity_mod.characterize_cell

    def explode_on_double_scale(profile, batch_size, num_batches, **kwargs):
        if kwargs["costs"].lock_base > 30.0:  # the scale=2.0 cell
            raise RuntimeError("injected cell crash")
        return real(profile, batch_size, num_batches, **kwargs)

    monkeypatch.setattr(
        sensitivity_mod, "characterize_cell", explode_on_double_scale
    )
    points = sweep_parameter(
        "lock_base", (1.0, 2.0), [(flat_profile, 500, 2)], jobs=1
    )
    assert len(points) == 2
    assert points[0].ok and points[0].ro_speedup > 0
    assert not points[1].ok
    assert "injected cell crash" in points[1].error
    with pytest.raises(AnalysisError, match="sweep cell"):
        classification_robustness(points, {(flat_profile.name, 500): False})


def test_sweep_unknown_parameter_raises_before_fanout(flat_profile):
    """A typo'd parameter raises once, up front — not N per-cell errors."""
    with pytest.raises(AnalysisError, match="unknown cost parameter"):
        sweep_parameter("warp_factor", (1.0,), [(flat_profile, 500, 2)], jobs=2)


# -- experiment store --------------------------------------------------------


def test_store_roundtrip(tmp_path):
    store = ExperimentStore(tmp_path)
    store.record("t1", {"geomean": 2.5, "rows": [[1, 2.0], [3, 4.0]]})
    loaded = store.load("t1")
    assert loaded["geomean"] == 2.5
    assert loaded["rows"][1] == [3, 4.0]
    assert store.names() == ["t1"]


def test_store_numpy_values(tmp_path):
    import numpy as np

    store = ExperimentStore(tmp_path)
    store.record("t2", {"value": np.float64(1.5), "arr": [np.int64(3)]})
    assert store.load("t2") == {"value": 1.5, "arr": [3]}


def test_store_missing_record(tmp_path):
    with pytest.raises(AnalysisError):
        ExperimentStore(tmp_path).load("nope")


def test_store_rejects_bad_names(tmp_path):
    store = ExperimentStore(tmp_path)
    with pytest.raises(AnalysisError):
        store.record("../escape", {})
    with pytest.raises(AnalysisError):
        store.record("", {})


def test_store_compare(tmp_path):
    store = ExperimentStore(tmp_path)
    store.record("t3", {"summary": {"speedup": 2.5}})
    assert store.compare("t3", "summary.speedup", expected=2.6, tolerance=0.1)
    assert not store.compare("t3", "summary.speedup", expected=5.0, tolerance=0.1)
