"""Flight-recorder timeline: ring bounds, merging, Chrome export, and the
cross-process clock alignment the sharded runtime performs at harvest.

The acceptance bar for the subsystem is the last test: a 2-shard run over
the tcp transport yields one mergeable set of snapshots — coordinator plus
both workers, same run id — whose clock-aligned worker ``shard.apply``
spans overlap the coordinator's ``stage.update`` span for the same batch.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.pipeline.config import RunConfig
from repro.pipeline.tracing import TraceWriter, read_trace_document
from repro.telemetry.core import NULL_TELEMETRY, Telemetry, make_telemetry
from repro.telemetry.timeline import (
    DEFAULT_TIMELINE_CAPACITY,
    TimelineRecorder,
    TimelineSnapshot,
    merge_timeline_snapshots,
    to_chrome_trace,
    write_chrome_trace,
)


# -- recorder primitives -------------------------------------------------------

def test_recorder_records_spans_and_instants():
    rec = TimelineRecorder(run_id="r1", process="coordinator")
    rec.span("stage.update", 10.0, 0.5, batch_id=3)
    rec.instant("checkpoint", batch_id=3, ts=10.6)
    snap = rec.snapshot()
    assert snap.run_id == "r1" and snap.process == "coordinator"
    assert snap.recorded == 2 and snap.dropped == 0
    assert snap.events == (
        ("X", "stage.update", 10.0, 0.5, 3),
        ("i", "checkpoint", 10.6, 0.0, 3),
    )
    assert snap.pid > 0
    assert snap.captured_at > 0.0


def test_ring_buffer_evicts_oldest_and_counts_drops():
    rec = TimelineRecorder(capacity=4)
    for i in range(7):
        rec.span("s", float(i), 0.1, batch_id=i)
    assert len(rec) == 4
    assert rec.recorded == 7
    assert rec.dropped == 3
    snap = rec.snapshot()
    # Flight-recorder semantics: the *end* of the run is retained.
    assert [ev[4] for ev in snap.events] == [3, 4, 5, 6]
    assert snap.recorded == 7 and snap.dropped == 3


def test_capacity_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_TIMELINE_CAP", "2")
    assert TimelineRecorder().capacity == 2
    monkeypatch.setenv("REPRO_TIMELINE_CAP", "not-a-number")
    assert TimelineRecorder().capacity == DEFAULT_TIMELINE_CAPACITY
    monkeypatch.delenv("REPRO_TIMELINE_CAP")
    assert TimelineRecorder().capacity == DEFAULT_TIMELINE_CAPACITY
    # An explicit capacity wins over the environment.
    monkeypatch.setenv("REPRO_TIMELINE_CAP", "2")
    assert TimelineRecorder(capacity=9).capacity == 9


def test_snapshot_is_nondestructive():
    rec = TimelineRecorder()
    rec.span("a", 1.0, 0.1)
    first = rec.snapshot()
    rec.span("b", 2.0, 0.1)
    second = rec.snapshot()
    assert len(first.events) == 1
    assert len(second.events) == 2


def test_configure_assigns_identity_lazily():
    rec = TimelineRecorder()
    rec.configure(run_id="run-7", process="shard-2", shard=2)
    snap = rec.snapshot()
    assert (snap.run_id, snap.process, snap.shard) == ("run-7", "shard-2", 2)


# -- snapshot serialization ----------------------------------------------------

def _sample_snapshot(**overrides) -> TimelineSnapshot:
    fields = dict(
        run_id="r", process="coordinator", shard=None, pid=42,
        clock_offset=0.25, captured_at=99.0, recorded=2, dropped=0,
        events=(("X", "stage.update", 1.0, 0.5, 0), ("i", "mark", 2.0, 0.0, None)),
    )
    fields.update(overrides)
    return TimelineSnapshot(**fields)


def test_snapshot_dict_round_trip_through_json():
    snap = _sample_snapshot()
    restored = TimelineSnapshot.from_dict(json.loads(json.dumps(snap.to_dict())))
    assert restored == snap


def test_snapshot_pickles():
    snap = _sample_snapshot()
    assert pickle.loads(pickle.dumps(snap)) == snap


def test_shifted_accumulates_offset_and_aligns_spans():
    snap = _sample_snapshot(clock_offset=0.25).shifted(0.75)
    assert snap.clock_offset == 1.0
    ((start, end, batch_id),) = snap.spans_named("stage.update")
    assert (start, end, batch_id) == (2.0, 2.5, 0)
    assert snap.spans_named("missing") == []


# -- merging -------------------------------------------------------------------

def test_merge_coalesces_same_process_and_orders_coordinator_first():
    coord_a = _sample_snapshot(captured_at=10.0)
    coord_b = _sample_snapshot(
        captured_at=20.0, clock_offset=0.5, recorded=3,
        events=coord_a.events + (("X", "stage.update", 3.0, 0.5, 1),),
    )
    worker = _sample_snapshot(
        process="shard-0", shard=0, pid=43,
        events=(("X", "shard.apply", 1.1, 0.2, 0),),
    )
    merged = merge_timeline_snapshots([worker, coord_a, coord_b, None])
    assert len(merged) == 2
    assert merged[0].process == "coordinator"
    assert merged[1].process == "shard-0"
    # Duplicate events deduped, latest capture's offset kept, time order.
    assert len(merged[0].events) == 3
    assert merged[0].clock_offset == 0.5
    assert [ev[2] for ev in merged[0].events] == sorted(
        ev[2] for ev in merged[0].events
    )


# -- Chrome trace export -------------------------------------------------------

def test_chrome_trace_shape_tracks_and_units(tmp_path):
    coord = _sample_snapshot(clock_offset=0.0)
    worker = _sample_snapshot(
        process="shard-1", shard=1, pid=43, clock_offset=0.5,
        events=(("X", "shard.apply", 1.0, 0.25, 0),),
    )
    doc = to_chrome_trace([coord, worker])
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["run_ids"] == ["r"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["name"] for m in meta} == {
        "process_name", "thread_name", "thread_sort_index"
    }
    # Coordinator on tid 0, shard 1 on tid 2; distinct tracks.
    assert {(e["pid"], e["tid"]) for e in events if e["ph"] == "X"} == {
        (42, 0), (43, 2)
    }
    spans = [e for e in events if e["ph"] == "X"]
    # Earliest aligned event anchors the origin: coordinator span at ts=1.0
    # with offset 0 -> origin 1.0; worker span 1.0 + 0.5 -> 0.5s later.
    coord_span = next(e for e in spans if e["tid"] == 0)
    worker_span = next(e for e in spans if e["tid"] == 2)
    assert coord_span["ts"] == pytest.approx(0.0)
    assert coord_span["dur"] == pytest.approx(0.5e6)
    assert worker_span["ts"] == pytest.approx(0.5e6)
    assert coord_span["args"] == {"batch": 0}
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["s"] == "t" and "dur" not in instant

    out = tmp_path / "trace.json"
    written = write_chrome_trace(out, [coord, worker])
    assert json.loads(out.read_text()) == written
    assert not list(tmp_path.glob("*.tmp"))


# -- Telemetry integration -----------------------------------------------------

def test_full_level_carries_recorder_and_spans_feed_it():
    tel = Telemetry("full")
    assert tel.timeline is not None
    tel.set_batch(5)
    with tel.span("stage.update"):
        pass
    tel.decision("abr", choice="reorder", batch_id=7)
    snap = tel.timeline_snapshot()
    kinds = [(ev[0], ev[1], ev[4]) for ev in snap.events]
    assert ("X", "stage.update", 5) in kinds
    assert ("i", "decision.abr:reorder", 7) in kinds


def test_basic_and_null_levels_have_no_recorder():
    assert Telemetry("basic").timeline is None
    assert Telemetry("basic").timeline_snapshot() is None
    assert NULL_TELEMETRY.timeline is None
    assert NULL_TELEMETRY.timeline_snapshot() is None
    NULL_TELEMETRY.set_batch(3)  # must be a no-op, not an AttributeError


# -- trace schema v2 round trip ------------------------------------------------

def test_trace_file_round_trips_timeline_lines(tmp_path, flat_profile):
    from repro.pipeline.runner import StreamingPipeline
    from repro.update.engine import UpdatePolicy

    path = tmp_path / "run.jsonl"
    trace = TraceWriter(path)
    tel = Telemetry("full")
    pipeline = StreamingPipeline(
        flat_profile, 200, "none", UpdatePolicy.BASELINE,
        telemetry=tel, trace=trace,
    )
    pipeline.run(3)
    trace.close()

    doc = read_trace_document(path)
    assert len(doc.events) == 3
    assert len(doc.timelines) == 1
    (snap,) = doc.timelines
    assert snap.run_id == pipeline.run_id
    assert snap.process == "coordinator"
    assert any(ev[1] == "pipeline.batch" for ev in snap.events)
    # The timeline payload survives a JSON round trip bit-exactly.
    assert TimelineSnapshot.from_dict(snap.to_dict()) == snap


def test_trace_reader_tolerates_unknown_and_timeline_lines(tmp_path):
    path = tmp_path / "mixed.jsonl"
    trace = TraceWriter(path)
    trace.write_timeline(_sample_snapshot())
    trace.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "someday", "schema_version": 9}) + "\n")
    doc = read_trace_document(path)
    assert len(doc.timelines) == 1
    assert doc.timelines[0] == _sample_snapshot()


# -- recorder stays off the metrics path ---------------------------------------

def test_metrics_identical_with_and_without_recorder(flat_profile):
    from repro.pipeline.runner import StreamingPipeline
    from repro.update.engine import UpdatePolicy

    def run(level):
        pipeline = StreamingPipeline(
            flat_profile, 200, "pr_static", UpdatePolicy.ABR_USC,
            telemetry=make_telemetry(level),
        )
        metrics = pipeline.run(4)
        return [
            (b.batch_id, b.update_time, b.compute_time, b.strategy)
            for b in metrics.batches
        ]

    assert run("off") == run("full")


# -- executor propagation ------------------------------------------------------

def test_executor_cells_carry_timelines():
    from repro.pipeline.executor import merged_timelines, run_matrix

    configs = [
        RunConfig(dataset=name, batch_size=500, algorithm="none",
                  mode="abr", num_batches=2, telemetry="full")
        for name in ("fb", "wiki")
    ]
    results = run_matrix(configs, jobs=2)
    assert all(result.ok for result in results)
    assert all(result.timelines for result in results)
    merged = merged_timelines(results)
    assert len(merged) == 2
    assert all(isinstance(s, TimelineSnapshot) for s in merged)
    # Executor workers time on the machine-wide monotonic clock; batch
    # spans of both cells must be present and non-empty.
    for snap in merged:
        assert snap.spans_named("pipeline.batch")


def test_executor_timelines_do_not_affect_result_equality():
    from repro.pipeline.executor import CellResult

    spec = RunConfig(dataset="fb", batch_size=500, algorithm="none",
                     mode="abr", num_batches=1)
    base = dict(spec=spec, num_batches=1, update_time=1.0,
                compute_time=2.0, strategies=(("baseline", 1),))
    a = CellResult(**base, timelines=())
    b = CellResult(**base, timelines=(_sample_snapshot(),))
    assert a == b


# -- the cross-process acceptance bar ------------------------------------------

@pytest.mark.parametrize("transport", ["inproc", "tcp"])
def test_sharded_run_produces_clock_aligned_overlapping_timelines(transport):
    config = RunConfig(
        dataset="fb", batch_size=500, algorithm="none", mode="abr",
        num_batches=4, num_shards=2, shard_transport=transport,
        telemetry="full",
    )
    pipeline = config.build_pipeline()
    try:
        pipeline.run(config.num_batches)
    finally:
        pipeline.close()
    snaps = pipeline.timeline_snapshots()
    assert len(snaps) == 3
    assert len({s.run_id for s in snaps}) == 1
    coordinator = next(s for s in snaps if s.process == "coordinator")
    workers = [s for s in snaps if s.process.startswith("shard-")]
    assert sorted(w.shard for w in workers) == [0, 1]

    updates = {
        batch_id: (start, end)
        for start, end, batch_id in coordinator.spans_named("stage.update")
    }
    assert len(updates) == 4
    checked = 0
    for worker in workers:
        applies = worker.spans_named("shard.apply")
        assert len(applies) == 4
        for start, end, batch_id in applies:
            coord_start, coord_end = updates[batch_id]
            # Clock-aligned worker work must land inside (overlap) the
            # coordinator's update stage for the same batch — the whole
            # point of the offset handshake.
            overlap = min(end, coord_end) - max(start, coord_start)
            assert overlap >= 0.0, (worker.process, batch_id)
            checked += 1
    assert checked == 8


def test_sharded_timelines_survive_close_and_export(tmp_path):
    config = RunConfig(
        dataset="fb", batch_size=500, algorithm="none", mode="abr",
        num_batches=2, num_shards=2, shard_transport="shm",
        telemetry="full",
    )
    pipeline = config.build_pipeline()
    try:
        pipeline.run(config.num_batches)
    finally:
        pipeline.close()
    # Harvest happened inside close(); snapshots remain exportable after.
    snaps = pipeline.timeline_snapshots()
    assert len(snaps) == 3
    doc = write_chrome_trace(tmp_path / "t.json", snaps)
    tracks = {(e["pid"], e["tid"]) for e in doc["traceEvents"] if e["ph"] == "X"}
    assert len(tracks) == 3
